"""Fig. 1 — the motivating upstream→downstream correlation analysis.

Regenerates the paper's lead-lag structure: subway entries at the
residential station precede exits at the CBD station; bike pick-ups near
the CBD station track its exits; the evening reverses the direction.
"""

from repro.experiments import run_fig1


def test_fig1_upstream_downstream_correlation(run_once, profile, context):
    result = run_once(lambda: run_fig1(profile=profile, city=context.city))
    print()
    print(result.render())
    # Shape assertions: the causal chain must be visible.
    assert max(result.morning_subway_lag.values()) > 0.3
    assert max(result.morning_bike_lag.values()) > 0.3
    assert max(result.evening_subway_lag.values()) > 0.3
    assert max(result.evening_bike_lag.values()) > 0.3
