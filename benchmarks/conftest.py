"""Benchmark fixtures.

Artifact benches (one per paper table/figure) honour ``REPRO_PROFILE``
(default ``smoke``) and run exactly once via ``benchmark.pedantic`` — they
measure end-to-end regeneration cost and, more importantly, *print the
regenerated artifact* so a bench run reproduces the paper's numbers.
Substrate micro-benches run multiple rounds like ordinary benchmarks.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentContext, get_profile


@pytest.fixture(scope="session")
def profile():
    return get_profile()


@pytest.fixture(scope="session")
def context(profile):
    """Shared simulated city + datasets across all artifact benches."""
    return ExperimentContext(profile)


@pytest.fixture()
def run_once(benchmark):
    """Time a callable exactly once (artifact regeneration is minutes-scale)."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return runner
