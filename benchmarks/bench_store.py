"""Chunked window-store benchmarks: build, epoch stream, memory footprint.

Times the two dataflow paths over the same ``(T, G1, G2, F)`` tensor:

- ``eager`` — the historical pipeline: normalize the whole tensor,
  materialize every window (``make_windows``), shuffle in-memory slices.
- ``chunked`` — the unified store: slots land in fixed-size chunks, the
  scaler streams ``partial_fit``, and every epoch batch materializes
  lazily from the chunk buffer (``O(batch)`` windows live at once).

Both paths produce bit-identical batches (pinned in tests/store); the
bench quantifies what the laziness costs in time and buys in memory.
Writes ``results/BENCH_store.json`` (``REPRO_BENCH_DIR`` overrides the
directory); ``bench_store_*_mean_seconds`` gauges are regression-gated by
``scripts/bench_compare.py``, the ``*_peak_bytes`` gauges are
informational.
"""

import os
import tracemalloc

import numpy as np
import pytest

from repro.data.normalization import MinMaxScaler
from repro.data.windows import make_windows
from repro.nn.training import iterate_minibatches
from repro.obs import metrics as obs_metrics
from repro.obs.artifacts import atomic_write_json
from repro.store import WindowStore

HISTORY, HORIZON, BATCH = 8, 4, 32
CASES = {
    "small": dict(slots=256, grid=(6, 6), features=3),
    "large": dict(slots=1024, grid=(10, 10), features=4),
}


def _tensor(case):
    spec = CASES[case]
    rng = np.random.default_rng(7)
    return rng.random((spec["slots"], *spec["grid"], spec["features"])) * 20.0


def _build_eager(tensor):
    scaler = MinMaxScaler().fit(tensor)
    normalized = np.clip(scaler.transform(tensor), 0.0, None)
    return make_windows(normalized, HISTORY, HORIZON)


def _build_chunked(tensor):
    return WindowStore.from_tensor(tensor, HISTORY, HORIZON, chunk_slots=64)


def _epoch_eager(x, y):
    consumed = 0
    for bx, _by in iterate_minibatches(x, y, BATCH, rng=np.random.default_rng(3)):
        consumed += len(bx)
    return consumed


def _epoch_chunked(store):
    view = store.view()
    consumed = 0
    for bx, _by in view.batches(BATCH, rng=np.random.default_rng(3)):
        consumed += len(bx)
    return consumed


def _record(benchmark, name: str, case: str, path: str) -> None:
    stats = getattr(benchmark, "stats", None)
    stats = getattr(stats, "stats", None)
    if stats is None:  # --benchmark-disable runs have no stats
        return
    obs_metrics.gauge(f"bench_store_{name}_mean_seconds", case=case, path=path).set(
        stats.mean
    )
    obs_metrics.gauge(f"bench_store_{name}_min_seconds", case=case, path=path).set(
        stats.min
    )


@pytest.fixture(scope="module", autouse=True)
def _bench_snapshot():
    """Persist BENCH_store.json on module exit."""
    yield
    snapshot = obs_metrics.snapshot()
    gauges = {
        key: value
        for key, value in snapshot["gauges"].items()
        if key.startswith("bench_store_")
    }
    if not gauges:
        return
    payload = {"gauges": gauges, "config": {"history": HISTORY, "horizon": HORIZON, "batch": BATCH, "cases": CASES}}
    directory = os.environ.get("REPRO_BENCH_DIR", "results")
    os.makedirs(directory, exist_ok=True)
    atomic_write_json(os.path.join(directory, "BENCH_store.json"), payload, sort_keys=True)


@pytest.mark.parametrize("case", sorted(CASES))
def test_build_eager(benchmark, case):
    tensor = _tensor(case)
    x, y = benchmark(_build_eager, tensor)
    assert len(x) == len(y)
    _record(benchmark, "build", case, "eager")


@pytest.mark.parametrize("case", sorted(CASES))
def test_build_chunked(benchmark, case):
    tensor = _tensor(case)
    store = benchmark(_build_chunked, tensor)
    assert store.num_windows > 0
    _record(benchmark, "build", case, "chunked")


@pytest.mark.parametrize("case", sorted(CASES))
def test_epoch_eager(benchmark, case):
    x, y = _build_eager(_tensor(case))
    consumed = benchmark(_epoch_eager, x, y)
    assert consumed == len(x)
    _record(benchmark, "epoch", case, "eager")


@pytest.mark.parametrize("case", sorted(CASES))
def test_epoch_chunked(benchmark, case):
    store = _build_chunked(_tensor(case))
    consumed = benchmark(_epoch_chunked, store)
    assert consumed == store.num_windows
    _record(benchmark, "epoch", case, "chunked")


@pytest.mark.parametrize("case", sorted(CASES))
def test_epoch_memory_peaks(case):
    """Not timed: tracemalloc peaks of one epoch, eager vs chunked."""
    tensor = _tensor(case)

    tracemalloc.start()
    x, y = _build_eager(tensor)
    _epoch_eager(x, y)
    _, eager_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del x, y

    store = _build_chunked(tensor)
    tracemalloc.start()
    _epoch_chunked(store)
    _, chunked_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    obs_metrics.gauge("bench_store_epoch_peak_bytes", case=case, path="eager").set(
        float(eager_peak)
    )
    obs_metrics.gauge("bench_store_epoch_peak_bytes", case=case, path="chunked").set(
        float(chunked_peak)
    )
    # The chunked epoch must not approach the eager materialized footprint.
    assert chunked_peak < eager_peak
