"""Sec. V-A stability claim: separated temporal capsules reduce variance.

Not a paper table — it quantifies the limitation paragraph's claim with the
across-seed MAE spread of both routing arrangements.
"""

from repro.experiments import run_stability


def test_stability_separated_vs_joint(run_once, profile, context):
    result = run_once(
        lambda: run_stability(profile=profile, context=context)
    )
    print()
    print(result.render())
    print(f"variance reduced by separated capsules: {result.variance_reduced()}")
    assert set(result.results) == {"joint", "separated"}
