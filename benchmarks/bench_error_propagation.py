"""Accumulated-error bench (the mechanism behind paper Fig. 2 / Table III).

Measures, for a trained recursive baseline, the per-step gap between
deployment rollout (predictions fed back) and teacher forcing (true frames
fed in). The gap *is* the accumulated error; it must be zero at step 1 and
non-decreasing in tendency afterwards.
"""

import numpy as np

from repro.experiments import run_error_propagation


def test_error_propagation_convlstm(run_once, profile, context):
    result = run_once(
        lambda: run_error_propagation("convLSTM", profile=profile, context=context)
    )
    print()
    print(result.render())
    assert result.accumulated_error[0] == 0.0
    assert np.all(np.isfinite(result.accumulated_error))
