"""End-to-end BikeCAP training-step benchmarks (the perf-trajectory anchor).

Times one full optimizer step (zero_grad → forward → L1 loss → backward →
clip → Adam) on two model sizes, in both engine modes:

- ``precise`` — float64, the substrate default (gradcheck-grade).
- ``fast`` — float32 via ``repro.nn.config.set_engine_mode("fast")``.

The module writes ``results/BENCH_train.json`` (``REPRO_BENCH_DIR``
overrides the directory) containing the measured stats, the frozen pre-PR
reference timings for the same cases on the same machine, and the computed
speedups — the second file in the ``BENCH_*.json`` perf-trajectory series
(after ``BENCH_substrate.json``). Compare snapshots across commits with
``scripts/bench_compare.py``.
"""

import os

import numpy as np
import pytest

from repro.core import BikeCAP, BikeCAPConfig
from repro.nn import Trainer
from repro.nn import config as nn_config
from repro.nn import engine
from repro.obs import metrics as obs_metrics
from repro.obs.artifacts import atomic_write_json

# Reference timings measured on this machine at the commit immediately
# before the engine PR (float64 substrate — the only mode that existed;
# "fast32" is the same code with set_dtype(float32)). Same model configs,
# seeds and batch shapes as the benches below, 20 rounds after 3 warmups.
PRE_PR_SECONDS = {
    "train_step_small": {
        "float64": {"min": 0.01291, "mean": 0.01352},
        "fast32": {"min": 0.01043, "mean": 0.01178},
    },
    "train_step_medium": {
        "float64": {"min": 0.05223, "mean": 0.05928},
        "fast32": {"min": 0.02057, "mean": 0.02615},
    },
}

CASES = {
    "train_step_small": dict(grid=(8, 8), history=6, horizon=3, batch=8),
    "train_step_medium": dict(grid=(10, 10), history=8, horizon=4, batch=16),
}


def _record(benchmark, case: str, mode: str) -> None:
    stats = getattr(benchmark, "stats", None)
    stats = getattr(stats, "stats", None)
    if stats is None:  # --benchmark-disable runs have no stats
        return
    obs_metrics.gauge("bench_train_mean_seconds", case=case, mode=mode).set(stats.mean)
    obs_metrics.gauge("bench_train_min_seconds", case=case, mode=mode).set(stats.min)


@pytest.fixture(scope="module", autouse=True)
def _bench_snapshot():
    """Persist BENCH_train.json with before/after numbers on module exit."""
    yield
    snapshot = obs_metrics.snapshot()
    gauges = {
        key: value
        for key, value in snapshot["gauges"].items()
        if key.startswith("bench_train_")
    }
    if not gauges:
        return
    speedups = {}
    for case, reference in PRE_PR_SECONDS.items():
        key = f"bench_train_mean_seconds{{case={case},mode=fast}}"
        if key in gauges and gauges[key] > 0:
            speedups[case] = {
                "fast_vs_pre_pr_float64": reference["float64"]["mean"] / gauges[key],
                "fast_vs_pre_pr_fast32": reference["fast32"]["mean"] / gauges[key],
            }
        key = f"bench_train_mean_seconds{{case={case},mode=precise}}"
        if key in gauges and gauges[key] > 0:
            speedups.setdefault(case, {})["precise_vs_pre_pr_float64"] = (
                reference["float64"]["mean"] / gauges[key]
            )
    payload = {
        "gauges": gauges,
        "pre_pr_reference_seconds": PRE_PR_SECONDS,
        "speedup": speedups,
        # Which reference epoch each speedup denominator refers to —
        # bench_compare.py prints this next to the ratios. These frozen
        # numbers predate several engine PRs *and* any machine-speed drift
        # since they were taken, so treat the ratios as trajectory, not as
        # the effect of the current commit (docs/PERFORMANCE.md discusses
        # the measured drift).
        "speedup_references": {
            "pre_pr_float64": (
                "frozen float64 timing from the commit before the engine PR "
                "(PRE_PR_SECONDS in benchmarks/bench_train.py)"
            ),
            "pre_pr_fast32": (
                "frozen float32 timing of the same pre-engine-PR commit "
                "(set_dtype(float32) on the old substrate)"
            ),
        },
    }
    directory = os.environ.get("REPRO_BENCH_DIR", "results")
    os.makedirs(directory, exist_ok=True)
    atomic_write_json(os.path.join(directory, "BENCH_train.json"), payload, sort_keys=True)


@pytest.fixture()
def engine_mode():
    """Restore precision, caches and arena state around each bench."""
    previous = nn_config.engine_mode()
    yield nn_config.set_engine_mode
    nn_config.set_engine_mode(previous)
    engine.clear_caches()
    engine.arena_clear()


def _make_trainer(case):
    cfg = BikeCAPConfig(
        grid=case["grid"],
        history=case["history"],
        horizon=case["horizon"],
        features=4,
        pyramid_size=3,
        capsule_dim=2,
        future_capsule_dim=2,
        decoder_hidden=4,
        seed=0,
    )
    model = BikeCAP(cfg)
    trainer = Trainer(model, loss="l1", batch_size=case["batch"], seed=0)
    rng = np.random.default_rng(0)
    dtype = nn_config.dtype()
    x = rng.random((case["batch"], case["history"], *case["grid"], 4)).astype(dtype)
    y = rng.random((case["batch"], case["horizon"], *case["grid"])).astype(dtype)
    return trainer, x, y


@pytest.mark.parametrize("case", sorted(CASES))
@pytest.mark.parametrize("mode", ["precise", "fast"])
def test_train_step(benchmark, engine_mode, case, mode):
    engine_mode(mode)
    trainer, x, y = _make_trainer(CASES[case])
    loss = benchmark(lambda: trainer.train_step(x, y))
    _record(benchmark, case, mode)
    assert np.isfinite(loss)
