"""Table III — MAE/RMSE of all eight models across prediction horizons.

Prints the regenerated table and checks the paper's *shape*: the recursive
baselines' error must grow faster with the horizon than BikeCAP's.
"""

import numpy as np

from repro.experiments import run_table3

RECURSIVE = ("XGBoost", "LSTM", "convLSTM", "PredRNN", "PredRNN++")


def test_table3_model_comparison(run_once, profile, context):
    result = run_once(lambda: run_table3(profile=profile, context=context))
    print()
    print(result.render())

    ratios = result.degradation("MAE")
    print("\nMAE degradation (last/first horizon):")
    for model, ratio in sorted(ratios.items(), key=lambda kv: kv[1]):
        print(f"  {model:12s} {ratio:.2f}x")

    # Paper shape: recursive models accumulate error faster than BikeCAP.
    recursive_ratios = [ratios[m] for m in RECURSIVE if m in ratios]
    if "BikeCAP" in ratios and recursive_ratios:
        assert ratios["BikeCAP"] <= float(np.mean(recursive_ratios)) * 1.5
