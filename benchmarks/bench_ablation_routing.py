"""Ablation bench (DESIGN.md Sec. 5): routing iterations & the Sec. V-A
separated-temporal-capsules extension.

Not a paper table — it probes the design choices DESIGN.md calls out:
how many routing iterations are worth their cost, and what the stability
extension changes.
"""

import numpy as np

from repro.baselines.bikecap_adapter import BikeCAPForecaster
from repro.metrics import evaluate_forecaster


def _train_and_eval(context, profile, **config_overrides):
    dataset = context.dataset(profile.ablation_horizon)
    overrides = dict(profile.model_overrides.get("BikeCAP", {}))
    overrides.update(config_overrides)
    forecaster = BikeCAPForecaster(
        dataset.history,
        dataset.horizon,
        dataset.grid_shape,
        dataset.num_features,
        seed=0,
        **overrides,
    )
    forecaster.fit(dataset, epochs=profile.epochs)
    return evaluate_forecaster(forecaster, dataset)


def test_ablation_routing_iterations(run_once, profile, context):
    def sweep():
        return {
            iterations: _train_and_eval(context, profile, routing_iterations=iterations)
            for iterations in (1, 3)
        }

    results = run_once(sweep)
    print()
    for iterations, metrics in results.items():
        print(f"routing iterations={iterations}: MAE={metrics['MAE']:.3f} RMSE={metrics['RMSE']:.3f}")
    assert all(np.isfinite(m["MAE"]) for m in results.values())


def test_ablation_separated_temporal_capsules(run_once, profile, context):
    def sweep():
        return {
            flag: _train_and_eval(context, profile, separate_temporal_capsules=flag)
            for flag in (False, True)
        }

    results = run_once(sweep)
    print()
    for flag, metrics in results.items():
        label = "separated" if flag else "joint"
        print(f"temporal capsules={label}: MAE={metrics['MAE']:.3f} RMSE={metrics['RMSE']:.3f}")
    assert all(np.isfinite(m["MAE"]) for m in results.values())
