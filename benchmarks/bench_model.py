"""Whole-model BikeCAP training benchmarks across engine modes.

Where ``benchmarks/bench_train.py`` times one optimizer step of a shrunken
model in the two classic modes, this module is the gate for the fused-
kernel / mixed-precision work: it times BikeCAP training on the medium
grid in three configurations —

- ``fast``    — float32, cross-op fusion *disabled* (the pre-fusion fast
  mode, kept as the in-snapshot baseline);
- ``fused``   — float32 with :mod:`repro.nn.fusion` kernels and the
  fused-regime conv dispatch;
- ``mixed``   — fused float32 compute with float64 master weights and
  dynamic loss scaling (``engine mode "mixed"``).

It writes ``results/BENCH_model.json`` (``REPRO_BENCH_DIR`` overrides the
directory) containing the measured stats, the frozen pre-PR reference
timings, the computed speedups, and — crucially — a ``speedup_floors``
section that ``scripts/bench_compare.py`` enforces: a candidate snapshot
whose fused/mixed speedup falls below a floor fails the comparison. Every
speedup names the reference it is computed against in
``speedup_references`` (see docs/PERFORMANCE.md for why that provenance
matters: several historical "speedups" were machine drift).
"""

import os

import numpy as np
import pytest

from repro.core import BikeCAP, BikeCAPConfig
from repro.nn import Trainer
from repro.nn import config as nn_config
from repro.nn import engine
from repro.obs import metrics as obs_metrics
from repro.obs.artifacts import atomic_write_json

# Reference timings measured on this machine at the commit immediately
# before the fusion/mixed-precision PR (2026-08-08, same harness: identical
# model configs, seeds, batch shapes and round counts as the benches
# below). "fast" is that commit's float32 fast mode — the dispatch and
# kernels this PR's fused/mixed modes are measured against.
PRE_PR_SECONDS = {
    "epoch_medium": {
        "fast": {"min": 0.07040, "mean": 0.07533},
        "float64": {"min": 0.10364, "mean": 0.11917},
    },
    "step_paper": {
        "fast": {"min": 0.05089, "mean": 0.05848},
        "float64": {"min": 0.08353, "mean": 0.08833},
    },
}

# The issue's aspirational target for fused+mixed vs the pre-PR fast mode.
# Honest measurement on this machine falls well short: elementwise fusion
# only touches ~10% of the step (FFT/GEMM convolutions and the routing
# einsum dominate), so the enforced floors below gate against *regression*
# while PERFORMANCE.md documents the measured gap to the target.
SPEEDUP_TARGET = 2.0
SPEEDUP_FLOORS = {
    "epoch_medium.fused_vs_pre_pr_fast": 0.80,
    "epoch_medium.mixed_vs_pre_pr_fast": 0.80,
    "step_paper.fused_vs_pre_pr_fast": 0.80,
    "step_paper.mixed_vs_pre_pr_fast": 0.80,
}

SPEEDUP_REFERENCES = {
    "pre_pr_fast": (
        "frozen fast-mode (float32) timing from the commit before the "
        "fusion PR, measured 2026-08-08 on this machine with this harness "
        "(PRE_PR_SECONDS in benchmarks/bench_model.py)"
    ),
    "fast_unfused": (
        "the 'fast' mode rows of this same snapshot: float32 with fusion "
        "disabled, measured in the same process minutes apart"
    ),
}

# epoch_medium: the bench_train "medium" model, one epoch = 4 batches.
# step_paper: paper-default grid/pyramid (16x12, pyramid 5), one batch.
CASES = {
    "epoch_medium": dict(
        grid=(10, 10), history=8, horizon=4, batch=16, batches=4,
        pyramid=3, capsule=2, future_capsule=2, decoder=4,
    ),
    "step_paper": dict(
        grid=(16, 12), history=8, horizon=4, batch=16, batches=1,
        pyramid=5, capsule=4, future_capsule=4, decoder=8,
    ),
}

MODES = {
    # mode name -> (engine mode, fusion enabled)
    "fast": ("fast", False),
    "fused": ("fast", True),
    "mixed": ("mixed", True),
}


def _record(benchmark, case: str, mode: str) -> None:
    stats = getattr(benchmark, "stats", None)
    stats = getattr(stats, "stats", None)
    if stats is None:  # --benchmark-disable runs have no stats
        return
    obs_metrics.gauge("bench_model_mean_seconds", case=case, mode=mode).set(stats.mean)
    obs_metrics.gauge("bench_model_min_seconds", case=case, mode=mode).set(stats.min)


@pytest.fixture(scope="module", autouse=True)
def _bench_snapshot():
    """Persist BENCH_model.json with speedups + enforced floors on exit."""
    yield
    snapshot = obs_metrics.snapshot()
    gauges = {
        key: value
        for key, value in snapshot["gauges"].items()
        if key.startswith("bench_model_")
    }
    if not gauges:
        return

    def mean_of(case: str, mode: str):
        return gauges.get(f"bench_model_mean_seconds{{case={case},mode={mode}}}")

    speedups = {}
    for case, reference in PRE_PR_SECONDS.items():
        entry = {}
        baseline = mean_of(case, "fast")
        for mode in ("fused", "mixed"):
            measured = mean_of(case, mode)
            if not measured:
                continue
            entry[f"{mode}_vs_pre_pr_fast"] = reference["fast"]["mean"] / measured
            if baseline:
                entry[f"{mode}_vs_fast_unfused"] = baseline / measured
        if baseline:
            entry["fast_vs_pre_pr_fast"] = reference["fast"]["mean"] / baseline
        if entry:
            speedups[case] = entry
    payload = {
        "gauges": gauges,
        "pre_pr_reference_seconds": PRE_PR_SECONDS,
        "speedup": speedups,
        "speedup_references": SPEEDUP_REFERENCES,
        "speedup_floors": SPEEDUP_FLOORS,
        "speedup_target": {
            "mixed_vs_pre_pr_fast": SPEEDUP_TARGET,
            "status": "aspirational; measured gap documented in docs/PERFORMANCE.md",
        },
    }
    directory = os.environ.get("REPRO_BENCH_DIR", "results")
    os.makedirs(directory, exist_ok=True)
    atomic_write_json(os.path.join(directory, "BENCH_model.json"), payload, sort_keys=True)


@pytest.fixture()
def engine_mode():
    """Restore precision, fusion, caches and arena state around each bench."""
    previous_mode = nn_config.engine_mode()
    previous_fusion = nn_config.fusion_enabled()

    def configure(mode: str) -> None:
        engine_mode, fusion = MODES[mode]
        nn_config.set_engine_mode(engine_mode)
        nn_config.set_fusion_enabled(fusion)
        engine.clear_caches()
        engine.arena_clear()

    yield configure
    nn_config.set_engine_mode(previous_mode)
    nn_config.set_fusion_enabled(previous_fusion)
    engine.clear_caches()
    engine.arena_clear()


def _make_trainer(case):
    cfg = BikeCAPConfig(
        grid=case["grid"],
        history=case["history"],
        horizon=case["horizon"],
        features=4,
        pyramid_size=case["pyramid"],
        capsule_dim=case["capsule"],
        future_capsule_dim=case["future_capsule"],
        decoder_hidden=case["decoder"],
        seed=0,
    )
    model = BikeCAP(cfg)
    trainer = Trainer(model, loss="l1", batch_size=case["batch"], seed=0)
    rng = np.random.default_rng(0)
    dtype = nn_config.dtype()
    batches = [
        (
            rng.random((case["batch"], case["history"], *case["grid"], 4)).astype(dtype),
            rng.random((case["batch"], case["horizon"], *case["grid"])).astype(dtype),
        )
        for _ in range(case["batches"])
    ]
    return trainer, batches


@pytest.mark.parametrize("case", sorted(CASES))
@pytest.mark.parametrize("mode", sorted(MODES))
def test_model_epoch(benchmark, engine_mode, case, mode):
    engine_mode(mode)
    trainer, batches = _make_trainer(CASES[case])

    def epoch():
        loss = 0.0
        for x, y in batches:
            loss = trainer.train_step(x, y)
        return loss

    loss = benchmark(epoch)
    _record(benchmark, case, mode)
    assert np.isfinite(loss)
