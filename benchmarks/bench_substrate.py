"""Substrate micro-benchmarks: the hot kernels every experiment relies on.

Unlike the artifact benches these run multiple rounds — they are ordinary
performance benchmarks for the numpy deep-learning substrate.

Each kernel's timings are mirrored into the ``repro.obs`` metrics registry,
and the module writes a ``results/BENCH_substrate.json`` snapshot on exit
(override the directory with ``REPRO_BENCH_DIR``) — the start of the
perf-trajectory file series tracked across PRs.
"""

import os

import numpy as np
import pytest

from repro.core import BikeCAP, BikeCAPConfig, SpatialTemporalRouting, squash
from repro.nn import Tensor, engine, ops
from repro.nn.ops.conv import conv3d_forward, conv3d_input_grad, conv3d_weight_grad
from repro.obs import metrics as obs_metrics
from repro.obs.artifacts import atomic_write_json


def _record(benchmark, kernel: str) -> None:
    """Mirror a pytest-benchmark result into the metrics registry."""
    stats = getattr(benchmark, "stats", None)
    stats = getattr(stats, "stats", None)
    if stats is None:  # --benchmark-disable runs have no stats
        return
    obs_metrics.gauge("bench_substrate_mean_seconds", kernel=kernel).set(stats.mean)
    obs_metrics.gauge("bench_substrate_min_seconds", kernel=kernel).set(stats.min)
    obs_metrics.counter("bench_substrate_rounds_total", kernel=kernel).inc(stats.rounds)


@pytest.fixture(scope="module", autouse=True)
def _bench_snapshot():
    """After the module runs, persist the registry as BENCH_substrate.json."""
    yield
    snapshot = obs_metrics.snapshot()
    if not any("bench_substrate" in key for key in snapshot["gauges"]):
        return
    directory = os.environ.get("REPRO_BENCH_DIR", "results")
    os.makedirs(directory, exist_ok=True)
    atomic_write_json(os.path.join(directory, "BENCH_substrate.json"), snapshot, sort_keys=True)


@pytest.fixture(scope="module")
def arrays():
    rng = np.random.default_rng(0)
    return {
        "x3d": rng.standard_normal((8, 4, 8, 12, 12)),
        "w3d": rng.standard_normal((8, 4, 3, 3, 3)),
        "phi": Tensor(rng.standard_normal((4, 1, 4, 8, 10, 10))),
        "capsules": Tensor(rng.standard_normal((16, 8, 4, 10, 10))),
    }


def test_conv3d_forward_kernel(benchmark, arrays):
    pads = ((1, 1), (1, 1), (1, 1))
    out = benchmark(conv3d_forward, arrays["x3d"], arrays["w3d"], (1, 1, 1), pads)
    _record(benchmark, "conv3d_forward")
    assert out.shape == (8, 8, 8, 12, 12)


def test_conv3d_forward_backward(benchmark, arrays):
    def step():
        x = Tensor(arrays["x3d"], requires_grad=True)
        w = Tensor(arrays["w3d"], requires_grad=True)
        out = ops.conv3d(x, w, padding=1)
        out.sum().backward()
        return x.grad

    grad = benchmark(step)
    _record(benchmark, "conv3d_forward_backward")
    assert grad.shape == arrays["x3d"].shape


def test_squash_kernel(benchmark, arrays):
    out = benchmark(lambda: squash(arrays["capsules"], axis=2))
    _record(benchmark, "squash")
    assert out.shape == arrays["capsules"].shape


def test_spatial_temporal_routing(benchmark, arrays):
    routing = SpatialTemporalRouting(4, 4, horizon=4, iterations=3, rng=0)
    out = benchmark(lambda: routing(arrays["phi"]))
    _record(benchmark, "spatial_temporal_routing")
    assert out.shape == (4, 4, 4, 10, 10)


def test_bikecap_forward(benchmark):
    rng = np.random.default_rng(0)
    config = BikeCAPConfig(
        grid=(10, 10), history=8, horizon=4, features=4, pyramid_size=3, seed=0
    )
    model = BikeCAP(config)
    x = rng.random((8, 8, 10, 10, 4))
    out = benchmark(lambda: model.predict(x))
    _record(benchmark, "bikecap_forward")
    assert out.shape == (8, 4, 10, 10)


def test_conv3d_weight_grad_kernel(benchmark, arrays):
    pads = ((1, 1), (1, 1), (1, 1))
    gout = np.ones((8, 8, 8, 12, 12))
    out = benchmark(
        conv3d_weight_grad, arrays["x3d"], gout, (3, 3, 3), (1, 1, 1), pads
    )
    _record(benchmark, "conv3d_weight_grad")
    assert out.shape == arrays["w3d"].shape


def test_conv3d_input_grad_kernel(benchmark, arrays):
    pads = ((1, 1), (1, 1), (1, 1))
    gout = np.ones((8, 8, 8, 12, 12))
    out = benchmark(
        conv3d_input_grad, gout, arrays["w3d"], (8, 12, 12), (1, 1, 1), pads
    )
    _record(benchmark, "conv3d_input_grad")
    assert out.shape == arrays["x3d"].shape


def test_engine_einsum_cached(benchmark, arrays):
    """The routing agreement contraction through the engine's path cache."""
    rng = np.random.default_rng(1)
    votes = rng.standard_normal((4, 4, 4, 32, 10, 10))
    squashed = rng.standard_normal((4, 4, 4, 10, 10))
    out = benchmark(lambda: engine.einsum("npdsxy,npdxy->nspxy", votes, squashed))
    _record(benchmark, "engine_einsum_cached")
    assert out.shape == (4, 32, 4, 10, 10)


def test_adam_step(benchmark):
    from repro.nn.layers.base import Parameter
    from repro.nn.optim import Adam

    rng = np.random.default_rng(2)
    params = [Parameter(rng.standard_normal(shape)) for shape in
              [(64, 32, 3, 3), (32, 16, 3, 3, 3), (128, 128), (128,)]]
    optimizer = Adam(params, lr=1e-3)

    def step():
        for param in params:
            param.grad = param.data * 0.01
        optimizer.step()
        return params[0].data

    out = benchmark(step)
    _record(benchmark, "adam_step")
    assert np.all(np.isfinite(out))


def test_bikecap_train_step(benchmark):
    from repro.nn import Trainer

    rng = np.random.default_rng(0)
    config = BikeCAPConfig(
        grid=(8, 8), history=6, horizon=3, features=4, pyramid_size=3,
        capsule_dim=2, future_capsule_dim=2, decoder_hidden=4, seed=0,
    )
    model = BikeCAP(config)
    trainer = Trainer(model, loss="l1", batch_size=8, seed=0)
    x = rng.random((8, 6, 8, 8, 4))
    y = rng.random((8, 3, 8, 8))
    loss = benchmark(lambda: trainer.train_step(x, y))
    _record(benchmark, "bikecap_train_step")
    assert np.isfinite(loss)
