"""Fig. 7 — component-importance ablations.

Prints the regenerated comparison and checks the paper's headline ordering:
the full model should not lose to the fully-stripped DeepCaps-style
variant (BikeCap-3D-Pyra).
"""

from repro.experiments import run_fig7


def test_fig7_ablations(run_once, profile, context):
    result = run_once(lambda: run_fig7(profile=profile, context=context))
    print()
    print(result.render())

    mae = {name: metrics["MAE"].mean for name, metrics in result.results.items()}
    # Directional check (paper Fig. 7): removing BOTH the pyramid and the 3-D
    # decoder should not beat the full model.
    assert mae["BikeCAP"] <= mae["BikeCap-3D-Pyra"] * 1.25
