"""Table V — BikeCAP performance with varying capsule dimension."""

from repro.experiments import run_table5


def test_table5_capsule_dimension_sweep(run_once, profile, context):
    result = run_once(lambda: run_table5(profile=profile, context=context))
    print()
    print(result.render())
    assert set(result.results) == set(profile.capsule_dims)
    for metrics in result.results.values():
        assert metrics["MAE"].mean >= 0
