"""Table IV — BikeCAP performance with varying pyramid size."""

from repro.experiments import run_table4


def test_table4_pyramid_size_sweep(run_once, profile, context):
    result = run_once(lambda: run_table4(profile=profile, context=context))
    print()
    print(result.render())
    assert set(result.results) == set(profile.pyramid_sizes)
    for metrics in result.results.values():
        assert metrics["MAE"].mean >= 0
