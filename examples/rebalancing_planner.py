"""Bike rebalancing from multi-step forecasts — the paper's motivating app.

Operators need demand *two hours ahead* because moving bikes across a city
takes time (paper Sec. I). This example:

1. trains BikeCAP to forecast 8 slots (2 hours) of per-grid pick-up demand;
2. turns the forecast plus current bike stock into surplus/deficit cells;
3. plans truck moves two ways — greedy nearest-surplus and distance-optimal
   min-cost flow (``repro.rebalancing``);
4. scores each plan against what actually happened, and compares with a
   naive persistence forecast.

    python examples/rebalancing_planner.py
"""

import numpy as np

from repro.city import CityConfig
from repro.core import BikeCAP, BikeCAPConfig
from repro.data import build_dataset
from repro.nn import Trainer
from repro.rebalancing import greedy_plan, min_cost_flow_plan, score_plan, unmet_demand


def main():
    horizon = 8  # 2 hours of 15-minute slots
    dataset = build_dataset(
        CityConfig(rows=6, cols=6, num_lines=2, num_commuters=800, days=7, seed=3),
        history=8,
        horizon=horizon,
    )

    model = BikeCAP(
        BikeCAPConfig(
            grid=dataset.grid_shape,
            history=8,
            horizon=horizon,
            features=dataset.num_features,
            pyramid_size=3,
            seed=0,
        )
    )
    trainer = Trainer(model, loss="l1", seed=0)
    trainer.fit(dataset.split.train_x, dataset.split.train_y, epochs=5, verbose=True)

    # Plan for one held-out window.
    window = dataset.split.test_x[10:11]
    truth = dataset.denormalize_target(dataset.split.test_y[10])
    realized = truth.sum(axis=0)

    forecast = dataset.denormalize_target(model.predict(window)[0]).sum(axis=0)
    persistence = dataset.denormalize_target(window[0, -1, :, :, 0]) * horizon

    # Current stock: bikes are scarce and spread uniformly — the unbalanced
    # situation operators face before a rush hour.
    rng = np.random.default_rng(0)
    total_bikes = int(truth.sum() * 0.8)
    stock = rng.multinomial(
        total_bikes, np.full(realized.size, 1.0 / realized.size)
    ).reshape(dataset.grid_shape).astype(float)

    print(f"\nfleet: {total_bikes} bikes, realized 2h demand: {realized.sum():.0f} pick-ups")
    print(f"{'plan':28s} {'moves':>6s} {'bikes':>6s} {'work':>8s} {'unmet':>6s} {'coverage':>9s}")

    plans = {
        "BikeCAP + greedy": greedy_plan(stock, forecast),
        "BikeCAP + min-cost flow": min_cost_flow_plan(stock, forecast),
        "persistence + greedy": greedy_plan(stock, persistence),
    }
    for name, plan in plans.items():
        score = score_plan(plan, stock, realized)
        print(
            f"{name:28s} {len(plan.moves):6d} {plan.total_bikes:6d} "
            f"{plan.total_distance:8.1f} {score.unmet_demand:6.0f} {score.coverage:9.1%}"
        )
    no_plan = unmet_demand(stock, realized)
    print(f"{'no rebalancing':28s} {'-':>6s} {'-':>6s} {'-':>8s} {no_plan:6.0f}")

    best = min(plans.values(), key=lambda plan: score_plan(plan, stock, realized).unmet_demand)
    assert score_plan(best, stock, realized).unmet_demand <= no_plan
    print("\nA 2-hour-ahead forecast lets operators cover deficits before they occur.")


if __name__ == "__main__":
    main()
