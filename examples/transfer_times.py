"""Station-level transfer-time analysis — the paper's Sec. V-D proposal.

Estimates, per subway station, how long passengers take between exiting the
station and picking up a shared bike (by joining anonymized trip records),
then flags stations whose transfer time warrants a timetable reschedule,
and visualizes where bike demand concentrates.

    python examples/transfer_times.py
"""

import numpy as np

from repro.city import CityConfig, simulate_city
from repro.data import aggregate_city
from repro.transfer import estimate_transfer_times, stations_exceeding_threshold
from repro.viz import heatmap, side_by_side


def main():
    city = simulate_city(
        CityConfig(rows=8, cols=8, num_lines=3, num_commuters=1200, days=7, seed=9)
    )
    stats = estimate_transfer_times(city, min_transfers=10)

    print("per-station subway→bike transfer times (matched on anonymized user ids):\n")
    print(f"{'station':10s} {'cell':>8s} {'transfers':>10s} {'mean':>7s} {'median':>7s} {'p90':>7s}")
    for station_id, stat in sorted(stats.items()):
        station = city.subway.stations[station_id]
        print(
            f"{station.name:10s} {str(station.cell):>8s} {stat.transfers:10d} "
            f"{stat.mean_seconds / 60:6.1f}m {stat.median_seconds / 60:6.1f}m "
            f"{stat.p90_seconds / 60:6.1f}m"
        )

    threshold = 6 * 60.0
    flagged = stations_exceeding_threshold(stats, threshold)
    names = [city.subway.stations[s].name for s in flagged]
    print(f"\nstations over the {threshold / 60:.0f}-minute reschedule threshold: {names or 'none'}")

    # Where does bike demand concentrate, relative to the subway exits?
    tensor = aggregate_city(city)
    pickups = tensor[..., 0].sum(axis=0)
    exits = tensor[..., 3].sum(axis=0)
    print("\nspatial structure (totals over the whole period):\n")
    print(side_by_side(
        [heatmap(exits), heatmap(pickups)],
        ["subway exits", "bike pick-ups"],
    ))
    print(
        "\nBike pick-ups cluster around high-exit stations — the spatial half"
        "\nof the correlation BikeCAP's pyramid kernel is designed to capture."
    )


if __name__ == "__main__":
    main()
