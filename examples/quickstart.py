"""Quickstart: simulate a city, train BikeCAP, predict multi-step demand.

Runs in well under a minute on a laptop::

    python examples/quickstart.py
"""

import numpy as np

from repro.city import CityConfig
from repro.core import BikeCAP, BikeCAPConfig
from repro.data import build_dataset
from repro.metrics import mae, rmse
from repro.nn import Trainer, load_weights, save_weights


def main():
    # 1. Simulate a small multimodal city (subway upstream, bikes downstream)
    #    and aggregate trips into 15-minute grid demand tensors.
    city = CityConfig(
        rows=6,
        cols=6,
        num_lines=2,
        num_commuters=500,
        days=6,
        seed=7,
    )
    dataset = build_dataset(city, history=8, horizon=4)
    print(f"dataset: train/val/test = {dataset.split.sizes}, grid = {dataset.grid_shape}")

    # 2. Build BikeCAP: pyramid historical capsules -> spatial-temporal
    #    routing -> 3D deconvolution decoder (paper Fig. 4).
    config = BikeCAPConfig(
        grid=dataset.grid_shape,
        history=dataset.history,
        horizon=dataset.horizon,
        features=dataset.num_features,
        pyramid_size=3,
        capsule_dim=4,
        seed=0,
    )
    model = BikeCAP(config)
    print(f"model: {model.num_parameters()} parameters")

    # 3. Train with the paper's recipe: Adam(1e-3), batch 32, L1 loss.
    trainer = Trainer(model, loss="l1", lr=1e-3, batch_size=32, seed=0)
    history = trainer.fit(
        dataset.split.train_x,
        dataset.split.train_y,
        epochs=5,
        val_x=dataset.split.val_x,
        val_y=dataset.split.val_y,
        verbose=True,
    )

    # 4. Evaluate on the held-out test windows, denormalized to raw counts.
    prediction = model.predict(dataset.split.test_x)
    truth = dataset.denormalize_target(dataset.split.test_y)
    predicted = dataset.denormalize_target(prediction)
    print(f"test MAE  = {mae(truth, predicted):.3f} bikes/slot/grid")
    print(f"test RMSE = {rmse(truth, predicted):.3f} bikes/slot/grid")

    # 5. Inspect the learned spatial-temporal coupling: how strongly each
    #    historical slot contributes to each future slot at each grid.
    coupling = model.coupling_coefficients
    per_step = coupling.mean(axis=(0, 1, 3, 4))
    print("mean routing mass per future step:", np.round(per_step, 4))

    # 6. Persist and restore weights.
    save_weights(model, "/tmp/bikecap_quickstart.npz")
    clone = BikeCAP(config)
    load_weights(clone, "/tmp/bikecap_quickstart.npz")
    assert np.allclose(clone.predict(dataset.split.test_x[:4]), prediction[:4])
    print("weights round-trip OK -> /tmp/bikecap_quickstart.npz")


if __name__ == "__main__":
    main()
