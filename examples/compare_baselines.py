"""Head-to-head: BikeCAP vs a recursive and a graph baseline.

A miniature Table III: trains three representative models from the paper's
comparison on the same synthetic city and reports denormalized MAE/RMSE at
a multi-step horizon, plus the per-step error growth that reveals the
recursive model's accumulated error.

    python examples/compare_baselines.py
"""

import numpy as np

from repro.baselines import make_forecaster
from repro.city import CityConfig
from repro.data import build_dataset
from repro.metrics import evaluate_forecaster, mae_per_step


def main():
    horizon = 6
    # Robust quantile scaling keeps the hub cell's peak from crushing the
    # rest of the grid's signal (docs/REPRODUCTION_NOTES.md §1).
    dataset = build_dataset(
        CityConfig(rows=6, cols=6, num_lines=2, num_commuters=800, days=7, seed=5),
        history=8,
        horizon=horizon,
        normalization_quantile=0.99,
    )
    print(f"train/val/test windows: {dataset.split.sizes}\n")

    contenders = {
        "convLSTM": {"hidden_channels": 4, "kernel_size": 3},  # recursive
        "STSGCN": {"hidden_channels": 8},  # direct, graph
        "BikeCAP": {"pyramid_size": 3, "loss": "mse", "lr": 3e-3},  # direct, capsule
    }

    rows = []
    for name, overrides in contenders.items():
        forecaster = make_forecaster(
            name,
            dataset.history,
            horizon,
            dataset.grid_shape,
            dataset.num_features,
            seed=0,
            **overrides,
        )
        forecaster.fit(dataset, epochs=8 if name == "BikeCAP" else 4)
        metrics = evaluate_forecaster(forecaster, dataset)

        prediction = dataset.denormalize_target(forecaster.predict(dataset.split.test_x))
        truth = dataset.denormalize_target(dataset.split.test_y)
        steps = mae_per_step(truth, prediction)
        growth = steps[-1] / max(steps[0], 1e-9)
        rows.append((name, metrics["MAE"], metrics["RMSE"], steps, growth))
        print(f"trained {name}")

    print(f"\n{'model':10s} {'MAE':>7s} {'RMSE':>7s} {'step-1':>7s} {'step-' + str(horizon):>7s} {'growth':>7s}")
    for name, mae_value, rmse_value, steps, growth in rows:
        print(
            f"{name:10s} {mae_value:7.3f} {rmse_value:7.3f} "
            f"{steps[0]:7.3f} {steps[-1]:7.3f} {growth:6.2f}x"
        )
    print(
        "\n'growth' is MAE at the last step over MAE at the first step:"
        "\nrecursive models degrade with the horizon; direct multi-step"
        "\nmodels (BikeCAP, STSGCN) hold flatter — paper Table III's shape."
        "\nAt this toy scale the models stay close; the full comparison"
        "\n(where BikeCAP clearly wins long horizons) is the Table III"
        "\nexperiment: python -m repro.experiments.run_all --profile default"
    )


if __name__ == "__main__":
    main()
