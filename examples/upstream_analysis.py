"""Reproduce the paper's Fig. 1 motivation on synthetic data.

Shows, with ASCII sparklines, that (a) subway entries at a residential
station lead exits at a CBD station, (b) bike pick-ups near the CBD station
track its exits in the morning, and (c) the whole pattern reverses in the
evening — the time-specific upstream→downstream correlation BikeCAP
exploits.

    python examples/upstream_analysis.py
"""

import numpy as np

from repro.city import CityConfig, simulate_city
from repro.experiments import best_lag, run_fig1
from repro.experiments.profiles import get_profile

BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(series: np.ndarray) -> str:
    """Render a series as a unicode sparkline."""
    series = np.asarray(series, dtype=float)
    top = series.max()
    if top == 0:
        return " " * len(series)
    levels = np.minimum((series / top * (len(BLOCKS) - 1)).astype(int), len(BLOCKS) - 1)
    return "".join(BLOCKS[level] for level in levels)


def main():
    config = CityConfig(
        rows=8,
        cols=8,
        num_lines=3,
        num_commuters=1200,
        days=7,
        seed=7,
    )
    city = simulate_city(config)
    result = run_fig1(profile=get_profile("smoke"), city=city, day=1)

    station_a = city.subway.stations[result.residential_station]
    station_b = city.subway.stations[result.cbd_station]
    print(f"station A (residential): {station_a.name} at cell {station_a.cell}")
    print(f"station B (CBD):         {station_b.name} at cell {station_b.cell}\n")

    print("MORNING (06:00–12:00, one weekday, 15-min slots)")
    print(f"  entries at A : {sparkline(result.morning_entries_at_a)}")
    print(f"  exits at B   : {sparkline(result.morning_exits_at_b)}")
    print(f"  bikes near B : {sparkline(result.morning_bikes_near_b)}\n")

    print("EVENING (14:00–22:00)")
    print(f"  entries at B : {sparkline(result.evening_entries_at_b)}")
    print(f"  exits at A   : {sparkline(result.evening_exits_at_a)}")
    print(f"  bikes near A : {sparkline(result.evening_bikes_near_a)}\n")

    print("lead-lag cross-correlations (lag in 15-min slots):")
    for label, correlations in (
        ("in(A) -> out(B), morning chain", result.morning_subway_lag),
        ("out(B) -> bikes near B", result.morning_bike_lag),
        ("in(B) -> out(A), evening chain", result.evening_subway_lag),
        ("out(A) -> bikes near A", result.evening_bike_lag),
    ):
        lag = best_lag(correlations)
        print(f"  {label:32s} best lag={lag} r={correlations[lag]:.3f}")

    print(
        "\nInterpretation: upstream subway demand precedes downstream bike"
        "\ndemand by a measurable lag — which is exactly why feeding subway"
        "\ndata into a multi-step bike predictor (BikeCAP) works."
    )


if __name__ == "__main__":
    main()
