"""Gradient-boosted trees: split quality, convergence, regularization."""

import numpy as np
import pytest

from repro.boosting import GradientBoostedTrees, RegressionTree, quantile_bins


class TestQuantileBins:
    def test_few_uniques_returns_midpoints(self):
        bins = quantile_bins(np.array([1.0, 1.0, 2.0, 3.0]), max_bins=10)
        assert np.allclose(bins, [1.5, 2.5])

    def test_constant_feature_has_no_bins(self):
        assert len(quantile_bins(np.full(10, 3.0), max_bins=8)) == 0

    def test_many_uniques_capped(self, rng):
        bins = quantile_bins(rng.random(1000), max_bins=16)
        assert len(bins) <= 16


class TestRegressionTree:
    def test_fits_step_function_exactly(self):
        x = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (x[:, 0] > 0.5).astype(float) * 10.0
        # Squared loss: gradient = pred - y with pred=0, hessian = 1.
        tree = RegressionTree(max_depth=2, reg_lambda=0.0)
        tree.fit(x, gradients=-y, hessians=np.ones(len(y)))
        prediction = tree.predict(x)
        assert np.allclose(prediction, y, atol=1e-9)

    def test_depth_limit_respected(self, rng):
        x = rng.random((200, 3))
        y = rng.random(200)
        tree = RegressionTree(max_depth=3)
        tree.fit(x, -y, np.ones(200))
        assert tree.depth() <= 3

    def test_leaf_value_is_regularized_mean(self):
        # A single leaf (depth 0): w* = -G/(H+λ) = sum(y)/(n+λ).
        y = np.array([2.0, 4.0])
        tree = RegressionTree(max_depth=0, reg_lambda=1.0)
        tree.fit(np.zeros((2, 1)), -y, np.ones(2))
        assert np.allclose(tree.predict(np.zeros((1, 1))), y.sum() / 3.0)

    def test_min_child_weight_blocks_tiny_splits(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 0.0, 100.0])
        tree = RegressionTree(max_depth=3, min_child_weight=2.0)
        tree.fit(x, -y, np.ones(4))
        # The 1-sample split on the outlier is forbidden; leaves are coarser.
        assert tree.num_leaves() <= 2

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 1)))

    def test_input_validation(self):
        tree = RegressionTree()
        with pytest.raises(ValueError):
            tree.fit(np.zeros(5), np.zeros(5), np.ones(5))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((5, 1)), np.zeros(4), np.ones(5))

    def test_boundary_value_routing_consistent(self):
        """Values exactly on a threshold route the same way in fit and predict."""
        x = np.array([[0.0], [1.0], [1.0], [2.0]])
        y = np.array([0.0, 5.0, 5.0, 10.0])
        tree = RegressionTree(max_depth=2, reg_lambda=0.0)
        tree.fit(x, -y, np.ones(4))
        prediction = tree.predict(x)
        assert np.allclose(prediction, y)


class TestGradientBoostedTrees:
    def _data(self, rng, n=400):
        x = rng.random((n, 4))
        y = 3.0 * x[:, 0] - 2.0 * x[:, 1] ** 2 + 0.5 * np.sin(6 * x[:, 2])
        return x, y

    def test_beats_constant_baseline(self, rng):
        x, y = self._data(rng)
        model = GradientBoostedTrees(n_estimators=30, max_depth=3, seed=0).fit(x, y)
        residual = np.abs(model.predict(x) - y).mean()
        baseline = np.abs(y.mean() - y).mean()
        assert residual < baseline * 0.3

    def test_error_decreases_with_rounds(self, rng):
        x, y = self._data(rng)
        model = GradientBoostedTrees(n_estimators=20, max_depth=3, seed=0).fit(x, y)
        errors = [np.abs(stage - y).mean() for stage in model.staged_predict(x)]
        assert errors[-1] < errors[0]
        assert errors[-1] < errors[len(errors) // 2] + 1e-9

    def test_subsampling_still_learns(self, rng):
        x, y = self._data(rng)
        model = GradientBoostedTrees(n_estimators=40, subsample=0.5, seed=0).fit(x, y)
        assert np.abs(model.predict(x) - y).mean() < np.abs(y.mean() - y).mean() * 0.5

    def test_deterministic_given_seed(self, rng):
        x, y = self._data(rng, n=100)
        a = GradientBoostedTrees(n_estimators=5, subsample=0.7, seed=3).fit(x, y).predict(x)
        b = GradientBoostedTrees(n_estimators=5, subsample=0.7, seed=3).fit(x, y).predict(x)
        assert np.allclose(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(subsample=0.0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(n_estimators=0)
        model = GradientBoostedTrees()
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((1, 1)))
        with pytest.raises(ValueError):
            model.fit(np.zeros((3, 1)), np.zeros(4))

    def test_base_score_is_target_mean(self, rng):
        x, y = self._data(rng, n=50)
        model = GradientBoostedTrees(n_estimators=1, seed=0).fit(x, y)
        assert np.isclose(model.base_score, y.mean())
