"""Op/module profiler hooks: recording, restoration, and disabled overhead."""

import time

import numpy as np
import pytest

from repro.nn import Linear, Tensor, ops
from repro.obs import profiler
from repro.obs.tracing import Tracer


class TestOpProfiling:
    def test_records_forward_and_backward_spans(self):
        tracer = Tracer()
        with profiler.profile_ops(tracer):
            x = Tensor(np.ones((4, 4)), requires_grad=True)
            y = ops.mul(ops.add(x, 1.0), 2.0)
            y.sum().backward()
        names = {row["name"] for row in tracer.snapshot()}
        assert "op.add" in names and "op.mul" in names and "op.sum" in names
        assert "op.add.backward" in names
        assert "op.mul.backward" in names
        assert tracer.get("op.add").count == 1

    def test_restores_originals_on_exit(self):
        original_add = ops.add
        with profiler.profile_ops(Tracer()):
            assert ops.add is not original_add
            assert hasattr(ops.add, "_obs_original")
        assert ops.add is original_add
        assert not profiler.op_profiling_enabled()
        # Submodule namespaces restored too.
        from repro.nn.ops import basic

        assert basic.add is original_add

    def test_restores_on_exception(self):
        original_add = ops.add
        with pytest.raises(RuntimeError):
            with profiler.profile_ops(Tracer()):
                raise RuntimeError
        assert ops.add is original_add

    def test_profiled_results_match_unprofiled(self):
        x = np.random.default_rng(0).standard_normal((3, 5))
        plain = ops.relu(Tensor(x)).data
        with profiler.profile_ops(Tracer()):
            profiled = ops.relu(Tensor(x)).data
        assert np.allclose(plain, profiled)

    def test_nested_enable_is_idempotent(self):
        tracer = Tracer()
        with profiler.profile_ops(tracer):
            with profiler.profile_ops(tracer):
                ops.add(Tensor([1.0]), 1.0)
            # Inner exit must not strip the outer profiling session.
            assert profiler.op_profiling_enabled()
            ops.add(Tensor([1.0]), 1.0)
        assert not profiler.op_profiling_enabled()
        assert tracer.get("op.add").count == 2


class TestModuleProfiling:
    def test_per_module_forward_spans(self):
        tracer = Tracer()
        model = Linear(4, 2, rng=0)
        with profiler.profile_modules(tracer):
            model(Tensor(np.ones((3, 4))))
        stats = tracer.get("module.Linear")
        assert stats is not None and stats.count == 1

    def test_restores_module_call(self):
        from repro.nn.layers.base import Module

        original = Module.__call__
        with profiler.profile_modules(Tracer()):
            assert Module.__call__ is not original
        assert Module.__call__ is original


class TestTopOps:
    def test_top_ops_filters_and_ranks(self):
        rows = [
            {"name": "op.conv2d", "count": 1, "total_s": 1.0, "self_s": 0.9},
            {"name": "bikecap.forward", "count": 1, "total_s": 2.0, "self_s": 2.0},
            {"name": "module.Linear", "count": 1, "total_s": 0.5, "self_s": 0.4},
            {"name": "op.add", "count": 1, "total_s": 0.1, "self_s": 0.1},
        ]
        top = profiler.top_ops(rows, limit=2)
        assert [row["name"] for row in top] == ["op.conv2d", "module.Linear"]


class TestDisabledOverhead:
    def test_disabled_profiler_adds_no_measurable_overhead(self):
        """Acceptance: <5% overhead when disabled; asserted with a generous
        bound because CI timers are noisy. Disabled profiling unpatches
        everything, so the true overhead is zero."""
        x = np.ones((64, 64))

        def workload():
            t = Tensor(x)
            for _ in range(30):
                t = ops.add(t, 1.0)
            return t

        def best_of(fn, repeats=5):
            samples = []
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                samples.append(time.perf_counter() - start)
            return min(samples)

        workload()  # warm up
        baseline = best_of(workload)
        with profiler.profile_ops(Tracer()):
            workload()  # enable/disable cycle actually exercised
        after = best_of(workload)
        assert after <= baseline * 1.5 + 1e-3
