"""Request-scoped trace recording: ids, parent links, exporters.

The aggregate SpanStats behavior is covered by test_tracing.py; this file
pins the opt-in recording layer on top — span records, cross-thread
context propagation, the bounded ring, and the JSONL / Chrome-trace
exporters.
"""

import json
import threading

from repro.obs import tracing


def make_tracer(**kwargs):
    tracer = tracing.Tracer(**kwargs)
    tracer.start_recording()
    return tracer


class TestRecordingOffIsFree:
    def test_span_context_is_none_when_not_recording(self):
        tracer = tracing.Tracer()
        with tracer.span("a") as handle:
            assert handle.context is None
        assert tracer.recent() == []

    def test_start_span_returns_noop_handle(self):
        tracer = tracing.Tracer()
        handle = tracer.start_span("request")
        assert handle.context is None
        handle.end(status="error", anything="goes")  # must not raise
        assert tracer.recent() == []

    def test_aggregates_identical_with_and_without_recording(self):
        plain, recorded = tracing.Tracer(), make_tracer()
        for tracer in (plain, recorded):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        for name in ("outer", "inner"):
            left, right = plain.get(name), recorded.get(name)
            assert left.count == right.count == 1
            assert left.name == right.name

    def test_event_is_noop_when_not_recording(self):
        tracer = tracing.Tracer()
        tracer.event("marker", reason="x")
        assert tracer.recent() == []


class TestSpanRecords:
    def test_nested_spans_share_trace_and_link_parents(self):
        tracer = make_tracer()
        with tracer.span("request") as outer:
            with tracer.span("tier") as inner:
                assert inner.context.trace_id == outer.context.trace_id
        records = {record["name"]: record for record in tracer.recent()}
        assert records["tier"]["parent_id"] == records["request"]["span_id"]
        assert records["request"]["parent_id"] is None
        assert records["tier"]["trace_id"] == records["request"]["trace_id"]

    def test_sibling_roots_get_distinct_traces(self):
        tracer = make_tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        first, second = tracer.recent()
        assert first["trace_id"] != second["trace_id"]

    def test_exception_marks_status_error(self):
        tracer = make_tracer()
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        (record,) = tracer.recent()
        assert record["status"] == "error"

    def test_attributes_land_on_the_record(self):
        tracer = make_tracer()
        with tracer.span("tier", tier="BikeCAP", batch=4):
            pass
        (record,) = tracer.recent()
        assert record["attributes"] == {"tier": "BikeCAP", "batch": 4}

    def test_explicit_parent_overrides_stack(self):
        tracer = make_tracer()
        with tracer.span("request") as request:
            ctx = request.context
        with tracer.span("other"):
            with tracer.span("retry", parent=ctx):
                pass
        records = {record["name"]: record for record in tracer.recent()}
        assert records["retry"]["parent_id"] == records["request"]["span_id"]
        assert records["retry"]["trace_id"] == records["request"]["trace_id"]

    def test_event_records_zero_duration_instant(self):
        tracer = make_tracer()
        with tracer.span("request") as request:
            tracer.event("skip", parent=request.context, reason="deadline")
        instant = next(r for r in tracer.recent() if r["name"] == "skip")
        assert instant["duration_s"] == 0.0
        assert instant["attributes"] == {"reason": "deadline"}

    def test_ring_is_bounded(self):
        tracer = tracing.Tracer(ring_capacity=8)
        tracer.start_recording()
        for index in range(50):
            with tracer.span(f"s{index}"):
                pass
        records = tracer.recent()
        assert len(records) == 8
        assert records[-1]["name"] == "s49"

    def test_recent_limit_returns_newest(self):
        tracer = make_tracer()
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [r["name"] for r in tracer.recent(2)] == ["s3", "s4"]


class TestCrossThreadPropagation:
    def test_use_context_adopts_remote_position(self):
        tracer = make_tracer()
        with tracer.span("origin") as origin:
            ctx = origin.context
        done = {}

        def worker():
            with tracer.use_context(ctx):
                with tracer.span("remote"):
                    pass
            done["ok"] = True

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert done["ok"]
        records = {record["name"]: record for record in tracer.recent()}
        assert records["remote"]["parent_id"] == records["origin"]["span_id"]
        assert records["remote"]["trace_id"] == records["origin"]["trace_id"]

    def test_manual_span_started_and_ended_on_different_threads(self):
        tracer = make_tracer()
        handle = tracer.start_span("request")

        def worker():
            with tracer.span("tier", parent=handle.context):
                pass
            handle.end(tier="primary")

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        records = {record["name"]: record for record in tracer.recent()}
        assert records["tier"]["parent_id"] == records["request"]["span_id"]
        assert records["request"]["attributes"] == {"tier": "primary"}

    def test_manual_span_end_is_idempotent(self):
        tracer = make_tracer()
        handle = tracer.start_span("once")
        handle.end()
        handle.end(status="error")
        records = [r for r in tracer.recent() if r["name"] == "once"]
        assert len(records) == 1
        assert records[0]["status"] == "ok"


class TestExporters:
    def _populate(self):
        tracer = make_tracer()
        with tracer.span("request", client=1):
            with tracer.span("tier"):
                pass
            tracer.event("skip")
        return tracer

    def test_chrome_trace_nests_by_synthetic_track(self):
        tracer = self._populate()
        payload = tracing.chrome_trace(tracer.recent())
        events = payload["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(meta) == 1  # one trace -> one synthetic track
        assert {e["name"] for e in complete} == {"request", "tier"}
        assert [e["name"] for e in instants] == ["skip"]
        # All events of one trace share the synthetic tid.
        assert len({e["tid"] for e in complete + instants}) == 1
        request = next(e for e in complete if e["name"] == "request")
        tier = next(e for e in complete if e["name"] == "tier")
        # Perfetto nests by time containment on the track.
        assert request["ts"] <= tier["ts"]
        assert request["ts"] + request["dur"] >= tier["ts"] + tier["dur"]
        assert tier["args"]["parent_id"] == request["args"]["span_id"]

    def test_dump_jsonl_roundtrips(self, tmp_path):
        tracer = self._populate()
        path = tracing.dump_jsonl(str(tmp_path / "sub" / "trace.jsonl"), tracer=tracer)
        lines = [json.loads(line) for line in open(path)]
        assert [line["name"] for line in lines] == ["tier", "skip", "request"]

    def test_dump_chrome_trace_is_loadable_json(self, tmp_path):
        tracer = self._populate()
        path = tracing.dump_chrome_trace(str(tmp_path / "trace.json"), tracer=tracer)
        payload = json.load(open(path))
        assert payload["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in payload["traceEvents"])


class TestModuleLevelRecording:
    def test_global_start_stop_and_env(self, monkeypatch):
        assert not tracing.is_recording()
        monkeypatch.setenv(tracing.TRACE_ENV, "1")
        assert tracing.env_enabled()
        monkeypatch.setenv(tracing.TRACE_ENV, "0")
        assert not tracing.env_enabled()
        try:
            tracing.start_recording()
            with tracing.span("global-span"):
                pass
            assert any(r["name"] == "global-span" for r in tracing.recent())
        finally:
            tracing.stop_recording()
            tracing.reset()

    def test_capacity_env_resizes_ring(self, monkeypatch):
        monkeypatch.setenv(tracing.TRACE_CAPACITY_ENV, "3")
        try:
            tracing.start_recording()
            for index in range(10):
                with tracing.span(f"c{index}"):
                    pass
            assert len(tracing.recent()) == 3
        finally:
            # Restore the default ring size on the process-global tracer so
            # later tests that record aren't capped at 3 spans.
            tracing.get_tracer().start_recording(capacity=tracing.DEFAULT_RING_CAPACITY)
            tracing.stop_recording()
            tracing.reset()
