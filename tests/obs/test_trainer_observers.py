"""Trainer ←→ observability integration: observers, run logs, report."""

import numpy as np
import pytest

from repro.nn import Activation, Linear, Sequential, Trainer
from repro.obs import ConsoleObserver, JsonlObserver, MetricsObserver, TrainingObserver
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import render_run
from repro.obs.runlog import RunLogger, read_events


def _linear_data(n=96):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((n, 3))
    y = x @ np.array([[1.0], [-2.0], [0.5]]) + 0.3
    return x, y


class RecordingObserver(TrainingObserver):
    def __init__(self):
        self.calls = []

    def on_fit_start(self, info):
        self.calls.append(("fit_start", info))

    def on_epoch(self, info):
        self.calls.append(("epoch", info))

    def on_eval(self, info):
        self.calls.append(("eval", info))

    def on_early_stop(self, info):
        self.calls.append(("early_stop", info))

    def on_fit_end(self, info):
        self.calls.append(("fit_end", info))


class TestObserverCallbacks:
    def test_hooks_fire_in_order(self):
        x, y = _linear_data()
        observer = RecordingObserver()
        trainer = Trainer(Linear(3, 1, rng=0), loss="mse", lr=0.05, seed=0)
        trainer.fit(x[:64], y[:64], epochs=3, val_x=x[64:], val_y=y[64:], observers=[observer])
        kinds = [kind for kind, _ in observer.calls]
        assert kinds[0] == "fit_start"
        assert kinds[-1] == "fit_end"
        assert kinds.count("epoch") == 3
        assert kinds.count("eval") == 3
        start_info = observer.calls[0][1]
        assert start_info["model"] == "Linear"
        assert start_info["loss"] == "mse"
        assert start_info["seed"] == 0

    def test_early_stop_notifies_observers(self):
        x, y = _linear_data(64)
        observer = RecordingObserver()
        model = Sequential(Linear(3, 8, rng=0), Activation("tanh"), Linear(8, 1, rng=1))
        trainer = Trainer(model, loss="mse", lr=0.5, batch_size=8, seed=0)
        history = trainer.fit(
            x[:48], y[:48], epochs=60, val_x=x[48:], val_y=y[48:],
            patience=3, observers=[observer],
        )
        stops = [info for kind, info in observer.calls if kind == "early_stop"]
        assert len(stops) == 1
        assert stops[0]["best_epoch"] == history.best_epoch
        assert stops[0]["best_val_loss"] == pytest.approx(history.best_val_loss)
        assert len(history.val_loss) < 60

    def test_console_observer_prints_epoch_lines(self, capsys):
        x, y = _linear_data(32)
        trainer = Trainer(Linear(3, 1, rng=0), seed=0)
        trainer.fit(x, y, epochs=2, observers=[ConsoleObserver()])
        out = capsys.readouterr().out
        assert "epoch 1/2" in out and "epoch 2/2" in out

    def test_verbose_flag_still_prints(self, capsys):
        x, y = _linear_data(32)
        trainer = Trainer(Linear(3, 1, rng=0), seed=0)
        trainer.fit(x, y, epochs=1, verbose=True)
        assert "epoch 1/1" in capsys.readouterr().out

    def test_metrics_observer_updates_registry(self):
        x, y = _linear_data(64)
        registry = MetricsRegistry()
        trainer = Trainer(Linear(3, 1, rng=0), seed=0)
        trainer.fit(
            x[:48], y[:48], epochs=2, val_x=x[48:], val_y=y[48:],
            observers=[MetricsObserver(registry)],
        )
        snap = registry.snapshot()
        assert snap["counters"]["train_runs_total"] == 1
        assert snap["counters"]["train_epochs_total"] == 2
        assert snap["histograms"]["train_epoch_seconds"]["count"] == 2
        assert "train_last_val_loss" in snap["gauges"]


class TestRunLogIntegration:
    def test_one_epoch_event_per_epoch_with_monotonic_timestamps(self, tmp_path):
        x, y = _linear_data(48)
        path = str(tmp_path / "fit.jsonl")
        trainer = Trainer(Linear(3, 1, rng=0), seed=0)
        with RunLogger(path, seed=0):
            trainer.fit(x, y, epochs=4)
        events = read_events(path)
        epochs = [event for event in events if event["event"] == "epoch"]
        assert [event["epoch"] for event in epochs] == [1, 2, 3, 4]
        stamps = [event["ts"] for event in events]
        assert stamps == sorted(stamps)

    def test_jsonl_observer_writes_report_ready_log(self, tmp_path):
        x, y = _linear_data(64)
        path = str(tmp_path / "fit.jsonl")
        trainer = Trainer(Linear(3, 1, rng=0), loss="mse", lr=0.05, seed=0)
        trainer.fit(
            x[:48], y[:48], epochs=2, val_x=x[48:], val_y=y[48:],
            observers=[JsonlObserver(path)],
        )
        events = read_events(path)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert kinds.count("epoch") == 2
        assert events[0]["config"]["model"] == "Linear"
        assert events[0]["seed"] == 0
        # profile=True (default) embeds an op trace in run_end.
        trace = events[-1]["trace"]
        assert any(row["name"].startswith("op.") for row in trace)
        # The acceptance path: report renders epoch-loss + top-ops tables.
        text = render_run(events)
        assert "== epochs ==" in text and "== top ops by self time ==" in text
        assert "op." in text

    def test_jsonl_observer_without_profiling_has_no_trace(self, tmp_path):
        from repro.obs import profiler

        x, y = _linear_data(32)
        path = str(tmp_path / "fit.jsonl")
        trainer = Trainer(Linear(3, 1, rng=0), seed=0)
        trainer.fit(x, y, epochs=1, observers=[JsonlObserver(path, profile=False)])
        assert not profiler.op_profiling_enabled()
        events = read_events(path)
        assert "trace" not in events[-1]
