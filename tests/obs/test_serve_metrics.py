"""The live telemetry endpoint: Prometheus rendering + HTTP routes."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import tracing
from repro.obs.metrics import MetricsRegistry
from repro.obs.serve_metrics import (
    TelemetryServer,
    render_prometheus,
    start_exporter,
    telemetry_snapshot,
)


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("requests_total", tier="primary").inc(3)
    registry.gauge("queue_depth").set(2.5)
    for value in (1.0, 2.0, 3.0, 4.0):
        registry.histogram("latency_seconds").observe(value)
    return registry


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.headers, response.read().decode()


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{tier="primary"} 3' in text
        assert "# TYPE queue_depth gauge" in text
        assert "queue_depth 2.5" in text

    def test_histogram_renders_as_summary(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE latency_seconds summary" in text
        assert 'latency_seconds{quantile="0.5"} 2.5' in text
        assert "latency_seconds_sum 10" in text
        assert "latency_seconds_count 4" in text

    def test_label_values_are_prometheus_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a"b\\c').inc()
        text = render_prometheus(registry)
        assert 'path="a\\"b\\\\c"' in text

    def test_ends_with_newline(self, registry):
        assert render_prometheus(registry).endswith("\n")


class TestHttpEndpoints:
    @pytest.fixture
    def server(self, registry):
        server = start_exporter(port=0, registry=registry)
        yield server
        server.stop()

    def test_metrics_route_serves_prometheus_text(self, server):
        status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert 'requests_total{tier="primary"} 3' in body

    def test_metrics_json_route(self, server):
        status, _headers, body = _get(server.url + "/metrics.json")
        assert status == 200
        payload = json.loads(body)
        assert payload["metrics"]["gauges"]["queue_depth"] == 2.5
        assert "recording" in payload["tracing"]

    def test_traces_route_serves_recent_spans(self, server):
        tracing.start_recording()
        try:
            with tracing.span("scraped.span"):
                pass
            _status, _headers, body = _get(server.url + "/traces?limit=10")
            names = [record["name"] for record in json.loads(body)["spans"]]
            assert "scraped.span" in names
            _status, _headers, body = _get(server.url + "/trace.json")
            chrome = json.loads(body)
            assert any(e.get("name") == "scraped.span" for e in chrome["traceEvents"])
        finally:
            tracing.stop_recording()
            tracing.reset()

    def test_healthz_and_index(self, server):
        status, _headers, body = _get(server.url + "/healthz")
        assert (status, body) == (200, "ok\n")
        status, _headers, body = _get(server.url + "/")
        assert status == 200
        assert "/metrics" in body

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404

    def test_concurrent_scrapes_are_consistent(self, server):
        results = []
        lock = threading.Lock()

        def scrape():
            _status, _headers, body = _get(server.url + "/metrics")
            with lock:
                results.append(body)

        threads = [threading.Thread(target=scrape) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 8
        assert all('requests_total{tier="primary"} 3' in body for body in results)


class TestEmbedding:
    def test_context_manager_binds_and_releases(self, registry):
        with TelemetryServer(port=0, registry=registry) as server:
            port = server.port
            status, _headers, _body = _get(server.url + "/healthz")
            assert status == 200
        # Port is released after stop: a fresh bind to it must succeed.
        with TelemetryServer(port=port, registry=registry) as server:
            assert server.port == port

    def test_ensure_exporter_from_env(self, monkeypatch):
        import repro.obs.serve_metrics as sm

        monkeypatch.delenv(sm.TELEMETRY_PORT_ENV, raising=False)
        monkeypatch.setattr(sm, "_EMBEDDED", None)
        assert sm.ensure_exporter_from_env() is None
        monkeypatch.setenv(sm.TELEMETRY_PORT_ENV, "0")
        server = sm.ensure_exporter_from_env()
        try:
            assert server is not None
            # Singleton: a second call returns the same server.
            assert sm.ensure_exporter_from_env() is server
            status, _headers, _body = _get(server.url + "/healthz")
            assert status == 200
        finally:
            server.stop()
            monkeypatch.setattr(sm, "_EMBEDDED", None)

    def test_snapshot_helper_shape(self):
        payload = telemetry_snapshot()
        assert set(payload) == {"metrics", "tracing"}
