"""Histogram memory bounds and label-key hygiene (regression tests)."""

import pytest

from repro.obs.metrics import (
    DEFAULT_HISTOGRAM_CAP,
    Histogram,
    MetricsRegistry,
    escape_label_value,
)


class TestHistogramReservoir:
    def test_default_cap(self):
        assert Histogram("h").max_observations == DEFAULT_HISTOGRAM_CAP

    def test_below_cap_percentiles_are_exact(self):
        histogram = Histogram("h", max_observations=100)
        for value in range(100):
            histogram.observe(float(value))
        assert not histogram.sampled
        assert histogram.percentile(0) == 0.0
        assert histogram.percentile(50) == pytest.approx(49.5)
        assert histogram.percentile(100) == 99.0
        assert "sampled" not in histogram.summary()

    def test_memory_is_bounded_past_cap(self):
        histogram = Histogram("h", max_observations=64)
        for value in range(10_000):
            histogram.observe(float(value))
        assert len(histogram.values) == 64
        assert histogram.sampled

    def test_exact_aggregates_survive_sampling(self):
        histogram = Histogram("h", max_observations=32)
        for value in range(1000):
            histogram.observe(float(value))
        assert histogram.count == 1000
        assert histogram.sum == pytest.approx(sum(range(1000)))
        summary = histogram.summary()
        assert summary["min"] == 0.0
        assert summary["max"] == 999.0
        assert summary["mean"] == pytest.approx(499.5)
        assert summary["sampled"] is True

    def test_sampled_percentiles_are_reasonable_estimates(self):
        histogram = Histogram("h", max_observations=512)
        for value in range(20_000):
            histogram.observe(float(value))
        # Uniform stream: the sampled median should sit near the true one.
        assert histogram.percentile(50) == pytest.approx(10_000, rel=0.25)
        # Endpoints stay exact even when sampled.
        assert histogram.percentile(0) == 0.0
        assert histogram.percentile(100) == 19_999.0

    def test_sampling_is_deterministic_per_name(self):
        def run(name):
            histogram = Histogram(name, max_observations=16)
            for value in range(500):
                histogram.observe(float(value))
            return list(histogram.values)

        assert run("same") == run("same")

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", max_observations=0)


class TestLabelEscaping:
    def test_adversarial_values_do_not_collide(self):
        registry = MetricsRegistry()
        # Without escaping these two flatten to the same key.
        first = registry.counter("c", a="x,b=y")
        second = registry.counter("c", a="x", b="y")
        first.inc(1)
        second.inc(10)
        snapshot = registry.snapshot()["counters"]
        assert len(snapshot) == 2
        assert sorted(snapshot.values()) == [1.0, 10.0]

    def test_braces_and_backslashes_escape(self):
        assert escape_label_value("a{b}") == "a\\{b\\}"
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("plain") == "plain"

    def test_newline_escapes(self):
        registry = MetricsRegistry()
        registry.gauge("g", note="line1\nline2").set(1.0)
        (key,) = registry.snapshot()["gauges"]
        assert "\n" not in key

    def test_invalid_label_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="label name"):
            registry.counter("c", **{"bad-name": "x"})

    def test_instruments_keep_structured_labels(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", service="a,b=c")
        assert gauge.base_name == "g"
        assert gauge.labels == {"service": "a,b=c"}
        (row,) = registry.export_rows()
        assert row["labels"] == {"service": "a,b=c"}
