"""Span nesting, self-time accounting, and exception safety."""

import time

import pytest

from repro.obs.tracing import Tracer


class TestSpans:
    def test_single_span_records_count_and_time(self):
        tracer = Tracer()
        with tracer.span("work"):
            time.sleep(0.01)
        stats = tracer.get("work")
        assert stats.count == 1
        assert stats.total_s >= 0.01
        assert stats.self_s == pytest.approx(stats.total_s)

    def test_nested_span_subtracts_child_from_parent_self(self):
        tracer = Tracer()
        with tracer.span("parent"):
            time.sleep(0.005)
            with tracer.span("child"):
                time.sleep(0.02)
        parent = tracer.get("parent")
        child = tracer.get("child")
        assert parent.total_s >= child.total_s
        assert parent.self_s == pytest.approx(parent.total_s - child.total_s)
        assert parent.self_s < child.self_s  # child did most of the work

    def test_sibling_spans_both_subtract(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        parent = tracer.get("parent")
        expected = parent.total_s - tracer.get("a").total_s - tracer.get("b").total_s
        assert parent.self_s == pytest.approx(expected, abs=1e-6)

    def test_recursive_same_name_accumulates(self):
        tracer = Tracer()
        with tracer.span("f"):
            with tracer.span("f"):
                pass
        assert tracer.get("f").count == 2

    def test_span_records_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("risky"):
                raise RuntimeError("boom")
        assert tracer.get("risky").count == 1
        assert tracer.depth() == 0  # stack unwound cleanly

    def test_nested_exception_unwinds_all_levels(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError
        assert tracer.get("outer").count == 1
        assert tracer.get("inner").count == 1
        assert tracer.depth() == 0

    def test_snapshot_sorted_by_self_time_and_prefix_filter(self):
        tracer = Tracer()
        with tracer.span("op.slow"):
            time.sleep(0.02)
        with tracer.span("op.fast"):
            pass
        with tracer.span("module.Linear"):
            pass
        rows = tracer.snapshot()
        assert rows[0]["name"] == "op.slow"
        ops_only = tracer.snapshot(prefix="op.")
        assert {row["name"] for row in ops_only} == {"op.slow", "op.fast"}

    def test_reset_clears_aggregates(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.snapshot() == []

    def test_default_tracer_module_api(self):
        from repro.obs import tracing

        tracing.reset()
        try:
            with tracing.span("module_api"):
                pass
            assert any(row["name"] == "module_api" for row in tracing.snapshot())
        finally:
            tracing.reset()
