"""Metrics registry: counters, gauges, histogram percentile math, labels."""

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry, get_registry


class TestInstruments:
    def test_counter_increments_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue_depth")
        gauge.set(3)
        gauge.add(-1.5)
        assert gauge.value == 1.5

    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a", x=1) is registry.counter("a", x=1)
        assert registry.counter("a", x=1) is not registry.counter("a", x=2)

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        assert registry.gauge("g", a=1, b=2) is registry.gauge("g", b=2, a=1)


class TestHistogramPercentiles:
    def test_exact_percentiles_on_known_data(self):
        hist = Histogram("h")
        for value in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
            hist.observe(value)
        assert hist.percentile(0) == 1
        assert hist.percentile(100) == 10
        assert hist.percentile(50) == pytest.approx(5.5)
        # rank = 0.9 * 9 = 8.1 → 9 + 0.1 * (10 - 9)
        assert hist.percentile(90) == pytest.approx(9.1)

    def test_single_observation(self):
        hist = Histogram("h")
        hist.observe(42.0)
        for q in (0, 50, 99, 100):
            assert hist.percentile(q) == 42.0

    def test_empty_histogram_is_nan(self):
        import math

        assert math.isnan(Histogram("h").percentile(50))

    def test_out_of_range_percentile_raises(self):
        hist = Histogram("h")
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_summary_fields(self):
        hist = Histogram("h")
        for value in (2.0, 4.0, 6.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(12.0)
        assert summary["mean"] == pytest.approx(4.0)
        assert summary["min"] == 2.0 and summary["max"] == 6.0
        assert summary["p50"] == pytest.approx(4.0)


class TestRegistrySnapshot:
    def test_snapshot_and_reset_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("c", kind="x").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"c{kind=x}": 2}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1
        registry.reset()
        empty = registry.snapshot()
        assert empty == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_snapshot_is_json_serializable(self):
        import json

        registry = MetricsRegistry()
        registry.histogram("h", op="conv").observe(0.5)
        json.dumps(registry.snapshot())

    def test_default_registry_is_shared(self):
        from repro.obs import metrics

        metrics.counter("shared_test_counter").inc()
        try:
            assert get_registry().counter("shared_test_counter").value >= 1
        finally:
            get_registry().reset()
