"""JSONL run logs: write → read round trip, dispatch, and the report CLI."""

import json

import pytest

from repro.obs import runlog
from repro.obs.report import event_counts, main as report_main, render_run, summarize_run
from repro.obs.runlog import RunLogger, read_events


class TestRunLogger:
    def test_roundtrip_start_events_end(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        logger = RunLogger(path, seed=7, config={"model": "BikeCAP", "epochs": 2})
        with logger:
            logger.event("epoch", epoch=1, train_loss=0.5)
            logger.event("epoch", epoch=2, train_loss=0.25)
        events = read_events(path)
        assert [event["event"] for event in events] == [
            "run_start",
            "epoch",
            "epoch",
            "run_end",
        ]
        assert events[0]["seed"] == 7
        assert events[0]["config"]["model"] == "BikeCAP"
        assert events[-1]["status"] == "ok"

    def test_timestamps_are_monotonic(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunLogger(path) as logger:
            for i in range(5):
                logger.event("tick", i=i)
        stamps = [event["ts"] for event in read_events(path)]
        assert stamps == sorted(stamps)
        assert stamps[0] == 0.0

    def test_exception_marks_run_end_error(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with pytest.raises(RuntimeError):
            with RunLogger(path):
                raise RuntimeError("boom")
        events = read_events(path)
        assert events[-1]["event"] == "run_end"
        assert events[-1]["status"] == "error"

    def test_module_emit_reaches_open_loggers_only(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        assert not runlog.active()
        runlog.emit("ignored")  # no-op when nothing is open
        with RunLogger(path):
            assert runlog.active()
            runlog.emit("routing_iter", iteration=1, agreement_mean=0.5)
        assert not runlog.active()
        events = read_events(path)
        assert [event["event"] for event in events] == [
            "run_start",
            "routing_iter",
            "run_end",
        ]

    def test_non_serializable_config_falls_back_to_str(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunLogger(path, config={"dtype": complex(1, 2)}):
            pass
        assert "1+2j" in read_events(path)[0]["config"]["dtype"]

    def test_start_run_respects_disable_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(runlog.RUNLOG_ENV, "0")
        assert runlog.start_run("x") is None
        monkeypatch.delenv(runlog.RUNLOG_ENV)
        monkeypatch.setenv(runlog.RUNLOG_DIR_ENV, str(tmp_path / "runs"))
        logger = runlog.start_run("table3-BikeCAP", seed=0, config={"a": 1})
        assert logger is not None
        logger.close()
        assert logger.path.startswith(str(tmp_path / "runs"))
        assert read_events(logger.path)[0]["seed"] == 0


class TestReportCli:
    def _write_run(self, path):
        with RunLogger(str(path), seed=3, config={"model": "Linear"}) as logger:
            logger.event("epoch", epoch=1, epochs=2, train_loss=0.9, val_loss=0.8, seconds=0.1)
            logger.event("epoch", epoch=2, epochs=2, train_loss=0.4, val_loss=0.5, seconds=0.1)
            logger.event("eval", split="test", MAE=1.25, RMSE=2.5)
            logger.event(
                "run_end",
                status="ok",
                trace=[
                    {"name": "op.conv2d", "count": 4, "total_s": 0.2, "self_s": 0.15},
                    {"name": "op.add", "count": 9, "total_s": 0.01, "self_s": 0.01},
                ],
            )

    def test_render_run_contains_epoch_and_ops_tables(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self._write_run(path)
        text = render_run(read_events(str(path)))
        assert "== epochs ==" in text
        assert "train_loss" in text and "0.9000" in text
        assert "== top ops by self time ==" in text
        assert "op.conv2d" in text
        # conv2d before add (ranked by self time)
        assert text.index("op.conv2d") < text.index("op.add")

    def test_cli_main_prints_report(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        self._write_run(path)
        assert report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "epoch" in out and "op.conv2d" in out

    def test_cli_bad_paths_fail_cleanly(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text("not json\n")
        assert report_main([missing]) == 1
        assert report_main([str(garbage)]) == 1
        err = capsys.readouterr().err
        assert "cannot read" in err and "not a JSONL run log" in err

    def test_report_without_trace_says_so(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        with RunLogger(str(path)) as logger:
            logger.event("epoch", epoch=1, epochs=1, train_loss=1.0, seconds=0.1)
        report_main([str(path)])
        assert "no op trace recorded" in capsys.readouterr().out


class TestServeStyleRuns:
    """Logs with zero epoch events (serve bench, monitors) must still render."""

    def _write_serve_run(self, path):
        with RunLogger(str(path), seed=11, config={"bench": "serve"}) as logger:
            for _ in range(3):
                logger.event("request", tier="Primary")
            logger.event(
                "drift_detected",
                service="serve-bench",
                detector="ewma",
                score=1.5,
                baseline=1.0,
            )
            logger.event("slo_burn", service="serve-bench", breaches=["degraded"])

    def test_zero_epoch_log_lists_event_counts(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        self._write_serve_run(path)
        text = render_run(read_events(str(path)))
        assert "== events (no epoch events) ==" in text
        assert "request  x3" in text
        assert "drift_detected  x1" in text

    def test_drift_and_slo_events_get_detail_lines(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        self._write_serve_run(path)
        text = render_run(read_events(str(path)))
        assert 'drift_detected: {"service": "serve-bench"' in text
        assert "slo_burn:" in text and "degraded" in text

    def test_empty_log_renders_without_crashing(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        with RunLogger(str(path)):
            pass
        text = render_run(read_events(str(path)))
        assert "(no events)" in text

    def test_event_counts_excludes_lifecycle(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        self._write_serve_run(path)
        counts = event_counts(read_events(str(path)))
        assert counts == {"drift_detected": 1, "request": 3, "slo_burn": 1}

    def test_summarize_run_digest(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        self._write_serve_run(path)
        digest = summarize_run(read_events(str(path)))
        assert digest["seed"] == 11
        assert digest["status"] == "ok"
        assert digest["epochs"] == []
        assert [alert["event"] for alert in digest["alerts"]] == [
            "drift_detected",
            "slo_burn",
        ]

    def test_cli_json_format_single_path(self, tmp_path, capsys):
        path = tmp_path / "serve.jsonl"
        self._write_serve_run(path)
        assert report_main([str(path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["path"] == str(path)
        assert payload["events"]["request"] == 3

    def test_cli_json_format_many_paths(self, tmp_path, capsys):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        self._write_serve_run(first)
        self._write_serve_run(second)
        assert report_main([str(first), str(second), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["path"] for entry in payload] == [str(first), str(second)]
