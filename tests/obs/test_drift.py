"""The drift/SLO leaf: deterministic detectors, exact firing semantics."""

import math

import pytest

from repro.obs.drift import (
    DriftDetector,
    Ewma,
    PageHinkley,
    SloSpec,
    SloTracker,
)


class TestEwma:
    def test_first_sample_seeds_value(self):
        ewma = Ewma(alpha=0.5)
        assert ewma.value is None
        assert ewma.update(4.0) == 4.0

    def test_smoothing_math(self):
        ewma = Ewma(alpha=0.5)
        ewma.update(0.0)
        assert ewma.update(2.0) == pytest.approx(1.0)
        assert ewma.update(2.0) == pytest.approx(1.5)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)
        with pytest.raises(ValueError):
            Ewma(alpha=1.5)


class TestPageHinkley:
    def test_stable_stream_never_fires(self):
        ph = PageHinkley(delta=0.01, threshold=1.0, min_samples=5)
        assert not any(ph.update(1.0) for _ in range(100))

    def test_upward_shift_fires(self):
        ph = PageHinkley(delta=0.01, threshold=1.0, min_samples=5)
        for _ in range(20):
            ph.update(1.0)
        fired = [ph.update(3.0) for _ in range(20)]
        assert any(fired)

    def test_min_samples_suppresses_early_fire(self):
        ph = PageHinkley(delta=0.0, threshold=0.001, min_samples=50)
        assert not any(ph.update(value) for value in [0.0, 100.0, 100.0])


class TestDriftDetector:
    def _run(self, detector, stream):
        return [detector.update(value) for value in stream]

    def test_warmup_never_fires(self):
        detector = DriftDetector(warmup=8)
        reports = self._run(detector, [1.0, 50.0, 1.0, 80.0, 1.0, 2.0, 1.0, 1.0])
        assert not any(report.drifted for report in reports)
        assert all(report.score == 0.0 for report in reports)

    def test_sustained_shift_fires_exactly_once(self):
        detector = DriftDetector(warmup=8)
        stream = [1.0] * 24 + [3.0] * 40
        reports = self._run(detector, stream)
        assert sum(report.drifted for report in reports) == 1
        assert len(detector.detections) == 1
        fired = next(report for report in reports if report.drifted)
        assert fired.detector in ("ewma", "page_hinkley")
        assert fired.baseline == pytest.approx(1.0)

    def test_stable_stream_never_fires(self):
        detector = DriftDetector(warmup=8)
        reports = self._run(detector, [2.0] * 200)
        assert not any(report.drifted for report in reports)

    def test_rearms_and_detects_a_second_shift(self):
        detector = DriftDetector(warmup=8)
        stream = [1.0] * 24 + [3.0] * 40 + [9.0] * 40
        self._run(detector, stream)
        assert len(detector.detections) == 2
        # The second detection re-baselined on the post-first-shift level.
        assert detector.detections[1]["baseline"] == pytest.approx(3.0)

    def test_rejects_non_finite_errors(self):
        detector = DriftDetector()
        with pytest.raises(ValueError):
            detector.update(float("nan"))
        with pytest.raises(ValueError):
            detector.update(math.inf)

    def test_score_is_fractional_ewma_inflation(self):
        detector = DriftDetector(warmup=2, ewma_alpha=1.0, score_threshold=10.0)
        detector.update(1.0)
        detector.update(1.0)
        report = detector.update(1.5)
        assert report.score == pytest.approx(0.5)


class TestSloTracker:
    def test_below_min_samples_returns_none(self):
        tracker = SloTracker(SloSpec(min_samples=5))
        for _ in range(4):
            tracker.observe(0.01)
        assert tracker.status() is None

    def test_healthy_window_has_no_breaches(self):
        tracker = SloTracker(SloSpec(p99_latency_seconds=1.0, min_samples=5))
        for _ in range(10):
            tracker.observe(0.01)
        status = tracker.status()
        assert status.breaches == []
        assert status.latency_burn == pytest.approx(0.01)

    def test_breaches_and_burn_rates(self):
        spec = SloSpec(
            p99_latency_seconds=0.1,
            deadline_miss_budget=0.1,
            degraded_budget=0.1,
            min_samples=5,
        )
        tracker = SloTracker(spec)
        for _ in range(10):
            tracker.observe(0.5, deadline_missed=True, degraded=True)
        status = tracker.status()
        assert set(status.breaches) == {"p99_latency", "deadline_miss", "degraded"}
        assert status.deadline_miss_burn == pytest.approx(10.0)
        assert status.degraded_burn == pytest.approx(10.0)
        assert status.latency_burn == pytest.approx(5.0)

    def test_window_is_rolling(self):
        tracker = SloTracker(SloSpec(window=10, degraded_budget=0.5, min_samples=5))
        for _ in range(10):
            tracker.observe(0.01, degraded=True)
        for _ in range(10):
            tracker.observe(0.01, degraded=False)
        status = tracker.status()
        assert status.degraded_fraction == 0.0
        assert tracker.total == 20

    def test_status_as_dict_is_json_shaped(self):
        tracker = SloTracker(SloSpec(min_samples=1))
        tracker.observe(0.01)
        payload = tracker.status().as_dict()
        assert payload["samples"] == 1
        assert isinstance(payload["breaches"], list)
