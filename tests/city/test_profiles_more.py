"""Demand-profile edge cases and distributional sanity."""

import numpy as np
import pytest

from repro.city import CommutePeaks, background_rate, sample_background_times
from repro.city.profiles import SECONDS_PER_DAY, SECONDS_PER_HOUR


class TestCommutePeaks:
    def test_morning_samples_centered(self, rng):
        peaks = CommutePeaks()
        times = peaks.sample_morning(rng, 5000) / SECONDS_PER_HOUR
        assert abs(times.mean() - peaks.morning_mean_hour) < 0.1
        assert abs(times.std() - peaks.morning_std_hour) < 0.1

    def test_evening_after_morning(self, rng):
        peaks = CommutePeaks()
        morning = peaks.sample_morning(rng, 1000)
        evening = peaks.sample_evening(rng, 1000)
        assert morning.mean() < evening.mean()

    def test_samples_clipped_to_sane_windows(self, rng):
        wild = CommutePeaks(morning_mean_hour=8.0, morning_std_hour=10.0)
        times = wild.sample_morning(rng, 2000) / SECONDS_PER_HOUR
        assert times.min() >= 4.5
        assert times.max() <= 12.0

    def test_custom_peaks(self, rng):
        late = CommutePeaks(morning_mean_hour=10.0, morning_std_hour=0.1)
        times = late.sample_morning(rng, 500) / SECONDS_PER_HOUR
        assert 9.5 < times.mean() < 10.5

    def test_zero_samples(self, rng):
        assert len(CommutePeaks().sample_morning(rng, 0)) == 0


class TestBackgroundRate:
    def test_bounded_in_unit_interval(self):
        hours = np.linspace(0, 24, 200) * SECONDS_PER_HOUR
        rates = background_rate(hours)
        assert rates.min() >= 0.0
        assert rates.max() <= 1.0

    def test_never_exactly_zero(self):
        rates = background_rate(np.linspace(0, 24, 200) * SECONDS_PER_HOUR)
        assert rates.min() > 0.0

    def test_scalar_input(self):
        assert background_rate(np.array(13 * 3600.0)) > 0.5


class TestSampleBackgroundTimes:
    def test_sorted_output(self, rng):
        times = sample_background_times(rng, 300, day=0)
        assert np.all(np.diff(times) >= 0)

    def test_respects_rate_shape(self, rng):
        times = sample_background_times(rng, 5000, day=0)
        hours = (times % SECONDS_PER_DAY) / 3600.0
        midday = ((hours >= 11) & (hours < 15)).mean()
        overnight = ((hours >= 1) & (hours < 5)).mean()
        assert midday > overnight * 3

    def test_exact_count(self, rng):
        for count in (1, 7, 123):
            assert len(sample_background_times(rng, count, day=1)) == count
