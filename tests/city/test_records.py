"""Trip-record formats (paper Tables I and II)."""

import numpy as np
import pytest

from repro.city import (
    BOARDING,
    DISEMBARKING,
    DROP_OFF,
    PICK_UP,
    BikeRecordBatch,
    SubwayRecordBatch,
    format_time,
)


class TestFormatTime:
    def test_epoch_is_dataset_start(self):
        assert format_time(0) == "2018-10-01 00:00:00"

    def test_formats_like_paper_table(self):
        # Table I example: 2018-10-01 21:32:12.
        seconds = 21 * 3600 + 32 * 60 + 12
        assert format_time(seconds) == "2018-10-01 21:32:12"

    def test_rolls_over_days(self):
        assert format_time(86400 + 3600) == "2018-10-02 01:00:00"


class TestSubwayBatch:
    def _batch(self):
        return SubwayRecordBatch(
            times=np.array([30.0, 10.0]),
            station_ids=np.array([1, 0]),
            lines=np.array([0, 0]),
            boarding=np.array([False, True]),
            user_ids=np.array([7, 7]),
        )

    def test_length_and_validation(self):
        assert len(self._batch()) == 2
        with pytest.raises(ValueError):
            SubwayRecordBatch(
                np.zeros(2), np.zeros(3, int), np.zeros(2, int), np.zeros(2, bool), np.zeros(2, int)
            )

    def test_sorted_by_time(self):
        ordered = self._batch().sorted_by_time()
        assert ordered.times.tolist() == [10.0, 30.0]
        assert ordered.boarding.tolist() == [True, False]

    def test_to_records_matches_table1_fields(self):
        record = next(self._batch().to_records(["Guomao Station", "Window of the World"]))
        assert record.szt_id == 7
        assert record.status in (BOARDING, DISEMBARKING)
        assert record.transportation == "Subway Line No.1"
        assert record.station_name == "Window of the World"
        assert record.time.startswith("2018-10-01")

    def test_concatenate(self):
        merged = SubwayRecordBatch.concatenate([self._batch(), self._batch()])
        assert len(merged) == 4

    def test_concatenate_empty_list(self):
        assert len(SubwayRecordBatch.concatenate([])) == 0


class TestBikeBatch:
    def _batch(self):
        return BikeRecordBatch(
            times=np.array([100.0, 200.0]),
            latitudes=np.array([22.5, 22.6]),
            longitudes=np.array([114.0, 114.1]),
            pickup=np.array([True, False]),
            user_ids=np.array([3, 3]),
            bike_ids=np.array([42, 42]),
        )

    def test_to_records_matches_table2_fields(self):
        records = list(self._batch().to_records())
        assert records[0].status == PICK_UP
        assert records[1].status == DROP_OFF
        assert records[0].bike_id == 42
        assert records[0].location == (22.5, 114.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BikeRecordBatch(
                np.zeros(2), np.zeros(2), np.zeros(1), np.zeros(2, bool), np.zeros(2, int), np.zeros(2, int)
            )

    def test_sorted_and_concatenate(self):
        merged = BikeRecordBatch.concatenate([self._batch(), self._batch()]).sorted_by_time()
        assert len(merged) == 4
        assert np.all(np.diff(merged.times) >= 0)
