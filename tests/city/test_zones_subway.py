"""Zone layout and subway network generation."""

import networkx as nx
import numpy as np
import pytest

from repro.city import GridPartition, generate_subway, generate_zones


@pytest.fixture(scope="module")
def grid():
    return GridPartition(8, 10, cell_meters=400.0)


@pytest.fixture(scope="module")
def zones(grid):
    return generate_zones(grid, np.random.default_rng(3))


@pytest.fixture(scope="module")
def subway(grid):
    return generate_subway(grid, num_lines=3, rng=np.random.default_rng(3))


class TestZones:
    def test_weights_are_distributions(self, zones):
        assert np.isclose(zones.population.sum(), 1.0)
        assert np.isclose(zones.jobs.sum(), 1.0)
        assert np.all(zones.population > 0)
        assert np.all(zones.jobs > 0)

    def test_cbd_east_residential_west(self, zones, grid):
        """Job mass concentrates east, population west (commute corridors)."""
        _, cbd_col = zones.dominant_cbd_cell()
        _, home_col = zones.dominant_residential_cell()
        assert cbd_col > grid.cols / 2
        assert home_col < grid.cols / 2

    def test_labels_cover_grid(self, zones, grid):
        assert zones.labels.shape == grid.shape
        assert {"cbd", "residential"} <= set(zones.labels.ravel())

    def test_dominant_cells_have_matching_labels(self, zones):
        assert zones.label_of(*zones.dominant_cbd_cell()) == "cbd"
        assert zones.label_of(*zones.dominant_residential_cell()) == "residential"

    def test_rejects_zero_clusters(self, grid):
        with pytest.raises(ValueError):
            generate_zones(grid, np.random.default_rng(0), num_cbd_clusters=0)


class TestSubway:
    def test_station_cells_inside_grid(self, subway, grid):
        for station in subway.stations:
            assert 0 <= station.row < grid.rows
            assert 0 <= station.col < grid.cols

    def test_lines_span_west_to_east(self, subway, grid):
        for line_stations in subway.lines.values():
            cols = [subway.stations[s].col for s in line_stations]
            assert cols[0] == 0
            assert cols[-1] == grid.cols - 1

    def test_graph_is_connected(self, subway):
        assert nx.is_connected(subway.graph)

    def test_travel_time_positive_and_symmetric(self, subway):
        a, b = 0, subway.num_stations - 1
        forward = subway.travel_minutes(a, b)
        backward = subway.travel_minutes(b, a)
        assert forward > 0
        assert np.isclose(forward, backward)

    def test_travel_time_to_self_is_zero(self, subway):
        assert subway.travel_minutes(2, 2) == 0.0

    def test_travel_cache_consistent(self, subway):
        first = subway.travel_minutes(0, 3)
        second = subway.travel_minutes(0, 3)
        assert first == second

    def test_nearest_station(self, subway):
        station = subway.stations[0]
        assert subway.nearest_station(station.cell) in subway.stations_in_cell(station.cell) or (
            subway.nearest_station_distance_cells(station.cell) == 0.0
        )

    def test_nearest_station_distance_monotone(self, subway, grid):
        station = subway.stations[0]
        at_station = subway.nearest_station_distance_cells(station.cell)
        assert at_station == 0.0

    def test_station_names_encode_line(self, subway):
        for line, station_ids in subway.lines.items():
            for station_id in station_ids:
                assert subway.stations[station_id].name.startswith(f"L{line + 1}-")

    def test_rejects_zero_lines(self, grid):
        with pytest.raises(ValueError):
            generate_subway(grid, num_lines=0)

    def test_seeded_generation_is_deterministic(self, grid):
        a = generate_subway(grid, num_lines=2, rng=np.random.default_rng(5))
        b = generate_subway(grid, num_lines=2, rng=np.random.default_rng(5))
        assert [s.cell for s in a.stations] == [s.cell for s in b.stations]
