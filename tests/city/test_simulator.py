"""The synthetic city simulator: structural invariants of generated trips."""

import numpy as np
import pytest

from repro.city import CityConfig, CitySimulator, is_weekend, simulate_city
from repro.city.profiles import SECONDS_PER_DAY, background_rate, sample_background_times


class TestConfigValidation:
    def test_rejects_zero_days(self):
        with pytest.raises(ValueError):
            CityConfig(days=0)

    def test_rejects_zero_commuters(self):
        with pytest.raises(ValueError):
            CityConfig(num_commuters=0)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            CityConfig(last_mile_bike_probability=1.5)


class TestProfiles:
    def test_weekend_calendar_starts_monday(self):
        # 2018-10-01 was a Monday: days 5 and 6 are the first weekend.
        assert [is_weekend(d) for d in range(7)] == [False] * 5 + [True, True]

    def test_background_rate_quiet_overnight_busy_midday(self):
        overnight = background_rate(np.array([3 * 3600.0]))
        midday = background_rate(np.array([13 * 3600.0]))
        assert midday > overnight * 5

    def test_sample_background_times_within_day(self, rng):
        times = sample_background_times(rng, 200, day=2)
        assert np.all(times >= 2 * SECONDS_PER_DAY)
        assert np.all(times < 3 * SECONDS_PER_DAY)
        assert len(times) == 200


class TestSimulation:
    @pytest.fixture(scope="class")
    def city(self):
        return simulate_city(
            CityConfig(
                rows=6,
                cols=6,
                num_lines=2,
                num_commuters=250,
                days=7,
                background_subway_per_day=80,
                background_bike_per_day=60,
                seed=13,
            )
        )

    def test_records_sorted_by_time(self, city):
        assert np.all(np.diff(city.subway_records.times) >= 0)
        assert np.all(np.diff(city.bike_records.times) >= 0)

    def test_times_within_simulated_period(self, city):
        assert city.subway_records.times.min() >= 0
        assert city.subway_records.times.max() <= city.duration_seconds * 1.05
        assert city.bike_records.times.min() >= 0

    def test_boardings_balance_alightings(self, city):
        boarding = int(city.subway_records.boarding.sum())
        alighting = int((~city.subway_records.boarding).sum())
        assert boarding == alighting

    def test_pickups_balance_dropoffs(self, city):
        pickups = int(city.bike_records.pickup.sum())
        drops = int((~city.bike_records.pickup).sum())
        assert pickups == drops

    def test_bike_gps_within_city(self, city):
        x, y = city.grid.from_gps(city.bike_records.latitudes, city.bike_records.longitudes)
        assert np.all(x >= 0) and np.all(x <= city.grid.width_meters)
        assert np.all(y >= 0) and np.all(y <= city.grid.height_meters)

    def test_station_ids_valid(self, city):
        assert city.subway_records.station_ids.min() >= 0
        assert city.subway_records.station_ids.max() < city.subway.num_stations

    def test_weekday_has_rush_hour_structure(self, city):
        """Weekday subway boardings peak in the morning rush window."""
        times = city.subway_records.times[city.subway_records.boarding]
        day1 = times[(times >= SECONDS_PER_DAY) & (times < 2 * SECONDS_PER_DAY)] - SECONDS_PER_DAY
        hours = day1 / 3600.0
        rush = ((hours >= 7) & (hours < 10)).mean()
        lull = ((hours >= 1) & (hours < 4)).mean()
        assert rush > 5 * max(lull, 1e-6)

    def test_weekend_quieter_than_weekday(self, city):
        times = city.subway_records.times
        per_day = [
            int(((times >= d * SECONDS_PER_DAY) & (times < (d + 1) * SECONDS_PER_DAY)).sum())
            for d in range(7)
        ]
        weekday_mean = np.mean(per_day[:5])
        weekend_mean = np.mean(per_day[5:])
        assert weekend_mean < weekday_mean

    def test_seed_determinism(self):
        config = CityConfig(rows=5, cols=5, num_lines=2, num_commuters=100, days=3, seed=99)
        a = simulate_city(config)
        b = simulate_city(config)
        assert np.array_equal(a.subway_records.times, b.subway_records.times)
        assert np.array_equal(a.bike_records.latitudes, b.bike_records.latitudes)

    def test_station_names_property(self, city):
        names = city.station_names
        assert len(names) == city.subway.num_stations
        assert all(name.startswith("L") for name in names)

    def test_commuter_last_mile_follows_subway_exit(self, city):
        """Per-user: the first bike pickup of a day must come after the
        user's first subway alighting that day (transfer causality)."""
        subway = city.subway_records
        bikes = city.bike_records
        commuter_ids = set(range(city.config.num_commuters))
        checked = 0
        for user in list(commuter_ids)[:50]:
            user_alight = subway.times[(subway.user_ids == user) & (~subway.boarding)]
            user_pick = bikes.times[(bikes.user_ids == user) & bikes.pickup]
            if len(user_alight) == 0 or len(user_pick) == 0:
                continue
            day = int(user_pick[0] // SECONDS_PER_DAY)
            day_alights = user_alight[
                (user_alight >= day * SECONDS_PER_DAY) & (user_alight < (day + 1) * SECONDS_PER_DAY)
            ]
            if len(day_alights) == 0:
                continue
            assert user_pick[0] > day_alights.min()
            checked += 1
        assert checked > 0
