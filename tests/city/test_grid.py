"""Grid partition: planar and GPS round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.city import GridPartition


class TestConstruction:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            GridPartition(0, 5)
        with pytest.raises(ValueError):
            GridPartition(5, 5, cell_meters=0)

    def test_derived_properties(self):
        grid = GridPartition(4, 6, cell_meters=250.0)
        assert grid.shape == (4, 6)
        assert grid.num_cells == 24
        assert grid.width_meters == 1500.0
        assert grid.height_meters == 1000.0


class TestCellMapping:
    def test_center_round_trips(self):
        grid = GridPartition(5, 5, cell_meters=100.0)
        for row in range(5):
            for col in range(5):
                x, y = grid.center_of(row, col)
                assert grid.cell_of(x, y) == (row, col)

    def test_center_of_validates(self):
        grid = GridPartition(3, 3)
        with pytest.raises(ValueError):
            grid.center_of(3, 0)

    def test_out_of_bounds_points_clip_to_border(self):
        grid = GridPartition(3, 3, cell_meters=100.0)
        assert grid.cell_of(-50.0, -50.0) == (0, 0)
        assert grid.cell_of(10_000.0, 10_000.0) == (2, 2)

    def test_vectorized_cell_of(self):
        grid = GridPartition(3, 3, cell_meters=100.0)
        rows, cols = grid.cell_of(np.array([50.0, 250.0]), np.array([150.0, 50.0]))
        assert rows.tolist() == [1, 0]
        assert cols.tolist() == [0, 2]

    def test_random_point_lands_in_cell(self, rng):
        grid = GridPartition(4, 4, cell_meters=200.0)
        x, y = grid.random_point_in(np.full(50, 2), np.full(50, 3), rng)
        rows, cols = grid.cell_of(x, y)
        assert np.all(rows == 2)
        assert np.all(cols == 3)

    def test_distance_between_centers(self):
        grid = GridPartition(4, 4, cell_meters=100.0)
        assert grid.distance_meters((0, 0), (0, 3)) == pytest.approx(300.0)
        assert grid.distance_meters((0, 0), (3, 0)) == pytest.approx(300.0)


class TestGPS:
    @settings(max_examples=40, deadline=None)
    @given(st.floats(0, 5000), st.floats(0, 5000))
    def test_gps_round_trip(self, x, y):
        grid = GridPartition(10, 10, cell_meters=500.0)
        lat, lon = grid.to_gps(x, y)
        x2, y2 = grid.from_gps(lat, lon)
        assert abs(x2 - x) < 1e-6
        assert abs(y2 - y) < 1e-6

    def test_cell_of_gps_matches_planar(self, rng):
        grid = GridPartition(8, 8, cell_meters=300.0)
        x = rng.random(20) * grid.width_meters
        y = rng.random(20) * grid.height_meters
        lat, lon = grid.to_gps(x, y)
        rows_gps, cols_gps = grid.cell_of_gps(lat, lon)
        rows, cols = grid.cell_of(x, y)
        assert np.array_equal(rows_gps, rows)
        assert np.array_equal(cols_gps, cols)

    def test_gps_anchored_at_shenzhen(self):
        grid = GridPartition(4, 4)
        lat, lon = grid.to_gps(0.0, 0.0)
        assert 22.0 < lat < 23.0
        assert 113.5 < lon < 114.5
