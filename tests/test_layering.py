"""The import-direction lint is part of tier 1: layering is a test, not a
convention. ``scripts/check_layering.py`` is loaded by file path (scripts/
is not a package) and run against the real tree plus synthetic trees that
prove each rule actually fires."""

import importlib.util
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPT = os.path.join(REPO_ROOT, "scripts", "check_layering.py")


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_layering", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


def _tree(tmp_path, files):
    root = tmp_path / "src" / "repro"
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return str(root)


class TestRepositoryIsClean:
    def test_no_violations_in_tree(self):
        assert checker.check() == []

    def test_cli_exit_status(self):
        result = subprocess.run(
            [sys.executable, SCRIPT], capture_output=True, text=True
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "layering OK" in result.stdout


class TestRulesFire:
    def test_nn_importing_baselines_is_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {"nn/bad.py": "from repro.baselines import make_forecaster\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "repro.baselines" in violations[0]

    def test_nn_may_use_pipeline_leaves_only(self, tmp_path):
        root = _tree(
            tmp_path,
            {
                "nn/good.py": "from repro.pipeline import seeding\n",
                "nn/bad.py": "from repro.pipeline import registry\n",
            },
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "bad.py" in violations[0]
        assert "registry" in violations[0]

    def test_experiments_importing_baselines_is_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {"experiments/bad.py": "from repro.baselines.stgcn import STGCNForecaster\n"},
        )
        violations = checker.check(root)
        assert violations and "registry" in violations[0] or "pipeline" in violations[0]

    def test_experiments_importing_core_is_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {"experiments/bad.py": "from repro.core.variants import VARIANTS\n"},
        )
        assert checker.check(root)

    def test_leaf_must_stay_dependency_free(self, tmp_path):
        root = _tree(
            tmp_path,
            {"pipeline/seeding.py": "from repro.nn import Trainer\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "dependency-free" in violations[0]

    def test_pipeline_importing_experiments_is_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {"pipeline/runner.py": "from repro.experiments.runner import ExperimentContext\n"},
        )
        assert checker.check(root)

    def test_faults_leaf_must_stay_dependency_free(self, tmp_path):
        root = _tree(
            tmp_path,
            {"faults.py": "from repro.obs import metrics\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "dependency-free" in violations[0]

    def test_substrate_importing_resilience_is_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {"nn/bad.py": "from repro.resilience import RecoveryPolicy\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "repro.resilience" in violations[0]

    def test_resilience_importing_experiments_is_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {"resilience/bad.py": "from repro.experiments.table3 import run_table3\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "repro.experiments" in violations[0]

    def test_resilience_importing_nonleaf_pipeline_is_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {
                "resilience/good.py": "from repro.pipeline import seeding\n",
                "resilience/bad.py": "from repro.pipeline import runner\n",
            },
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "bad.py" in violations[0]

    def test_resilience_may_import_nn_obs_faults(self, tmp_path):
        root = _tree(
            tmp_path,
            {
                "resilience/good.py": (
                    "from repro import faults\n"
                    "from repro.nn.divergence import DivergenceError\n"
                    "from repro.obs import runlog\n"
                ),
            },
        )
        assert checker.check(root) == []

    def test_from_repro_import_is_resolved_to_submodule(self, tmp_path):
        # `from repro import experiments` must not slip past the lint as an
        # unclassifiable bare-package import.
        root = _tree(
            tmp_path,
            {"nn/bad.py": "from repro import experiments\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "repro.experiments" in violations[0]

    def test_drift_leaf_must_stay_dependency_free(self, tmp_path):
        root = _tree(
            tmp_path,
            {"obs/drift.py": "from repro.obs import metrics\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "dependency-free" in violations[0]

    def test_drift_leaf_rule_resolves_nested_from_import(self, tmp_path):
        root = _tree(
            tmp_path,
            {"obs/drift.py": "from repro.serve import ForecastService\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "repro.serve" in violations[0]

    def test_serve_importing_report_is_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {"serve/bad.py": "from repro.obs import report\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "report" in violations[0]

    def test_serve_may_use_live_obs_surfaces(self, tmp_path):
        root = _tree(
            tmp_path,
            {
                "serve/good.py": (
                    "from repro.obs import metrics\n"
                    "from repro.obs import tracing\n"
                    "from repro.obs import serve_metrics\n"
                    "from repro.obs.drift import DriftDetector\n"
                ),
            },
        )
        assert checker.check(root) == []

    def test_fusion_importing_layers_is_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {"nn/fusion.py": "from repro.nn.layers.convlstm import ConvLSTM2DCell\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "pure executor" in violations[0]

    def test_fusion_importing_other_substrate_is_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {"nn/fusion.py": "from repro.obs import metrics\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "repro.obs.metrics" in violations[0]

    def test_fusion_allowed_surfaces_pass(self, tmp_path):
        root = _tree(
            tmp_path,
            {
                "nn/fusion.py": (
                    "from repro.nn import engine\n"
                    "from repro.nn import ops\n"
                    "from repro.nn.tensor import Tensor, make_op\n"
                ),
            },
        )
        assert checker.check(root) == []

    def test_store_importing_repro_layers_is_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {"store/bad.py": "from repro.obs import metrics\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "self-contained leaf" in violations[0]

    def test_store_importing_third_party_is_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {"store/bad.py": "import pandas\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "only the stdlib and numpy" in violations[0]

    def test_store_stdlib_numpy_and_internal_imports_pass(self, tmp_path):
        root = _tree(
            tmp_path,
            {
                "store/good.py": (
                    "import math\n"
                    "import numpy as np\n"
                    "from repro.store.chunks import ChunkBuffer\n"
                    "from numpy.lib.stride_tricks import sliding_window_view\n"
                ),
            },
        )
        assert checker.check(root) == []

    def test_stride_tricks_outside_store_are_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {
                "data/bad.py": (
                    "import numpy as np\n"
                    "view = np.lib.stride_tricks.sliding_window_view\n"
                ),
                "serve/bad.py": (
                    "from numpy.lib.stride_tricks import as_strided\n"
                ),
            },
        )
        violations = checker.check(root)
        assert len(violations) == 2
        assert all("repro.store" in line for line in violations)

    def test_stride_tricks_in_nn_ops_kernels_pass(self, tmp_path):
        # im2col conv lowering is patch extraction inside a kernel, not
        # supervised window slicing — the sanctioned exemption.
        root = _tree(
            tmp_path,
            {
                "nn/ops/conv.py": (
                    "from numpy.lib.stride_tricks import sliding_window_view\n"
                ),
            },
        )
        assert checker.check(root) == []

    def test_data_windows_must_route_through_store(self, tmp_path):
        root = _tree(
            tmp_path,
            {"data/windows.py": "import numpy as np\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "route through the store" in violations[0]

    def test_data_windows_importing_store_passes(self, tmp_path):
        root = _tree(
            tmp_path,
            {"data/windows.py": "from repro.store.windows import supervised_pairs\n"},
        )
        assert checker.check(root) == []

    def test_gateway_importing_beyond_serve_is_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {"serve/gateway.py": "from repro.data.datasets import dataset_from_tensor\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "serve.gateway imports only repro.serve" in violations[0]

    def test_gateway_importing_obs_directly_is_flagged(self, tmp_path):
        # Even a layer serve may normally use: the gateway goes through the
        # serve re-exports so rule 12 stays a one-line import surface.
        root = _tree(
            tmp_path,
            {"serve/gateway.py": "from repro.obs import metrics\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "serve.gateway" in violations[0]

    def test_gateway_importing_numpy_is_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {"serve/gateway.py": "import numpy as np\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "stdlib externals" in violations[0]

    def test_gateway_stdlib_plus_serve_passes(self, tmp_path):
        root = _tree(
            tmp_path,
            {
                "serve/gateway.py": (
                    "import json\n"
                    "from http.server import ThreadingHTTPServer\n"
                    "from repro.serve.shard import ShardRouter, tracing\n"
                ),
            },
        )
        assert checker.check(root) == []

    def test_shard_importing_experiments_is_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {"serve/shard.py": "from repro.experiments.runner import ExperimentContext\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "repro.experiments" in violations[0]

    def test_shard_importing_baselines_is_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {"serve/shard.py": "from repro.baselines.persistence import PersistenceForecaster\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "registry" in violations[0]

    def test_adapt_importing_pipeline_runner_is_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {"serve/adapt.py": "from repro.pipeline.runner import execute\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "loading/spec" in violations[0]

    def test_adapt_importing_resilience_submodule_is_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            {"serve/adapt.py": "from repro.resilience.policy import run_with_recovery\n"},
        )
        violations = checker.check(root)
        assert len(violations) == 1
        assert "repro.resilience package surface" in violations[0]

    def test_adapt_allowed_seams_pass(self, tmp_path):
        root = _tree(
            tmp_path,
            {
                "serve/adapt.py": (
                    "from repro.pipeline.loading import warm_start_forecaster\n"
                    "from repro.pipeline.spec import RunSpec\n"
                    "from repro.resilience import run_with_recovery\n"
                )
            },
        )
        assert checker.check(root) == []

    def test_clean_tree_passes(self, tmp_path):
        root = _tree(
            tmp_path,
            {
                "pipeline/registry.py": "from repro.baselines import FORECASTERS\n",
                "baselines/base.py": "from repro.pipeline import forecast\n",
                "experiments/runner.py": "from repro.pipeline import RunSpec\n",
            },
        )
        assert checker.check(root) == []
