"""`execute` under REPRO_TRACE: trace artifacts land beside the run log."""

import json
import os
import urllib.request

import pytest

from repro.obs import tracing
from repro.pipeline import RunSpec, execute


@pytest.fixture
def traced_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RUNLOG", "1")
    monkeypatch.setenv("REPRO_RUNLOG_DIR", str(tmp_path / "runs"))
    monkeypatch.setenv("REPRO_TRACE", "1")
    return tmp_path / "runs"


def _artifacts(run_dir):
    names = sorted(os.listdir(run_dir))
    logs = [n for n in names if n.endswith(".jsonl") and ".trace" not in n]
    traces = [n for n in names if n.endswith(".trace.jsonl")]
    chromes = [n for n in names if n.endswith(".chrome.json")]
    return logs, traces, chromes


class TestExecuteTracing:
    def test_trace_artifacts_land_beside_run_log(self, tiny_dataset, traced_env):
        spec = RunSpec(model="STGCN", epochs=1, seed=5, hparams={"hidden_channels": 2})
        execute(spec, tiny_dataset)
        logs, traces, chromes = _artifacts(traced_env)
        assert len(logs) == len(traces) == len(chromes) == 1
        base = os.path.splitext(logs[0])[0]
        assert traces[0] == base + ".trace.jsonl"
        assert chromes[0] == base + ".chrome.json"

        with open(traced_env / traces[0]) as handle:
            records = [json.loads(line) for line in handle]
        names = {record["name"] for record in records}
        assert "train.epoch" in names
        assert "train.step" in names
        epoch = next(r for r in records if r["name"] == "train.epoch")
        step = next(r for r in records if r["name"] == "train.step")
        assert step["trace_id"] == epoch["trace_id"]
        assert step["parent_id"] == epoch["span_id"]

        with open(traced_env / chromes[0]) as handle:
            chrome = json.load(handle)
        assert any(
            event.get("name") == "train.epoch" for event in chrome["traceEvents"]
        )

    def test_recording_is_stopped_after_execute(self, tiny_dataset, traced_env):
        execute(RunSpec(model="Persistence", epochs=0), tiny_dataset)
        assert not tracing.is_recording()

    def test_no_trace_env_means_no_trace_files(self, tiny_dataset, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUNLOG", "1")
        monkeypatch.setenv("REPRO_RUNLOG_DIR", str(tmp_path / "runs"))
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        execute(RunSpec(model="Persistence", epochs=0), tiny_dataset)
        logs, traces, chromes = _artifacts(tmp_path / "runs")
        assert len(logs) == 1
        assert traces == [] and chromes == []

    def test_telemetry_env_embeds_exporter(self, tiny_dataset, monkeypatch):
        import repro.obs.serve_metrics as sm

        monkeypatch.setattr(sm, "_EMBEDDED", None)
        monkeypatch.setenv(sm.TELEMETRY_PORT_ENV, "0")
        execute(RunSpec(model="Persistence", epochs=0), tiny_dataset)
        server = sm._EMBEDDED
        try:
            assert server is not None
            with urllib.request.urlopen(server.url + "/metrics", timeout=5) as response:
                assert response.status == 200
        finally:
            if server is not None:
                server.stop()
            monkeypatch.setattr(sm, "_EMBEDDED", None)
