"""Pinned: ``runner.execute`` over the chunked store ≡ the eager pipeline.

The acceptance bar for the unified dataflow: a full training run whose
batches stream lazily out of the WindowStore must be *bit-identical* —
weights, loss curves, eval metrics — to the historical materialize-
everything run (``chunk_slots=None``). Wall-clock fields
(``epoch_seconds`` / ``total_seconds``) are the only tolerated
difference.
"""

import numpy as np
import pytest

from repro.data.datasets import dataset_from_tensor
from repro.pipeline.runner import execute
from repro.pipeline.spec import RunSpec


TIMING_KEYS = {"epoch_seconds", "total_seconds"}

SPEC = RunSpec(
    model="BikeCAP",
    history=6,
    horizon=2,
    epochs=2,
    seed=0,
    hparams={
        "pyramid_size": 2,
        "capsule_dim": 2,
        "future_capsule_dim": 2,
        "decoder_hidden": 4,
    },
)


def _tensor():
    return np.random.default_rng(42).random((60, 5, 5, 4)) * 15.0


def _run(chunk_slots):
    dataset = dataset_from_tensor(
        _tensor(),
        history=SPEC.history,
        horizon=SPEC.horizon,
        chunk_slots=chunk_slots,
        streaming=chunk_slots is not None,
    )
    return execute(SPEC, dataset, label=f"store-parity-{chunk_slots}")


@pytest.fixture(scope="module")
def eager_and_chunked():
    return _run(None), _run(16)


def test_eval_metrics_bit_identical(eager_and_chunked):
    eager, chunked = eager_and_chunked
    assert set(eager.metrics) == set(chunked.metrics)
    for key in eager.metrics:
        assert eager.metrics[key] == chunked.metrics[key], key


def test_loss_curves_bit_identical(eager_and_chunked):
    eager, chunked = eager_and_chunked
    comparable = (set(eager.history) | set(chunked.history)) - TIMING_KEYS
    for key in comparable:
        assert key in eager.history and key in chunked.history
        assert np.array_equal(eager.history[key], chunked.history[key]), key


def test_trained_weights_bit_identical(eager_and_chunked):
    eager, chunked = eager_and_chunked
    eager_state = eager.forecaster.model.state_dict()
    chunked_state = chunked.forecaster.model.state_dict()
    assert set(eager_state) == set(chunked_state)
    for name in eager_state:
        assert np.array_equal(eager_state[name], chunked_state[name]), name


def test_chunked_run_actually_streamed(eager_and_chunked):
    _, chunked = eager_and_chunked
    dataset = dataset_from_tensor(
        _tensor(), history=SPEC.history, horizon=SPEC.horizon, chunk_slots=16,
        streaming=True,
    )
    assert dataset.store is not None and dataset.streaming
    assert chunked.metrics  # a real run, not a skipped one
