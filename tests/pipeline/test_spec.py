"""RunSpec: the declarative run description must round-trip losslessly."""

import pytest

from repro.pipeline import RunSpec


class TestRoundTrip:
    def test_dict_roundtrip(self):
        spec = RunSpec(
            model="BikeCAP",
            history=8,
            horizon=4,
            epochs=12,
            seed=3,
            hparams={"lr": 3e-3, "pyramid_size": 4, "loss": "mse"},
            engine_mode="fast",
            dtype="float32",
            tag="ablation",
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_json_roundtrip(self):
        spec = RunSpec(model="LSTM", epochs=2, hparams={"hidden_size": 8})
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_to_dict_copies_hparams(self):
        spec = RunSpec(model="LSTM")
        spec.to_dict()["hparams"]["lr"] = 1.0
        assert "lr" not in spec.hparams

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="mdoel"):
            RunSpec.from_dict({"model": "LSTM", "mdoel": "typo"})

    def test_missing_model_rejected(self):
        with pytest.raises(ValueError):
            RunSpec.from_dict({"epochs": 3})
        with pytest.raises(ValueError):
            RunSpec(model="")

    def test_json_must_be_object(self):
        with pytest.raises(ValueError):
            RunSpec.from_json("[1, 2]")


class TestBehaviour:
    def test_with_overrides_merges_hparams(self):
        spec = RunSpec(model="STGCN", hparams={"lr": 1e-3, "hops": 2})
        changed = spec.with_overrides(seed=9, hparams={"lr": 1e-2})
        assert changed.seed == 9
        assert changed.hparams == {"lr": 1e-2, "hops": 2}
        assert spec.hparams == {"lr": 1e-3, "hops": 2}  # original untouched

    def test_label(self):
        assert RunSpec(model="STGCN", horizon=4).label() == "STGCN-pts4"
        assert RunSpec(model="STGCN").label(default_horizon=6) == "STGCN-pts6"
        assert RunSpec(model="STGCN", tag="x").label(2) == "STGCN-pts2-x"

    def test_validate_against_dataset(self, tiny_dataset):
        RunSpec(model="STGCN", history=6, horizon=2).validate_against(tiny_dataset)
        with pytest.raises(ValueError, match="horizon"):
            RunSpec(model="STGCN", horizon=5).validate_against(tiny_dataset)
        with pytest.raises(ValueError, match="history"):
            RunSpec(model="STGCN", history=9).validate_against(tiny_dataset)
