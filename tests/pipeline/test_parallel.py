"""The multiprocess sweep executor: identical results, isolated crashes."""

import numpy as np
import pytest

from repro.nn import config as nn_config
from repro.pipeline import parallel
from repro.pipeline.spec import RunSpec


def _specs(seeds):
    return [
        RunSpec(
            model="BikeCAP",
            history=6,
            horizon=2,
            epochs=1,
            seed=seed,
            hparams={
                "pyramid_size": 2,
                "capsule_dim": 2,
                "future_capsule_dim": 2,
                "decoder_hidden": 4,
            },
        )
        for seed in seeds
    ]


class TestEngineSnapshot:
    def test_roundtrip(self):
        snapshot = parallel.engine_snapshot()
        assert snapshot["engine_mode"] == nn_config.engine_mode()
        assert snapshot["num_threads"] == nn_config.num_threads()
        # Applying the snapshot of the current state is a no-op.
        parallel.apply_engine_snapshot(snapshot)
        assert parallel.engine_snapshot() == snapshot

    def test_snapshot_carries_fusion_and_dispatch(self):
        snapshot = parallel.engine_snapshot()
        assert "fusion" in snapshot
        assert "fft_min_im2col_fused" in snapshot["conv_dispatch"]


class TestRunSpecs:
    def test_parallel_identical_to_serial(self, tiny_dataset):
        specs = _specs([0, 1])
        serial = parallel.run_specs(specs, tiny_dataset, jobs=1)
        if not parallel.fork_available():
            pytest.skip("platform has no fork start method")
        fanned = parallel.run_specs(specs, tiny_dataset, jobs=2)
        assert len(serial) == len(fanned) == 2
        for serial_metrics, fanned_metrics in zip(serial, fanned):
            assert serial_metrics == fanned_metrics

    def test_single_spec_never_pools(self, tiny_dataset):
        specs = _specs([0])
        results = parallel.run_specs(specs, tiny_dataset, jobs=8)
        assert len(results) == 1
        assert set(results[0]) == {"MAE", "RMSE"}

    def test_crashed_worker_retried_serially(self, tiny_dataset, monkeypatch):
        """A worker failure degrades to an in-parent serial run, not a loss."""
        if not parallel.fork_available():
            pytest.skip("platform has no fork start method")
        specs = _specs([0, 1])
        reference = parallel.run_specs(specs, tiny_dataset, jobs=1)
        monkeypatch.setattr(parallel, "_run_one", _always_crash)
        degraded = parallel.run_specs(specs, tiny_dataset, jobs=2)
        assert degraded == reference


def _always_crash(job):
    index, _ = job
    return index, None, "SimulatedCrash: chaos-monkey worker"
