"""The model registry: coverage, metadata, and weight round-trips."""

import numpy as np
import pytest

from repro.nn import load_weights, save_weights
from repro.pipeline import RunSpec, registry

# Small-but-valid hyperparameters for instantiating every neural model on
# the tiny test dataset (5×5 grid, 6-slot history, 4 features).
TINY_HPARAMS = {
    "LSTM": {"hidden_size": 4},
    "convLSTM": {"hidden_channels": 2},
    "PredRNN": {"hidden_channels": 2},
    "PredRNN++": {"hidden_channels": 2},
    "STGCN": {"hidden_channels": 2},
    "STSGCN": {"hidden_channels": 2},
}
_BIKECAP_TINY = {
    "pyramid_size": 2,
    "capsule_dim": 2,
    "future_capsule_dim": 2,
    "decoder_hidden": 2,
}


def tiny_hparams(name: str) -> dict:
    if name.startswith("BikeC"):
        return dict(_BIKECAP_TINY)
    return dict(TINY_HPARAMS.get(name, {}))


class TestCoverage:
    def test_all_paper_models_registered(self):
        names = registry.available_models()
        for required in (
            "XGBoost", "LSTM", "convLSTM", "PredRNN", "PredRNN++",
            "STGCN", "STSGCN", "BikeCAP", "Persistence", "SeasonalAverage",
        ):
            assert required in names
        for variant in registry.bikecap_variants():
            assert variant in names

    def test_protocol_metadata(self):
        for name in ("XGBoost", "LSTM", "convLSTM", "PredRNN", "PredRNN++"):
            assert registry.protocol_of(name) == "recursive"
        for name in ("STGCN", "STSGCN", "BikeCAP", "BikeCap-Sub"):
            assert registry.protocol_of(name) == "direct"

    def test_neural_metadata(self):
        assert registry.is_neural("BikeCAP")
        assert registry.is_neural("convLSTM")
        assert not registry.is_neural("XGBoost")
        assert not registry.is_neural("Persistence")

    def test_unknown_model_is_a_clear_error(self):
        with pytest.raises(ValueError, match="unknown model"):
            registry.model_entry("GPT")

    def test_defaults_are_introspected_copies(self):
        defaults = registry.default_hparams("STGCN")
        assert defaults["hidden_channels"] == 16
        defaults["hidden_channels"] = 1
        assert registry.default_hparams("STGCN")["hidden_channels"] == 16

    def test_unknown_hparam_rejected(self):
        with pytest.raises(ValueError, match="unknown hyperparameters"):
            registry.create("STSGCN", 6, 2, (5, 5), 4, nonsense=1)


class TestBuild:
    def test_build_from_spec(self, tiny_dataset):
        spec = RunSpec(model="STGCN", seed=3, hparams={"hidden_channels": 2})
        forecaster = registry.build(spec, tiny_dataset)
        assert forecaster.name == "STGCN"
        assert forecaster.horizon == tiny_dataset.horizon
        assert forecaster.seed == 3

    def test_build_validates_geometry(self, tiny_dataset):
        spec = RunSpec(model="STGCN", horizon=7)
        with pytest.raises(ValueError, match="horizon"):
            registry.build(spec, tiny_dataset)

    def test_variant_factory_pins_variant(self, tiny_dataset):
        spec = RunSpec(model="BikeCap-Sub", hparams=tiny_hparams("BikeCap-Sub"))
        forecaster = registry.build(spec, tiny_dataset)
        assert forecaster.name == "BikeCap-Sub"


class TestWeightRoundTrip:
    @pytest.mark.parametrize(
        "name",
        [n for n in registry.available_models() if registry.is_neural(n)],
    )
    def test_every_neural_model_roundtrips(self, name, tiny_dataset, tmp_path):
        ds = tiny_dataset
        build = lambda seed: registry.create(
            name, ds.history, ds.horizon, ds.grid_shape, ds.num_features,
            seed=seed, **tiny_hparams(name)
        )
        source = build(seed=0)
        path = str(tmp_path / "weights.npz")
        save_weights(source.model, path)

        target = build(seed=1)  # different init — load must overwrite it
        load_weights(target.model, path)
        source_state = source.model.state_dict()
        target_state = target.model.state_dict()
        assert source_state.keys() == target_state.keys()
        for key in source_state:
            np.testing.assert_array_equal(source_state[key], target_state[key])
