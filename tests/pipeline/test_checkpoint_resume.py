"""Full-state checkpointing: a killed-and-resumed run must be bit-identical
to an uninterrupted one — weights, loss curves, optimizer moments, RNG."""

import os

import numpy as np
import pytest

from repro.nn import Linear, Sequential, Trainer, load_checkpoint, load_weights
from repro.nn.layers import Activation
from repro.pipeline import RunSpec, checkpoint as ckpt, execute


def _make_model(seed):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(6, 8, rng=rng), Activation("relu"), Linear(8, 3, rng=rng))


def _make_data():
    rng = np.random.default_rng(99)
    x = rng.random((40, 6))
    y = rng.random((40, 3))
    return x[:32], y[:32], x[32:], y[32:]


def _states_equal(a, b):
    assert a.keys() == b.keys()
    for key in a:
        np.testing.assert_array_equal(a[key], b[key], err_msg=key)


class TestTrainerResume:
    EPOCHS = 5

    def _fit_uninterrupted(self):
        x, y, vx, vy = _make_data()
        trainer = Trainer(_make_model(0), batch_size=8, seed=11)
        history = trainer.fit(x, y, epochs=self.EPOCHS, val_x=vx, val_y=vy)
        return trainer, history

    def test_mid_epoch_kill_then_resume_is_bit_exact(self, tmp_path):
        reference, ref_history = self._fit_uninterrupted()
        path = str(tmp_path / "run.ckpt.npz")
        x, y, vx, vy = _make_data()

        # Same run, but the process dies in the middle of epoch 3 — after
        # the epoch-2 autosave, with the partial epoch's updates lost.
        killed = Trainer(_make_model(0), batch_size=8, seed=11)
        original_step = killed.train_step
        batches_per_epoch = int(np.ceil(len(x) / killed.batch_size))
        kill_at = 2 * batches_per_epoch + 2  # second batch of epoch 3
        calls = {"count": 0}

        def dying_step(bx, by):
            calls["count"] += 1
            if calls["count"] == kill_at:
                raise KeyboardInterrupt("simulated kill")
            return original_step(bx, by)

        killed.train_step = dying_step
        with pytest.raises(KeyboardInterrupt):
            killed.fit(
                x, y, epochs=self.EPOCHS, val_x=vx, val_y=vy, checkpoint_path=path
            )
        assert load_checkpoint(path).epoch == 2

        # A fresh process: new model, new trainer, resume from the autosave.
        resumed = Trainer(_make_model(0), batch_size=8, seed=11)
        resumed_history = resumed.fit(
            x, y, epochs=self.EPOCHS, val_x=vx, val_y=vy,
            checkpoint_path=path, resume_from=path,
        )
        _states_equal(resumed.model.state_dict(), reference.model.state_dict())
        assert resumed_history.train_loss == ref_history.train_loss
        assert resumed_history.val_loss == ref_history.val_loss
        # Optimizer moments must match too, or the *next* step would drift.
        ref_opt = reference.optimizer.state_dict()
        res_opt = resumed.optimizer.state_dict()
        assert res_opt["step_count"] == ref_opt["step_count"]
        for slot in ref_opt["slots"]:
            for ref_buf, res_buf in zip(ref_opt["slots"][slot], res_opt["slots"][slot]):
                np.testing.assert_array_equal(ref_buf, res_buf)

    def test_resume_skips_already_finished_run(self, tmp_path):
        path = str(tmp_path / "done.ckpt.npz")
        x, y, vx, vy = _make_data()
        first = Trainer(_make_model(0), batch_size=8, seed=11)
        first_history = first.fit(
            x, y, epochs=3, val_x=vx, val_y=vy, checkpoint_path=path
        )
        again = Trainer(_make_model(0), batch_size=8, seed=11)
        again_history = again.fit(
            x, y, epochs=3, val_x=vx, val_y=vy, resume_from=path
        )
        assert again_history.train_loss == first_history.train_loss
        _states_equal(again.model.state_dict(), first.model.state_dict())

    def test_checkpoint_every_thins_autosaves(self, tmp_path):
        path = str(tmp_path / "thin.ckpt.npz")
        x, y, _, _ = _make_data()
        trainer = Trainer(_make_model(0), batch_size=8, seed=1)
        trainer.fit(x, y, epochs=3, checkpoint_path=path, checkpoint_every=2)
        # Final epoch always saves, so the file exists and is current.
        assert load_checkpoint(path).epoch == 3


class TestCheckpointArchive:
    def test_checkpoint_rejected_by_load_weights(self, tmp_path):
        path = str(tmp_path / "full.ckpt.npz")
        x, y, _, _ = _make_data()
        trainer = Trainer(_make_model(0), batch_size=8, seed=1)
        trainer.fit(x, y, epochs=1, checkpoint_path=path)
        with pytest.raises(ValueError, match="load_checkpoint"):
            load_weights(_make_model(0), path)
        assert ckpt.is_checkpoint(path)

    def test_naming_and_discovery(self, tmp_path):
        directory = str(tmp_path)
        path = ckpt.checkpoint_path(directory, "PredRNN++-pts4", seed=2)
        assert os.path.basename(path) == "PredRNN---pts4-seed2.ckpt.npz"
        assert ckpt.find_checkpoint(directory, "PredRNN++-pts4", 2) is None
        open(path, "w").close()
        assert ckpt.find_checkpoint(directory, "PredRNN++-pts4", 2) == path
        assert ckpt.newest_checkpoint(directory) == path
        assert ckpt.newest_checkpoint(directory, prefix="STGCN") is None

    def test_newest_checkpoint_prefix_does_not_cross_model_names(self, tmp_path):
        """``_slug("PredRNN++") == "PredRNN--"`` starts with ``"PredRNN"``,
        so a raw prefix match would let a resuming PredRNN run pick up a
        PredRNN++ checkpoint. The label must match on the exact
        ``<slug>-seed<N>`` boundary."""
        directory = str(tmp_path)
        plain = ckpt.checkpoint_path(directory, "PredRNN", seed=0)
        plusplus = ckpt.checkpoint_path(directory, "PredRNN++", seed=0)
        open(plain, "w").close()
        open(plusplus, "w").close()
        # Make the ++ file strictly newer: under the old prefix matching it
        # would win the "newest for PredRNN" query below.
        os.utime(plain, (1, 1))

        assert ckpt.newest_checkpoint(directory, prefix="PredRNN") == plain
        assert ckpt.newest_checkpoint(directory, prefix="PredRNN++") == plusplus
        assert ckpt.newest_checkpoint(directory) == plusplus


class TestPipelineExecuteResume:
    def test_execute_checkpoints_and_resumes(self, tiny_dataset, tmp_path):
        directory = str(tmp_path / "ckpts")
        spec = RunSpec(
            model="STGCN", epochs=2, seed=1, hparams={"hidden_channels": 2}
        )
        first = execute(spec, tiny_dataset, checkpoint_dir=directory)
        assert first.checkpoint_path is not None
        assert os.path.exists(first.checkpoint_path)

        second = execute(spec, tiny_dataset, checkpoint_dir=directory, resume=True)
        assert second.resumed_from == first.checkpoint_path
        assert second.metrics == first.metrics

    def test_execute_skips_checkpoint_for_non_neural(self, tiny_dataset, tmp_path):
        result = execute(
            RunSpec(model="Persistence", epochs=0),
            tiny_dataset,
            checkpoint_dir=str(tmp_path),
        )
        assert result.checkpoint_path is None
        assert set(result.metrics) == {"MAE", "RMSE"}
