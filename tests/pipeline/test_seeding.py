"""The central RNG policy: bit-compatibility and determinism guarantees."""

import random

import numpy as np

from repro.pipeline import seeding


class TestRng:
    def test_seeded_stream_matches_numpy_default_rng(self):
        # Bit-compatibility with the ad-hoc default_rng(seed) calls this
        # module replaced: historical results must not move.
        ours = seeding.rng(123).random(50)
        reference = np.random.default_rng(123).random(50)
        np.testing.assert_array_equal(ours, reference)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert seeding.rng(gen) is gen

    def test_none_returns_process_global(self):
        assert seeding.rng(None) is seeding.global_rng()

    def test_seed_everything_pins_all_sources(self):
        seeding.seed_everything(777)
        a = (random.random(), np.random.random(), seeding.global_rng().random())
        seeding.seed_everything(777)
        b = (random.random(), np.random.random(), seeding.global_rng().random())
        assert a == b
        assert seeding.last_seed() == 777

    def test_derive_is_stable_and_key_sensitive(self):
        one = seeding.derive(9, "shuffle").random(8)
        same = seeding.derive(9, "shuffle").random(8)
        other = seeding.derive(9, "dropout").random(8)
        np.testing.assert_array_equal(one, same)
        assert not np.array_equal(one, other)

    def test_state_roundtrip_resumes_stream(self):
        gen = seeding.rng(5)
        gen.random(13)
        state = seeding.get_state(gen)
        expected = gen.random(7)
        fresh = seeding.rng(5)
        seeding.set_state(fresh, state)
        np.testing.assert_array_equal(fresh.random(7), expected)
