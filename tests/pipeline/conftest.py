import numpy as np
import pytest

from repro.data.datasets import dataset_from_tensor


@pytest.fixture(autouse=True)
def _no_runlog(monkeypatch):
    """Pipeline tests must not litter results/runs/."""
    monkeypatch.setenv("REPRO_RUNLOG", "0")


@pytest.fixture(scope="session")
def tiny_dataset():
    """A 5×5-grid, 4-feature dataset small enough to train in seconds."""
    rng = np.random.default_rng(42)
    tensor = rng.random((60, 5, 5, 4))
    return dataset_from_tensor(tensor, history=6, horizon=2)
