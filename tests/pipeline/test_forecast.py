"""The teacher-forced decode in repro.pipeline.forecast, pinned with stubs.

The recursive protocol is exercised through the model zoo in
tests/baselines/test_base.py; this file pins the teacher-forcing window
arithmetic, which a dataset-boundary off-by-one once silently truncated.
"""

import numpy as np
import pytest

from repro.pipeline.forecast import teacher_forced_forecast


class _RecordingPersistence:
    """Next-frame stub: repeats the last frame, recording every batch seen."""

    def __init__(self):
        self.seen = []

    def __call__(self, windows):
        windows = np.asarray(windows)
        self.seen.append(windows)
        return windows[:, -1]


def _consecutive_windows(slots, history, grid=(2, 2), features=2):
    """Frame ``t`` is filled with the value ``t``, so every prediction is
    attributable to exactly one source slot."""
    series = np.broadcast_to(
        np.arange(slots, dtype=float)[:, None, None, None],
        (slots,) + grid + (features,),
    )
    return np.stack([series[i : i + history] for i in range(slots - history + 1)])


class TestTeacherForcedForecast:
    def test_default_count_uses_every_window(self):
        """Decoding start ``i`` needs windows ``i … i + horizon - 1``, so
        ``len(windows) - horizon + 1`` starts fit — one more than the old
        default, which always left the final chronological window unused."""
        windows = _consecutive_windows(slots=12, history=4)  # 9 windows
        horizon = 3
        predictor = _RecordingPersistence()
        output = teacher_forced_forecast(predictor, windows, horizon)
        assert output.shape[0] == len(windows) - horizon + 1  # 7 starts

        # The final step's batch ends with the *last* chronological window:
        # the data boundary is actually consumed, not truncated away.
        last_step_batch = predictor.seen[-1]
        np.testing.assert_array_equal(last_step_batch[-1], windows[-1])
        consumed_rows = {
            int(window[0, 0, 0, 0])
            for batch in predictor.seen
            for window in batch
        }
        assert int(windows[-1][0, 0, 0, 0]) in consumed_rows

    def test_values_match_the_true_frames(self):
        """With a persistence stub, step ``t`` of start ``i`` must equal the
        last frame of true window ``i + t`` — teacher forcing by definition."""
        history, horizon = 4, 3
        windows = _consecutive_windows(slots=10, history=history)
        output = teacher_forced_forecast(_RecordingPersistence(), windows, horizon)
        count = len(windows) - horizon + 1
        for start in range(count):
            for step in range(horizon):
                expected = windows[start + step][-1, ..., 0]
                np.testing.assert_array_equal(output[start, step], expected)

    def test_explicit_count_is_respected(self):
        windows = _consecutive_windows(slots=12, history=4)
        output = teacher_forced_forecast(
            _RecordingPersistence(), windows, horizon=3, count=2
        )
        assert output.shape[0] == 2

    def test_too_few_windows_raise(self):
        windows = _consecutive_windows(slots=5, history=4)  # 2 windows
        with pytest.raises(ValueError, match="not enough"):
            teacher_forced_forecast(_RecordingPersistence(), windows, horizon=4)
