"""Spatial-temporal routing (Sec. III-D) and softmax_3D (Eq. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SpatialTemporalRouting, softmax_3d, squash_np
from repro.nn import Tensor


class TestSoftmax3D:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(-20, 20), min_size=24, max_size=24),
    )
    def test_sums_to_one_over_joint_axes(self, values):
        logits = np.asarray(values).reshape(2, 3, 4)  # interpret as (p, G1, G2)
        out = softmax_3d(logits, axes=(-3, -2, -1))
        assert np.isclose(out.sum(), 1.0)
        assert np.all(out >= 0)

    def test_batched_normalization(self, rng):
        logits = rng.standard_normal((5, 2, 3, 4))
        out = softmax_3d(logits, axes=(-3, -2, -1))
        assert np.allclose(out.sum(axis=(-3, -2, -1)), 1.0)

    def test_stable_under_large_logits(self):
        logits = np.array([[[1000.0, 1000.0]]])
        out = softmax_3d(logits)
        assert np.allclose(out, 0.5)

    def test_uniform_at_zero_logits(self):
        out = softmax_3d(np.zeros((2, 3, 4)))
        assert np.allclose(out, 1.0 / 24)


class TestSquashNp:
    def test_matches_autograd_squash(self, rng):
        from repro.core import squash

        data = rng.standard_normal((3, 4, 5))
        assert np.allclose(squash_np(data, axis=1), squash(Tensor(data), axis=1).data, atol=1e-9)


class TestRouting:
    def _phi(self, rng, batch=2, c=1, dim=3, history=4, g1=5, g2=4):
        return Tensor(rng.standard_normal((batch, c, dim, history, g1, g2)))

    def test_output_shape(self, rng):
        routing = SpatialTemporalRouting(3, 4, horizon=3, iterations=3, rng=0)
        out = routing(self._phi(rng, dim=3))
        assert out.shape == (2, 3, 4, 5, 4)

    def test_output_capsules_are_squashed(self, rng):
        routing = SpatialTemporalRouting(3, 4, horizon=2, rng=0)
        out = routing(self._phi(rng, dim=3)).data
        norms = np.linalg.norm(out, axis=2)
        assert np.all(norms < 1.0)

    def test_coupling_coefficients_stored_and_normalized(self, rng):
        routing = SpatialTemporalRouting(3, 4, horizon=2, iterations=3, rng=0)
        phi = self._phi(rng, dim=3, history=4)
        routing(phi)
        coupling = routing.last_coupling
        assert coupling.shape == (2, 4, 2, 5, 4)  # (N, S=c*h, p, G1, G2)
        # Eq. 4: normalized jointly over (p, G1, G2) per historical capsule.
        assert np.allclose(coupling.sum(axis=(2, 3, 4)), 1.0)

    def test_votes_shape_includes_capsule_channels(self, rng):
        routing = SpatialTemporalRouting(3, 2, horizon=2, rng=0)
        phi = self._phi(rng, c=2, dim=3, history=4)
        votes = routing.compute_votes(phi)
        assert votes.shape == (2, 2, 2, 8, 5, 4)  # S = c*h = 8

    def test_single_iteration_uses_uniform_coupling(self, rng):
        routing = SpatialTemporalRouting(3, 4, horizon=2, iterations=1, rng=0)
        phi = self._phi(rng, dim=3)
        routing(phi)
        coupling = routing.last_coupling
        assert np.allclose(coupling, coupling.flat[0])

    def test_more_iterations_sharpen_coupling(self, rng):
        phi = self._phi(rng, dim=3)
        entropies = []
        for iterations in (1, 3, 5):
            routing = SpatialTemporalRouting(3, 4, horizon=2, iterations=iterations, rng=0)
            routing(phi)
            coupling = routing.last_coupling
            entropy = -(coupling * np.log(coupling + 1e-12)).sum(axis=(2, 3, 4)).mean()
            entropies.append(entropy)
        assert entropies[1] <= entropies[0] + 1e-9
        assert entropies[2] <= entropies[1] + 1e-9

    def test_gradients_flow_to_vote_conv(self, rng):
        routing = SpatialTemporalRouting(3, 4, horizon=2, rng=0)
        phi = Tensor(rng.standard_normal((1, 1, 3, 4, 3, 3)), requires_grad=True)
        out = routing(phi)
        out.sum().backward()
        assert routing.vote_conv.weight.grad is not None
        assert phi.grad is not None
        assert np.abs(phi.grad).sum() > 0

    def test_rejects_wrong_capsule_dim(self, rng):
        routing = SpatialTemporalRouting(3, 4, horizon=2, rng=0)
        with pytest.raises(ValueError):
            routing(Tensor(rng.standard_normal((1, 1, 5, 4, 3, 3))))

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            SpatialTemporalRouting(3, 4, horizon=2, iterations=0)

    def test_future_slots_reconstructed_independently(self, rng):
        """The defining anti-accumulation property: each future slot's
        output is a weighted sum over historical votes, never a function of
        another future slot's output (with routing held at one iteration,
        where coupling is constant)."""
        routing = SpatialTemporalRouting(3, 4, horizon=3, iterations=1, rng=0)
        phi = self._phi(rng, dim=3)
        votes = routing.compute_votes(phi).data
        out = routing(phi).data
        count = votes.shape[3]
        uniform = 1.0 / (3 * 5 * 4)  # p * G1 * G2 cells share each capsule's unit mass
        combined = (votes * uniform).sum(axis=3)
        assert np.allclose(out, squash_np(combined, axis=2), atol=1e-9)
