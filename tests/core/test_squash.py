"""The 3D squash non-linearity (Eq. 3): invariants via hypothesis."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import capsule_length, squash
from repro.nn import Tensor
from repro.nn.gradcheck import check_gradients


def _vectors(min_dim=2, max_dim=6):
    return st.lists(
        st.lists(st.floats(-10, 10), min_size=min_dim, max_size=min_dim),
        min_size=1,
        max_size=5,
    )


class TestSquashProperties:
    @settings(max_examples=50, deadline=None)
    @given(_vectors(3, 3))
    def test_norm_strictly_below_one(self, rows):
        out = squash(Tensor(rows), axis=-1).data
        norms = np.linalg.norm(out, axis=-1)
        assert np.all(norms < 1.0)

    @settings(max_examples=50, deadline=None)
    @given(_vectors(3, 3))
    def test_direction_preserved(self, rows):
        data = np.asarray(rows, dtype=float)
        out = squash(Tensor(data), axis=-1).data
        for row_in, row_out in zip(data, out):
            norm = np.linalg.norm(row_in)
            if norm > 1e-3:
                cosine = row_in @ row_out / (norm * np.linalg.norm(row_out))
                assert cosine > 0.999

    @settings(max_examples=50, deadline=None)
    @given(_vectors(3, 3))
    def test_monotone_in_input_norm(self, rows):
        data = np.asarray(rows, dtype=float)
        out = squash(Tensor(data), axis=-1).data
        in_norms = np.linalg.norm(data, axis=-1)
        out_norms = np.linalg.norm(out, axis=-1)
        order_in = np.argsort(in_norms)
        assert np.all(np.diff(out_norms[order_in]) >= -1e-9)

    def test_long_vectors_approach_unit_norm(self):
        out = squash(Tensor([[1000.0, 0.0]]), axis=-1).data
        assert np.linalg.norm(out) > 0.999

    def test_short_vectors_shrink_to_near_zero(self):
        out = squash(Tensor([[0.01, 0.0]]), axis=-1).data
        assert np.linalg.norm(out) < 1e-3

    def test_zero_vector_is_zero_with_finite_gradient(self):
        x = Tensor(np.zeros((2, 3)), requires_grad=True)
        out = squash(x, axis=-1)
        out.sum().backward()
        assert np.allclose(out.data, 0.0)
        assert np.all(np.isfinite(x.grad))

    def test_matches_equation_3(self, rng):
        data = rng.standard_normal((4, 5))
        out = squash(Tensor(data), axis=-1).data
        norms = np.linalg.norm(data, axis=-1, keepdims=True)
        expected = (norms**2 / (1 + norms**2)) * (data / norms)
        assert np.allclose(out, expected, atol=1e-6)

    def test_axis_argument(self, rng):
        data = rng.standard_normal((2, 4, 3))
        out = squash(Tensor(data), axis=1).data
        assert np.all(np.linalg.norm(out, axis=1) < 1.0)

    def test_gradcheck(self, rng):
        x = Tensor(rng.standard_normal((3, 4)) + 0.5, requires_grad=True)
        check_gradients(lambda x: squash(x, axis=-1), [x])


class TestCapsuleLength:
    def test_matches_numpy_norm(self, rng):
        data = rng.standard_normal((3, 4, 5))
        lengths = capsule_length(Tensor(data), axis=-1).data
        assert np.allclose(lengths, np.linalg.norm(data, axis=-1), atol=1e-6)

    def test_squashed_lengths_encode_intensity(self, rng):
        weak = squash(Tensor([[0.1, 0.0]]), axis=-1)
        strong = squash(Tensor([[5.0, 0.0]]), axis=-1)
        assert capsule_length(strong, axis=-1).item() > capsule_length(weak, axis=-1).item()
