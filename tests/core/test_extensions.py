"""The Sec. V-A stability extension: separated temporal capsules."""

import numpy as np
import pytest

from repro.core import BikeCAP, BikeCAPConfig, SpatialTemporalRouting
from repro.nn import Tensor


def _config(**overrides):
    base = dict(
        grid=(5, 5),
        history=4,
        horizon=3,
        features=4,
        capsule_dim=2,
        future_capsule_dim=2,
        pyramid_size=2,
        decoder_hidden=4,
        seed=0,
    )
    base.update(overrides)
    return BikeCAPConfig(**base)


class TestSeparatedTemporalRouting:
    def test_shapes_match_joint_routing(self, rng):
        phi = Tensor(rng.standard_normal((2, 1, 3, 4, 5, 4)))
        joint = SpatialTemporalRouting(3, 4, horizon=3, rng=0)
        separated = SpatialTemporalRouting(
            3, 4, horizon=3, separate_temporal_capsules=True, rng=0
        )
        assert joint(phi).shape == separated(phi).shape

    def test_separated_has_one_conv_per_step(self):
        routing = SpatialTemporalRouting(3, 4, horizon=5, separate_temporal_capsules=True, rng=0)
        assert routing.vote_conv is None
        assert len(routing.vote_convs) == 5

    def test_parameter_counts(self):
        joint = SpatialTemporalRouting(3, 4, horizon=4, rng=0)
        separated = SpatialTemporalRouting(3, 4, horizon=4, separate_temporal_capsules=True, rng=0)
        joint_params = sum(p.size for p in joint.parameters())
        separated_params = sum(p.size for p in separated.parameters())
        # Same weight volume, one bias set per step instead of fused.
        assert separated_params >= joint_params - 4 * 4

    def test_gradients_reach_every_step_conv(self, rng):
        routing = SpatialTemporalRouting(2, 2, horizon=3, separate_temporal_capsules=True, rng=0)
        phi = Tensor(rng.standard_normal((1, 1, 2, 3, 4, 4)), requires_grad=True)
        routing(phi).sum().backward()
        for conv in routing.vote_convs:
            assert conv.weight.grad is not None
            assert np.any(conv.weight.grad)


class TestModelFlag:
    def test_forward_shape_unchanged(self, rng):
        model = BikeCAP(_config(separate_temporal_capsules=True))
        out = model(Tensor(rng.random((2, 4, 5, 5, 4))))
        assert out.shape == (2, 3, 5, 5)

    def test_flag_reaches_routing(self):
        model = BikeCAP(_config(separate_temporal_capsules=True))
        assert model.future.routing.separate_temporal_capsules
        assert model.future.routing.vote_convs is not None

    def test_default_is_joint(self):
        model = BikeCAP(_config())
        assert model.future.routing.vote_conv is not None
