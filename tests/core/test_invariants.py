"""Cross-component invariants of the BikeCAP architecture."""

import dataclasses

import numpy as np
import pytest

from repro.core import BikeCAP, BikeCAPConfig
from repro.nn import Tensor


def _config(**overrides):
    base = dict(
        grid=(5, 5),
        history=4,
        horizon=3,
        features=4,
        capsule_dim=2,
        future_capsule_dim=2,
        pyramid_size=2,
        decoder_hidden=4,
        seed=0,
    )
    base.update(overrides)
    return BikeCAPConfig(**base)


class TestArchitecturalInvariants:
    def test_horizon_controls_output_steps(self, rng):
        for horizon in (1, 2, 5):
            model = BikeCAP(_config(horizon=horizon))
            out = model(Tensor(rng.random((2, 4, 5, 5, 4))))
            assert out.shape[1] == horizon

    def test_batch_independence(self, rng):
        """Predictions for one sample cannot depend on others in the batch."""
        model = BikeCAP(_config())
        x = rng.random((4, 4, 5, 5, 4))
        joint = model.predict(x)
        single = np.concatenate([model.predict(x[i : i + 1]) for i in range(4)])
        assert np.allclose(joint, single, atol=1e-9)

    def test_parameter_count_grows_with_capsule_dim(self):
        small = BikeCAP(_config(capsule_dim=2, future_capsule_dim=2))
        large = BikeCAP(_config(capsule_dim=8, future_capsule_dim=8))
        assert large.num_parameters() > small.num_parameters()

    def test_parameter_count_grows_with_pyramid_size(self):
        # Active (unmasked) weights grow with the pyramid; the dense holder
        # grows even faster, but what matters is the count reported.
        small = BikeCAP(_config(pyramid_size=2))
        large = BikeCAP(_config(pyramid_size=3))
        assert large.num_parameters() > small.num_parameters()

    def test_grid_size_does_not_change_parameter_count(self):
        """Fully convolutional: weights are grid-size independent."""
        a = BikeCAP(_config(grid=(5, 5)))
        b = BikeCAP(_config(grid=(9, 7)))
        assert a.num_parameters() == b.num_parameters()

    def test_model_applies_to_other_grid_sizes(self, rng):
        """A model built for one grid runs on another (grid param is
        metadata for the config, convolutions adapt)."""
        model = BikeCAP(_config(grid=(5, 5)))
        out = model(Tensor(rng.random((1, 4, 7, 6, 4))))
        assert out.shape == (1, 3, 7, 6)

    def test_more_routing_iterations_changes_output(self, rng):
        x = rng.random((2, 4, 5, 5, 4))
        one = BikeCAP(_config(routing_iterations=1)).predict(x)
        three = BikeCAP(_config(routing_iterations=3)).predict(x)
        assert not np.allclose(one, three)

    def test_variant_configs_are_frozen_copies(self):
        from repro.core import make_bikecap_sub

        base = _config()
        variant = make_bikecap_sub(base)
        assert base.feature_indices is None
        assert variant.config.feature_indices == (0, 1)

    def test_state_dict_round_trip_preserves_predictions(self, rng):
        model = BikeCAP(_config(seed=3))
        clone = BikeCAP(_config(seed=99))
        clone.load_state_dict(model.state_dict())
        x = rng.random((2, 4, 5, 5, 4))
        assert np.allclose(model.predict(x), clone.predict(x))

    def test_eval_mode_is_deterministic(self, rng):
        model = BikeCAP(_config())
        x = rng.random((2, 4, 5, 5, 4))
        assert np.allclose(model.predict(x), model.predict(x))
