"""End-to-end BikeCAP model, config validation, variants."""

import dataclasses

import numpy as np
import pytest

from repro.core import (
    BikeCAP,
    BikeCAPConfig,
    Decoder3D,
    FutureCapsules,
    HistoricalCapsules,
    ReshapeDecoder,
    VARIANTS,
    make_variant,
)
from repro.nn import Tensor, Trainer, l1_loss


def small_config(**overrides):
    base = dict(
        grid=(5, 5),
        history=4,
        horizon=3,
        features=4,
        capsule_dim=2,
        future_capsule_dim=2,
        pyramid_size=2,
        decoder_hidden=4,
        seed=0,
    )
    base.update(overrides)
    return BikeCAPConfig(**base)


class TestConfig:
    def test_defaults_follow_paper(self):
        config = BikeCAPConfig()
        assert config.history == 8
        assert config.pyramid_size == 5
        assert config.capsule_dim == 4
        assert config.routing_iterations == 3

    def test_rejects_bad_history(self):
        with pytest.raises(ValueError):
            BikeCAPConfig(history=0)

    def test_rejects_out_of_range_feature_indices(self):
        with pytest.raises(ValueError):
            BikeCAPConfig(features=4, feature_indices=(0, 7))

    def test_model_features_reflects_selection(self):
        config = BikeCAPConfig(features=4, feature_indices=(0, 1))
        assert config.model_features == 2
        assert BikeCAPConfig(features=4).model_features == 4


class TestForward:
    def test_output_shape(self, rng):
        model = BikeCAP(small_config())
        out = model(Tensor(rng.random((3, 4, 5, 5, 4))))
        assert out.shape == (3, 3, 5, 5)

    def test_rejects_wrong_rank(self, rng):
        model = BikeCAP(small_config())
        with pytest.raises(ValueError):
            model(Tensor(rng.random((3, 4, 5, 5))))

    def test_feature_selection_ignores_dropped_channels(self, rng):
        model = BikeCAP(small_config(feature_indices=(0, 1)))
        x = rng.random((2, 4, 5, 5, 4))
        perturbed = x.copy()
        perturbed[..., 2:] = 0.0  # change only the channels the model drops
        assert np.allclose(model(Tensor(x)).data, model(Tensor(perturbed)).data)

    def test_deterministic_given_seed(self, rng):
        x = rng.random((2, 4, 5, 5, 4))
        out1 = BikeCAP(small_config(seed=42))(Tensor(x)).data
        out2 = BikeCAP(small_config(seed=42))(Tensor(x)).data
        assert np.allclose(out1, out2)

    def test_different_seeds_differ(self, rng):
        x = rng.random((2, 4, 5, 5, 4))
        out1 = BikeCAP(small_config(seed=1))(Tensor(x)).data
        out2 = BikeCAP(small_config(seed=2))(Tensor(x)).data
        assert not np.allclose(out1, out2)

    def test_predict_batches_match_full_forward(self, rng):
        model = BikeCAP(small_config())
        x = rng.random((7, 4, 5, 5, 4))
        batched = model.predict(x, batch_size=3)
        full = model.predict(x, batch_size=7)
        assert np.allclose(batched, full)

    def test_coupling_coefficients_exposed(self, rng):
        model = BikeCAP(small_config())
        assert model.coupling_coefficients is None
        model.predict(rng.random((2, 4, 5, 5, 4)))
        coupling = model.coupling_coefficients
        assert coupling is not None
        assert coupling.shape[2] == 3  # horizon


class TestTraining:
    def test_one_epoch_reduces_training_loss(self, rng):
        model = BikeCAP(small_config())
        x = rng.random((24, 4, 5, 5, 4))
        # Learnable structure: target = mean of the last input frame's pickups.
        y = np.repeat(x[:, -1:, :, :, 0], 3, axis=1)
        trainer = Trainer(model, loss="l1", lr=5e-3, batch_size=8, seed=0)
        history = trainer.fit(x, y, epochs=6)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_all_parameters_receive_gradients(self, rng):
        model = BikeCAP(small_config())
        out = model(Tensor(rng.random((2, 4, 5, 5, 4))))
        l1_loss(out, Tensor(np.zeros(out.shape))).backward()
        missing = [
            name for name, p in model.named_parameters() if p.grad is None or not np.any(p.grad)
        ]
        assert not missing, f"dead parameters: {missing}"


class TestVariants:
    def test_registry_contains_paper_names(self):
        assert set(VARIANTS) == {
            "BikeCAP",
            "BikeCap-Sub",
            "BikeCap-Pyra",
            "BikeCap-3D",
            "BikeCap-3D-Pyra",
        }

    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError):
            make_variant("BikeCap-Nope", small_config())

    def test_sub_variant_uses_downstream_channels_only(self):
        model = make_variant("BikeCap-Sub", small_config())
        assert model.config.feature_indices == (0, 1)

    def test_pyra_variant_uses_plain_conv(self):
        model = make_variant("BikeCap-Pyra", small_config())
        assert not model.historical.use_pyramid
        assert model.historical.conv.weight_mask is None

    def test_3d_variant_uses_reshape_decoder(self):
        model = make_variant("BikeCap-3D", small_config())
        assert isinstance(model.decoder, ReshapeDecoder)
        full = make_variant("BikeCAP", small_config())
        assert isinstance(full.decoder, Decoder3D)

    def test_3d_pyra_removes_both(self):
        model = make_variant("BikeCap-3D-Pyra", small_config())
        assert not model.historical.use_pyramid
        assert isinstance(model.decoder, ReshapeDecoder)

    @pytest.mark.parametrize("name", sorted(VARIANTS))
    def test_all_variants_forward(self, name, rng):
        model = make_variant(name, small_config())
        out = model(Tensor(rng.random((2, 4, 5, 5, 4))))
        assert out.shape == (2, 3, 5, 5)


class TestComponents:
    def test_historical_capsules_shape_and_squash(self, rng):
        capsules = HistoricalCapsules(4, capsule_channels=2, capsule_dim=3, pyramid_size=2, rng=0)
        out = capsules(Tensor(rng.random((2, 4, 5, 6, 6))))
        assert out.shape == (2, 2, 3, 5, 6, 6)
        assert np.all(np.linalg.norm(out.data, axis=2) < 1.0)

    def test_future_capsules_shape(self, rng):
        future = FutureCapsules(3, 4, horizon=2, rng=0)
        out = future(Tensor(rng.random((2, 1, 3, 5, 6, 6))))
        assert out.shape == (2, 2, 4, 6, 6)
        assert future.last_coupling is not None

    def test_decoders_shapes(self, rng):
        capsules = Tensor(rng.random((2, 3, 4, 5, 6)))
        assert Decoder3D(4, hidden_channels=2, rng=0)(capsules).shape == (2, 3, 5, 6)
        assert ReshapeDecoder(4, hidden_channels=2, rng=0)(capsules).shape == (2, 3, 5, 6)

    def test_reshape_decoder_is_pointwise(self, rng):
        """Perturbing one grid cell must not change any other cell's output."""
        decoder = ReshapeDecoder(4, hidden_channels=2, rng=0)
        base = rng.random((1, 2, 4, 5, 5))
        perturbed = base.copy()
        perturbed[0, :, :, 2, 2] += 10.0
        delta = decoder(Tensor(perturbed)).data - decoder(Tensor(base)).data
        changed = np.abs(delta) > 1e-12
        assert changed[0, :, 2, 2].any()
        changed[0, :, 2, 2] = False
        assert not changed.any()

    def test_3d_decoder_shares_neighbourhoods(self, rng):
        """The 3-D deconv decoder must couple neighbouring cells."""
        decoder = Decoder3D(4, hidden_channels=2, rng=0)
        base = rng.random((1, 2, 4, 5, 5))
        perturbed = base.copy()
        perturbed[0, :, :, 2, 2] += 10.0
        delta = decoder(Tensor(perturbed)).data - decoder(Tensor(base)).data
        assert np.abs(delta[0, :, 2, 3]).sum() > 0  # neighbour affected
