"""Pyramid kernel mask and PyramidConv3D (Sec. II-A, III-C)."""

import numpy as np
import pytest

from repro.core import PyramidConv3D, pyramid_cell_count, pyramid_mask
from repro.nn import Tensor


class TestPyramidMask:
    def test_shape(self):
        assert pyramid_mask(3).shape == (3, 5, 5)
        assert pyramid_mask(5).shape == (5, 9, 9)

    def test_apex_is_1x1_at_newest_slice(self):
        mask = pyramid_mask(3)
        newest = mask[-1]
        assert newest.sum() == 1
        assert newest[2, 2] == 1

    def test_base_is_full_at_oldest_slice(self):
        mask = pyramid_mask(3)
        assert mask[0].sum() == 25  # full 5x5

    def test_intermediate_slices_grow_with_age(self):
        mask = pyramid_mask(4)
        sums = [mask[d].sum() for d in range(4)]
        assert sums == [49, 25, 9, 1]

    def test_cell_count_matches_mask(self):
        for size in range(1, 6):
            assert pyramid_mask(size).sum() == pyramid_cell_count(size)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            pyramid_mask(0)

    def test_slices_are_centered(self):
        mask = pyramid_mask(4)
        center = 3
        for d in range(4):
            radius = 4 - 1 - d
            expected = np.zeros((7, 7))
            expected[center - radius : center + radius + 1, center - radius : center + radius + 1] = 1
            assert np.array_equal(mask[d], expected)


class TestPyramidConv3D:
    def test_preserves_time_and_space(self, rng):
        layer = PyramidConv3D(2, 4, size=3, rng=0)
        out = layer(Tensor(rng.standard_normal((1, 2, 6, 5, 5))))
        assert out.shape == (1, 4, 6, 5, 5)

    def test_causality_future_does_not_leak_backward(self, rng):
        """Output at time t must not depend on inputs at times > t."""
        layer = PyramidConv3D(1, 2, size=3, rng=0)
        base = rng.standard_normal((1, 1, 6, 4, 4))
        perturbed = base.copy()
        perturbed[0, 0, 4:] += 100.0  # change only time slots 4, 5
        out_base = layer(Tensor(base)).data
        out_perturbed = layer(Tensor(perturbed)).data
        # Slots 0..3 must be identical; slot 4 (and 5) may differ.
        assert np.allclose(out_base[:, :, :4], out_perturbed[:, :, :4])
        assert not np.allclose(out_base[:, :, 4:], out_perturbed[:, :, 4:])

    def test_receptive_field_widens_with_age(self, rng):
        """A spatial cell 2 steps away influences the target only through
        slices >= 2 slots old — the pyramid's defining property."""
        layer = PyramidConv3D(1, 1, size=3, rng=0)
        layer.bias.data[...] = 0.0
        base = np.zeros((1, 1, 6, 7, 7))
        # Impulse at time 3, two cells away from center (3, 3).
        near_in_time = base.copy()
        near_in_time[0, 0, 3, 3, 5] = 1.0
        out = layer(Tensor(near_in_time)).data
        # At output time 3 (offset 0 → 1x1 kernel): no influence possible.
        # (The FFT convolution path leaves ~1e-14 roundoff, not exact zeros.)
        assert abs(out[0, 0, 3, 3, 3]) < 1e-10
        # At output time 4 (offset 1 → 3x3): distance 2 still outside.
        assert abs(out[0, 0, 4, 3, 3]) < 1e-10
        # At output time 5 (offset 2 → 5x5): inside the pyramid base.
        assert abs(out[0, 0, 5, 3, 3]) > 1e-6

    def test_masked_weights_never_update(self, rng):
        layer = PyramidConv3D(1, 2, size=2, rng=0)
        x = Tensor(rng.standard_normal((2, 1, 4, 5, 5)))
        out = layer(x)
        out.sum().backward()
        mask = layer.weight_mask
        assert np.all(layer.weight.grad[mask == 0] == 0)

    def test_gradients_exist_inside_mask(self, rng):
        layer = PyramidConv3D(1, 1, size=2, rng=0)
        x = Tensor(rng.standard_normal((2, 1, 4, 5, 5)))
        layer(x).sum().backward()
        mask = layer.weight_mask
        assert np.abs(layer.weight.grad[mask == 1]).sum() > 0
