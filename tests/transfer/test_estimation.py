"""Transfer-time estimation (paper future work, Sec. V-D)."""

import numpy as np
import pytest

from repro.city import BikeRecordBatch, SubwayRecordBatch
from repro.transfer import (
    estimate_transfer_times,
    match_transfers,
    stations_exceeding_threshold,
)


def _subway(times, stations, boarding, users):
    count = len(times)
    return SubwayRecordBatch(
        np.asarray(times, dtype=float),
        np.asarray(stations, dtype=int),
        np.zeros(count, dtype=int),
        np.asarray(boarding, dtype=bool),
        np.asarray(users, dtype=int),
    )


def _bikes(times, users, pickup=None):
    count = len(times)
    return BikeRecordBatch(
        np.asarray(times, dtype=float),
        np.full(count, 22.5),
        np.full(count, 114.0),
        np.ones(count, dtype=bool) if pickup is None else np.asarray(pickup, dtype=bool),
        np.asarray(users, dtype=int),
        np.zeros(count, dtype=int),
    )


class TestMatchTransfers:
    def test_matches_next_pickup_of_same_user(self):
        subway = _subway([100.0], [3], [False], [7])
        bikes = _bikes([400.0, 900.0], [7, 7])
        gaps = match_transfers(subway, bikes)
        assert list(gaps) == [3]
        assert gaps[3].tolist() == [300.0]

    def test_ignores_pickups_before_alighting(self):
        subway = _subway([500.0], [1], [False], [2])
        bikes = _bikes([100.0], [2])
        assert match_transfers(subway, bikes) == {}

    def test_ignores_other_users(self):
        subway = _subway([100.0], [1], [False], [2])
        bikes = _bikes([200.0], [3])
        assert match_transfers(subway, bikes) == {}

    def test_respects_max_gap(self):
        subway = _subway([0.0], [1], [False], [5])
        bikes = _bikes([10_000.0], [5])
        assert match_transfers(subway, bikes, max_gap_seconds=600) == {}

    def test_boardings_are_not_transfers(self):
        subway = _subway([100.0], [1], [True], [5])
        bikes = _bikes([200.0], [5])
        assert match_transfers(subway, bikes) == {}

    def test_multiple_users_multiple_stations(self):
        subway = _subway([0.0, 0.0], [1, 2], [False, False], [10, 20])
        bikes = _bikes([60.0, 120.0], [10, 20])
        gaps = match_transfers(subway, bikes)
        assert gaps[1].tolist() == [60.0]
        assert gaps[2].tolist() == [120.0]


class TestEstimation:
    def test_on_simulated_city(self, tiny_city):
        stats = estimate_transfer_times(tiny_city, min_transfers=3)
        assert stats, "simulated commuters must produce observable transfers"
        for stat in stats.values():
            assert stat.transfers >= 3
            assert 0 < stat.mean_seconds <= 30 * 60
            assert stat.median_seconds <= stat.p90_seconds
            assert stat.mean_minutes == pytest.approx(stat.mean_seconds / 60.0)

    def test_transfer_lag_matches_simulator_config(self, tiny_city):
        """The simulator draws transfer lags from a known window; the
        estimator must recover values consistent with it (plus ride noise)."""
        low, high = tiny_city.config.transfer_lag_minutes
        stats = estimate_transfer_times(tiny_city, min_transfers=5)
        means = [stat.mean_seconds / 60.0 for stat in stats.values()]
        overall = np.mean(means)
        assert low * 0.5 <= overall <= high * 2.0

    def test_threshold_filter(self):
        from repro.transfer import TransferStats

        stats = {
            1: TransferStats(1, 10, mean_seconds=120.0, median_seconds=100.0, p90_seconds=240.0),
            2: TransferStats(2, 10, mean_seconds=600.0, median_seconds=550.0, p90_seconds=900.0),
        }
        assert stations_exceeding_threshold(stats, threshold_seconds=300.0) == [2]
