"""End-to-end HTTP tests for the JSON gateway.

The acceptance bar: POSTing a raw full-grid window to ``/forecast`` must
return merged demand **bit-identical** to calling the per-shard services
directly — JSON floats round-trip exactly (``repr`` ↔ parse), so HTTP adds
no numeric drift — including when one shard is fault-injected into its
degraded tier.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs import tracing
from repro.serve.gateway import ForecastGateway

from .conftest import make_shard_router


def _post(url, payload, timeout=30):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as reply:
        return reply.status, json.loads(reply.read())


def _get(url, timeout=30):
    with urllib.request.urlopen(url, timeout=timeout) as reply:
        return reply.status, json.loads(reply.read())


@pytest.fixture
def gateway_factory(serve_dataset):
    """Yields a builder: router kwargs → a live gateway on an ephemeral port."""
    stack = []

    def build(**router_kwargs):
        router = make_shard_router(serve_dataset, **router_kwargs)
        gateway = ForecastGateway(router).start()
        stack.append((gateway, router))
        return gateway

    yield build
    for gateway, router in reversed(stack):
        gateway.stop()
        router.close()


class TestForecastRoute:
    def test_post_returns_demand_bit_identical_to_direct_calls(
        self, gateway_factory, raw_windows
    ):
        gateway = gateway_factory()
        window = raw_windows[0]
        status, payload = _post(f"{gateway.url}/forecast", {"window": window.tolist()})
        assert status == 200
        router = gateway.router
        served = np.array(payload["demand"])
        for region in router.regions:
            direct = router.services[region.name].predict_one(
                region.slice_window(window)
            )
            block = served[
                :, region.rows[0] : region.rows[1], region.cols[0] : region.cols[1]
            ]
            assert np.array_equal(block, direct.demand)
        assert payload["degraded"] is False
        assert payload["failed_shards"] == []
        assert [report["shard"] for report in payload["shards"]] == ["shard0", "shard1"]
        assert all(report["tier"] == "Primary" for report in payload["shards"])

    def test_fault_injected_shard_degrades_but_stays_bit_identical(
        self, gateway_factory, raw_windows
    ):
        gateway = gateway_factory(poisoned=("shard0",))
        window = raw_windows[0]
        status, payload = _post(f"{gateway.url}/forecast", {"window": window.tolist()})
        assert status == 200
        assert payload["degraded"] is True
        assert payload["failed_shards"] == []
        by_name = {report["shard"]: report for report in payload["shards"]}
        assert by_name["shard0"]["tier"] == "Floor" and by_name["shard0"]["degraded"]
        assert by_name["shard1"]["tier"] == "Primary"
        served = np.array(payload["demand"])
        router = gateway.router
        for region in router.regions:
            direct = router.services[region.name].predict_one(
                region.slice_window(window)
            )
            block = served[
                :, region.rows[0] : region.rows[1], region.cols[0] : region.cols[1]
            ]
            assert np.array_equal(block, direct.demand)

    def test_failed_shard_is_reported_not_fatal(self, gateway_factory, raw_windows):
        gateway = gateway_factory(failing=("shard0",))
        status, payload = _post(
            f"{gateway.url}/forecast", {"window": raw_windows[0].tolist()}
        )
        assert status == 200
        assert payload["failed_shards"] == ["shard0"]
        assert payload["degraded"] is True
        assert payload["shards"][0]["failed"] is True
        assert "shard down" in payload["shards"][0]["error"]
        assert np.array(payload["demand"]).shape == (2, 4, 4)

    def test_deadline_ms_is_forwarded(self, gateway_factory, raw_windows):
        gateway = gateway_factory()
        status, payload = _post(
            f"{gateway.url}/forecast",
            {"window": raw_windows[0].tolist(), "deadline_ms": 60_000},
        )
        assert status == 200
        assert payload["deadline_missed"] is False


class TestErrorHandling:
    def test_missing_window_field_is_400(self, gateway_factory):
        gateway = gateway_factory()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{gateway.url}/forecast", {"deadline_ms": 100})
        assert excinfo.value.code == 400
        assert "window" in json.loads(excinfo.value.read())["error"]

    def test_wrong_window_shape_is_400(self, gateway_factory):
        gateway = gateway_factory()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{gateway.url}/forecast", {"window": [[1.0, 2.0]]})
        assert excinfo.value.code == 400

    def test_non_json_body_is_400(self, gateway_factory):
        gateway = gateway_factory()
        request = urllib.request.Request(
            f"{gateway.url}/forecast", data=b"not json", headers={}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_unknown_route_is_404(self, gateway_factory):
        gateway = gateway_factory()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{gateway.url}/nope")
        assert excinfo.value.code == 404


class TestIntrospectionRoutes:
    def test_healthz_reports_shards_and_grid(self, gateway_factory):
        gateway = gateway_factory()
        status, payload = _get(f"{gateway.url}/healthz")
        assert status == 200
        assert payload == {"status": "ok", "shards": 2, "grid": [4, 4]}

    def test_shards_route_matches_router_describe(self, gateway_factory):
        gateway = gateway_factory()
        status, payload = _get(f"{gateway.url}/shards")
        assert status == 200
        assert payload["shards"] == gateway.router.describe()


class TestTraceLinkage:
    def test_gateway_router_shard_spans_nest_into_one_trace(
        self, gateway_factory, raw_windows
    ):
        gateway = gateway_factory()
        tracing.start_recording()
        try:
            _post(f"{gateway.url}/forecast", {"window": raw_windows[0].tolist()})
            records = tracing.recent()
        finally:
            tracing.stop_recording()
            tracing.reset()
        by_name = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)
        (gateway_span,) = by_name["gateway.request"]
        (route_span,) = by_name["serve.route"]
        shard_spans = by_name["serve.request"]
        assert route_span["parent_id"] == gateway_span["span_id"]
        assert len(shard_spans) == len(gateway.router.regions)
        assert {span["parent_id"] for span in shard_spans} == {route_span["span_id"]}
        # The request lifecycle is one trace end to end. (Worker-side
        # serve.batch/serve.tier spans are deliberate separate roots: one
        # coalesced batch may serve many traces.)
        lifecycle = [gateway_span, route_span, *shard_spans]
        assert {span["trace_id"] for span in lifecycle} == {gateway_span["trace_id"]}


class _StubController:
    """Just enough of an AdaptationController for the status surface."""

    def __init__(self, state="idle", swapped=0):
        self._state = state
        self._swapped = swapped

    def status(self):
        return {"state": self._state, "swapped": self._swapped}


class TestAdaptationRoute:
    def test_without_controllers_reports_disabled(self, gateway_factory):
        gateway = gateway_factory()
        status, payload = _get(f"{gateway.url}/adaptation")
        assert status == 200
        assert payload["enabled"] is False
        assert payload["shards"] == {}
        # Serving generations are reported regardless of adaptation.
        assert set(payload["generations"]) == {"shard0", "shard1"}
        assert all(g == 0 for g in payload["generations"].values())

    def test_attached_controllers_surface_their_status(self, gateway_factory):
        gateway = gateway_factory()
        gateway.router.attach_adaptation(
            {"shard0": _StubController(state="cooldown", swapped=2)}
        )
        status, payload = _get(f"{gateway.url}/adaptation")
        assert status == 200
        assert payload["enabled"] is True
        assert payload["shards"] == {"shard0": {"state": "cooldown", "swapped": 2}}

    def test_unknown_shard_name_is_rejected(self, gateway_factory):
        gateway = gateway_factory()
        with pytest.raises(ValueError, match="no shard"):
            gateway.router.attach_adaptation({"nope": _StubController()})

    def test_generation_moves_are_visible_per_shard(self, gateway_factory):
        from .conftest import ConstantForecaster

        gateway = gateway_factory()
        service = gateway.router.services["shard1"]
        service.swap_primary(ConstantForecaster(service.horizon, 0.2))
        _, payload = _get(f"{gateway.url}/adaptation")
        assert payload["generations"] == {"shard0": 0, "shard1": 1}
