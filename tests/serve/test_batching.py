"""MicroBatcher: coalescing, bit-identity with the direct batch call,
fault isolation inside a coalesced batch, and shutdown semantics."""

import threading

import numpy as np
import pytest

from repro.obs import tracing
from repro.pipeline import registry
from repro.serve import ForecastService, MicroBatcher

from .conftest import ConstantForecaster, FailingForecaster, ThresholdFaultForecaster

# Tiny-but-real BikeCAP: the one tier whose numerics could plausibly depend
# on how requests are batched, so it is the one the identity tests pin.
BIKECAP_HPARAMS = {
    "pyramid_size": 2,
    "capsule_dim": 2,
    "future_capsule_dim": 2,
    "decoder_hidden": 4,
}


def _service(ds, tiers):
    return ForecastService(
        tiers,
        ds.scaler,
        history=ds.history,
        horizon=ds.horizon,
        grid_shape=ds.grid_shape,
        num_features=ds.num_features,
        target_feature=ds.target_feature,
    )


@pytest.fixture(scope="module")
def bikecap_service(serve_dataset):
    ds = serve_dataset
    primary = registry.create(
        "BikeCAP",
        ds.history,
        ds.horizon,
        ds.grid_shape,
        ds.num_features,
        seed=0,
        **BIKECAP_HPARAMS,
    )
    floor = registry.create(
        "Persistence", ds.history, ds.horizon, ds.grid_shape, ds.num_features
    )
    service = _service(ds, [("BikeCAP", primary), ("Persistence", floor)])
    service.warm_up(batch_sizes=(1, 6))
    return service


class TestCoalescingIdentity:
    def test_coalesced_batch_is_bit_identical_to_direct_call(
        self, bikecap_service, raw_windows
    ):
        """The whole point of the micro-batcher: coalescing six concurrent
        requests answers them with ONE ``predict_batch`` call, and that call
        is the same call a direct caller would make with the same stack — so
        the demands must match bit for bit, not just approximately."""
        windows = list(raw_windows[:6])
        with MicroBatcher(
            bikecap_service, max_batch=6, max_wait_seconds=1.0
        ) as batcher:
            futures = [batcher.submit(window) for window in windows]
            responses = [future.result(timeout=30) for future in futures]
            batch_sizes = list(batcher.batch_sizes)

        # All six submissions landed in one coalesced forward pass.
        assert batch_sizes == [6]

        reference = bikecap_service.predict_batch(np.stack(windows))
        for response, expected in zip(responses, reference):
            assert response.tier == expected.tier == "BikeCAP"
            np.testing.assert_array_equal(response.demand, expected.demand)

    def test_coalesced_close_to_per_window_calls(self, bikecap_service, raw_windows):
        """Across *different* batch shapes BLAS reassociates float sums, so
        per-window answers are only close — equality is pinned against the
        same-shape direct call above."""
        windows = list(raw_windows[:4])
        with MicroBatcher(
            bikecap_service, max_batch=4, max_wait_seconds=1.0
        ) as batcher:
            responses = [
                future.result(timeout=30)
                for future in [batcher.submit(window) for window in windows]
            ]
        for response, window in zip(responses, windows):
            single = bikecap_service.predict_one(window)
            np.testing.assert_allclose(
                response.demand, single.demand, rtol=1e-6, atol=1e-8
            )

    def test_batch_invariant_tier_is_exact_per_window(self, serve_dataset, raw_windows):
        """Persistence is a pure reindex, so for it even the per-window
        comparison is exact — a stronger floor-tier guarantee."""
        ds = serve_dataset
        service = _service(
            ds,
            [(
                "Persistence",
                registry.create(
                    "Persistence", ds.history, ds.horizon, ds.grid_shape, ds.num_features
                ),
            )],
        )
        windows = list(raw_windows[:5])
        with MicroBatcher(service, max_batch=5, max_wait_seconds=1.0) as batcher:
            responses = [
                future.result(timeout=30)
                for future in [batcher.submit(window) for window in windows]
            ]
        for response, window in zip(responses, windows):
            np.testing.assert_array_equal(
                response.demand, service.predict_one(window).demand
            )


class TestFaultIsolation:
    def test_poisoned_request_degrades_without_touching_neighbours(
        self, serve_dataset, raw_windows
    ):
        ds = serve_dataset
        primary = ThresholdFaultForecaster(ConstantForecaster(ds.horizon, 0.5))
        service = _service(
            ds, [("Primary", primary), ("Floor", ConstantForecaster(ds.horizon, 0.1))]
        )
        windows = [np.array(window) for window in raw_windows[:4]]
        windows[2][0, 0, 0, 0] = 1e6  # poison exactly one request

        with MicroBatcher(service, max_batch=4, max_wait_seconds=1.0) as batcher:
            responses = [
                future.result(timeout=30)
                for future in [batcher.submit(window) for window in windows]
            ]

        assert [response.tier for response in responses] == [
            "Primary", "Primary", "Floor", "Primary",
        ]
        assert [response.degraded for response in responses] == [
            False, False, True, False,
        ]

    def test_total_failure_reaches_every_waiter(self, serve_dataset, raw_windows):
        ds = serve_dataset
        service = _service(ds, [("OnlyTier", FailingForecaster("all down"))])
        with MicroBatcher(service, max_batch=2, max_wait_seconds=1.0) as batcher:
            futures = [batcher.submit(window) for window in raw_windows[:2]]
            for future in futures:
                with pytest.raises(RuntimeError, match="all down"):
                    future.result(timeout=30)

    def test_partial_floor_failure_fails_only_the_poisoned_future(
        self, serve_dataset, raw_windows
    ):
        """With a flaky *floor*, one poisoned request must fail alone: its
        batch-mates' answers were computed and their futures must resolve,
        not inherit the poisoned request's floor error."""
        ds = serve_dataset
        floor = ThresholdFaultForecaster(ConstantForecaster(ds.horizon, 0.1))
        service = _service(ds, [("Floor", floor)])
        windows = [np.array(window) for window in raw_windows[:3]]
        windows[1][0, 0, 0, 0] = 1e6  # poison exactly one request

        with MicroBatcher(service, max_batch=3, max_wait_seconds=1.0) as batcher:
            futures = [batcher.submit(window) for window in windows]
            assert futures[0].result(timeout=30).tier == "Floor"
            with pytest.raises(RuntimeError, match="poisoned"):
                futures[1].result(timeout=30)
            assert futures[2].result(timeout=30).tier == "Floor"


class TestLifecycle:
    def test_submit_after_close_raises(self, serve_dataset, raw_windows):
        ds = serve_dataset
        service = _service(ds, [("Floor", ConstantForecaster(ds.horizon, 0.1))])
        batcher = MicroBatcher(service)
        batcher.close()
        batcher.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(raw_windows[0])

    def test_close_drains_queued_work(self, serve_dataset, raw_windows):
        ds = serve_dataset
        service = _service(ds, [("Floor", ConstantForecaster(ds.horizon, 0.1))])
        batcher = MicroBatcher(service, max_batch=8, max_wait_seconds=0.5)
        futures = [batcher.submit(window) for window in raw_windows[:3]]
        batcher.close()
        for future in futures:
            assert future.result(timeout=1).tier == "Floor"

    def test_closed_submit_ends_its_span_as_error(self, serve_dataset, raw_windows):
        """``submit`` opens the request-lifecycle span before the closed
        check; the rejection path must end it, or it dangles on the caller's
        thread and every later span there parents to a dead request."""
        ds = serve_dataset
        service = _service(ds, [("Floor", ConstantForecaster(ds.horizon, 0.1))])
        batcher = MicroBatcher(service)
        batcher.close()
        tracing.start_recording()
        try:
            with pytest.raises(RuntimeError, match="closed"):
                batcher.submit(raw_windows[0])
            requests = [
                record
                for record in tracing.recent()
                if record["name"] == "serve.request"
            ]
            assert len(requests) == 1
            assert requests[0]["status"] == "error"
            # Parent resolution on this thread is intact: a fresh span is a
            # root, not a child of the rejected request.
            with tracing.span("after-rejection"):
                pass
            (after,) = [
                record
                for record in tracing.recent()
                if record["name"] == "after-rejection"
            ]
            assert after["parent_id"] is None
        finally:
            tracing.stop_recording()
            tracing.reset()

    def test_close_fails_queued_futures_when_worker_is_stuck(
        self, serve_dataset, raw_windows
    ):
        """If the worker cannot be joined, queued callers must not block
        forever on futures nobody will resolve: close() fails the backlog
        and surfaces the unjoined worker as a warning."""
        ds = serve_dataset
        entered = threading.Event()
        release = threading.Event()

        class BlockingForecaster:
            def predict(self, x):
                entered.set()
                release.wait(timeout=30)
                x = np.asarray(x)
                return np.zeros((len(x), ds.horizon) + x.shape[2:4])

        service = _service(ds, [("Blocking", BlockingForecaster())])
        batcher = MicroBatcher(service, max_batch=1, max_wait_seconds=0.0)
        try:
            first = batcher.submit(raw_windows[0])
            assert entered.wait(timeout=5)  # worker is wedged in the tier
            second = batcher.submit(raw_windows[1])  # stays queued
            with pytest.warns(RuntimeWarning, match="failed to stop"):
                batcher.close(timeout=0.2)
            with pytest.raises(RuntimeError, match="closed before"):
                second.result(timeout=1)
        finally:
            release.set()
        # The in-flight request was already with the worker; un-wedging the
        # tier still answers it.
        assert first.result(timeout=30).tier == "Blocking"

    def test_validates_parameters_and_window_shape(self, serve_dataset):
        ds = serve_dataset
        service = _service(ds, [("Floor", ConstantForecaster(ds.horizon, 0.1))])
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(service, max_batch=0)
        with pytest.raises(ValueError, match="max_wait_seconds"):
            MicroBatcher(service, max_wait_seconds=-1)
        with MicroBatcher(service) as batcher:
            with pytest.raises(ValueError, match="shape"):
                batcher.submit(np.zeros((2, 2)))
