"""Region-sharded serving: partitioning, scatter/gather, honest merges.

The contract under test (docs/ARCHITECTURE.md "Sharded serving"):

- :func:`partition_grid` tiles the grid exactly once with contiguous,
  near-square blocks;
- the router's merged demand is bit-identical to calling each shard's
  service directly — including when a shard is fault-injected into its
  fallback tier (via :mod:`repro.faults`);
- one degraded shard degrades the merged answer; one *failed* shard fills
  its region from the router-level persistence floor without failing the
  city.
"""

import numpy as np
import pytest

from repro.data.datasets import dataset_from_tensor
from repro.pipeline.runner import execute
from repro.pipeline.spec import RunSpec
from repro.serve.shard import (
    ShardRegion,
    ShardRouter,
    load_shard_services,
    obs_metrics,
    partition_grid,
    router_from_dataset,
)

from .conftest import make_shard_router, manual_shard_services


# ----------------------------------------------------------------------
# partition_grid
# ----------------------------------------------------------------------
class TestPartitionGrid:
    def test_tiles_the_grid_exactly_once(self):
        regions = partition_grid((6, 6), 4)
        covered = np.zeros((6, 6), dtype=int)
        for region in regions:
            covered[
                region.rows[0] : region.rows[1], region.cols[0] : region.cols[1]
            ] += 1
        assert np.all(covered == 1)
        assert [region.name for region in regions] == [f"shard{i}" for i in range(4)]

    def test_square_count_gives_square_blocks(self):
        regions = partition_grid((6, 6), 4)
        assert all(region.grid_shape == (3, 3) for region in regions)

    def test_prime_count_falls_back_to_row_bands(self):
        # 3 shards on 6×6: (3 rows × 1 col) and (1 × 3) tie on squareness;
        # row bands win because windows slice contiguously row-major.
        regions = partition_grid((6, 6), 3)
        assert all(region.cols == (0, 6) for region in regions)
        assert [region.rows for region in regions] == [(0, 2), (2, 4), (4, 6)]

    def test_uneven_extents_differ_by_at_most_one(self):
        regions = partition_grid((5, 4), 2)
        heights = sorted(region.grid_shape[0] for region in regions)
        assert heights == [2, 3]
        covered = np.zeros((5, 4), dtype=int)
        for region in regions:
            covered[
                region.rows[0] : region.rows[1], region.cols[0] : region.cols[1]
            ] += 1
        assert np.all(covered == 1)

    def test_single_shard_is_the_whole_grid(self):
        (region,) = partition_grid((4, 4), 1)
        assert region.rows == (0, 4) and region.cols == (0, 4)

    def test_too_many_shards_for_the_grid_raises(self):
        with pytest.raises(ValueError, match="cannot tile"):
            partition_grid((2, 2), 5)

    def test_empty_region_rejected(self):
        with pytest.raises(ValueError, match="empty shard region"):
            ShardRegion(name="bad", rows=(2, 2), cols=(0, 4))


# ----------------------------------------------------------------------
# router construction + merge semantics
# ----------------------------------------------------------------------
class TestShardRouterMerge:
    def test_merged_demand_is_bit_identical_to_direct_shard_calls(
        self, serve_dataset, raw_windows
    ):
        window = raw_windows[0]
        with make_shard_router(serve_dataset) as router:
            merged = router.forecast(window)
            for region in router.regions:
                direct = router.services[region.name].predict_one(
                    region.slice_window(window)
                )
                block = merged.demand[
                    :, region.rows[0] : region.rows[1], region.cols[0] : region.cols[1]
                ]
                assert np.array_equal(block, direct.demand)
        assert not merged.degraded
        assert not merged.failed_shards
        assert merged.tier == "Primary|Primary"
        assert merged.demand.shape == (serve_dataset.horizon,) + serve_dataset.grid_shape

    def test_one_degraded_shard_degrades_the_merged_answer(
        self, serve_dataset, raw_windows
    ):
        window = raw_windows[0]
        with make_shard_router(serve_dataset, poisoned=("shard0",)) as router:
            merged = router.forecast(window)
            # Bit-identity must survive degradation: the injector is a
            # pure function of the window bytes, so the direct call
            # degrades identically.
            for region in router.regions:
                direct = router.services[region.name].predict_one(
                    region.slice_window(window)
                )
                block = merged.demand[
                    :, region.rows[0] : region.rows[1], region.cols[0] : region.cols[1]
                ]
                assert np.array_equal(block, direct.demand)
        assert merged.degraded
        assert merged.failed_shards == ()
        by_name = {report.shard: report for report in merged.shards}
        assert by_name["shard0"].tier == "Floor"
        assert by_name["shard0"].degraded and not by_name["shard0"].failed
        assert by_name["shard1"].tier == "Primary"
        assert not by_name["shard1"].degraded

    def test_one_failed_shard_floors_its_region_not_the_city(
        self, serve_dataset, raw_windows
    ):
        window = raw_windows[0]
        counter = obs_metrics.counter("serve_shard_failures_total", shard="shard0")
        before = counter.value
        with make_shard_router(serve_dataset, failing=("shard0",)) as router:
            merged = router.forecast(window)
            failed_region = router.regions[0]
            healthy_region = router.regions[1]
            healthy_direct = router.services[healthy_region.name].predict_one(
                healthy_region.slice_window(window)
            )
        assert merged.failed_shards == ("shard0",)
        assert merged.degraded  # a failed shard is a degraded answer
        assert merged.tier == "<failed>|Primary"
        report = merged.shards[0]
        assert report.failed and report.tier is None
        assert "shard down" in report.error
        # The failed block is the router-level floor: the region's last
        # observed demand slot repeated across the horizon.
        last = failed_region.slice_window(window)[-1, :, :, serve_dataset.target_feature]
        expected = np.clip(
            np.broadcast_to(last, (serve_dataset.horizon,) + last.shape), 0.0, None
        )
        block = merged.demand[
            :,
            failed_region.rows[0] : failed_region.rows[1],
            failed_region.cols[0] : failed_region.cols[1],
        ]
        assert np.array_equal(block, expected)
        # The healthy shard is untouched by its neighbour's failure.
        healthy_block = merged.demand[
            :,
            healthy_region.rows[0] : healthy_region.rows[1],
            healthy_region.cols[0] : healthy_region.cols[1],
        ]
        assert np.array_equal(healthy_block, healthy_direct.demand)
        assert counter.value == before + 1

    def test_wrong_window_shape_is_rejected(self, serve_dataset, raw_windows):
        with make_shard_router(serve_dataset) as router:
            with pytest.raises(ValueError, match="full-grid window"):
                router.forecast(raw_windows[0][:, :2])

    def test_describe_lists_regions_and_tiers(self, serve_dataset):
        with make_shard_router(serve_dataset) as router:
            described = router.describe()
        assert [entry["name"] for entry in described] == ["shard0", "shard1"]
        assert all(entry["tiers"] == ["Primary", "Floor"] for entry in described)
        assert described[0]["rows"] == [0, 4] or described[0]["rows"] == [0, 2]


class TestShardRouterValidation:
    def test_regions_must_tile_exactly_once(self, serve_dataset):
        regions = partition_grid(serve_dataset.grid_shape, 2)
        overlapping = (regions[0], regions[0].__class__("shard1", (0, 4), (0, 4)))
        services = manual_shard_services(serve_dataset, overlapping)
        with pytest.raises(ValueError, match="tile the grid exactly once"):
            ShardRouter(overlapping, services)

    def test_missing_service_is_rejected(self, serve_dataset):
        regions = partition_grid(serve_dataset.grid_shape, 2)
        services = manual_shard_services(serve_dataset, regions)
        del services["shard1"]
        with pytest.raises(ValueError, match="no service for shard"):
            ShardRouter(regions, services)

    def test_service_grid_must_match_region(self, serve_dataset):
        regions = partition_grid(serve_dataset.grid_shape, 2)
        lopsided = (
            ShardRegion("shard0", (0, 1), (0, 4)),
            ShardRegion("shard1", (1, 4), (0, 4)),
        )
        with pytest.raises(ValueError, match="service grid"):
            # Services shaped for the even 2×4 bands, regions 1×4 and 3×4.
            ShardRouter(lopsided, manual_shard_services(serve_dataset, regions))

    def test_duplicate_names_rejected(self, serve_dataset):
        regions = (
            ShardRegion("shard0", (0, 2), (0, 4)),
            ShardRegion("shard0", (2, 4), (0, 4)),
        )
        with pytest.raises(ValueError, match="unique"):
            ShardRouter(regions, manual_shard_services(serve_dataset, regions[:1]))


# ----------------------------------------------------------------------
# per-shard scaler / checkpoint wiring
# ----------------------------------------------------------------------
class TestLoadShardServices:
    def test_requires_exactly_one_scaler_source(self, serve_dataset):
        regions = partition_grid(serve_dataset.grid_shape, 2)
        spec = RunSpec(model="Persistence", history=5, horizon=2, epochs=0, seed=0)
        with pytest.raises(ValueError, match="exactly one"):
            load_shard_services(spec, regions, num_features=3)
        with pytest.raises(ValueError, match="exactly one"):
            load_shard_services(
                spec,
                regions,
                num_features=3,
                scaler=serve_dataset.scaler,
                scaler_states={},
            )

    def test_scaler_states_must_cover_every_shard(self, serve_dataset):
        regions = partition_grid(serve_dataset.grid_shape, 2)
        spec = RunSpec(model="Persistence", history=5, horizon=2, epochs=0, seed=0)
        states = {"shard0": serve_dataset.scaler.state()}
        with pytest.raises(ValueError, match="missing shard 'shard1'"):
            load_shard_services(
                spec,
                regions,
                num_features=3,
                history=5,
                horizon=2,
                scaler_states=states,
                fallbacks=(),
            )

    def test_per_shard_scalers_and_checkpoints_wire_through(self, tmp_path):
        rng = np.random.default_rng(11)
        tensor = rng.random((30, 4, 4, 3)) * 25.0
        # Skew one half so the per-shard extrema genuinely differ.
        tensor[:, 2:, :, :] *= 3.0
        regions = partition_grid((4, 4), 2)
        shard_datasets = {
            region.name: dataset_from_tensor(
                region.slice_tensor(tensor), history=5, horizon=2
            )
            for region in regions
        }
        spec = RunSpec(
            model="STGCN",
            history=5,
            horizon=2,
            epochs=1,
            seed=0,
            hparams={"hidden_channels": 2},
        )
        # Train shard0's own checkpoint on shard0's own sub-grid; shard1
        # builds fresh from the registry (no entry in the mapping).
        result = execute(
            spec,
            shard_datasets["shard0"],
            checkpoint_dir=str(tmp_path / "ckpt-shard0"),
        )
        services = load_shard_services(
            spec,
            regions,
            num_features=3,
            history=5,
            horizon=2,
            scaler_states={
                name: dataset.scaler.state()
                for name, dataset in shard_datasets.items()
            },
            checkpoint_paths={"shard0": result.checkpoint_path},
        )
        assert set(services) == {"shard0", "shard1"}
        for region in regions:
            service = services[region.name]
            own = shard_datasets[region.name].scaler
            assert service.grid_shape == region.grid_shape
            assert service.tier_names == ("STGCN", "Persistence")
            assert np.array_equal(service.scaler.minimum, own.minimum)
            assert np.array_equal(service.scaler.maximum, own.maximum)
        # The skewed halves fit different extrema — per-shard normalization
        # is real, not a copy of one global scaler.
        assert not np.array_equal(
            services["shard0"].scaler.maximum, services["shard1"].scaler.maximum
        )
        with ShardRouter(regions, services, max_wait_seconds=0.0) as router:
            merged = router.forecast(tensor[:5])  # a genuine raw window
        assert merged.demand.shape == (2, 4, 4)
        assert not merged.failed_shards

    def test_router_from_dataset_shares_the_full_grid_scaler(
        self, serve_dataset, raw_windows
    ):
        spec = RunSpec(model="Persistence", history=5, horizon=2, epochs=0, seed=0)
        with router_from_dataset(
            spec, serve_dataset, 2, fallbacks=(), max_wait_seconds=0.0
        ) as router:
            assert all(
                service.scaler is serve_dataset.scaler
                for service in router.services.values()
            )
            merged = router.forecast(raw_windows[0])
            for region in router.regions:
                direct = router.services[region.name].predict_one(
                    region.slice_window(raw_windows[0])
                )
                block = merged.demand[
                    :, region.rows[0] : region.rows[1], region.cols[0] : region.cols[1]
                ]
                assert np.array_equal(block, direct.demand)
        assert merged.tier == "Persistence|Persistence"
