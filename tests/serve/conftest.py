"""Shared fixtures and controllable stubs for the serving suite."""

import numpy as np
import pytest

from repro import faults
from repro.data.datasets import dataset_from_tensor


@pytest.fixture(autouse=True)
def _no_runlog(monkeypatch):
    """Serving tests must not litter results/runs/."""
    monkeypatch.setenv("REPRO_RUNLOG", "0")


@pytest.fixture(scope="session")
def serve_dataset():
    """A 4×4-grid, 3-feature dataset: big enough to serve, instant to build."""
    rng = np.random.default_rng(7)
    tensor = rng.random((50, 4, 4, 3)) * 30.0
    return dataset_from_tensor(tensor, history=5, horizon=2)


@pytest.fixture
def raw_windows(serve_dataset):
    """Raw-count request windows, exactly what an online caller sends."""
    return serve_dataset.scaler.inverse_transform(serve_dataset.split.test_x)


class ConstantForecaster:
    """Answers every window with one constant normalized value."""

    def __init__(self, horizon, value):
        self.horizon = int(horizon)
        self.value = float(value)
        self.calls = 0

    def predict(self, x):
        x = np.asarray(x)
        self.calls += 1
        return np.full((len(x), self.horizon) + x.shape[2:4], self.value)


class FailingForecaster:
    """Raises on every predict — a tier that is simply down."""

    def __init__(self, message="boom"):
        self.message = message

    def predict(self, x):
        raise RuntimeError(self.message)


class ThresholdFaultForecaster:
    """Raises when any normalized cell exceeds ``threshold``.

    The service clips normalized inputs to ``>= 0`` but not above, so a raw
    window carrying a value far past the scaler's fitted maximum normalizes
    to ``> 1`` — letting a test poison *chosen* windows deterministically.
    """

    def __init__(self, inner, threshold=1.5):
        self.inner = inner
        self.threshold = float(threshold)

    def predict(self, x):
        if np.any(np.asarray(x) > self.threshold):
            raise RuntimeError("poisoned window in batch")
        return self.inner.predict(x)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class PerWindowSlowForecaster:
    """Advances a :class:`FakeClock` by ``per_window × len(batch)``.

    Models a tier whose cost scales with batch size — exactly the cost
    shape the deadline pre-skip has to reason about. Advancing *before*
    delegating means a poisoned batch (inner raises) still pays for the
    windows it pushed through the forecaster.
    """

    def __init__(self, inner, per_window_seconds, clock):
        self.inner = inner
        self.per_window_seconds = float(per_window_seconds)
        self.clock = clock

    def predict(self, x):
        x = np.asarray(x)
        self.clock.advance(self.per_window_seconds * len(x))
        return self.inner.predict(x)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def manual_shard_services(dataset, regions, *, poisoned=(), failing=()):
    """Hand-built per-shard services over the dataset's (full-grid) scaler.

    ``poisoned`` shards get a deterministic :class:`repro.faults`
    injector on the primary (rate=1.0 → every window degrades to the
    Floor tier); ``failing`` shards get a single always-raising tier, so
    the whole shard fails outright.
    """
    from repro.serve import ForecastService

    services = {}
    for region in regions:
        if region.name in failing:
            tiers = [("Broken", FailingForecaster("shard down"))]
        else:
            primary = ConstantForecaster(dataset.horizon, 0.4)
            if region.name in poisoned:
                primary = faults.FaultInjectingForecaster(primary, rate=1.0)
            tiers = [
                ("Primary", primary),
                ("Floor", ConstantForecaster(dataset.horizon, 0.1)),
            ]
        services[region.name] = ForecastService(
            tiers,
            dataset.scaler,
            history=dataset.history,
            horizon=dataset.horizon,
            grid_shape=region.grid_shape,
            num_features=dataset.num_features,
            target_feature=dataset.target_feature,
        )
    return services


def make_shard_router(dataset, num_shards=2, **kwargs):
    """A 2-shard router over hand-built services; close it when done."""
    from repro.serve.shard import ShardRouter, partition_grid

    regions = partition_grid(dataset.grid_shape, num_shards)
    services = manual_shard_services(dataset, regions, **kwargs)
    return ShardRouter(regions, services, max_wait_seconds=0.0)


class FakeClock:
    """A manually advanced monotonic clock, so deadline tests never sleep."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds
