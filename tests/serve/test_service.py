"""ForecastService: scaling round-trip, tier tagging, degradation paths."""

import numpy as np
import pytest

from repro.data.normalization import MinMaxScaler
from repro.obs import metrics as obs_metrics
from repro.pipeline import registry
from repro.serve import (
    REASON_DEADLINE,
    REASON_ERROR,
    REASON_PREDICTED_DEADLINE,
    ForecastService,
    SlowForecaster,
)

from .conftest import (
    ConstantForecaster,
    FailingForecaster,
    FakeClock,
    ThresholdFaultForecaster,
)


def _persistence(ds):
    return registry.create(
        "Persistence", ds.history, ds.horizon, ds.grid_shape, ds.num_features
    )


def _service(ds, tiers, **overrides):
    kwargs = dict(
        history=ds.history,
        horizon=ds.horizon,
        grid_shape=ds.grid_shape,
        num_features=ds.num_features,
        target_feature=ds.target_feature,
    )
    kwargs.update(overrides)
    return ForecastService(tiers, ds.scaler, **kwargs)


class TestScalingRoundTrip:
    def test_normalize_predict_denormalize(self, serve_dataset, raw_windows):
        """One call == clip(transform) → predict → inverse_transform → clip."""
        ds = serve_dataset
        persistence = _persistence(ds)
        service = _service(ds, [("Persistence", persistence)])

        response = service.predict_one(raw_windows[0])

        normalized = np.clip(ds.scaler.transform(raw_windows[:1]), 0.0, None)
        expected = ds.scaler.inverse_transform(
            np.asarray(persistence.predict(normalized))[0], feature=ds.target_feature
        )
        expected = np.clip(expected, 0.0, None)
        np.testing.assert_array_equal(response.demand, expected)
        assert response.demand.shape == (ds.horizon,) + ds.grid_shape
        assert response.tier == "Persistence"
        assert not response.degraded
        assert response.skips == ()

    def test_primary_answer_is_tagged_primary(self, serve_dataset, raw_windows):
        ds = serve_dataset
        service = _service(
            ds,
            [("Primary", ConstantForecaster(ds.horizon, 0.5)),
             ("Floor", ConstantForecaster(ds.horizon, 0.1))],
        )
        response = service.predict_one(raw_windows[0])
        assert response.tier == "Primary"
        assert not response.degraded
        # The constant 0.5 denormalizes through the target feature's span.
        expected = ds.scaler.inverse_transform(
            np.full((ds.horizon,) + ds.grid_shape, 0.5), feature=ds.target_feature
        )
        np.testing.assert_array_equal(response.demand, np.clip(expected, 0.0, None))


class TestErrorDegradation:
    def test_broken_primary_falls_through_tagged(self, serve_dataset, raw_windows):
        ds = serve_dataset
        service = _service(
            ds,
            [("Broken", FailingForecaster("model is down")),
             ("Persistence", _persistence(ds))],
        )
        response = service.predict_one(raw_windows[0])
        assert response.tier == "Persistence"
        assert response.degraded
        assert len(response.skips) == 1
        assert "Broken" in response.skips[0]
        assert REASON_ERROR in response.skips[0]
        assert "model is down" in response.skips[0]

    def test_mid_batch_fault_degrades_only_poisoned_requests(
        self, serve_dataset, raw_windows
    ):
        """One bad window must not drag its whole micro-batch down a tier."""
        ds = serve_dataset
        primary = ThresholdFaultForecaster(ConstantForecaster(ds.horizon, 0.5))
        service = _service(
            ds, [("Primary", primary), ("Floor", ConstantForecaster(ds.horizon, 0.1))]
        )

        windows = np.array(raw_windows[:4])
        poisoned = (1, 3)
        for index in poisoned:
            # Far past the fitted maximum → normalizes above the fault
            # threshold for exactly these windows.
            windows[index, 0, 0, 0, 0] = 1e6

        responses = service.predict_batch(windows)
        for index, response in enumerate(responses):
            if index in poisoned:
                assert response.tier == "Floor", index
                assert response.degraded
                assert any(REASON_ERROR in skip for skip in response.skips)
            else:
                assert response.tier == "Primary", index
                assert not response.degraded
                assert response.skips == ()

    def test_floor_failure_propagates(self, serve_dataset, raw_windows):
        ds = serve_dataset
        service = _service(ds, [("OnlyTier", FailingForecaster("nothing left"))])
        with pytest.raises(RuntimeError, match="nothing left"):
            service.predict_one(raw_windows[0])


class TestDeadlines:
    def test_overrun_falls_back_to_floor(self, serve_dataset, raw_windows):
        ds = serve_dataset
        clock = FakeClock()
        slow = SlowForecaster(
            ConstantForecaster(ds.horizon, 0.5), 0.05, sleep=clock.advance
        )
        service = _service(
            ds,
            [("Slow", slow), ("Floor", ConstantForecaster(ds.horizon, 0.1))],
            clock=clock,
        )
        response = service.predict_one(raw_windows[0], deadline_seconds=0.01)
        assert response.tier == "Floor"
        assert response.degraded
        assert response.deadline_missed  # the miss already happened up-tier
        assert any(REASON_DEADLINE in skip for skip in response.skips)

    def test_ewma_preskips_known_slow_tier(self, serve_dataset, raw_windows):
        ds = serve_dataset
        clock = FakeClock()
        slow = SlowForecaster(
            ConstantForecaster(ds.horizon, 0.5), 0.05, sleep=clock.advance
        )
        service = _service(
            ds,
            [("Slow", slow), ("Floor", ConstantForecaster(ds.horizon, 0.1))],
            clock=clock,
        )
        # First request teaches the EWMA that "Slow" takes ~50ms.
        service.predict_one(raw_windows[0], deadline_seconds=0.01)
        assert service.estimated_latency("Slow") == pytest.approx(0.05)

        # Second request is predicted to miss, so the slow tier never runs
        # and the floor answers *within* the deadline.
        second = service.predict_one(raw_windows[1], deadline_seconds=0.01)
        assert second.tier == "Floor"
        assert second.degraded
        assert not second.deadline_missed
        assert any(REASON_PREDICTED_DEADLINE in skip for skip in second.skips)

    def test_already_expired_deadline_skips_primary(self, serve_dataset, raw_windows):
        ds = serve_dataset
        primary = ConstantForecaster(ds.horizon, 0.5)
        service = _service(
            ds, [("Primary", primary), ("Floor", ConstantForecaster(ds.horizon, 0.1))]
        )
        response = service.predict_one(raw_windows[0], deadline_seconds=-1.0)
        assert response.tier == "Floor"
        assert response.degraded
        assert primary.calls == 0  # the expensive tier never ran
        assert any(REASON_DEADLINE in skip for skip in response.skips)

    def test_floor_answers_even_past_deadline(self, serve_dataset, raw_windows):
        """The last tier never demotes: a late answer beats no answer."""
        ds = serve_dataset
        clock = FakeClock()
        slow_floor = SlowForecaster(
            ConstantForecaster(ds.horizon, 0.1), 0.05, sleep=clock.advance
        )
        service = _service(ds, [("Floor", slow_floor)], clock=clock)
        response = service.predict_one(raw_windows[0], deadline_seconds=0.01)
        assert response.tier == "Floor"
        assert not response.degraded  # nothing above it was skipped
        assert response.deadline_missed


class TestValidationAndMetrics:
    def test_rejects_unfitted_scaler(self, serve_dataset):
        ds = serve_dataset
        with pytest.raises(RuntimeError, match="fitted"):
            ForecastService(
                [("Floor", ConstantForecaster(ds.horizon, 0.1))],
                MinMaxScaler(),
                history=ds.history,
                horizon=ds.horizon,
                grid_shape=ds.grid_shape,
                num_features=ds.num_features,
            )

    def test_rejects_duplicate_tier_names(self, serve_dataset):
        ds = serve_dataset
        stub = ConstantForecaster(ds.horizon, 0.1)
        with pytest.raises(ValueError, match="unique"):
            _service(ds, [("Same", stub), ("Same", stub)])

    def test_rejects_wrong_window_shape(self, serve_dataset):
        ds = serve_dataset
        service = _service(ds, [("Floor", ConstantForecaster(ds.horizon, 0.1))])
        with pytest.raises(ValueError, match="shape"):
            service.predict_one(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="shape"):
            service.predict_batch(np.zeros((3, 2, 2)))

    def test_request_and_degradation_counters(self, serve_dataset, raw_windows):
        ds = serve_dataset
        obs_metrics.reset()
        service = _service(
            ds,
            [("Broken", FailingForecaster()),
             ("Floor", ConstantForecaster(ds.horizon, 0.1))],
        )
        service.predict_batch(np.array(raw_windows[:3]))
        assert obs_metrics.counter("serve_requests_total", tier="Floor").value == 3
        assert (
            obs_metrics.counter(
                "serve_degradations_total", tier="Broken", reason=REASON_ERROR
            ).value
            == 3
        )
        assert obs_metrics.histogram("serve_latency_seconds", tier="Floor").count == 3

    def test_warm_up_runs_every_tier_and_batch_size(self, serve_dataset):
        ds = serve_dataset
        tiers = [
            ("A", ConstantForecaster(ds.horizon, 0.5)),
            ("B", ConstantForecaster(ds.horizon, 0.1)),
        ]
        service = _service(ds, tiers)
        assert service.warm_up(batch_sizes=(1, 4)) == 4
        assert tiers[0][1].calls == 2
        assert tiers[1][1].calls == 2
