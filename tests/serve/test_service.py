"""ForecastService: scaling round-trip, tier tagging, degradation paths."""

import numpy as np
import pytest

from repro.data.normalization import MinMaxScaler
from repro.obs import metrics as obs_metrics
from repro.pipeline import registry
from repro.serve import (
    REASON_DEADLINE,
    REASON_ERROR,
    REASON_PREDICTED_DEADLINE,
    ForecastService,
    PartialBatchError,
    SlowForecaster,
)

from .conftest import (
    ConstantForecaster,
    FailingForecaster,
    FakeClock,
    PerWindowSlowForecaster,
    ThresholdFaultForecaster,
)


def _persistence(ds):
    return registry.create(
        "Persistence", ds.history, ds.horizon, ds.grid_shape, ds.num_features
    )


def _service(ds, tiers, **overrides):
    kwargs = dict(
        history=ds.history,
        horizon=ds.horizon,
        grid_shape=ds.grid_shape,
        num_features=ds.num_features,
        target_feature=ds.target_feature,
    )
    kwargs.update(overrides)
    return ForecastService(tiers, ds.scaler, **kwargs)


class TestScalingRoundTrip:
    def test_normalize_predict_denormalize(self, serve_dataset, raw_windows):
        """One call == clip(transform) → predict → inverse_transform → clip."""
        ds = serve_dataset
        persistence = _persistence(ds)
        service = _service(ds, [("Persistence", persistence)])

        response = service.predict_one(raw_windows[0])

        normalized = np.clip(ds.scaler.transform(raw_windows[:1]), 0.0, None)
        expected = ds.scaler.inverse_transform(
            np.asarray(persistence.predict(normalized))[0], feature=ds.target_feature
        )
        expected = np.clip(expected, 0.0, None)
        np.testing.assert_array_equal(response.demand, expected)
        assert response.demand.shape == (ds.horizon,) + ds.grid_shape
        assert response.tier == "Persistence"
        assert not response.degraded
        assert response.skips == ()

    def test_primary_answer_is_tagged_primary(self, serve_dataset, raw_windows):
        ds = serve_dataset
        service = _service(
            ds,
            [("Primary", ConstantForecaster(ds.horizon, 0.5)),
             ("Floor", ConstantForecaster(ds.horizon, 0.1))],
        )
        response = service.predict_one(raw_windows[0])
        assert response.tier == "Primary"
        assert not response.degraded
        # The constant 0.5 denormalizes through the target feature's span.
        expected = ds.scaler.inverse_transform(
            np.full((ds.horizon,) + ds.grid_shape, 0.5), feature=ds.target_feature
        )
        np.testing.assert_array_equal(response.demand, np.clip(expected, 0.0, None))


class TestErrorDegradation:
    def test_broken_primary_falls_through_tagged(self, serve_dataset, raw_windows):
        ds = serve_dataset
        service = _service(
            ds,
            [("Broken", FailingForecaster("model is down")),
             ("Persistence", _persistence(ds))],
        )
        response = service.predict_one(raw_windows[0])
        assert response.tier == "Persistence"
        assert response.degraded
        assert len(response.skips) == 1
        assert "Broken" in response.skips[0]
        assert REASON_ERROR in response.skips[0]
        assert "model is down" in response.skips[0]

    def test_mid_batch_fault_degrades_only_poisoned_requests(
        self, serve_dataset, raw_windows
    ):
        """One bad window must not drag its whole micro-batch down a tier."""
        ds = serve_dataset
        primary = ThresholdFaultForecaster(ConstantForecaster(ds.horizon, 0.5))
        service = _service(
            ds, [("Primary", primary), ("Floor", ConstantForecaster(ds.horizon, 0.1))]
        )

        windows = np.array(raw_windows[:4])
        poisoned = (1, 3)
        for index in poisoned:
            # Far past the fitted maximum → normalizes above the fault
            # threshold for exactly these windows.
            windows[index, 0, 0, 0, 0] = 1e6

        responses = service.predict_batch(windows)
        for index, response in enumerate(responses):
            if index in poisoned:
                assert response.tier == "Floor", index
                assert response.degraded
                assert any(REASON_ERROR in skip for skip in response.skips)
            else:
                assert response.tier == "Primary", index
                assert not response.degraded
                assert response.skips == ()

    def test_floor_failure_propagates(self, serve_dataset, raw_windows):
        ds = serve_dataset
        service = _service(ds, [("OnlyTier", FailingForecaster("nothing left"))])
        with pytest.raises(RuntimeError, match="nothing left"):
            service.predict_one(raw_windows[0])

    def test_partial_floor_failure_keeps_the_survivors(
        self, serve_dataset, raw_windows
    ):
        """One poisoned request reaching a flaky floor must not void the
        answers already computed for its healthy batch-mates: the batch
        raises ``PartialBatchError`` carrying the survivors' responses plus
        the per-request floor errors."""
        ds = serve_dataset
        floor = ThresholdFaultForecaster(ConstantForecaster(ds.horizon, 0.1))
        service = _service(
            ds, [("Broken", FailingForecaster("primary down")), ("Floor", floor)]
        )
        windows = np.array(raw_windows[:4])
        windows[2, 0, 0, 0, 0] = 1e6  # poison exactly one request

        with pytest.raises(PartialBatchError) as excinfo:
            service.predict_batch(windows)
        error = excinfo.value
        assert set(error.errors) == {2}
        assert "poisoned" in str(error.errors[2])
        assert [response is not None for response in error.responses] == [
            True, True, False, True,
        ]
        for index in (0, 1, 3):
            response = error.responses[index]
            assert response.tier == "Floor"
            assert response.degraded  # "Broken" was skipped above it

    def test_predict_one_unwraps_the_single_floor_error(
        self, serve_dataset, raw_windows
    ):
        """A batch of one has exactly one underlying error; single-window
        callers get it directly, not wrapped in PartialBatchError."""
        ds = serve_dataset
        floor = ThresholdFaultForecaster(ConstantForecaster(ds.horizon, 0.1))
        service = _service(ds, [("Floor", floor)])
        window = np.array(raw_windows[0])
        window[0, 0, 0, 0] = 1e6
        with pytest.raises(RuntimeError, match="poisoned") as excinfo:
            service.predict_one(window)
        assert not isinstance(excinfo.value, PartialBatchError)


class TestDeadlines:
    def test_overrun_falls_back_to_floor(self, serve_dataset, raw_windows):
        ds = serve_dataset
        clock = FakeClock()
        slow = SlowForecaster(
            ConstantForecaster(ds.horizon, 0.5), 0.05, sleep=clock.advance
        )
        service = _service(
            ds,
            [("Slow", slow), ("Floor", ConstantForecaster(ds.horizon, 0.1))],
            clock=clock,
        )
        response = service.predict_one(raw_windows[0], deadline_seconds=0.01)
        assert response.tier == "Floor"
        assert response.degraded
        assert response.deadline_missed  # the miss already happened up-tier
        assert any(REASON_DEADLINE in skip for skip in response.skips)

    def test_ewma_preskips_known_slow_tier(self, serve_dataset, raw_windows):
        ds = serve_dataset
        clock = FakeClock()
        slow = SlowForecaster(
            ConstantForecaster(ds.horizon, 0.5), 0.05, sleep=clock.advance
        )
        service = _service(
            ds,
            [("Slow", slow), ("Floor", ConstantForecaster(ds.horizon, 0.1))],
            clock=clock,
        )
        # First request teaches the EWMA that "Slow" takes ~50ms.
        service.predict_one(raw_windows[0], deadline_seconds=0.01)
        assert service.estimated_latency("Slow") == pytest.approx(0.05)

        # Second request is predicted to miss, so the slow tier never runs
        # and the floor answers *within* the deadline.
        second = service.predict_one(raw_windows[1], deadline_seconds=0.01)
        assert second.tier == "Floor"
        assert second.degraded
        assert not second.deadline_missed
        assert any(REASON_PREDICTED_DEADLINE in skip for skip in second.skips)

    def test_already_expired_deadline_skips_primary(self, serve_dataset, raw_windows):
        ds = serve_dataset
        primary = ConstantForecaster(ds.horizon, 0.5)
        service = _service(
            ds, [("Primary", primary), ("Floor", ConstantForecaster(ds.horizon, 0.1))]
        )
        response = service.predict_one(raw_windows[0], deadline_seconds=-1.0)
        assert response.tier == "Floor"
        assert response.degraded
        assert primary.calls == 0  # the expensive tier never ran
        assert any(REASON_DEADLINE in skip for skip in response.skips)

    def test_preskip_scales_the_estimate_by_batch_size(
        self, serve_dataset, raw_windows
    ):
        """The tier runs its attempt set as ONE batched forward, so the
        pre-skip must predict ``estimate × len(attempt)`` — with the
        per-window estimate alone all four requests look safe, the batch of
        four costs 1.0s against 0.5s deadlines, and every answer lands
        late. Dropping tightest-deadline first shrinks the batch until the
        survivors genuinely fit."""
        ds = serve_dataset
        clock = FakeClock()
        slow = PerWindowSlowForecaster(ConstantForecaster(ds.horizon, 0.5), 0.25, clock)
        service = _service(
            ds,
            [("Slow", slow), ("Floor", ConstantForecaster(ds.horizon, 0.1))],
            clock=clock,
        )
        # Teach the EWMA: one single-window request costs exactly 0.25s.
        service.predict_one(raw_windows[0])
        assert service.estimated_latency("Slow") == pytest.approx(0.25)

        windows = np.array(raw_windows[1:5])
        deadlines = [clock.now + 0.5] * 4  # each fits 2 windows, not 4
        responses = service.predict_batch(windows, deadlines=deadlines)

        slow_answers = [r for r in responses if r.tier == "Slow"]
        floor_answers = [r for r in responses if r.tier == "Floor"]
        # Two requests were shed so the other two could make their deadline.
        assert len(slow_answers) == 2
        assert len(floor_answers) == 2
        assert not any(response.deadline_missed for response in responses)
        for response in floor_answers:
            assert any(
                REASON_PREDICTED_DEADLINE in skip for skip in response.skips
            )

    def test_retry_storm_is_weighted_into_the_ewma_per_window(
        self, serve_dataset, raw_windows
    ):
        """A poisoned batch costs batched-attempt + per-window retries
        (~2× the windows); folding that elapsed time into the EWMA divided
        only by the batch size would double the tier's estimated per-window
        cost and starve it of future traffic."""
        ds = serve_dataset
        clock = FakeClock()
        flaky = PerWindowSlowForecaster(
            ThresholdFaultForecaster(ConstantForecaster(ds.horizon, 0.5)), 1.0, clock
        )
        service = _service(
            ds,
            [("Flaky", flaky), ("Floor", ConstantForecaster(ds.horizon, 0.1))],
            clock=clock,
        )
        windows = np.array(raw_windows[:4])
        windows[1, 0, 0, 0, 0] = 1e6  # poison one → batched pass fails

        responses = service.predict_batch(windows)
        assert responses[1].tier == "Floor"
        # 8s elapsed (4-window batch + 4 single retries) over 8 executed
        # windows → 1.0s/window, not 8/4 = 2.0.
        assert service.estimated_latency("Flaky") == pytest.approx(1.0)

    def test_floor_answers_even_past_deadline(self, serve_dataset, raw_windows):
        """The last tier never demotes: a late answer beats no answer."""
        ds = serve_dataset
        clock = FakeClock()
        slow_floor = SlowForecaster(
            ConstantForecaster(ds.horizon, 0.1), 0.05, sleep=clock.advance
        )
        service = _service(ds, [("Floor", slow_floor)], clock=clock)
        response = service.predict_one(raw_windows[0], deadline_seconds=0.01)
        assert response.tier == "Floor"
        assert not response.degraded  # nothing above it was skipped
        assert response.deadline_missed


class TestValidationAndMetrics:
    def test_rejects_unfitted_scaler(self, serve_dataset):
        ds = serve_dataset
        with pytest.raises(RuntimeError, match="fitted"):
            ForecastService(
                [("Floor", ConstantForecaster(ds.horizon, 0.1))],
                MinMaxScaler(),
                history=ds.history,
                horizon=ds.horizon,
                grid_shape=ds.grid_shape,
                num_features=ds.num_features,
            )

    def test_rejects_duplicate_tier_names(self, serve_dataset):
        ds = serve_dataset
        stub = ConstantForecaster(ds.horizon, 0.1)
        with pytest.raises(ValueError, match="unique"):
            _service(ds, [("Same", stub), ("Same", stub)])

    def test_rejects_wrong_window_shape(self, serve_dataset):
        ds = serve_dataset
        service = _service(ds, [("Floor", ConstantForecaster(ds.horizon, 0.1))])
        with pytest.raises(ValueError, match="shape"):
            service.predict_one(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="shape"):
            service.predict_batch(np.zeros((3, 2, 2)))

    def test_request_and_degradation_counters(self, serve_dataset, raw_windows):
        ds = serve_dataset
        obs_metrics.reset()
        service = _service(
            ds,
            [("Broken", FailingForecaster()),
             ("Floor", ConstantForecaster(ds.horizon, 0.1))],
        )
        service.predict_batch(np.array(raw_windows[:3]))
        assert obs_metrics.counter("serve_requests_total", tier="Floor").value == 3
        assert (
            obs_metrics.counter(
                "serve_degradations_total", tier="Broken", reason=REASON_ERROR
            ).value
            == 3
        )
        assert obs_metrics.histogram("serve_latency_seconds", tier="Floor").count == 3

    def test_warm_up_runs_every_tier_and_batch_size(self, serve_dataset):
        ds = serve_dataset
        tiers = [
            ("A", ConstantForecaster(ds.horizon, 0.5)),
            ("B", ConstantForecaster(ds.horizon, 0.1)),
        ]
        service = _service(ds, tiers)
        assert service.warm_up(batch_sizes=(1, 4)) == 4
        assert tiers[0][1].calls == 2
        assert tiers[1][1].calls == 2
