"""DriftMonitor / SloMonitor: service glue around the obs.drift leaf."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.drift import DriftDetector, SloSpec
from repro.obs.runlog import RunLogger, read_events
from repro.serve import DriftMonitor, ForecastService, SloMonitor

from .conftest import ConstantForecaster


def _service(ds):
    return ForecastService(
        [("Primary", ConstantForecaster(ds.horizon, 0.5))],
        ds.scaler,
        history=ds.history,
        horizon=ds.horizon,
        grid_shape=ds.grid_shape,
        num_features=ds.num_features,
        target_feature=ds.target_feature,
    )


class TestDriftMonitor:
    def test_feed_scores_mean_absolute_error(self, serve_dataset, raw_windows):
        service = _service(serve_dataset)
        base = service.predict_one(raw_windows[0]).demand
        monitor = DriftMonitor(service, label="feed-test")
        report = monitor.feed(raw_windows[0], base + 1.25)
        assert report.error == pytest.approx(1.25)
        assert report.samples == 1

    def test_feed_without_service_raises(self):
        monitor = DriftMonitor()
        with pytest.raises(RuntimeError, match="needs a service"):
            monitor.feed(np.zeros(1), np.zeros(1))

    def test_feed_rejects_shape_mismatch(self, serve_dataset, raw_windows):
        monitor = DriftMonitor(_service(serve_dataset))
        bad = np.zeros((serve_dataset.horizon + 1,) + serve_dataset.grid_shape)
        with pytest.raises(ValueError, match="shape"):
            monitor.feed(raw_windows[0], bad)

    def test_observe_error_publishes_gauges(self):
        monitor = DriftMonitor(detector=DriftDetector(warmup=4), label="gauge-test")
        for _ in range(6):
            monitor.observe_error(2.0)
        assert obs_metrics.gauge("forecast_error_ewma", service="gauge-test").value == (
            pytest.approx(2.0)
        )
        assert obs_metrics.gauge("forecast_drift_score", service="gauge-test").value == 0.0

    def test_sustained_shift_emits_exactly_one_runlog_event(
        self, serve_dataset, raw_windows, tmp_path
    ):
        service = _service(serve_dataset)
        base = service.predict_one(raw_windows[0]).demand
        monitor = DriftMonitor(
            service, detector=DriftDetector(warmup=8), label="drift-test"
        )
        logger = RunLogger(str(tmp_path / "drift.jsonl"), seed=0).open()
        try:
            for _ in range(16):
                monitor.feed(raw_windows[0], base + 1.0)
            fired = [
                monitor.feed(raw_windows[0], base + 4.0).drifted for _ in range(40)
            ]
        finally:
            logger.close()
        assert sum(fired) == 1
        assert len(monitor.detections) == 1
        events = [e for e in read_events(logger.path) if e["event"] == "drift_detected"]
        assert len(events) == 1
        (event,) = events
        assert event["service"] == "drift-test"
        assert event["tier"] == "Primary"
        assert event["baseline"] == pytest.approx(1.0)
        counter = obs_metrics.counter("forecast_drift_events_total", service="drift-test")
        assert counter.value == 1.0


def _response(latency=0.01, missed=False, degraded=False):
    return SimpleNamespace(
        latency_seconds=latency, deadline_missed=missed, degraded=degraded
    )


class TestSloMonitor:
    def test_evaluates_on_cadence(self):
        monitor = SloMonitor(SloSpec(min_samples=1), label="cadence", evaluate_every=4)
        results = [monitor.observe(_response()) for _ in range(8)]
        evaluated = [status is not None for status in results]
        assert evaluated == [False, False, False, True, False, False, False, True]

    def test_evaluate_every_validation(self):
        with pytest.raises(ValueError):
            SloMonitor(evaluate_every=0)

    def test_sustained_breach_is_one_event(self, tmp_path):
        spec = SloSpec(p99_latency_seconds=0.05, min_samples=4)
        monitor = SloMonitor(spec, label="burn-test", evaluate_every=4)
        logger = RunLogger(str(tmp_path / "slo.jsonl")).open()
        try:
            for _ in range(16):
                monitor.observe(_response(latency=0.5))
        finally:
            logger.close()
        assert monitor.burn_events == 1
        events = [e for e in read_events(logger.path) if e["event"] == "slo_burn"]
        assert len(events) == 1
        assert events[0]["breaches"] == ["p99_latency"]
        assert obs_metrics.counter("slo_burn_events_total", service="burn-test").value == 1.0

    def test_breach_set_change_retriggers(self):
        spec = SloSpec(p99_latency_seconds=0.05, degraded_budget=0.1, min_samples=4)
        monitor = SloMonitor(spec, label="retrigger", evaluate_every=4)
        for _ in range(8):
            monitor.observe(_response(latency=0.5))
        assert monitor.burn_events == 1
        # A second objective starts burning: the breach set changed.
        for _ in range(8):
            monitor.observe(_response(latency=0.5, degraded=True))
        assert monitor.burn_events == 2

    def test_healthy_stream_publishes_gauges_without_events(self):
        monitor = SloMonitor(SloSpec(min_samples=1), label="healthy", evaluate_every=2)
        for _ in range(4):
            monitor.observe(_response(latency=0.01))
        assert monitor.burn_events == 0
        gauge = obs_metrics.gauge("slo_p99_latency_seconds", service="healthy")
        assert gauge.value == pytest.approx(0.01)
        assert obs_metrics.gauge("slo_latency_burn", service="healthy").value == (
            pytest.approx(0.02)
        )


class TestTierExclusion:
    """Only model-tier errors update the drift detector (ISSUE 10 sat. 1)."""

    def test_fallback_tier_error_is_counted_not_detected(self, serve_dataset):
        monitor = DriftMonitor(_service(serve_dataset), label="excl-basic")
        report = monitor.observe_error(5.0, tier="Floor")
        assert monitor.excluded_samples == 1
        assert monitor.detector.samples == 0  # detector untouched
        assert report.error == 5.0
        assert not report.drifted
        counter = obs_metrics.counter(
            "forecast_drift_excluded_total", service="excl-basic", tier="Floor"
        )
        assert counter.value == 1.0
        # The primary's errors do feed the detector.
        monitor.observe_error(5.0, tier="Primary")
        assert monitor.detector.samples == 1
        assert monitor.excluded_samples == 1

    def test_excluded_sample_reports_current_score_unchanged(self, serve_dataset):
        monitor = DriftMonitor(
            _service(serve_dataset),
            detector=DriftDetector(warmup=4),
            label="excl-score",
        )
        for _ in range(6):
            monitor.observe_error(1.0, tier="Primary")
        armed_samples = monitor.detector.samples
        # A catastrophic fallback error passes through without inflating
        # the EWMA: the score it reports is the detector's current one.
        report = monitor.observe_error(100.0, tier="Floor")
        assert monitor.detector.samples == armed_samples
        assert report.score == pytest.approx(0.0)
        assert report.ewma == pytest.approx(1.0)
        assert not report.drifted

    def test_model_tiers_pins_the_inclusion_set(self):
        monitor = DriftMonitor(model_tiers=("BikeCAP",), label="excl-pin")
        assert monitor.includes("BikeCAP")
        assert not monitor.includes("Persistence")
        assert monitor.includes(None)  # bare observe_error is always model

    def test_hot_swap_rename_keeps_the_primary_included(self, serve_dataset):
        from tests.serve.conftest import ConstantForecaster as Constant

        service = _service(serve_dataset)
        monitor = DriftMonitor(service, label="excl-swap")
        assert monitor.includes("Primary")
        service.swap_primary(
            Constant(serve_dataset.horizon, 0.4), name="Primary-v2"
        )
        assert monitor.includes("Primary-v2")
        assert not monitor.includes("Primary")

    def test_no_ewma_gauge_before_the_detector_is_fed(self, serve_dataset):
        monitor = DriftMonitor(_service(serve_dataset), label="excl-fresh")
        monitor.observe_error(3.0, tier="Floor")  # excluded: EWMA still None
        # The gauge must not have been set: publishing 0.0 for an unfed
        # EWMA would be indistinguishable from a true zero-error stream.
        gauge = obs_metrics.gauge("forecast_error_ewma", service="excl-fresh")
        assert gauge.value == 0.0

    def test_degraded_answer_in_feed_is_excluded(self, serve_dataset, raw_windows):
        from repro.serve import ForecastService
        from tests.serve.conftest import ConstantForecaster as Constant
        from tests.serve.conftest import FailingForecaster

        ds = serve_dataset
        service = ForecastService(
            [("Primary", FailingForecaster()), ("Floor", Constant(ds.horizon, 0.1))],
            ds.scaler,
            history=ds.history,
            horizon=ds.horizon,
            grid_shape=ds.grid_shape,
            num_features=ds.num_features,
            target_feature=ds.target_feature,
        )
        monitor = DriftMonitor(service, label="excl-degraded")
        report = monitor.feed(raw_windows[0], np.zeros((ds.horizon,) + ds.grid_shape))
        # The Floor answered — an operational hiccup, not model drift.
        assert monitor.excluded_samples == 1
        assert monitor.detector.samples == 0
        assert not report.drifted
