"""Serving-path observability under concurrency.

Pins the acceptance behaviors of the tracing/telemetry work: request spans
that cross the MicroBatcher's thread hand-off, tier-retry spans parented to
the *request* that failed, a live ``/metrics`` scrape while client threads
are in flight, and multi-writer run logs staying valid JSONL.
"""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.obs import tracing
from repro.obs.runlog import RunLogger, read_events
from repro.obs.serve_metrics import start_exporter
from repro.serve import ForecastService, MicroBatcher, SlowForecaster

from .conftest import ConstantForecaster, ThresholdFaultForecaster


def _service(ds, tiers):
    return ForecastService(
        tiers,
        ds.scaler,
        history=ds.history,
        horizon=ds.horizon,
        grid_shape=ds.grid_shape,
        num_features=ds.num_features,
        target_feature=ds.target_feature,
    )


@pytest.fixture
def recording():
    tracing.start_recording()
    yield tracing.get_tracer()
    tracing.stop_recording()
    tracing.reset()


class TestTracePropagation:
    def test_request_spans_cross_the_batcher_hand_off(
        self, serve_dataset, raw_windows, recording
    ):
        """A degraded request's tier-retry spans parent to ITS request span.

        The request span starts on the client thread, inference happens on
        the batcher worker; the poisoned window's failed retry must link
        back to the poisoned request, not to a batchmate.
        """
        ds = serve_dataset
        service = _service(
            ds,
            [
                ("Primary", ThresholdFaultForecaster(ConstantForecaster(ds.horizon, 0.5))),
                ("Floor", ConstantForecaster(ds.horizon, 0.1)),
            ],
        )
        windows = [np.array(raw_windows[i]) for i in range(4)]
        # Push one window far past the scaler's fitted max: it normalizes
        # > 1.5 and deterministically poisons only that request.
        windows[2] = windows[2] + 10_000.0

        with MicroBatcher(service, max_batch=4, max_wait_seconds=0.05) as batcher:
            futures = [batcher.submit(window) for window in windows]
            responses = [future.result(timeout=10) for future in futures]

        assert [response.tier for response in responses] == [
            "Primary", "Primary", "Floor", "Primary",
        ]

        records = tracing.recent()
        requests = [r for r in records if r["name"] == "serve.request"]
        assert len(requests) == 4
        # Each submission is its own trace.
        assert len({r["trace_id"] for r in requests}) == 4

        degraded = [r for r in requests if r["attributes"].get("degraded")]
        assert len(degraded) == 1
        (poisoned,) = degraded
        assert poisoned["attributes"]["tier"] == "Floor"

        # The primary's failed per-window retry nests under the poisoned
        # request's span — across the client->worker thread hand-off.
        retries = [r for r in records if r["name"] == "serve.tier.retry"]
        failed = [r for r in retries if r["status"] == "error"]
        assert len(failed) == 1
        assert failed[0]["parent_id"] == poisoned["span_id"]
        assert failed[0]["trace_id"] == poisoned["trace_id"]
        assert failed[0]["thread"] != "MainThread"

        # Healthy batchmates' retries (the batched pass failed as a whole)
        # each link to their own request.
        ok_parents = {r["parent_id"] for r in retries if r["status"] == "ok"}
        ok_request_ids = {
            r["span_id"] for r in requests if not r["attributes"].get("degraded")
        }
        assert ok_parents == ok_request_ids

    def test_chrome_export_nests_retry_under_request(
        self, serve_dataset, raw_windows, recording
    ):
        ds = serve_dataset
        service = _service(
            ds,
            [
                ("Primary", ThresholdFaultForecaster(ConstantForecaster(ds.horizon, 0.5))),
                ("Floor", ConstantForecaster(ds.horizon, 0.1)),
            ],
        )
        poisoned = np.array(raw_windows[0]) + 10_000.0
        with MicroBatcher(service, max_batch=2, max_wait_seconds=0.0) as batcher:
            batcher.forecast(poisoned)

        payload = tracing.chrome_trace()
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        request = next(e for e in spans if e["name"] == "serve.request")
        retry = next(e for e in spans if e["name"] == "serve.tier.retry")
        # Same synthetic track + time containment = visual nesting in
        # Perfetto; the parent link survives in args.
        assert retry["tid"] == request["tid"]
        assert retry["args"]["parent_id"] == request["args"]["span_id"]
        assert request["ts"] <= retry["ts"]
        assert request["ts"] + request["dur"] >= retry["ts"] + retry["dur"]

    def test_recording_off_leaves_no_records(self, serve_dataset, raw_windows):
        ds = serve_dataset
        service = _service(ds, [("Primary", ConstantForecaster(ds.horizon, 0.5))])
        with MicroBatcher(service, max_batch=2) as batcher:
            batcher.forecast(raw_windows[0])
        assert tracing.recent() == []


class TestLiveScrapeDuringLoad:
    def test_metrics_scrape_while_clients_are_in_flight(
        self, serve_dataset, raw_windows
    ):
        ds = serve_dataset
        primary = SlowForecaster(ConstantForecaster(ds.horizon, 0.5), 0.005)
        service = _service(ds, [("Primary", primary)])
        server = start_exporter(port=0)
        scrapes = []
        try:
            with MicroBatcher(service, max_batch=4, max_wait_seconds=0.001) as batcher:
                started = threading.Barrier(3)

                def client():
                    started.wait()
                    for index in range(20):
                        batcher.forecast(raw_windows[index % len(raw_windows)])

                threads = [threading.Thread(target=client) for _ in range(2)]
                for thread in threads:
                    thread.start()
                started.wait()
                # ~40 requests x 5ms of injected latency: keep scraping
                # while the load is in flight.
                mid_flight = 0
                while any(thread.is_alive() for thread in threads):
                    with urllib.request.urlopen(
                        server.url + "/metrics", timeout=5
                    ) as response:
                        scrapes.append((response.status, response.read().decode()))
                    mid_flight += 1
                for thread in threads:
                    thread.join()
                # One more after the load so the counters are settled.
                with urllib.request.urlopen(
                    server.url + "/metrics", timeout=5
                ) as response:
                    scrapes.append((response.status, response.read().decode()))
        finally:
            server.stop()
        assert mid_flight > 0
        assert all(status == 200 for status, _body in scrapes)
        final = scrapes[-1][1]
        assert "serve_requests_total" in final
        assert "serve_microbatch_coalesced" in final


class TestRunLogConcurrency:
    def test_parallel_emitters_produce_valid_jsonl(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        logger = RunLogger(path, seed=1).open()
        writers, per_writer = 8, 50

        def emit(worker: int):
            for index in range(per_writer):
                logger.event("tick", worker=worker, index=index)

        threads = [threading.Thread(target=emit, args=(i,)) for i in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        logger.close()

        # Every line parses on its own: no torn/interleaved writes.
        with open(path) as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert len(lines) == writers * per_writer + 2
        ticks = [line for line in lines if line["event"] == "tick"]
        assert len(ticks) == writers * per_writer
        seen = {(line["worker"], line["index"]) for line in ticks}
        assert len(seen) == writers * per_writer

    def test_emit_racing_close_drops_instead_of_crashing(self, tmp_path):
        logger = RunLogger(str(tmp_path / "race.jsonl")).open()
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                try:
                    logger.event("tick")
                except RuntimeError:
                    return  # is_open flipped first: also acceptable

        thread = threading.Thread(target=hammer)
        thread.start()
        logger.close()
        stop.set()
        thread.join(timeout=5)
        events = read_events(logger.path)
        assert events[-1]["event"] == "run_end"
