"""AdaptationController: trigger gating, shadow gate, hot-swap atomicity,
chaos (crash mid-fine-tune / mid-swap), and generation purity under load.

The fine-tune itself is stubbed here (``warm_start_forecaster`` is patched
to hand back a controllable candidate) so every orchestration path — gate
pass/reject, CAS conflict, cooldown/backoff/suspension, injected crashes —
runs in milliseconds and deterministically. The *real* model end to end
(drift replay → warm-started BikeCAP fine-tune → measured recovery) is
pinned by the ``--adapt`` serve-bench smokes in tests/test_bench_smoke.py.
"""

import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro import faults
from repro.nn.divergence import DivergenceError
from repro.obs import metrics as obs_metrics
from repro.obs.runlog import RunLogger, read_events
from repro.pipeline.spec import RunSpec
from repro.resilience import RecoveryPolicy
from repro.serve import (
    AdaptationController,
    AdaptationPolicy,
    ForecastService,
    MicroBatcher,
)
from repro.serve import adapt as adapt_module
from repro.store import WindowStore

from .conftest import ConstantForecaster, FakeClock

SPEC = RunSpec(model="BikeCAP", history=5, horizon=2, epochs=1)


class ModelForecaster(ConstantForecaster):
    """A constant tier that also exposes ``.model`` to warm-start from."""

    def __init__(self, horizon, value):
        super().__init__(horizon, value)
        self.model = object()


class StubCandidate(ConstantForecaster):
    """What the patched ``warm_start_forecaster`` hands the controller.

    ``fit_hook`` runs inside ``fit`` — mid-fine-tune, before the shadow
    gate — so tests can block there, race another swap in, or raise.
    """

    def __init__(self, horizon, value, fit_hook=None):
        super().__init__(horizon, value)
        self.trainer = SimpleNamespace(
            model=object(),
            last_checkpoint=None,
            optimizer=SimpleNamespace(lr=1e-3),
        )
        self.model = self.trainer.model  # a swapped-in candidate can itself seed the next warm start
        self.fit_hook = fit_hook
        self.fitted = 0

    def fit(self, dataset, epochs=1, verbose=False, resume_from=None, observers=()):
        self.fitted += 1
        if self.fit_hook is not None:
            self.fit_hook()
        return self


def _service(ds, value=0.9):
    """A service whose primary is deliberately *bad* (constant 0.9): a
    candidate answering 0.5 — near the uniform data's normalized mean — is
    measurably better, so the shadow gate's verdict is controllable.

    The scaler is a private copy: tests mutate it (``partial_fit``) and the
    ``serve_dataset`` fixture is session-scoped."""
    return ForecastService(
        [("Primary", ModelForecaster(ds.horizon, value)),
         ("Floor", ConstantForecaster(ds.horizon, 0.1))],
        type(ds.scaler).from_state(ds.scaler.state()),
        history=ds.history,
        horizon=ds.horizon,
        grid_shape=ds.grid_shape,
        num_features=ds.num_features,
        target_feature=ds.target_feature,
    )


def _store(ds, slots=30):
    store = WindowStore(
        ds.history,
        ds.horizon,
        target_feature=ds.target_feature,
        normalize=False,
    )
    store.extend(ds.store.raw_slots(0, slots))
    return store


def _controller(ds, monkeypatch, *, candidate_value=0.5, fit_hook=None, **kwargs):
    service = kwargs.pop("service", None) or _service(ds)
    store = kwargs.pop("store", None) or _store(ds)
    candidates = []

    def fake_warm_start(spec, *, source_model, lr=None, **geometry):
        assert source_model is service.snapshot().tiers[0].forecaster.model
        candidate = StubCandidate(ds.horizon, candidate_value, fit_hook=fit_hook)
        candidates.append(candidate)
        return candidate

    monkeypatch.setattr(adapt_module, "warm_start_forecaster", fake_warm_start)
    kwargs.setdefault("background", False)
    kwargs.setdefault("policy", AdaptationPolicy(epochs=1, cooldown_seconds=0.0))
    controller = AdaptationController(service, store, SPEC, **kwargs)
    controller._test_candidates = candidates
    return controller


class TestPolicy:
    def test_from_dict_round_trip_and_recovery_forwarding(self):
        policy = AdaptationPolicy.from_dict(
            {"epochs": 3, "min_improvement": 0.05, "recovery": {"max_retries": 1}}
        )
        assert policy.epochs == 3
        assert policy.min_improvement == 0.05
        assert isinstance(policy.recovery, RecoveryPolicy)
        assert policy.recovery.max_retries == 1

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown AdaptationPolicy key"):
            AdaptationPolicy.from_dict({"epoch": 3})

    @pytest.mark.parametrize(
        "bad",
        [
            {"epochs": -1},
            {"min_windows": 1},
            {"max_windows": 4, "min_windows": 8},
            {"holdout_fraction": 1.0},
            {"min_holdout": 0},
            {"cooldown_seconds": -1.0},
            {"max_retries": -1},
            {"backoff_factor": 0.5},
        ],
    )
    def test_invalid_knobs_are_rejected(self, bad):
        with pytest.raises(ValueError):
            AdaptationPolicy(**bad)


class TestConstruction:
    def test_normalized_store_is_rejected(self, serve_dataset):
        store = WindowStore(serve_dataset.history, serve_dataset.horizon, normalize=True)
        with pytest.raises(ValueError, match="raw"):
            AdaptationController(_service(serve_dataset), store, SPEC)

    def test_geometry_mismatch_is_rejected(self, serve_dataset):
        store = WindowStore(
            serve_dataset.history + 1, serve_dataset.horizon, normalize=False
        )
        with pytest.raises(ValueError, match="geometry"):
            AdaptationController(_service(serve_dataset), store, SPEC)

    def test_target_feature_mismatch_is_rejected(self, serve_dataset):
        store = WindowStore(
            serve_dataset.history,
            serve_dataset.horizon,
            target_feature=1,
            normalize=False,
        )
        with pytest.raises(ValueError, match="target feature"):
            AdaptationController(_service(serve_dataset), store, SPEC)


class TestHappyPath:
    def test_winning_candidate_is_swapped_in(self, serve_dataset, tmp_path, monkeypatch):
        controller = _controller(serve_dataset, monkeypatch, label="adapt-happy")
        service = controller.service
        logger = RunLogger(str(tmp_path / "adapt.jsonl"), seed=0).open()
        try:
            assert controller.trigger(reason="test-drift") is True
        finally:
            logger.close()

        assert controller.triggered == 1
        assert controller.swapped == 1
        assert controller.failed == controller.rejected == 0
        assert controller.last_outcome == "swapped"
        assert controller.last_reason is None
        assert service.generation == 1
        # The candidate now answers: its constant, not the old primary's.
        (candidate,) = controller._test_candidates
        assert candidate.fitted == 1
        assert service.tiers[0].forecaster is candidate

        shadow = controller.last_shadow
        assert shadow.passed
        assert shadow.candidate_error < shadow.live_error
        assert shadow.improvement > 0

        events = read_events(logger.path)
        kinds = [e["event"] for e in events]
        assert kinds.count("adaptation_triggered") == 1
        assert kinds.count("adaptation_swapped") == 1
        (swapped,) = [e for e in events if e["event"] == "adaptation_swapped"]
        assert swapped["generation"] == 1
        assert swapped["improvement"] == pytest.approx(shadow.improvement)
        counter = obs_metrics.counter(
            "serve_adaptations_total", service="adapt-happy", outcome="swapped"
        )
        assert counter.value == 1.0

    def test_fine_tune_sees_frozen_scaler_snapshot(self, serve_dataset, monkeypatch):
        """Concurrent ``partial_fit`` on the live scaler must not leak into
        an in-flight fine-tune: the dataset is normalized with a snapshot."""
        seen = {}

        controller = _controller(
            serve_dataset,
            monkeypatch,
            fit_hook=lambda: seen.update(live=np.array(service.scaler.maximum)),
        )
        service = controller.service
        original_max = np.array(service.scaler.maximum)
        assemble = controller._assemble

        def spying_assemble(pinned):
            dataset, holdout_x, holdout_y, scaler = assemble(pinned)
            seen["snapshot"] = scaler
            # The regime gets hotter *after* assembly, mid-fine-tune.
            service.scaler.partial_fit(
                np.full((1,) + service.grid_shape + (service.num_features,), 1e4)
            )
            return dataset, holdout_x, holdout_y, scaler

        monkeypatch.setattr(controller, "_assemble", spying_assemble)
        assert controller.trigger() is True
        assert controller.last_outcome == "swapped"
        assert seen["snapshot"] is not service.scaler
        # The snapshot kept the statistics from trigger time even though
        # the live scaler moved mid-attempt.
        assert np.array_equal(seen["snapshot"].maximum, original_max)
        assert service.scaler.maximum.max() == 1e4

    def test_observe_triggers_only_on_drift_verdicts(self, serve_dataset, monkeypatch):
        controller = _controller(serve_dataset, monkeypatch)
        quiet = SimpleNamespace(report=SimpleNamespace(drifted=False, detector="ewma"))
        unscored = SimpleNamespace(report=None)
        assert controller.observe(quiet) is False
        assert controller.observe(unscored) is False
        assert controller.triggered == 0
        drifted = SimpleNamespace(report=SimpleNamespace(drifted=True, detector="ewma"))
        assert controller.observe(drifted) is True
        assert controller.triggered == 1
        assert controller.last_outcome == "swapped"


class TestGateRejection:
    def test_tied_candidate_is_rejected_and_live_model_keeps_answering(
        self, serve_dataset, raw_windows, tmp_path, monkeypatch
    ):
        # Candidate predicts the exact same constant as the live primary:
        # identical shadow error, and the gate demands *strict* improvement.
        controller = _controller(
            serve_dataset, monkeypatch, candidate_value=0.9, label="adapt-reject"
        )
        service = controller.service
        before = service.predict_one(raw_windows[0])

        logger = RunLogger(str(tmp_path / "reject.jsonl"), seed=0).open()
        try:
            assert controller.trigger() is True
        finally:
            logger.close()

        assert controller.rejected == 1
        assert controller.swapped == 0
        assert controller.last_outcome == "rejected"
        assert controller.last_reason == "gate_rejected"
        assert not controller.last_shadow.passed
        assert controller.last_shadow.candidate_error == pytest.approx(
            controller.last_shadow.live_error
        )
        # Nothing swapped: same generation, bit-identical answers.
        assert service.generation == 0
        after = service.predict_one(raw_windows[0])
        np.testing.assert_array_equal(after.demand, before.demand)
        events = [
            e for e in read_events(logger.path) if e["event"] == "adaptation_rejected"
        ]
        assert len(events) == 1
        assert events[0]["passed"] is False

    def test_min_improvement_raises_the_bar(self, serve_dataset, monkeypatch):
        # Candidate IS better, but not by the demanded 90%.
        controller = _controller(
            serve_dataset,
            monkeypatch,
            candidate_value=0.5,
            policy=AdaptationPolicy(epochs=1, min_improvement=0.9),
        )
        assert controller.trigger() is True
        assert controller.last_outcome == "rejected"
        assert controller.last_shadow.improvement > 0  # better...
        assert not controller.last_shadow.passed  # ...but not 90% better


class TestFailureIsolation:
    def test_insufficient_windows_fails_without_touching_serving(
        self, serve_dataset, raw_windows, monkeypatch
    ):
        store = _store(serve_dataset, slots=serve_dataset.history + serve_dataset.horizon + 2)
        controller = _controller(
            serve_dataset, monkeypatch, store=store, label="adapt-thin"
        )
        service = controller.service
        before = service.predict_one(raw_windows[0])
        assert controller.trigger() is True
        assert controller.failed == 1
        assert controller.last_outcome == "failed"
        assert controller.last_reason == "error"
        assert service.generation == 0
        np.testing.assert_array_equal(
            service.predict_one(raw_windows[0]).demand, before.demand
        )
        counter = obs_metrics.counter(
            "serve_adaptation_failures_total", service="adapt-thin", reason="error"
        )
        assert counter.value == 1.0

    def test_divergent_fine_tune_fails_typed_and_original_answers(
        self, serve_dataset, raw_windows, tmp_path, monkeypatch
    ):
        def diverge():
            raise DivergenceError("non_finite_loss", step=1, epoch=1)

        controller = _controller(
            serve_dataset, monkeypatch, fit_hook=diverge, label="adapt-diverge"
        )
        service = controller.service
        before = service.predict_one(raw_windows[0])
        logger = RunLogger(str(tmp_path / "diverge.jsonl"), seed=0).open()
        try:
            assert controller.trigger() is True
        finally:
            logger.close()
        assert controller.failed == 1
        assert controller.last_reason == "fine_tune_divergence"
        assert service.generation == 0
        np.testing.assert_array_equal(
            service.predict_one(raw_windows[0]).demand, before.demand
        )
        events = [
            e for e in read_events(logger.path) if e["event"] == "adaptation_failed"
        ]
        assert len(events) == 1
        assert events[0]["reason"] == "fine_tune_divergence"

    def test_crash_inside_swap_leaves_pinned_generation_serving(
        self, serve_dataset, raw_windows, monkeypatch
    ):
        controller = _controller(serve_dataset, monkeypatch, label="adapt-crash")
        service = controller.service
        before = service.predict_one(raw_windows[0])
        plan = faults.FaultPlan(crash_swap_at=1)
        with faults.active(plan):
            assert controller.trigger() is True
        assert plan.fired["swap_crash"] == 1
        assert controller.failed == 1
        assert controller.last_reason == "swap_crash"
        # The crash fired inside the critical section, before publication:
        # generation unchanged, answers bit-identical to pre-trigger.
        assert service.generation == 0
        np.testing.assert_array_equal(
            service.predict_one(raw_windows[0]).demand, before.demand
        )

    def test_concurrent_swap_loses_the_cas_race(self, serve_dataset, monkeypatch):
        service = _service(serve_dataset)

        def racing_swap():
            # Another actor flips the primary mid-fine-tune: the pinned
            # generation is stale by the time the controller swaps.
            service.swap_primary(ConstantForecaster(serve_dataset.horizon, 0.3))

        controller = _controller(
            serve_dataset,
            monkeypatch,
            fit_hook=racing_swap,
            service=service,
            label="adapt-cas",
        )
        assert controller.trigger() is True
        assert controller.failed == 1
        assert controller.last_reason == "swap_conflict"
        # The racing swap won and stays; the controller's candidate never
        # published on top of it.
        assert service.generation == 1
        assert service.tiers[0].forecaster.value == 0.3


class TestRateLimiting:
    def test_cooldown_skips_until_clock_advances(self, serve_dataset, monkeypatch):
        clock = FakeClock()
        controller = _controller(
            serve_dataset,
            monkeypatch,
            policy=AdaptationPolicy(epochs=1, cooldown_seconds=60.0),
            clock=clock,
        )
        assert controller.trigger() is True
        assert controller.last_outcome == "swapped"
        assert controller.trigger() is False
        assert controller.skips == {"cooldown": 1}
        assert controller.status()["state"] == "cooldown"
        clock.advance(61.0)
        assert controller.status()["state"] == "idle"
        assert controller.trigger() is True
        assert controller.triggered == 2

    def test_failures_back_off_exponentially(self, serve_dataset, monkeypatch):
        clock = FakeClock()
        # A starved store makes every attempt fail deterministically.
        store = _store(serve_dataset, slots=serve_dataset.history + serve_dataset.horizon + 2)
        controller = _controller(
            serve_dataset,
            monkeypatch,
            store=store,
            policy=AdaptationPolicy(
                epochs=1, cooldown_seconds=10.0, backoff_factor=2.0, max_retries=5
            ),
            clock=clock,
        )
        delays = []
        for _ in range(3):
            assert controller.trigger() is True
            delays.append(controller.status()["cooldown_remaining_seconds"])
            clock.advance(delays[-1] + 0.001)
        assert delays == [pytest.approx(10.0), pytest.approx(20.0), pytest.approx(40.0)]

    def test_retry_exhaustion_suspends_until_reset(self, serve_dataset, monkeypatch):
        clock = FakeClock()
        store = _store(serve_dataset, slots=serve_dataset.history + serve_dataset.horizon + 2)
        controller = _controller(
            serve_dataset,
            monkeypatch,
            store=store,
            policy=AdaptationPolicy(epochs=1, cooldown_seconds=0.0, max_retries=1),
            clock=clock,
        )
        for _ in range(2):  # max_retries=1 → two failures exhaust it
            assert controller.trigger() is True
            clock.advance(1.0)
        assert controller.consecutive_failures == 2
        assert controller.status()["state"] == "suspended"
        assert controller.trigger() is False
        assert controller.skips["suspended"] == 1
        controller.reset()
        assert controller.status()["state"] == "idle"
        assert controller.trigger() is True

    def test_background_attempt_reports_busy(self, serve_dataset, monkeypatch):
        gate = threading.Event()
        started = threading.Event()

        def block():
            started.set()
            assert gate.wait(timeout=10.0)

        controller = _controller(
            serve_dataset,
            monkeypatch,
            fit_hook=block,
            background=True,
            policy=AdaptationPolicy(epochs=1, cooldown_seconds=0.0),
        )
        assert controller.trigger() is True
        assert started.wait(timeout=10.0)
        assert controller.status()["state"] == "adapting"
        assert controller.trigger() is False  # one adaptation at a time
        assert controller.skips == {"busy": 1}
        gate.set()
        controller.wait(timeout=10.0)
        assert controller.last_outcome == "swapped"
        assert controller.service.generation == 1


class TestGenerationPurityUnderLoad:
    def test_every_response_is_bit_identical_to_exactly_one_generation(
        self, serve_dataset, raw_windows
    ):
        """Micro-batched requests racing repeated hot-swaps and reverts:
        each answer must match — bitwise — the direct answer of the single
        generation it claims, never a blend of two."""
        ds = serve_dataset
        values = [0.2, 0.4, 0.6, 0.8]
        service = ForecastService(
            [("Primary", ConstantForecaster(ds.horizon, values[0]))],
            ds.scaler,
            history=ds.history,
            horizon=ds.horizon,
            grid_shape=ds.grid_shape,
            num_features=ds.num_features,
            target_feature=ds.target_feature,
        )
        # What each generation answers for any window, computed directly.
        def expected(value):
            demand = ds.scaler.inverse_transform(
                np.full((ds.horizon,) + ds.grid_shape, value),
                feature=ds.target_feature,
            )
            return np.clip(demand, 0.0, None)

        by_generation = {0: expected(values[0])}
        responses = []
        errors = []
        stop = threading.Event()

        def client():
            while not stop.is_set():
                try:
                    responses.append(batcher.forecast(raw_windows[0]))
                except Exception as error:  # noqa: BLE001 - fail the test, not the thread
                    errors.append(error)
                    return

        with MicroBatcher(service, max_batch=4, max_wait_seconds=0.0005) as batcher:
            threads = [threading.Thread(target=client) for _ in range(4)]
            for thread in threads:
                thread.start()
            # One main-thread request per generation (coalesced with the
            # clients' traffic) guarantees every generation answers load.
            responses.append(batcher.forecast(raw_windows[0]))
            for value in values[1:]:
                generation = service.swap_primary(
                    ConstantForecaster(ds.horizon, value)
                )
                by_generation[generation] = expected(value)
                responses.append(batcher.forecast(raw_windows[0]))
            # And revert twice: history is linear, each revert is a fresh
            # generation answering like the one it restored.
            for _ in range(2):
                restored = service.revert_primary()
                by_generation[restored] = by_generation[restored - 2]
                responses.append(batcher.forecast(raw_windows[0]))
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)

        assert not errors
        assert len(responses) > 0
        seen = set()
        for response in responses:
            assert response.generation in by_generation
            np.testing.assert_array_equal(
                response.demand, by_generation[response.generation]
            )
            seen.add(response.generation)
        # Every generation in the linear history answered at least once.
        assert seen == set(by_generation)

    def test_cas_conflict_on_direct_swap(self, serve_dataset):
        service = _service(serve_dataset)
        pinned = service.snapshot()
        service.swap_primary(ConstantForecaster(serve_dataset.horizon, 0.2))
        from repro.serve import GenerationConflict

        with pytest.raises(GenerationConflict):
            service.swap_primary(
                ConstantForecaster(serve_dataset.horizon, 0.3),
                expected_generation=pinned.number,
            )
        assert service.generation == 1  # the losing swap changed nothing


class TestStatus:
    def test_status_snapshot_shape(self, serve_dataset, monkeypatch):
        controller = _controller(serve_dataset, monkeypatch, label="adapt-status")
        status = controller.status()
        assert status["service"] == "adapt-status"
        assert status["state"] == "idle"
        assert status["generation"] == 0
        assert status["last_shadow"] is None
        controller.trigger()
        status = controller.status()
        assert status["swapped"] == 1
        assert status["generation"] == 1
        assert status["last_outcome"] == "swapped"
        assert status["last_shadow"]["passed"] is True
