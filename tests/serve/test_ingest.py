"""Streaming ingestion: live slots → shared WindowStore → drift scoring."""

import numpy as np
import pytest

from repro.serve.ingest import IngestionPipeline
from repro.serve.monitor import DriftMonitor
from repro.serve.service import ForecastService
from repro.store import MinMaxScaler, WindowStore

from tests.serve.conftest import ConstantForecaster

HISTORY, HORIZON = 5, 2


def _slots(n, seed=0):
    return np.random.default_rng(seed).random((n, 4, 4, 3)) * 30.0


def _service(scaler):
    return ForecastService(
        [("Constant", ConstantForecaster(HORIZON, 0.5))],
        scaler,
        history=HISTORY,
        horizon=HORIZON,
        grid_shape=(4, 4),
        num_features=3,
    )


def _raw_store(scaler=None):
    return WindowStore(
        HISTORY, HORIZON, scaler=scaler or MinMaxScaler(), normalize=False
    )


class TestIngest:
    def test_slot_by_slot_emits_each_window_exactly_once(self):
        slots = _slots(12)
        pipeline = IngestionPipeline(_raw_store())
        seen = []
        for i in range(len(slots)):
            report = pipeline.ingest(slots[i])
            assert report.appended_slots == 1
            seen.extend(report.ready)
        assert [ready.index for ready in seen] == list(range(12 - HISTORY - HORIZON + 1))
        assert pipeline.num_scored == len(seen)

    def test_ready_windows_carry_raw_history_and_realized_demand(self):
        slots = _slots(10)
        pipeline = IngestionPipeline(_raw_store())
        ready = pipeline.ingest(slots).ready
        first = ready[0]
        assert np.array_equal(first.window, slots[:HISTORY])
        assert np.array_equal(
            first.actual, slots[HISTORY : HISTORY + HORIZON, :, :, 0]
        )

    def test_bulk_and_incremental_appends_agree(self):
        slots = _slots(14)
        bulk = IngestionPipeline(_raw_store())
        bulk_ready = bulk.ingest(slots).ready
        drip = IngestionPipeline(_raw_store())
        drip_ready = []
        for i in range(len(slots)):
            drip_ready.extend(drip.ingest(slots[i]).ready)
        assert len(bulk_ready) == len(drip_ready)
        for a, b in zip(bulk_ready, drip_ready):
            assert a.index == b.index
            assert np.array_equal(a.window, b.window)
            assert np.array_equal(a.actual, b.actual)

    def test_current_window_is_latest_raw_history(self):
        slots = _slots(9)
        pipeline = IngestionPipeline(_raw_store())
        assert pipeline.current_window() is None
        pipeline.ingest(slots)
        assert np.array_equal(pipeline.current_window(), slots[-HISTORY:])


class TestScalerRefresh:
    def test_update_scaler_streams_partial_fit_exactly(self):
        slots = _slots(20)
        scaler = MinMaxScaler()
        pipeline = IngestionPipeline(_raw_store(scaler), update_scaler=True)
        for start in range(0, 20, 6):
            pipeline.ingest(slots[start : start + 6])
        reference = MinMaxScaler().fit(slots)
        assert np.array_equal(scaler.minimum, reference.minimum)
        assert np.array_equal(scaler.maximum, reference.maximum)
        assert scaler.count == reference.count

    def test_shared_scaler_refresh_reaches_the_service(self):
        warm, live = _slots(8), _slots(8, seed=9) * 4.0  # live regime is hotter
        store = _raw_store()
        pipeline = IngestionPipeline(store, update_scaler=True)
        pipeline.ingest(warm)  # offline warm-up fits the shared scaler
        service = _service(store.scaler)
        pipeline.service = service
        pipeline.ingest(live)
        # The service normalizes with the very same refreshed statistics:
        # extrema now cover the hotter live regime, not just the warm-up.
        assert service.scaler is store.scaler
        reference = MinMaxScaler().fit(np.concatenate([warm, live]))
        assert np.array_equal(service.scaler.maximum, reference.maximum)
        response = service.predict_one(live[-HISTORY:])
        assert response.demand.shape == (HORIZON, 4, 4)

    def test_update_scaler_with_unshared_scaler_is_rejected(self):
        store = _raw_store()
        service = _service(MinMaxScaler().fit(_slots(5)))
        with pytest.raises(ValueError, match="share"):
            IngestionPipeline(store, service=service, update_scaler=True)


class TestServiceAndMonitorWiring:
    def test_geometry_mismatch_is_rejected(self):
        store = WindowStore(HISTORY + 1, HORIZON, normalize=False)
        service = _service(MinMaxScaler().fit(_slots(5)))
        with pytest.raises(ValueError, match="geometry"):
            IngestionPipeline(store, service=service)

    def test_monitor_scores_every_ready_window(self):
        slots = _slots(12)
        primary = ConstantForecaster(HORIZON, 0.5)
        service = ForecastService(
            [("Constant", primary)],
            MinMaxScaler().fit(slots),
            history=HISTORY,
            horizon=HORIZON,
            grid_shape=(4, 4),
            num_features=3,
        )
        monitor = DriftMonitor(service, label="ingest-test")
        pipeline = IngestionPipeline(_raw_store(), service=service, monitor=monitor)
        ready = pipeline.ingest(slots).ready
        assert len(ready) == 12 - HISTORY - HORIZON + 1
        assert primary.calls == len(ready)  # one scored prediction per window
        assert all(r.report is not None for r in ready)

    def test_forecast_answers_from_the_freshest_window(self):
        slots = _slots(7)
        service = _service(MinMaxScaler().fit(slots))
        pipeline = IngestionPipeline(_raw_store(), service=service)
        with pytest.raises(RuntimeError, match="not enough slots"):
            pipeline.forecast()
        pipeline.ingest(slots)
        response = pipeline.forecast()
        assert response.demand.shape == (HORIZON, 4, 4)
        reference = service.predict_one(slots[-HISTORY:])
        assert np.array_equal(response.demand, reference.demand)


class _FlakyMonitor:
    """Raises on chosen feed calls (1-based), records every window fed."""

    def __init__(self, poison=()):
        self.poison = set(poison)
        self.calls = 0
        self.windows = []

    def feed(self, window, actual):
        self.calls += 1
        self.windows.append(np.array(window))
        if self.calls in self.poison:
            raise RuntimeError(f"poisoned feed #{self.calls}")
        return object()


class TestScoringIsolation:
    """A poisoned monitor or controller must not wedge or re-score
    ingestion (ISSUE 10 satellite 2)."""

    def test_poisoned_window_is_skipped_and_later_windows_still_score(self):
        slots = _slots(12)  # 6 completed windows
        monitor = _FlakyMonitor(poison={2})
        pipeline = IngestionPipeline(_raw_store(), monitor=monitor)
        ready = pipeline.ingest(slots).ready
        assert len(ready) == 6
        assert monitor.calls == 6  # every window was offered exactly once
        assert ready[1].report is None  # the poisoned one stays unscored
        assert all(r.report is not None for i, r in enumerate(ready) if i != 1)
        assert pipeline.num_scored == 6

    def test_no_window_is_rescored_after_a_mid_stream_failure(self):
        slots = _slots(14)
        monitor = _FlakyMonitor(poison={3})
        pipeline = IngestionPipeline(_raw_store(), monitor=monitor)
        first = pipeline.ingest(slots[:12]).ready
        second = pipeline.ingest(slots[12:]).ready
        indices = [r.index for r in first + second]
        assert indices == sorted(set(indices))  # each window exactly once
        assert monitor.calls == len(indices)
        # And the windows fed were the distinct consecutive ones, in order.
        for offset, fed in enumerate(monitor.windows):
            assert np.array_equal(fed, slots[offset : offset + HISTORY])

    def test_monitor_failure_increments_the_isolation_counter(self):
        from repro.obs import metrics as obs_metrics

        before = obs_metrics.counter(
            "serve_ingest_monitor_errors_total", service="flaky-count"
        ).value
        pipeline = IngestionPipeline(
            _raw_store(), monitor=_FlakyMonitor(poison={1, 2}), label="flaky-count"
        )
        pipeline.ingest(_slots(10))  # 4 windows, first two poisoned
        after = obs_metrics.counter(
            "serve_ingest_monitor_errors_total", service="flaky-count"
        ).value
        assert after - before == 2

    def test_controller_failure_is_isolated_from_ingestion(self):
        from repro.obs import metrics as obs_metrics

        class ExplodingController:
            def __init__(self):
                self.observed = []

            def observe(self, ready):
                self.observed.append(ready.index)
                raise RuntimeError("trigger path down")

        controller = ExplodingController()
        pipeline = IngestionPipeline(
            _raw_store(), controller=controller, label="ctrl-iso"
        )
        report = pipeline.ingest(_slots(12))
        # Every window still completed, and every one reached the
        # controller before it blew up.
        assert len(report.ready) == 6
        assert controller.observed == [r.index for r in report.ready]
        counter = obs_metrics.counter(
            "serve_ingest_controller_errors_total", service="ctrl-iso"
        )
        assert counter.value == 6.0
