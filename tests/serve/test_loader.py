"""load_service / load_forecaster: the offline→online handoff."""

import numpy as np
import pytest

from repro.data.normalization import MinMaxScaler
from repro.pipeline import RunSpec, execute
from repro.pipeline.loading import load_forecaster
from repro.serve import load_service, service_from_dataset


@pytest.fixture(scope="module")
def trained_run(serve_dataset, tmp_path_factory):
    """One real offline run: train, autosave, keep the in-memory forecaster."""
    spec = RunSpec(model="STGCN", epochs=2, seed=3, hparams={"hidden_channels": 2})
    directory = str(tmp_path_factory.mktemp("serve-ckpts"))
    result = execute(spec, serve_dataset, checkpoint_dir=directory)
    assert result.checkpoint_path is not None
    return spec, result


class TestCheckpointHandoff:
    def test_loaded_forecaster_matches_trained_one(self, serve_dataset, trained_run):
        """A server reloading spec + checkpoint must answer exactly like the
        process that trained the model (Trainer leaves the best-validation
        weights in memory; the checkpoint's serving weights are the same)."""
        spec, result = trained_run
        loaded = load_forecaster(
            spec,
            result.checkpoint_path,
            grid_shape=serve_dataset.grid_shape,
            num_features=serve_dataset.num_features,
            history=serve_dataset.history,
            horizon=serve_dataset.horizon,
        )
        x = serve_dataset.split.test_x[:4]
        np.testing.assert_array_equal(
            np.asarray(loaded.predict(x)), np.asarray(result.forecaster.predict(x))
        )

    def test_checkpoint_weights_actually_differ_from_fresh_init(
        self, serve_dataset, trained_run
    ):
        spec, result = trained_run
        fresh = load_forecaster(
            spec,
            None,  # same spec/seed, but no checkpoint: untrained weights
            grid_shape=serve_dataset.grid_shape,
            num_features=serve_dataset.num_features,
            history=serve_dataset.history,
            horizon=serve_dataset.horizon,
        )
        restored = load_forecaster(
            spec,
            result.checkpoint_path,
            grid_shape=serve_dataset.grid_shape,
            num_features=serve_dataset.num_features,
            history=serve_dataset.history,
            horizon=serve_dataset.horizon,
        )
        x = serve_dataset.split.test_x[:2]
        assert not np.array_equal(
            np.asarray(fresh.predict(x)), np.asarray(restored.predict(x))
        )

    def test_service_from_dataset_serves_the_trained_model(
        self, serve_dataset, trained_run, raw_windows
    ):
        spec, result = trained_run
        service = service_from_dataset(
            spec, serve_dataset, checkpoint_path=result.checkpoint_path
        )
        assert service.tier_names == ("STGCN", "Persistence")

        response = service.predict_one(raw_windows[0])
        normalized = np.clip(serve_dataset.scaler.transform(raw_windows[:1]), 0.0, None)
        expected = serve_dataset.denormalize_target(
            np.asarray(result.forecaster.predict(normalized))[0]
        )
        np.testing.assert_array_equal(response.demand, np.clip(expected, 0.0, None))
        assert response.tier == "STGCN"

    def test_non_neural_model_rejects_checkpoint(self, serve_dataset):
        with pytest.raises(ValueError, match="not a neural model"):
            load_forecaster(
                RunSpec(model="Persistence"),
                "irrelevant.ckpt.npz",
                grid_shape=serve_dataset.grid_shape,
                num_features=serve_dataset.num_features,
                history=serve_dataset.history,
                horizon=serve_dataset.horizon,
            )

    def test_spec_without_geometry_must_be_given_it(self, serve_dataset):
        with pytest.raises(ValueError, match="history/horizon"):
            load_forecaster(
                RunSpec(model="Persistence"),
                grid_shape=serve_dataset.grid_shape,
                num_features=serve_dataset.num_features,
            )


class TestServiceAssembly:
    def test_requires_exactly_one_scaler_source(self, serve_dataset):
        spec = RunSpec(model="Persistence")
        kwargs = dict(
            grid_shape=serve_dataset.grid_shape,
            num_features=serve_dataset.num_features,
            history=serve_dataset.history,
            horizon=serve_dataset.horizon,
            fallbacks=(),
        )
        with pytest.raises(ValueError, match="exactly one"):
            load_service(spec, **kwargs)
        with pytest.raises(ValueError, match="exactly one"):
            load_service(
                spec,
                scaler=serve_dataset.scaler,
                scaler_state=serve_dataset.scaler.state(),
                **kwargs,
            )

    def test_scaler_state_restores_robust_scaler(self, serve_dataset, rng):
        """A robust (quantile) scaler shipped as persisted state must stay
        robust in the service — the quantile key survives the round trip."""
        data = rng.random((40, 4, 4, 3)) * 50.0
        robust = MinMaxScaler(quantile=0.9).fit(data)
        service = load_service(
            RunSpec(model="Persistence"),
            scaler_state=robust.state(),
            grid_shape=serve_dataset.grid_shape,
            num_features=serve_dataset.num_features,
            history=serve_dataset.history,
            horizon=serve_dataset.horizon,
            fallbacks=(),
        )
        assert service.scaler.quantile == 0.9
        np.testing.assert_array_equal(
            service.scaler.transform(data[:3]), robust.transform(data[:3])
        )

    def test_fallback_duplicating_primary_rejected(self, serve_dataset):
        with pytest.raises(ValueError, match="duplicates the primary"):
            load_service(
                RunSpec(model="Persistence"),
                scaler=serve_dataset.scaler,
                grid_shape=serve_dataset.grid_shape,
                num_features=serve_dataset.num_features,
                history=serve_dataset.history,
                horizon=serve_dataset.horizon,
                fallbacks=("Persistence",),
            )
