"""Rebalancing planners: feasibility, optimality, scoring."""

import numpy as np
import pytest

from repro.rebalancing import (
    Move,
    RebalancingPlan,
    forecast_value,
    greedy_plan,
    min_cost_flow_plan,
    score_plan,
    unmet_demand,
)


class TestMoveAndPlan:
    def test_move_distance(self):
        move = Move(source=(0, 0), destination=(3, 4), count=2)
        assert move.distance_cells == 5.0

    def test_plan_totals(self):
        plan = RebalancingPlan(
            moves=[Move((0, 0), (0, 1), 2), Move((1, 1), (0, 0), 3)]
        )
        assert plan.total_bikes == 5
        assert plan.total_distance == pytest.approx(2 * 1 + 3 * np.sqrt(2))

    def test_apply_conserves_bikes(self):
        stock = np.array([[5.0, 0.0], [0.0, 0.0]])
        plan = RebalancingPlan(moves=[Move((0, 0), (1, 1), 3)])
        adjusted = plan.apply(stock)
        assert adjusted.sum() == stock.sum()
        assert adjusted[0, 0] == 2 and adjusted[1, 1] == 3

    def test_apply_rejects_overdraft(self):
        stock = np.array([[1.0, 0.0], [0.0, 0.0]])
        plan = RebalancingPlan(moves=[Move((0, 0), (1, 1), 5)])
        with pytest.raises(ValueError):
            plan.apply(stock)


class TestGreedyPlan:
    def test_covers_deficits_when_supply_suffices(self):
        stock = np.array([[10.0, 0.0], [0.0, 0.0]])
        demand = np.array([[0.0, 3.0], [3.0, 2.0]])
        plan = greedy_plan(stock, demand)
        after = plan.apply(stock)
        assert np.all(after >= demand)

    def test_no_moves_when_balanced(self):
        stock = np.full((3, 3), 5.0)
        demand = np.full((3, 3), 2.0)
        assert greedy_plan(stock, demand).moves == []

    def test_prefers_near_donors(self):
        stock = np.zeros((1, 5))
        stock[0, 0] = 10.0  # far donor
        stock[0, 3] = 10.0  # near donor
        demand = np.zeros((1, 5))
        demand[0, 4] = 4.0
        plan = greedy_plan(stock, demand)
        assert all(move.source == (0, 3) for move in plan.moves)

    def test_partial_coverage_when_supply_short(self):
        stock = np.array([[2.0, 0.0]])
        demand = np.array([[0.0, 10.0]])
        plan = greedy_plan(stock, demand)
        assert plan.total_bikes == 2

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            greedy_plan(np.zeros((2, 2)), np.zeros((3, 3)))


class TestMinCostFlowPlan:
    def test_covers_deficits(self):
        stock = np.array([[8.0, 0.0], [0.0, 0.0]])
        demand = np.array([[0.0, 2.0], [2.0, 2.0]])
        plan = min_cost_flow_plan(stock, demand)
        after = plan.apply(stock)
        assert np.all(after >= demand)

    def test_no_deficit_no_moves(self):
        plan = min_cost_flow_plan(np.full((2, 2), 5.0), np.full((2, 2), 1.0))
        assert plan.moves == []

    def test_optimal_beats_or_ties_greedy_on_distance(self, rng):
        stock = rng.integers(0, 8, size=(5, 5)).astype(float)
        demand = rng.integers(0, 5, size=(5, 5)).astype(float)
        greedy = greedy_plan(stock, demand)
        optimal = min_cost_flow_plan(stock, demand)
        # Same demand coverage...
        assert unmet_demand(optimal.apply(stock), demand) <= unmet_demand(
            greedy.apply(stock), demand
        ) + 1e-9
        # ...with no more transport work.
        assert optimal.total_distance <= greedy.total_distance + 1e-6

    def test_supply_shortfall_is_feasible(self):
        stock = np.array([[1.0, 0.0]])
        demand = np.array([[0.0, 5.0]])
        plan = min_cost_flow_plan(stock, demand)
        assert plan.total_bikes <= 1

    def test_picks_cheaper_donor(self):
        stock = np.zeros((1, 5))
        stock[0, 0] = 10.0
        stock[0, 3] = 10.0
        demand = np.zeros((1, 5))
        demand[0, 4] = 4.0
        plan = min_cost_flow_plan(stock, demand)
        assert all(move.source == (0, 3) for move in plan.moves)


class TestScoring:
    def test_unmet_demand(self):
        assert unmet_demand(np.array([1.0, 5.0]), np.array([3.0, 2.0])) == 2.0

    def test_score_plan_coverage(self):
        stock = np.array([[4.0, 0.0]])
        demand = np.array([[0.0, 4.0]])
        plan = greedy_plan(stock, demand)
        score = score_plan(plan, stock, demand)
        assert score.unmet_demand == 0.0
        assert score.coverage == 1.0
        assert score.bikes_moved == 4

    def test_forecast_value_positive_for_better_forecast(self):
        stock = np.array([[6.0, 0.0]])
        realized = np.array([[0.0, 6.0]])
        good = greedy_plan(stock, realized)  # plans on the truth
        bad = RebalancingPlan(moves=[])  # plans on a zero forecast
        assert forecast_value(good, bad, stock, realized) > 0
