"""End-to-end integration: records → tensors → training → evaluation.

These tests exercise the same path a user of the library follows, across
package boundaries, on the shared tiny city.
"""

import numpy as np

from repro.baselines import make_forecaster
from repro.core import BikeCAP, BikeCAPConfig
from repro.data import aggregate_city, dataset_from_tensor
from repro.metrics import evaluate_forecaster, mae
from repro.nn import Trainer, load_weights, save_weights


class TestFullPipeline:
    def test_records_to_forecast(self, tiny_city):
        tensor = aggregate_city(tiny_city)
        # Aggregated counts must match raw record counts exactly.
        assert tensor[..., 0].sum() == tiny_city.bike_records.pickup.sum()
        assert tensor[..., 2].sum() == tiny_city.subway_records.boarding.sum()

        dataset = dataset_from_tensor(tensor, history=6, horizon=2)
        model = BikeCAP(
            BikeCAPConfig(
                grid=dataset.grid_shape,
                history=6,
                horizon=2,
                features=4,
                capsule_dim=2,
                future_capsule_dim=2,
                pyramid_size=2,
                decoder_hidden=3,
                seed=0,
            )
        )
        trainer = Trainer(model, loss="l1", batch_size=32, seed=0)
        history = trainer.fit(
            dataset.split.train_x, dataset.split.train_y, epochs=2,
            val_x=dataset.split.val_x, val_y=dataset.split.val_y,
        )
        assert len(history.train_loss) == 2
        assert all(np.isfinite(loss) for loss in history.train_loss)

        prediction = model.predict(dataset.split.test_x)
        truth = dataset.denormalize_target(dataset.split.test_y)
        denorm = dataset.denormalize_target(prediction)
        assert np.isfinite(mae(truth, denorm))

    def test_training_improves_and_does_not_regress(self, tiny_dataset):
        """Training loss must fall; test error must not get meaningfully
        worse than the untrained model (demand is sparse, so the untrained
        near-zero output is already a strong MAE baseline)."""
        config = BikeCAPConfig(
            grid=tiny_dataset.grid_shape,
            history=tiny_dataset.history,
            horizon=tiny_dataset.horizon,
            features=tiny_dataset.num_features,
            capsule_dim=2,
            future_capsule_dim=2,
            pyramid_size=2,
            decoder_hidden=3,
            seed=0,
        )
        untrained = BikeCAP(config)
        before = evaluate_forecaster(_as_forecaster(untrained, tiny_dataset), tiny_dataset)

        trained = BikeCAP(config)
        history = Trainer(trained, loss="l1", batch_size=32, seed=0).fit(
            tiny_dataset.split.train_x, tiny_dataset.split.train_y, epochs=4
        )
        after = evaluate_forecaster(_as_forecaster(trained, tiny_dataset), tiny_dataset)
        assert history.train_loss[-1] < history.train_loss[0]
        assert after["MAE"] < before["MAE"] * 1.1
        assert after["RMSE"] < before["RMSE"] * 1.1

    def test_checkpoint_resume_continues_identically(self, tiny_dataset, tmp_path):
        config = BikeCAPConfig(
            grid=tiny_dataset.grid_shape,
            history=tiny_dataset.history,
            horizon=tiny_dataset.horizon,
            features=tiny_dataset.num_features,
            capsule_dim=2,
            future_capsule_dim=2,
            pyramid_size=2,
            decoder_hidden=3,
            seed=0,
        )
        model = BikeCAP(config)
        Trainer(model, loss="l1", seed=0).fit(
            tiny_dataset.split.train_x, tiny_dataset.split.train_y, epochs=1
        )
        path = str(tmp_path / "checkpoint.npz")
        save_weights(model, path)

        resumed = BikeCAP(config)
        load_weights(resumed, path)
        x = tiny_dataset.split.test_x[:4]
        assert np.allclose(model.predict(x), resumed.predict(x))

    def test_recursive_baseline_full_loop(self, tiny_dataset):
        forecaster = make_forecaster(
            "LSTM",
            tiny_dataset.history,
            tiny_dataset.horizon,
            tiny_dataset.grid_shape,
            tiny_dataset.num_features,
            seed=0,
            hidden_size=8,
            max_train_samples=3000,
        )
        forecaster.fit(tiny_dataset, epochs=1)
        metrics = evaluate_forecaster(forecaster, tiny_dataset)
        assert metrics["RMSE"] >= metrics["MAE"] >= 0


def _as_forecaster(model, dataset):
    """Minimal predict-only adapter for evaluate_forecaster."""

    class _Wrapper:
        def predict(self, x):
            return model.predict(x)

    return _Wrapper()
