"""Shared fixtures: a tiny simulated city and dataset reused across suites."""

from __future__ import annotations

import numpy as np
import pytest

from repro.city import CityConfig, simulate_city
from repro.data import dataset_from_city
from repro.obs import runlog


@pytest.fixture(scope="session", autouse=True)
def _runlog_tmpdir(tmp_path_factory):
    """Keep the experiment runners' automatic JSONL run logs out of the repo."""
    import os

    directory = tmp_path_factory.mktemp("runlogs")
    previous = os.environ.get(runlog.RUNLOG_DIR_ENV)
    os.environ[runlog.RUNLOG_DIR_ENV] = str(directory)
    yield directory
    if previous is None:
        os.environ.pop(runlog.RUNLOG_DIR_ENV, None)
    else:
        os.environ[runlog.RUNLOG_DIR_ENV] = previous


@pytest.fixture(scope="session")
def tiny_city():
    """A seconds-scale city shared by every suite that needs records."""
    config = CityConfig(
        rows=6,
        cols=6,
        num_lines=2,
        num_commuters=300,
        num_bikes=120,
        days=5,
        background_subway_per_day=100,
        background_bike_per_day=80,
        seed=11,
    )
    return simulate_city(config)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_city):
    """Supervised windows over the tiny city: h=6, p=3."""
    return dataset_from_city(tiny_city, history=6, horizon=3)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
