"""Stability experiment and the run_all CLI."""

import json
import os

import pytest

from repro.city import CityConfig
from repro.experiments import ExperimentContext, ExperimentProfile, run_stability
from repro.experiments.run_all import run_all


@pytest.fixture(scope="module")
def nano_profile():
    return ExperimentProfile(
        name="nano",
        city=CityConfig(
            rows=5,
            cols=5,
            num_lines=2,
            num_commuters=120,
            num_bikes=50,
            days=4,
            background_subway_per_day=50,
            background_bike_per_day=40,
            seed=5,
        ),
        history=5,
        horizons=(2,),
        ablation_horizon=2,
        epochs=1,
        seeds=(0,),
        pyramid_sizes=(2,),
        capsule_dims=(2,),
        models=("STSGCN", "BikeCAP"),
        model_overrides={
            "BikeCAP": {
                "pyramid_size": 2,
                "capsule_dim": 2,
                "future_capsule_dim": 2,
                "decoder_hidden": 3,
            },
            "STSGCN": {"hidden_channels": 4},
        },
    )


class TestStability:
    def test_measures_both_arrangements(self, nano_profile):
        context = ExperimentContext(nano_profile)
        result = run_stability(profile=nano_profile, context=context, seeds=(0, 1))
        assert set(result.results) == {"joint", "separated"}
        assert result.seeds == 2
        text = result.render()
        assert "joint" in text and "separated" in text
        assert isinstance(result.variance_reduced(), bool)


class TestRunAllCli:
    def test_writes_all_artifacts(self, nano_profile, tmp_path, monkeypatch):
        # run_all resolves by profile name — register the nano profile.
        from repro.experiments import profiles as profiles_module

        monkeypatch.setitem(profiles_module.PROFILES, "nano", nano_profile)
        output = str(tmp_path / "results")
        payload = run_all("nano", output, verbose=False)

        for artifact in ("fig1", "table3", "fig7", "table4", "table5"):
            assert os.path.exists(os.path.join(output, f"{artifact}.txt"))
        assert os.path.exists(os.path.join(output, "summary.txt"))

        with open(os.path.join(output, "results.json")) as handle:
            loaded = json.load(handle)
        assert loaded["profile"] == "nano"
        assert "table3" in loaded
        assert "BikeCAP" in loaded["table3"]
        assert payload["profile"] == "nano"
        # Neural training runs autosave full-state checkpoints.
        checkpoints = os.listdir(os.path.join(output, "checkpoints"))
        assert any(name.endswith(".ckpt.npz") for name in checkpoints)

    def test_only_restricts_models_and_skips_ablations(
        self, nano_profile, tmp_path, monkeypatch
    ):
        from repro.experiments import profiles as profiles_module

        monkeypatch.setitem(profiles_module.PROFILES, "nano", nano_profile)
        output = str(tmp_path / "results")
        payload = run_all("nano", output, verbose=False, only="STSGCN")

        assert list(payload["table3"]) == ["STSGCN"]
        assert os.path.exists(os.path.join(output, "table3.txt"))
        # BikeCAP excluded → the BikeCAP-only artifacts are not produced.
        for skipped in ("fig7", "table4", "table5"):
            assert not os.path.exists(os.path.join(output, f"{skipped}.txt"))

    def test_only_rejects_unknown_model(self, nano_profile, tmp_path, monkeypatch):
        from repro.experiments import profiles as profiles_module

        monkeypatch.setitem(profiles_module.PROFILES, "nano", nano_profile)
        with pytest.raises(ValueError, match="unknown model"):
            run_all("nano", str(tmp_path / "x"), verbose=False, only="Transformer")

    def test_resume_skips_existing_artifacts(self, nano_profile, tmp_path, monkeypatch):
        from repro.experiments import profiles as profiles_module

        monkeypatch.setitem(profiles_module.PROFILES, "nano", nano_profile)
        output = str(tmp_path / "results")
        first = run_all("nano", output, verbose=False, only="STSGCN")
        table3_mtime = os.path.getmtime(os.path.join(output, "table3.txt"))

        second = run_all("nano", output, verbose=False, only="STSGCN", resume=True)
        # The finished artifact was not regenerated...
        assert os.path.getmtime(os.path.join(output, "table3.txt")) == table3_mtime
        # ...but its numbers are still carried into the fresh results.json.
        assert second["table3"] == first["table3"]
        with open(os.path.join(output, "summary.txt")) as handle:
            assert "resumed from existing result" in handle.read()
