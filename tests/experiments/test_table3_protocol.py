"""Table III protocol details: train-once-roll-further for recursive models."""

import numpy as np
import pytest

from repro.baselines import make_forecaster
from repro.city import CityConfig
from repro.experiments import ExperimentContext, ExperimentProfile
from repro.experiments.table3 import run_table3


@pytest.fixture(scope="module")
def proto_profile():
    return ExperimentProfile(
        name="proto",
        city=CityConfig(
            rows=5,
            cols=5,
            num_lines=2,
            num_commuters=150,
            num_bikes=60,
            days=4,
            background_subway_per_day=60,
            background_bike_per_day=50,
            seed=5,
        ),
        history=5,
        horizons=(2, 3),
        ablation_horizon=2,
        epochs=1,
        seeds=(0,),
        pyramid_sizes=(2,),
        capsule_dims=(2,),
        models=("LSTM", "BikeCAP"),
        model_overrides={
            "LSTM": {"hidden_size": 6, "max_train_samples": 1500},
            "BikeCAP": {
                "pyramid_size": 2,
                "capsule_dim": 2,
                "future_capsule_dim": 2,
                "decoder_hidden": 3,
                "epochs": 2,  # per-model epochs override must be honoured
            },
        },
    )


class TestRollFurther:
    def test_recursive_model_extends_horizon_after_fit(self, proto_profile):
        """A single-step model trained once predicts any horizon by rolling."""
        context = ExperimentContext(proto_profile)
        dataset = context.dataset(2)
        forecaster = make_forecaster(
            "LSTM", dataset.history, 2, dataset.grid_shape, dataset.num_features,
            seed=0, hidden_size=6, max_train_samples=1000,
        )
        forecaster.fit(dataset, epochs=1)
        short = forecaster.predict(dataset.split.test_x[:4])
        forecaster.horizon = 5
        long = forecaster.predict(dataset.split.test_x[:4])
        assert short.shape[1] == 2
        assert long.shape[1] == 5
        # The first two steps must be identical — same model, same inputs.
        assert np.allclose(short, long[:, :2])

    def test_run_table3_handles_epochs_override(self, proto_profile):
        """The per-model 'epochs' key is a training knob, never a ctor arg."""
        context = ExperimentContext(proto_profile)
        result = run_table3(profile=proto_profile, context=context)
        assert set(result.results) == {"LSTM", "BikeCAP"}
        for pts in (2, 3):
            assert result.results["BikeCAP"][pts]["MAE"].mean >= 0
