"""Experiment harness: profiles, reporting, Fig. 1 analysis, tiny runs."""

import numpy as np
import pytest

from repro.city import CityConfig
from repro.experiments import (
    ExperimentContext,
    ExperimentProfile,
    PROFILES,
    best_lag,
    flatten_metric,
    format_table,
    get_profile,
    lagged_correlation,
    run_fig1,
    run_fig7,
    run_table3,
    run_table4,
    run_table5,
)
from repro.metrics import MeanStd


@pytest.fixture(scope="module")
def micro_profile():
    """An even smaller profile than smoke, for harness mechanics tests."""
    return ExperimentProfile(
        name="micro",
        city=CityConfig(
            rows=5,
            cols=5,
            num_lines=2,
            num_commuters=150,
            num_bikes=60,
            days=4,
            background_subway_per_day=60,
            background_bike_per_day=50,
            seed=5,
        ),
        history=5,
        horizons=(2,),
        ablation_horizon=2,
        epochs=1,
        seeds=(0,),
        pyramid_sizes=(2,),
        capsule_dims=(2,),
        models=("STSGCN", "BikeCAP"),
        model_overrides={
            "BikeCAP": {"pyramid_size": 2, "capsule_dim": 2, "future_capsule_dim": 2, "decoder_hidden": 3},
            "STSGCN": {"hidden_channels": 4},
        },
    )


@pytest.fixture(scope="module")
def micro_context(micro_profile):
    return ExperimentContext(micro_profile)


class TestProfiles:
    def test_registry(self):
        assert set(PROFILES) == {"smoke", "default", "paper"}

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "default")
        assert get_profile().name == "default"
        monkeypatch.delenv("REPRO_PROFILE")
        assert get_profile().name == "smoke"

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError):
            get_profile("huge")

    def test_paper_profile_matches_paper_settings(self):
        paper = PROFILES["paper"]
        assert paper.history == 8
        assert paper.horizons == (2, 3, 4, 5, 6, 7, 8)
        assert paper.epochs == 100
        assert len(paper.seeds) == 5
        assert paper.city.num_lines == 7


class TestReporting:
    def test_format_table_alignment(self):
        rows = {"BikeCAP": {"MAE": "1.86±0.41"}, "LSTM": {"MAE": "11.59±2.08"}}
        text = format_table(rows, ["MAE"], row_header="model")
        lines = text.splitlines()
        assert lines[0].startswith("model")
        assert "BikeCAP" in text and "11.59" in text

    def test_flatten_metric(self):
        results = {"A": {"p2": {"MAE": 1, "RMSE": 2}}}
        assert flatten_metric(results, "RMSE") == {"A": {"p2": 2}}


class TestLaggedCorrelation:
    def test_detects_known_lag(self):
        rng = np.random.default_rng(0)
        leader = rng.random(200)
        follower = np.roll(leader, 3)
        follower[:3] = 0
        correlations = lagged_correlation(leader, follower, max_lag=5)
        assert best_lag(correlations) == 3

    def test_constant_series_yields_zero(self):
        correlations = lagged_correlation(np.ones(50), np.ones(50), max_lag=2)
        assert all(value == 0.0 for value in correlations.values())

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            lagged_correlation(np.ones(5), np.ones(6), 2)


class TestFig1:
    def test_run_fig1_structure(self, micro_profile):
        result = run_fig1(profile=micro_profile)
        assert result.residential_station != result.cbd_station
        # The causal chain must show positive lead-lag correlations.
        assert max(result.morning_subway_lag.values()) > 0.3
        assert max(result.morning_bike_lag.values()) > 0.3
        assert max(result.evening_subway_lag.values()) > 0.3
        text = result.render()
        assert "morning" in text and "evening" in text

    def test_series_cover_requested_windows(self, micro_profile):
        result = run_fig1(profile=micro_profile)
        assert len(result.morning_entries_at_a) == 6 * 4  # 6 hours of 15-min slots
        assert len(result.evening_entries_at_b) == 8 * 4


class TestRunners:
    def test_table3_micro(self, micro_profile, micro_context):
        result = run_table3(profile=micro_profile, context=micro_context)
        assert set(result.results) == {"STSGCN", "BikeCAP"}
        cell = result.results["BikeCAP"][2]
        assert isinstance(cell["MAE"], MeanStd)
        rendered = result.render()
        assert "PTS=2" in rendered and "MAE" in rendered
        ratios = result.degradation("MAE")
        assert set(ratios) == {"STSGCN", "BikeCAP"}

    def test_fig7_micro(self, micro_profile, micro_context):
        result = run_fig7(
            profile=micro_profile,
            context=micro_context,
            variants=("BikeCAP", "BikeCap-Sub"),
        )
        assert set(result.results) == {"BikeCAP", "BikeCap-Sub"}
        assert "ablations" in result.render()

    def test_table4_micro(self, micro_profile, micro_context):
        result = run_table4(profile=micro_profile, context=micro_context, sizes=(2, 3))
        assert set(result.results) == {2, 3}
        assert "pyramid" in result.render()

    def test_table5_micro(self, micro_profile, micro_context):
        result = run_table5(profile=micro_profile, context=micro_context, dims=(2,))
        assert set(result.results) == {2}
        assert "capsule" in result.render()

    def test_context_caches_datasets(self, micro_context):
        first = micro_context.dataset(2)
        second = micro_context.dataset(2)
        assert first is second
