"""Accumulated-error experiment mechanics."""

import numpy as np
import pytest

from repro.city import CityConfig
from repro.experiments import ExperimentContext, ExperimentProfile
from repro.experiments.error_propagation import (
    run_error_propagation,
    teacher_forced_prediction,
)


@pytest.fixture(scope="module")
def nano_profile():
    return ExperimentProfile(
        name="nano-ep",
        city=CityConfig(
            rows=5,
            cols=5,
            num_lines=2,
            num_commuters=150,
            num_bikes=60,
            days=4,
            background_subway_per_day=60,
            background_bike_per_day=50,
            seed=5,
        ),
        history=5,
        horizons=(3,),
        ablation_horizon=3,
        epochs=1,
        seeds=(0,),
        pyramid_sizes=(2,),
        capsule_dims=(2,),
        model_overrides={"convLSTM": {"hidden_channels": 3, "kernel_size": 3, "num_layers": 1}},
    )


class TestErrorPropagation:
    def test_recursive_model_measured(self, nano_profile):
        context = ExperimentContext(nano_profile)
        result = run_error_propagation("convLSTM", profile=nano_profile, context=context)
        assert result.horizon == 3
        assert result.rollout_mae.shape == (3,)
        assert result.teacher_forced_mae.shape == (3,)
        assert np.all(np.isfinite(result.accumulated_error))
        text = result.render()
        assert "rollout" in text and "teacher" in text

    def test_first_step_has_no_gap(self, nano_profile):
        """At step 1 rollout and teacher forcing see identical inputs."""
        context = ExperimentContext(nano_profile)
        result = run_error_propagation("convLSTM", profile=nano_profile, context=context)
        assert result.accumulated_error[0] == pytest.approx(0.0, abs=1e-9)

    def test_direct_models_rejected(self, nano_profile):
        context = ExperimentContext(nano_profile)
        with pytest.raises(ValueError, match="direct model"):
            run_error_propagation("STSGCN", profile=nano_profile, context=context)

    def test_teacher_forcing_uses_true_frames(self, nano_profile):
        """With a perfect persistence world, teacher forcing equals rollout;
        verify the helper's alignment by checking shapes and determinism."""
        from repro.baselines import make_forecaster

        context = ExperimentContext(nano_profile)
        dataset = context.dataset(3)
        forecaster = make_forecaster(
            "convLSTM",
            dataset.history,
            3,
            dataset.grid_shape,
            dataset.num_features,
            seed=0,
            hidden_channels=3,
            kernel_size=3,
            num_layers=1,
        )
        forecaster.fit(dataset, epochs=1)
        x = dataset.split.test_x
        out = teacher_forced_prediction(forecaster, dataset, x, window_offset=0)
        # Every usable start fits: decoding start i needs windows
        # i … i + horizon - 1, so len(x) - horizon + 1 starts (the last one
        # consumes the final chronological window).
        assert out.shape == (len(x) - 3 + 1, 3) + dataset.grid_shape
