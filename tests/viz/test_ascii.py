"""ASCII visualization helpers."""

import numpy as np
import pytest

from repro.viz import (
    coupling_panel,
    demand_panel,
    heatmap,
    side_by_side,
    sparkline,
)


class TestSparkline:
    def test_monotone_series_uses_increasing_blocks(self):
        line = sparkline([0, 1, 2, 3, 4])
        assert line[0] <= line[-1]
        assert line[-1] == "█"

    def test_zero_series_is_blank(self):
        assert sparkline([0, 0, 0]) == "   "

    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_downsampling_width(self):
        line = sparkline(np.arange(100.0), width=10)
        assert len(line) == 10

    def test_no_downsampling_when_short(self):
        assert len(sparkline([1, 2], width=10)) == 2


class TestHeatmap:
    def test_dimensions(self):
        text = heatmap(np.ones((3, 5)))
        lines = text.splitlines()
        assert len(lines) == 3
        assert all(len(line) == 5 for line in lines)

    def test_extremes_use_ramp_ends(self):
        grid = np.array([[0.0, 10.0]])
        text = heatmap(grid)
        assert text[0] == " "
        assert text[-1] == "@"

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros(5))

    def test_all_zero_grid(self):
        assert heatmap(np.zeros((2, 2))) == "  \n  "

    def test_vmax_caps_scale(self):
        hot = heatmap(np.array([[5.0]]), vmax=10.0)
        hotter = heatmap(np.array([[5.0]]), vmax=5.0)
        assert hot != hotter


class TestPanels:
    def test_side_by_side_layout(self):
        text = side_by_side(["ab\ncd", "x"], ["left", "right"])
        lines = text.splitlines()
        assert lines[0].startswith("left")
        assert "right" in lines[0]
        assert len(lines) == 3  # title + two rows

    def test_side_by_side_validates(self):
        with pytest.raises(ValueError):
            side_by_side(["a"], ["one", "two"])

    def test_demand_panel(self, rng):
        truth = rng.random((3, 4, 4))
        prediction = rng.random((3, 4, 4))
        text = demand_panel(truth, prediction, step=1)
        assert "truth t+2" in text
        assert "forecast t+2" in text

    def test_demand_panel_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            demand_panel(rng.random((2, 3, 3)), rng.random((2, 4, 4)))

    def test_coupling_panel_from_model(self, rng):
        coupling = rng.random((2, 6, 3, 4, 4))
        text = coupling_panel(coupling, future_step=2)
        assert len(text.splitlines()) == 4

    def test_coupling_panel_validates_rank(self, rng):
        with pytest.raises(ValueError):
            coupling_panel(rng.random((2, 3, 4)))
