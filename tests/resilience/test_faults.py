"""The fault-injection harness itself: plans fire once, helpers are
byte-deterministic, and the serve-side shim still exports the injectors."""

import os
from types import SimpleNamespace

import numpy as np
import pytest

from repro import faults


def _params(count=2):
    return [SimpleNamespace(grad=np.ones(3)) for _ in range(count)]


class TestFaultPlan:
    def test_grad_nan_fires_once_at_threshold(self):
        plan = faults.FaultPlan(grad_nan_at_step=3)
        assert [plan.take_grad_nan() for _ in range(6)] == [
            False, False, True, False, False, False,
        ]
        assert plan.fired == {"grad_nan": 1, "checkpoint_kill": 0, "swap_crash": 0}

    def test_grad_nan_times_bounds_refiring(self):
        plan = faults.FaultPlan(grad_nan_at_step=1, grad_nan_times=2)
        assert [plan.take_grad_nan() for _ in range(4)] == [True, True, False, False]
        assert plan.fired["grad_nan"] == 2

    def test_checkpoint_kill_counter(self):
        plan = faults.FaultPlan(kill_checkpoint_write_at=2)
        assert [plan.take_checkpoint_kill() for _ in range(4)] == [
            False, True, False, False,
        ]
        assert plan.fired["checkpoint_kill"] == 1

    def test_unconfigured_faults_never_fire(self):
        plan = faults.FaultPlan()
        assert not any(plan.take_grad_nan() for _ in range(5))
        assert not any(plan.take_checkpoint_kill() for _ in range(5))


class TestGlobalPlan:
    def test_active_installs_and_restores(self):
        outer = faults.FaultPlan(grad_nan_at_step=1)
        inner = faults.FaultPlan(grad_nan_at_step=2)
        assert faults.current() is None
        with faults.active(outer):
            assert faults.current() is outer
            with faults.active(inner):
                assert faults.current() is inner
            assert faults.current() is outer
        assert faults.current() is None

    def test_poison_gradients_nan_into_first_live_grad(self):
        params = _params()
        with faults.active(faults.FaultPlan(grad_nan_at_step=1)):
            assert faults.poison_gradients(iter(params))
        assert np.isnan(params[0].grad).all()
        assert np.isfinite(params[1].grad).all()

    def test_poison_gradients_noop_without_plan(self):
        params = _params()
        assert not faults.poison_gradients(iter(params))
        assert np.isfinite(params[0].grad).all()

    def test_kill_checkpoint_write_truncates_then_raises(self, tmp_path):
        target = tmp_path / "half.npz"
        target.write_bytes(b"x" * 100)
        with faults.active(faults.FaultPlan(kill_checkpoint_write_at=1)):
            with pytest.raises(faults.SimulatedCrash):
                faults.kill_checkpoint_write(str(target))
        assert target.stat().st_size == 50


class TestByteCorruption:
    def test_corrupt_file_is_deterministic(self, tmp_path):
        a = tmp_path / "a.bin"
        b = tmp_path / "b.bin"
        payload = bytes(range(256)) * 8
        a.write_bytes(payload)
        b.write_bytes(payload)
        assert faults.corrupt_file(str(a), seed=7) == faults.corrupt_file(str(b), seed=7)
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes() != payload
        assert a.stat().st_size == len(payload)

    def test_corrupt_file_twice_round_trips(self, tmp_path):
        # XOR 0xFF at identical offsets is an involution.
        path = tmp_path / "c.bin"
        payload = os.urandom(512)
        path.write_bytes(payload)
        faults.corrupt_file(str(path), seed=3)
        faults.corrupt_file(str(path), seed=3)
        assert path.read_bytes() == payload

    def test_truncate_file(self, tmp_path):
        path = tmp_path / "t.bin"
        path.write_bytes(b"y" * 200)
        assert faults.truncate_file(str(path), keep_fraction=0.25) == 50
        assert path.stat().st_size == 50
        with pytest.raises(ValueError):
            faults.truncate_file(str(path), keep_fraction=1.0)


class TestServeShim:
    def test_serve_faults_reexports_shared_injectors(self):
        from repro.serve import faults as serve_faults

        assert serve_faults.FaultInjectingForecaster is faults.FaultInjectingForecaster
        assert serve_faults.SlowForecaster is faults.SlowForecaster
