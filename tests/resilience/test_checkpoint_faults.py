"""Crash-safe checkpoints: a killed write, a corrupted autosave, and a
truncated archive must never cost more than one generation of progress —
and never produce an unloadable training state (ISSUE acceptance)."""

import os

import numpy as np
import pytest

from repro import faults
from repro.nn.serialization import (
    CORRUPT_SUFFIX,
    PREVIOUS_SUFFIX,
    CheckpointCorruptError,
    is_checkpoint,
    load_checkpoint,
    quarantine,
)
from repro.obs.artifacts import atomic_write_json
from repro.pipeline import checkpoint as ckpt
from repro.pipeline.runner import execute
from repro.pipeline.spec import RunSpec

from .conftest import make_data, make_trainer


def _fit(trainer, path, epochs):
    train_x, train_y, _, _ = make_data()
    return trainer.fit(train_x, train_y, epochs=epochs, checkpoint_path=path)


class TestKilledCheckpointWrite:
    def test_final_path_is_never_torn(self, tmp_path):
        path = str(tmp_path / "run.ckpt.npz")
        trainer = make_trainer()
        with faults.active(faults.FaultPlan(kill_checkpoint_write_at=2)) as plan:
            with pytest.raises(faults.SimulatedCrash):
                _fit(trainer, path, epochs=3)
        assert plan.fired["checkpoint_kill"] == 1
        # The epoch-2 write died after its temp bytes, before the rename:
        # the published path still holds the complete epoch-1 snapshot.
        assert is_checkpoint(path)
        assert load_checkpoint(path).epoch == 1

    def test_training_resumes_from_the_surviving_snapshot(self, tmp_path):
        path = str(tmp_path / "run.ckpt.npz")
        with faults.active(faults.FaultPlan(kill_checkpoint_write_at=2)):
            with pytest.raises(faults.SimulatedCrash):
                _fit(make_trainer(), path, epochs=3)
        resumed = make_trainer()
        train_x, train_y, _, _ = make_data()
        history = resumed.fit(
            train_x, train_y, epochs=3, checkpoint_path=path, resume_from=path
        )
        assert len(history.train_loss) == 3
        assert np.all(np.isfinite(history.train_loss))
        assert load_checkpoint(path).epoch == 3


class TestCorruptDetection:
    def _checkpointed(self, tmp_path, epochs=2):
        path = str(tmp_path / "run.ckpt.npz")
        _fit(make_trainer(), path, epochs=epochs)
        return path

    def test_bit_flips_fail_the_crc_manifest(self, tmp_path):
        path = self._checkpointed(tmp_path)
        assert load_checkpoint(path).epoch == 2
        faults.corrupt_file(path, seed=1)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_truncated_archive_is_corrupt_not_a_crash(self, tmp_path):
        path = self._checkpointed(tmp_path)
        faults.truncate_file(path, keep_fraction=0.5)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)
        assert not is_checkpoint(path)

    def test_quarantine_moves_the_evidence_aside(self, tmp_path):
        path = self._checkpointed(tmp_path)
        target = quarantine(path)
        assert target == path + CORRUPT_SUFFIX
        assert os.path.exists(target) and not os.path.exists(path)


class TestValidatedRestore:
    def _checkpointed(self, tmp_path, epochs=2):
        path = str(tmp_path / "run.ckpt.npz")
        _fit(make_trainer(), path, epochs=epochs)
        return path

    def test_healthy_newest_wins(self, tmp_path):
        path = self._checkpointed(tmp_path)
        assert ckpt.validated_restore(path) == path

    def test_corrupt_newest_falls_back_one_generation(self, tmp_path):
        path = self._checkpointed(tmp_path)
        previous = path + PREVIOUS_SUFFIX
        assert os.path.exists(previous)  # rotated by the epoch-2 write
        faults.corrupt_file(path, seed=1)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            chosen = ckpt.validated_restore(path)
        assert chosen == previous
        assert load_checkpoint(chosen).epoch == 1
        assert os.path.exists(path + CORRUPT_SUFFIX)
        assert not os.path.exists(path)

    def test_both_generations_corrupt_means_fresh_start(self, tmp_path):
        path = self._checkpointed(tmp_path)
        previous = path + PREVIOUS_SUFFIX
        faults.corrupt_file(path, seed=1)
        faults.truncate_file(previous, keep_fraction=0.3)
        with pytest.warns(RuntimeWarning):
            assert ckpt.validated_restore(path) is None
        assert os.path.exists(path + CORRUPT_SUFFIX)
        assert os.path.exists(previous + CORRUPT_SUFFIX)

    def test_none_passes_through(self):
        assert ckpt.validated_restore(None) is None


class TestExecuteResumeSurvivesCorruption:
    def test_resume_uses_previous_generation(self, tiny_dataset, tmp_path):
        spec = RunSpec(model="STGCN", epochs=2, seed=1, hparams={"hidden_channels": 2})
        first = execute(spec, tiny_dataset, checkpoint_dir=str(tmp_path))
        assert first.checkpoint_path is not None
        faults.corrupt_file(first.checkpoint_path, seed=1)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            second = execute(spec, tiny_dataset, checkpoint_dir=str(tmp_path), resume=True)
        assert second.resumed_from == first.checkpoint_path + PREVIOUS_SUFFIX
        assert all(np.isfinite(v) for v in second.metrics.values())

    def test_resume_starts_fresh_when_nothing_survives(self, tiny_dataset, tmp_path):
        spec = RunSpec(model="STGCN", epochs=1, seed=1, hparams={"hidden_channels": 2})
        first = execute(spec, tiny_dataset, checkpoint_dir=str(tmp_path))
        # A 1-epoch run wrote once: no .prev generation exists to fall
        # back to, so a damaged autosave must mean "fresh start", not a crash.
        faults.truncate_file(first.checkpoint_path, keep_fraction=0.4)
        with pytest.warns(RuntimeWarning):
            second = execute(spec, tiny_dataset, checkpoint_dir=str(tmp_path), resume=True)
        assert second.resumed_from is None
        assert all(np.isfinite(v) for v in second.metrics.values())


class TestAtomicArtifacts:
    def test_write_then_read_round_trips(self, tmp_path):
        path = str(tmp_path / "results" / "summary.json")
        atomic_write_json(path, {"rmse": 1.25, "models": ["STGCN"]})
        import json

        with open(path) as handle:
            assert json.load(handle) == {"rmse": 1.25, "models": ["STGCN"]}
        assert not [n for n in os.listdir(os.path.dirname(path)) if n != "summary.json"]

    def test_unserializable_payload_leaves_existing_file_intact(self, tmp_path):
        path = str(tmp_path / "summary.json")
        atomic_write_json(path, {"ok": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        import json

        with open(path) as handle:
            assert json.load(handle) == {"ok": 1}
        assert [n for n in os.listdir(tmp_path)] == ["summary.json"]
