"""DivergenceSentinel detection rules and the substrate-level raisers."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.divergence import (
    LOSS_SPIKE,
    NON_FINITE_GRAD,
    NON_FINITE_GRAD_NORM,
    NON_FINITE_LOSS,
    NON_FINITE_WEIGHTS,
    DivergenceError,
    check_loss,
    first_nonfinite,
)
from repro.nn.optim import clip_grad_norm
from repro.resilience import DivergenceSentinel

from .conftest import make_model


def _step(step, loss, epoch=1):
    return {"step": step, "epoch": epoch, "loss": loss}


class TestDivergenceError:
    def test_unknown_reason_is_rejected(self):
        with pytest.raises(ValueError, match="unknown divergence reason"):
            DivergenceError("melted")

    def test_message_locates_the_detection_point(self):
        err = DivergenceError(NON_FINITE_LOSS, step=7, epoch=2, value=float("nan"))
        assert "epoch 2" in str(err) and "step 7" in str(err)
        assert err.reason == NON_FINITE_LOSS
        assert np.isnan(err.value)


class TestLossChecks:
    def test_finite_loss_passes_through(self):
        assert check_loss(0.25) == 0.25

    def test_nan_loss_raises(self):
        with pytest.raises(DivergenceError) as excinfo:
            check_loss(float("nan"), step=3, epoch=1)
        assert excinfo.value.reason == NON_FINITE_LOSS

    def test_first_nonfinite_names_the_offender(self):
        arrays = [("ok", np.ones(3)), ("bad", np.array([1.0, np.inf])), ("skip", None)]
        assert first_nonfinite(arrays) == "bad"
        assert first_nonfinite([("ok", np.ones(3))]) is None


class TestSentinel:
    def test_nan_step_loss_raises(self):
        sentinel = DivergenceSentinel(window=5)
        with pytest.raises(DivergenceError) as excinfo:
            sentinel.on_step(_step(1, float("nan")))
        assert excinfo.value.reason == NON_FINITE_LOSS

    def test_spike_over_full_window_raises(self):
        sentinel = DivergenceSentinel(window=5, spike_factor=100.0)
        for step in range(1, 6):
            sentinel.on_step(_step(step, 1.0))
        with pytest.raises(DivergenceError) as excinfo:
            sentinel.on_step(_step(6, 500.0))
        assert excinfo.value.reason == LOSS_SPIKE
        assert excinfo.value.value == 500.0

    def test_moderate_growth_does_not_trip(self):
        sentinel = DivergenceSentinel(window=5, spike_factor=100.0)
        for step in range(1, 20):
            sentinel.on_step(_step(step, 1.0 + 0.5 * step))

    def test_no_spike_before_window_fills(self):
        sentinel = DivergenceSentinel(window=10, spike_factor=2.0)
        sentinel.on_step(_step(1, 1.0))
        sentinel.on_step(_step(2, 1e6))  # only 1 banked loss: no baseline yet

    def test_fit_start_resets_the_window(self):
        sentinel = DivergenceSentinel(window=3, spike_factor=10.0)
        for step in range(1, 4):
            sentinel.on_step(_step(step, 1.0))
        sentinel.on_fit_start({})
        sentinel.on_step(_step(1, 1e6))  # fresh window: passes

    def test_nonfinite_weights_caught_at_epoch(self):
        model = make_model(seed=0)
        sentinel = DivergenceSentinel(model=model)
        sentinel.on_epoch({"epoch": 1})
        name, param = next(iter(model.named_parameters()))
        param.data[0] = np.nan
        with pytest.raises(DivergenceError) as excinfo:
            sentinel.on_epoch({"epoch": 2})
        assert excinfo.value.reason == NON_FINITE_WEIGHTS
        assert name in str(excinfo.value)

    def test_optional_grad_sweep(self):
        model = make_model(seed=0)
        sentinel = DivergenceSentinel(model=model, check_grads_each_step=True)
        for param in model.parameters():
            param.grad = np.zeros_like(param.data)
        sentinel.on_step(_step(1, 0.5))
        next(iter(model.parameters())).grad[...] = np.inf
        with pytest.raises(DivergenceError) as excinfo:
            sentinel.on_step(_step(2, 0.5))
        assert excinfo.value.reason == NON_FINITE_GRAD

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DivergenceSentinel(window=0)
        with pytest.raises(ValueError):
            DivergenceSentinel(spike_factor=1.0)


class TestClipGradNorm:
    def _tensors(self, *grads):
        out = []
        for grad in grads:
            tensor = Tensor(np.zeros_like(np.asarray(grad, dtype=float)))
            tensor.grad = np.asarray(grad, dtype=float)
            out.append(tensor)
        return out

    def test_nonfinite_total_norm_raises_typed_error(self):
        params = self._tensors([1.0, np.nan])
        with pytest.raises(DivergenceError) as excinfo:
            clip_grad_norm(params, max_norm=1.0)
        assert excinfo.value.reason == NON_FINITE_GRAD_NORM

    def test_zero_norm_is_not_divided(self):
        params = self._tensors([0.0, 0.0])
        clip_grad_norm(params, max_norm=1.0)
        assert np.all(params[0].grad == 0.0)

    def test_finite_clipping_still_works(self):
        params = self._tensors([3.0, 4.0])
        clip_grad_norm(params, max_norm=1.0)
        assert np.linalg.norm(params[0].grad) == pytest.approx(1.0)
