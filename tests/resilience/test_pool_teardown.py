"""Chaos test: a crash inside a sharded train step must not leak pool workers.

``REPRO_NUM_THREADS > 1`` runs each mini-batch sharded across the engine's
shared thread pool. When one shard raises (fault injection, divergence,
OOM), the rollback-and-retry machinery in :mod:`repro.resilience` will call
``train_step`` again — if the failed step's pool survived with zombie
workers still chewing on stale shards, every retry would race them against
the rolled-back model and each rebuild would leak a pool's worth of
threads. ``Trainer`` tears the pool down (cancel + drain) on any exception
escaping the sharded path; these tests hammer that contract.
"""

import threading

import numpy as np
import pytest

from repro import faults
from repro.nn import Linear, Sequential, Trainer
from repro.nn import config as nn_config
from repro.nn import engine
from repro.nn.layers.base import Module


def _engine_threads():
    """Live threads belonging to the engine's shard pool."""
    return [
        thread
        for thread in threading.enumerate()
        if thread.name.startswith("repro-engine")
    ]


class _Sabotage(Module):
    """Identity layer that raises a simulated crash on demand."""

    def __init__(self):
        super().__init__()
        self.crash = False

    def forward(self, x):
        if self.crash:
            raise faults.SimulatedCrash("shard sabotage")
        return x


@pytest.fixture()
def sharded_threads():
    """Run with a 4-way shard pool; restore and drain it afterwards."""
    previous = nn_config.num_threads()
    nn_config.set_num_threads(4)
    yield 4
    nn_config.set_num_threads(previous)
    engine.reset_executor(wait=True)


def _make_trainer():
    sabotage = _Sabotage()
    model = Sequential(Linear(6, 8), sabotage, Linear(8, 2))
    trainer = Trainer(model, loss="mse", lr=0.01, seed=0)
    rng = np.random.default_rng(0)
    x = rng.random((16, 6)).astype(nn_config.dtype())
    y = rng.random((16, 2)).astype(nn_config.dtype())
    return trainer, sabotage, x, y


def test_crashing_shard_drains_pool_across_retries(sharded_threads):
    """Repeated failing steps never accumulate engine worker threads."""
    engine.reset_executor(wait=True)
    assert _engine_threads() == []
    trainer, sabotage, x, y = _make_trainer()

    # A healthy sharded step brings the pool up.
    loss = trainer.train_step(x, y)
    assert np.isfinite(loss)
    assert len(_engine_threads()) <= sharded_threads

    sabotage.crash = True
    for _ in range(5):  # rollback-and-retry shape: fail, retry, fail, ...
        with pytest.raises(faults.SimulatedCrash):
            trainer.train_step(x, y)
        # The teardown must be synchronous: by the time the exception
        # reaches the caller, no worker from the failed step survives.
        assert _engine_threads() == []

    # Recovery after the fault clears: a fresh pool, bounded at one
    # generation of workers, and a finite step.
    sabotage.crash = False
    loss = trainer.train_step(x, y)
    assert np.isfinite(loss)
    assert len(_engine_threads()) <= sharded_threads


def test_crash_then_serial_step_is_unaffected(sharded_threads):
    """After a torn-down pool, dropping to serial sharding still works."""
    trainer, sabotage, x, y = _make_trainer()
    sabotage.crash = True
    with pytest.raises(faults.SimulatedCrash):
        trainer.train_step(x, y)
    assert _engine_threads() == []
    sabotage.crash = False
    nn_config.set_num_threads(1)
    loss = trainer.train_step(x, y)
    assert np.isfinite(loss)
    assert _engine_threads() == []
