"""Rollback-and-retry recovery: the chaos tests from docs/RESILIENCE.md.

The acceptance scenario (ISSUE): a gradient poisoned with NaN at a
deterministic optimizer step must not kill the run — ``runner.execute``
under the default :class:`RecoveryPolicy` rolls back to the last good
epoch, halves the learning rate, retries, and completes with a finite
final loss and the rollback on record.
"""

import numpy as np
import pytest

from repro import faults
from repro.nn.divergence import NON_FINITE_GRAD_NORM, DivergenceError
from repro.pipeline.runner import execute
from repro.pipeline.spec import RunSpec
from repro.resilience import RecoveryPolicy, RecoveryReport, fit_with_recovery

from .conftest import make_data, make_trainer

BASE_LR = 1e-3


def _state(trainer):
    return {name: np.array(value) for name, value in trainer.model.state_dict().items()}


class TestRecoveryPolicy:
    def test_defaults_are_enabled_and_bounded(self):
        policy = RecoveryPolicy()
        assert policy.enabled and policy.max_retries == 2
        assert policy.lr_backoff == 0.5

    def test_from_dict_round_trip(self):
        policy = RecoveryPolicy.from_dict({"max_retries": 5, "lr_backoff": 0.25})
        assert policy.max_retries == 5
        assert RecoveryPolicy.from_dict(policy.to_dict()) == policy

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown resilience option"):
            RecoveryPolicy.from_dict({"retires": 3})

    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(lr_backoff=0.0)
        with pytest.raises(ValueError):
            RecoveryPolicy(spike_factor=0.5)


class TestFitWithRecovery:
    def test_healthy_fit_reports_no_rollbacks(self):
        train_x, train_y, _, _ = make_data()
        history, report = fit_with_recovery(make_trainer(), train_x, train_y, epochs=2)
        assert isinstance(report, RecoveryReport)
        assert report.rollback_count == 0 and not report.gave_up
        assert len(history.train_loss) == 2

    def test_nan_gradient_recovers_with_rollback_and_lr_backoff(self):
        train_x, train_y, _, _ = make_data()
        trainer = make_trainer()
        # 32 samples / batch 8 = 4 steps per epoch: step 6 is epoch 2.
        with faults.active(faults.FaultPlan(grad_nan_at_step=6)) as plan:
            history, report = fit_with_recovery(trainer, train_x, train_y, epochs=3)
        assert plan.fired["grad_nan"] == 1
        assert report.rollback_count == 1 and not report.gave_up
        rollback = report.rollbacks[0]
        assert rollback["reason"] == NON_FINITE_GRAD_NORM
        assert rollback["failed_epoch"] == 2
        assert rollback["resumed_epoch"] == 1
        assert rollback["lr_before"] == pytest.approx(BASE_LR)
        assert rollback["lr_after"] == pytest.approx(BASE_LR * 0.5)
        assert trainer.optimizer.lr == pytest.approx(BASE_LR * 0.5)
        # The recovered run still performed every epoch, all losses finite.
        assert len(history.train_loss) == 3
        assert np.all(np.isfinite(history.train_loss))
        assert all(np.all(np.isfinite(v)) for v in _state(trainer).values())

    def test_recovered_run_is_deterministic(self):
        train_x, train_y, _, _ = make_data()
        results = []
        for _ in range(2):
            trainer = make_trainer()
            with faults.active(faults.FaultPlan(grad_nan_at_step=6)):
                history, report = fit_with_recovery(trainer, train_x, train_y, epochs=3)
            assert report.rollback_count == 1
            results.append((history.train_loss, _state(trainer)))
        assert results[0][0] == results[1][0]
        for name in results[0][1]:
            np.testing.assert_array_equal(results[0][1][name], results[1][1][name])

    def test_retry_exhaustion_propagates_with_gave_up(self):
        train_x, train_y, _, _ = make_data()
        trainer = make_trainer()
        policy = RecoveryPolicy(max_retries=2)
        # Poison every step: no amount of rolling back helps.
        plan = faults.FaultPlan(grad_nan_at_step=1, grad_nan_times=10**6)
        with faults.active(plan):
            with pytest.raises(DivergenceError):
                fit_with_recovery(trainer, train_x, train_y, epochs=2, policy=policy)
        # Initial attempt + two retries, each dying on its first step.
        assert plan.fired["grad_nan"] == 3

    def test_disabled_policy_raises_immediately(self):
        train_x, train_y, _, _ = make_data()
        policy = RecoveryPolicy(enabled=False)
        plan = faults.FaultPlan(grad_nan_at_step=2)
        with faults.active(plan):
            with pytest.raises(DivergenceError):
                fit_with_recovery(
                    make_trainer(), train_x, train_y, epochs=2, policy=policy
                )
        assert plan.fired["grad_nan"] == 1

    def test_observers_are_preserved_alongside_the_sentinel(self):
        train_x, train_y, _, _ = make_data()
        seen = []

        class Spy:
            def on_fit_start(self, info):
                seen.append("start")

            def on_step(self, info):
                pass

            def on_epoch(self, info):
                seen.append(info["epoch"])

            def on_eval(self, info):
                pass

            def on_early_stop(self, info):
                pass

            def on_fit_end(self, info):
                seen.append("end")

        fit_with_recovery(
            make_trainer(), train_x, train_y, epochs=2, observers=[Spy()]
        )
        assert seen == ["start", 1, 2, "end"]


class TestPipelineAcceptance:
    """ISSUE acceptance: chaos through the real ``runner.execute`` funnel."""

    def _spec(self, **resilience):
        return RunSpec(
            model="STGCN",
            epochs=2,
            seed=1,
            hparams={"hidden_channels": 2},
            resilience=resilience or None,
        )

    def test_execute_completes_through_injected_nan(self, tiny_dataset):
        # The tiny dataset's train split fits in one batch: step 2 is the
        # second epoch's (only) optimizer step.
        with faults.active(faults.FaultPlan(grad_nan_at_step=2)) as plan:
            result = execute(self._spec(), tiny_dataset)
        assert plan.fired["grad_nan"] == 1
        assert result.resilience is not None
        assert result.resilience["rollback_count"] >= 1
        assert not result.resilience["gave_up"]
        assert all(np.isfinite(v) for v in result.metrics.values())
        assert np.all(np.isfinite(result.history["train_loss"]))

    def test_execute_records_empty_report_on_healthy_run(self, tiny_dataset):
        result = execute(self._spec(), tiny_dataset)
        assert result.resilience == {"rollbacks": [], "rollback_count": 0, "gave_up": False}

    def test_spec_can_disable_recovery(self, tiny_dataset):
        with faults.active(faults.FaultPlan(grad_nan_at_step=2)):
            with pytest.raises(DivergenceError):
                execute(self._spec(enabled=False), tiny_dataset)
