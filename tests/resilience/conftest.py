import numpy as np
import pytest

from repro import faults
from repro.data.datasets import dataset_from_tensor
from repro.nn import Linear, Sequential, Trainer
from repro.nn.layers import Activation


@pytest.fixture(autouse=True)
def _no_runlog(monkeypatch):
    """Resilience tests must not litter results/runs/."""
    monkeypatch.setenv("REPRO_RUNLOG", "0")


@pytest.fixture(autouse=True)
def _no_leftover_fault_plan():
    """A test that forgets to clear its fault plan must not poison the next."""
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="session")
def tiny_dataset():
    """A 5×5-grid, 4-feature dataset small enough to train in seconds."""
    rng = np.random.default_rng(42)
    tensor = rng.random((60, 5, 5, 4))
    return dataset_from_tensor(tensor, history=6, horizon=2)


def make_model(seed):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(6, 8, rng=rng), Activation("relu"), Linear(8, 3, rng=rng))


def make_data():
    rng = np.random.default_rng(99)
    x = rng.random((40, 6))
    y = rng.random((40, 3))
    return x[:32], y[:32], x[32:], y[32:]


def make_trainer(seed=11, model_seed=0, **kwargs):
    return Trainer(make_model(model_seed), batch_size=8, seed=seed, **kwargs)
