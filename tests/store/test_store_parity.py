"""WindowStore ≡ the eager pipeline, bit for bit.

The whole point of the chunked store is that nothing downstream can tell
it apart from the historical materialize-everything path: same windows,
same split boundaries, same scaler, same shuffled batch stream. Every
test here compares against the eager reference with ``np.array_equal`` /
``tobytes`` — no tolerances.
"""

import numpy as np
import pytest

from repro.data import chronological_split, make_windows
from repro.data.normalization import MinMaxScaler
from repro.nn.training import iterate_minibatches
from repro.store import WindowIterator, WindowStore


HISTORY, HORIZON = 5, 3


def _tensor(total=41, seed=3):
    return np.random.default_rng(seed).random((total, 3, 2, 3)) * 25


def _eager_reference(tensor, fit_slots=None):
    """The historical dataset build: fit → clip-transform → window → split."""
    scaler = MinMaxScaler()
    scaler.fit(tensor if fit_slots is None else tensor[:fit_slots])
    normalized = np.clip(scaler.transform(tensor), 0.0, None)
    x, y = make_windows(normalized, HISTORY, HORIZON)
    return scaler, normalized, x, y


def _store(tensor, chunk_slots=7, fit_slots=None):
    return WindowStore.from_tensor(
        tensor, HISTORY, HORIZON, chunk_slots=chunk_slots, fit_slots=fit_slots
    )


class TestWindowParity:
    @pytest.mark.parametrize("chunk_slots", [3, 7, 64, 256])
    def test_full_materialization_matches_eager(self, chunk_slots):
        tensor = _tensor()
        _, _, ex, ey = _eager_reference(tensor)
        x, y = _store(tensor, chunk_slots).windows()
        assert x.tobytes() == ex.tobytes()
        assert y.tobytes() == ey.tobytes()

    def test_incremental_extends_match_one_shot_build(self):
        tensor = _tensor()
        one_shot = _store(tensor)
        grown = WindowStore(HISTORY, HORIZON, chunk_slots=7)
        for start in range(0, len(tensor), 5):
            grown.extend(tensor[start : start + 5])
        grown.fit_scaler()
        x1, y1 = one_shot.windows()
        x2, y2 = grown.windows()
        assert np.array_equal(x1, x2) and np.array_equal(y1, y2)

    def test_scaler_fit_matches_eager_train_range_fit(self):
        tensor = _tensor()
        fit_slots = 24
        eager_scaler, _, _, _ = _eager_reference(tensor, fit_slots=fit_slots)
        store = _store(tensor, fit_slots=fit_slots)
        assert np.array_equal(store.scaler.minimum, eager_scaler.minimum)
        assert np.array_equal(store.scaler.maximum, eager_scaler.maximum)

    def test_windows_at_shuffled_indices_match_eager_rows(self):
        tensor = _tensor()
        _, _, ex, ey = _eager_reference(tensor)
        store = _store(tensor)
        indices = np.random.default_rng(1).permutation(store.num_windows)[:11]
        x, y = store.windows_at(indices)
        assert np.array_equal(x, ex[indices])
        assert np.array_equal(y, ey[indices])

    def test_stride_matches_eager(self):
        tensor = _tensor()
        scaler, normalized, _, _ = _eager_reference(tensor)
        ex, ey = make_windows(normalized, HISTORY, HORIZON, stride=3)
        x, y = _store(tensor).windows(stride=3)
        assert np.array_equal(x, ex) and np.array_equal(y, ey)


class TestSplitViewParity:
    def test_split_views_match_chronological_split(self):
        tensor = _tensor()
        _, _, ex, ey = _eager_reference(tensor)
        split = chronological_split(ex, ey)
        store = _store(tensor)
        train, val, test = store.split_views()
        for view, want_x, want_y in [
            (train, split.train_x, split.train_y),
            (val, split.val_x, split.val_y),
            (test, split.test_x, split.test_y),
        ]:
            got_x, got_y = view.arrays()
            assert np.array_equal(got_x, want_x)
            assert np.array_equal(got_y, want_y)

    def test_lazy_accessors_match_arrays(self):
        store = _store(_tensor())
        _, val, _ = store.split_views()
        x, y = val.arrays()
        assert np.array_equal(np.asarray(val.x), x)
        assert np.array_equal(np.asarray(val.targets), y)
        assert np.array_equal(val.x[1:3], x[1:3])
        assert np.array_equal(val.x[-1], x[-1])
        assert np.array_equal(val.targets[0], y[0])

    def test_lazy_slices_must_be_contiguous(self):
        store = _store(_tensor())
        train, _, _ = store.split_views()
        with pytest.raises(ValueError, match="contiguous"):
            train.x[::2]

    def test_raw_x_returns_denormalized_slots(self):
        tensor = _tensor()
        store = _store(tensor)
        _, _, test = store.split_views()
        raw = test.raw_x()
        assert raw.shape == (len(test), HISTORY, 3, 2, 3)
        assert np.array_equal(raw[0], tensor[test.start : test.start + HISTORY])


class TestBatchStreamParity:
    def test_streamed_batches_bit_identical_to_iterate_minibatches(self):
        tensor = _tensor()
        _, _, ex, ey = _eager_reference(tensor)
        store = _store(tensor)
        train, _, _ = store.split_views()
        eager_x, eager_y = train.arrays()
        assert np.array_equal(eager_x, ex[: len(train)])

        eager_batches = list(
            iterate_minibatches(eager_x, eager_y, 8, rng=np.random.default_rng(5))
        )
        streamed = list(train.batches(8, rng=np.random.default_rng(5)))
        assert len(streamed) == len(eager_batches)
        for (sx, sy), (gx, gy) in zip(streamed, eager_batches):
            assert sx.tobytes() == gx.tobytes()
            assert sy.tobytes() == gy.tobytes()

    def test_window_iterator_is_reiterable_and_satisfies_protocol(self):
        store = _store(_tensor())
        train, _, _ = store.split_views()
        iterator = WindowIterator(train, batch_size=8)
        assert iterator.num_samples == len(train)
        first = [x.copy() for x, _ in iterator]
        second = [x.copy() for x, _ in iterator]
        assert len(first) == len(second) > 1
        for a, b in zip(first, second):
            assert np.array_equal(a, b)


class TestStoreSurface:
    def test_empty_store_refuses_shape_queries(self):
        store = WindowStore(HISTORY, HORIZON)
        with pytest.raises(RuntimeError, match="store is empty"):
            store.grid_shape

    def test_window_range_checked(self):
        store = _store(_tensor())
        with pytest.raises(IndexError, match="out of bounds"):
            store.windows(0, store.num_windows + 1)

    def test_latest_raw_window_tracks_the_head(self):
        tensor = _tensor()
        store = WindowStore(HISTORY, HORIZON, normalize=False)
        store.extend(tensor[:4])
        assert store.latest_raw_window() is None  # too few slots
        store.extend(tensor[4:9])
        assert np.array_equal(store.latest_raw_window(), tensor[4:9])
