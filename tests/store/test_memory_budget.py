"""The store's reason to exist, measured: an epoch never materializes the
window tensor.

Windows overlap, so the eager ``make_windows`` path inflates a ``(T, G1,
G2, F)`` series by roughly ``history + horizon``×. Streaming batches
through the store must stay under that materialized footprint by a wide
margin — the budget here is a *fraction* of it, asserted with tracemalloc
around a full shuffled epoch.
"""

import tracemalloc

import numpy as np

from repro.store import WindowStore


def test_epoch_peak_stays_under_materialized_window_footprint():
    history, horizon, batch_size = 8, 4, 16
    tensor = np.random.default_rng(0).random((512, 6, 6, 3))
    store = WindowStore.from_tensor(tensor, history, horizon, chunk_slots=64)
    train, _, _ = store.split_views()

    # What the eager path would hold: every window of the train split.
    frame = np.prod(tensor.shape[1:])
    itemsize = tensor.itemsize
    x_bytes = len(train) * history * frame * itemsize
    y_bytes = len(train) * horizon * np.prod(tensor.shape[1:3]) * itemsize
    materialized = int(x_bytes + y_bytes)

    # Warm up allocator pools outside the measurement window.
    next(iter(train.batches(batch_size, rng=np.random.default_rng(0))))

    tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()
    consumed = 0
    for x, y in train.batches(batch_size, rng=np.random.default_rng(1)):
        consumed += len(x) + 0 * len(y)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert consumed == len(train)
    epoch_peak = peak - baseline
    # O(batch) working set: a generous 25% of the eager footprint still
    # proves windows were never materialized wholesale (in practice the
    # peak is a couple of batches, ~2-5%).
    assert epoch_peak < materialized * 0.25, (
        f"epoch peak {epoch_peak / 1e6:.1f} MB vs materialized "
        f"{materialized / 1e6:.1f} MB"
    )
