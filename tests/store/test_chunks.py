"""ChunkBuffer: fixed-size time chunks behind the window store."""

import numpy as np
import pytest

from repro.store import ChunkBuffer


def _slots(n, value_from=0):
    slots = np.zeros((n, 2, 3, 2))
    slots += np.arange(value_from, value_from + n)[:, None, None, None]
    return slots


class TestExtend:
    def test_infers_frame_shape_on_first_extend(self):
        buffer = ChunkBuffer(chunk_slots=4)
        assert buffer.frame_shape is None
        buffer.extend(_slots(3))
        assert buffer.frame_shape == (2, 3, 2)
        assert len(buffer) == 3

    def test_accepts_single_bare_frame(self):
        buffer = ChunkBuffer(frame_shape=(2, 3, 2), chunk_slots=4)
        buffer.extend(np.zeros((2, 3, 2)))
        assert len(buffer) == 1

    def test_rejects_frame_shape_mismatch(self):
        buffer = ChunkBuffer(chunk_slots=4)
        buffer.extend(_slots(2))
        with pytest.raises(ValueError):
            buffer.extend(np.zeros((1, 5, 5, 2)))

    def test_spans_multiple_chunks(self):
        buffer = ChunkBuffer(chunk_slots=4)
        buffer.extend(_slots(11))
        assert len(buffer) == 11
        assert [len(view) for view in buffer.chunk_views()] == [4, 4, 3]


class TestGather:
    def test_values_across_chunk_boundary(self):
        buffer = ChunkBuffer(chunk_slots=4)
        slots = _slots(10)
        buffer.extend(slots)
        assert np.array_equal(buffer.gather(2, 7), slots[2:7])

    def test_within_chunk_is_a_view(self):
        buffer = ChunkBuffer(chunk_slots=8)
        buffer.extend(_slots(6))
        gathered = buffer.gather(1, 4)
        assert gathered.base is not None  # zero-copy inside one chunk

    def test_across_chunks_is_a_fresh_copy(self):
        buffer = ChunkBuffer(chunk_slots=4)
        buffer.extend(_slots(8))
        gathered = buffer.gather(2, 6)
        assert gathered.base is None

    def test_out_of_bounds_raises(self):
        buffer = ChunkBuffer(chunk_slots=4)
        buffer.extend(_slots(5))
        with pytest.raises(IndexError):
            buffer.gather(3, 9)
