"""The store's window primitives, pinned against the historical eager path.

``supervised_pairs`` replaced ``make_windows``'s per-start ``np.stack``
loop with a zero-copy ``sliding_window_view``; these pins keep the fast
path bit-identical to the reference implementation (including ``stride``)
so the swap can never drift.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import (
    lazy_window_view,
    shuffled_batch_indices,
    split_bounds,
    supervised_pairs,
    window_count,
)


def _reference_pairs(tensor, history, horizon, target_feature=0, stride=1):
    """The historical make_windows implementation: per-start np.stack."""
    total = tensor.shape[0]
    count = total - history - horizon + 1
    xs, ys = [], []
    for start in range(0, count, stride):
        xs.append(tensor[start : start + history])
        ys.append(
            tensor[start + history : start + history + horizon, :, :, target_feature]
        )
    return np.stack(xs), np.stack(ys)


def _series(total, g1=3, g2=2, features=3, seed=0):
    return np.random.default_rng(seed).random((total, g1, g2, features)) * 10


class TestSupervisedPairsPin:
    @settings(max_examples=25, deadline=None)
    @given(
        history=st.integers(1, 6),
        horizon=st.integers(1, 5),
        stride=st.integers(1, 4),
        target=st.integers(0, 2),
    )
    def test_bit_identical_to_reference(self, history, horizon, stride, target):
        tensor = _series(24)
        x, y = supervised_pairs(
            tensor, history, horizon, target_feature=target, stride=stride
        )
        rx, ry = _reference_pairs(
            tensor, history, horizon, target_feature=target, stride=stride
        )
        assert x.tobytes() == rx.tobytes()
        assert y.tobytes() == ry.tobytes()
        assert x.dtype == rx.dtype and x.shape == rx.shape

    def test_outputs_are_fresh_contiguous_copies(self):
        x, y = supervised_pairs(_series(12), 4, 2)
        assert x.flags.c_contiguous and y.flags.c_contiguous
        assert x.base is None or not np.shares_memory(x, _series(12))

    def test_rejects_bad_rank_with_exact_message(self):
        with pytest.raises(ValueError, match=r"expected \(T, G1, G2, F\) tensor"):
            supervised_pairs(np.zeros((10, 2, 2)), 2, 2)

    def test_rejects_short_series_with_exact_message(self):
        with pytest.raises(ValueError, match="too short for history"):
            supervised_pairs(_series(4), 4, 3)

    def test_rejects_nonpositive_history(self):
        with pytest.raises(ValueError, match="must be positive"):
            supervised_pairs(_series(10), 0, 2)


class TestLazyWindowView:
    def test_is_zero_copy(self):
        tensor = _series(10)
        view = lazy_window_view(tensor, 4)
        assert np.shares_memory(view, tensor)
        assert view.shape == (7, 4, 3, 2, 3)

    def test_fancy_index_materializes_copies(self):
        tensor = _series(10)
        picked = lazy_window_view(tensor, 4)[np.array([0, 3, 5])]
        assert not np.shares_memory(picked, tensor)
        assert np.array_equal(picked[1], tensor[3:7])


class TestSplitBounds:
    def test_default_ratios(self):
        assert split_bounds(10) == (6, 8)

    def test_rejects_too_few_windows(self):
        with pytest.raises(ValueError, match="need at least 3 windows"):
            split_bounds(2)

    @settings(max_examples=20, deadline=None)
    @given(count=st.integers(3, 200))
    def test_every_split_nonempty(self, count):
        train_end, val_end = split_bounds(count)
        assert 0 < train_end < val_end < count


class TestShuffledBatchIndices:
    def test_without_rng_preserves_order(self):
        batches = list(shuffled_batch_indices(7, 3, None))
        assert [b.tolist() for b in batches] == [[0, 1, 2], [3, 4, 5], [6]]

    def test_rng_consumption_matches_trainer_shuffle(self):
        # Same schedule as iterate_minibatches: one rng.shuffle of arange.
        reference_rng = np.random.default_rng(7)
        order = np.arange(10)
        reference_rng.shuffle(order)
        batches = list(shuffled_batch_indices(10, 4, np.random.default_rng(7)))
        assert np.array_equal(np.concatenate(batches), order)

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ValueError):
            list(shuffled_batch_indices(5, 0, None))


class TestWindowCount:
    @settings(max_examples=20, deadline=None)
    @given(total=st.integers(0, 30), history=st.integers(1, 6), horizon=st.integers(1, 6))
    def test_matches_eager_count(self, total, history, horizon):
        assert window_count(total, history, horizon) == max(
            total - history - horizon + 1, 0
        )
