"""Incremental scaler statistics: partial_fit ≡ whole-tensor fit, pinned."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import MinMaxScaler


def _tensor(total, seed=0):
    return np.random.default_rng(seed).random((total, 2, 2, 3)) * 50 - 10


class TestPartialFitParity:
    @settings(max_examples=20, deadline=None)
    @given(total=st.integers(1, 40), chunk=st.integers(1, 9), seed=st.integers(0, 5))
    def test_chunked_equals_whole_fit(self, total, chunk, seed):
        tensor = _tensor(total, seed)
        whole = MinMaxScaler().fit(tensor)
        streamed = MinMaxScaler()
        for start in range(0, total, chunk):
            streamed.partial_fit(tensor[start : start + chunk])
        assert np.array_equal(streamed.minimum, whole.minimum)
        assert np.array_equal(streamed.maximum, whole.maximum)
        assert streamed.count == whole.count

    def test_transform_after_streaming_is_bit_identical(self):
        tensor = _tensor(30)
        whole = MinMaxScaler().fit(tensor)
        streamed = MinMaxScaler()
        for start in range(0, 30, 7):
            streamed.partial_fit(tensor[start : start + 7])
        assert streamed.transform(tensor).tobytes() == whole.transform(tensor).tobytes()

    def test_empty_tensor_is_a_noop(self):
        scaler = MinMaxScaler()
        scaler.partial_fit(_tensor(5))
        before = (scaler.minimum.copy(), scaler.maximum.copy(), scaler.count)
        scaler.partial_fit(np.empty((0, 2, 2, 3)))
        assert np.array_equal(scaler.minimum, before[0])
        assert np.array_equal(scaler.maximum, before[1])
        assert scaler.count == before[2]

    def test_quantile_mode_refuses_partial_fit(self):
        scaler = MinMaxScaler(quantile=0.9)
        with pytest.raises(ValueError, match="rank statistic"):
            scaler.partial_fit(_tensor(5))


class TestStateRoundTrip:
    def test_count_survives_the_round_trip(self):
        scaler = MinMaxScaler()
        scaler.partial_fit(_tensor(12))
        clone = MinMaxScaler.from_state(scaler.state())
        assert clone.count == scaler.count == 12 * 2 * 2
        assert np.array_equal(clone.minimum, scaler.minimum)
        assert np.array_equal(clone.maximum, scaler.maximum)

    def test_restored_scaler_resumes_streaming_exactly(self):
        tensor = _tensor(24)
        direct = MinMaxScaler()
        direct.partial_fit(tensor)

        first = MinMaxScaler()
        first.partial_fit(tensor[:10])
        resumed = MinMaxScaler.from_state(first.state())
        resumed.partial_fit(tensor[10:])
        assert np.array_equal(resumed.minimum, direct.minimum)
        assert np.array_equal(resumed.maximum, direct.maximum)
        assert resumed.count == direct.count

    def test_missing_keys_still_rejected_loudly(self):
        scaler = MinMaxScaler().fit(_tensor(5))
        state = scaler.state()
        for key in ("minimum", "maximum"):
            broken = {k: v for k, v in state.items() if k != key}
            with pytest.raises((KeyError, ValueError)):
                MinMaxScaler.from_state(broken)

    def test_legacy_state_without_count_defaults_to_zero(self):
        state = MinMaxScaler().fit(_tensor(5)).state()
        state.pop("count")
        clone = MinMaxScaler.from_state(state)
        assert clone.count == 0
        assert clone.fitted
