"""Persistence and seasonal-average sanity baselines."""

import numpy as np
import pytest

from repro.baselines import PersistenceForecaster, SeasonalAverageForecaster
from repro.data import dataset_from_tensor


def _periodic_tensor(days=4, slots_per_day=24, grid=3):
    """Demand with a pure diurnal pattern plus a spatial gradient."""
    total = days * slots_per_day
    slot = np.arange(total) % slots_per_day
    wave = 5.0 + 4.0 * np.sin(2 * np.pi * slot / slots_per_day)
    tensor = np.zeros((total, grid, grid, 4))
    gradient = np.linspace(0.5, 1.5, grid * grid).reshape(grid, grid)
    tensor[..., 0] = wave[:, None, None] * gradient
    tensor[..., 1:] = 1.0
    return tensor


class TestPersistence:
    def test_repeats_last_frame(self, rng):
        model = PersistenceForecaster(4, 3, (3, 3), 4)
        x = rng.random((2, 4, 3, 3, 4))
        out = model.predict(x)
        for step in range(3):
            assert np.allclose(out[:, step], x[:, -1, :, :, 0])

    def test_fit_is_noop(self, tiny_dataset):
        model = PersistenceForecaster(
            tiny_dataset.history, tiny_dataset.horizon, tiny_dataset.grid_shape, 4
        )
        assert model.fit(tiny_dataset) == {}

    def test_perfect_on_constant_series(self):
        tensor = np.ones((40, 2, 2, 4))
        dataset = dataset_from_tensor(tensor, history=4, horizon=2)
        model = PersistenceForecaster(4, 2, (2, 2), 4)
        prediction = model.predict(dataset.split.test_x)
        assert np.allclose(prediction, dataset.split.test_y)


class TestSeasonalAverage:
    def test_learns_diurnal_profile(self):
        slots_per_day = 24
        tensor = _periodic_tensor(days=6, slots_per_day=slots_per_day)
        dataset = dataset_from_tensor(tensor, history=6, horizon=2)
        model = SeasonalAverageForecaster(
            6, 2, (3, 3), 4, slots_per_day=slots_per_day
        )
        info = model.fit(dataset)
        assert info["slots_seen"] > 0
        prediction = model.predict(dataset.split.test_x)
        error = np.abs(prediction - dataset.split.test_y).mean()
        # A pure-periodic series is almost exactly predictable from its profile.
        assert error < 0.05

    def test_beats_persistence_on_periodic_series_at_long_horizon(self):
        slots_per_day = 24
        tensor = _periodic_tensor(days=6, slots_per_day=slots_per_day)
        dataset = dataset_from_tensor(tensor, history=6, horizon=6)
        seasonal = SeasonalAverageForecaster(6, 6, (3, 3), 4, slots_per_day=slots_per_day)
        seasonal.fit(dataset)
        persistence = PersistenceForecaster(6, 6, (3, 3), 4)
        seasonal_error = np.abs(seasonal.predict(dataset.split.test_x) - dataset.split.test_y).mean()
        persistence_error = np.abs(
            persistence.predict(dataset.split.test_x) - dataset.split.test_y
        ).mean()
        assert seasonal_error < persistence_error
