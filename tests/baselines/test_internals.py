"""Internals of the spatiotemporal baselines: layers and state threading."""

import numpy as np
import pytest

from repro.baselines.convlstm_model import ConvLSTMModel
from repro.baselines.predrnn import PredRNNModel
from repro.baselines.predrnn_pp import PredRNNPlusPlusModel
from repro.baselines.stgcn import STGCNModel, TemporalGatedConv
from repro.baselines.stsgcn import STSGCModule, STSGCNModel, _random_walk_normalize
from repro.graph import grid_adjacency
from repro.nn import Tensor


class TestTemporalGatedConv:
    def test_time_shrinks_by_kernel_minus_one(self, rng):
        layer = TemporalGatedConv(3, 5, kernel_size=3, rng=0)
        out = layer(Tensor(rng.standard_normal((2, 8, 9, 3))))
        assert out.shape == (2, 6, 9, 5)

    def test_gate_bounds_output(self, rng):
        """GLU output magnitude is bounded by the value path's magnitude."""
        layer = TemporalGatedConv(2, 2, kernel_size=2, rng=0)
        x = Tensor(rng.standard_normal((1, 4, 4, 2)))
        out = layer(x).data
        assert np.all(np.isfinite(out))

    def test_gradients_flow(self, rng):
        layer = TemporalGatedConv(2, 3, rng=0)
        x = Tensor(rng.standard_normal((1, 5, 4, 2)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None


class TestSTGCNModel:
    def test_block_count_adapts_to_history(self):
        long = STGCNModel((4, 4), history=8, horizon=2, num_features=4, rng=0)
        short = STGCNModel((4, 4), history=3, horizon=2, num_features=4, rng=0)
        assert len(long.blocks) == 2
        assert len(short.blocks) == 1

    def test_rejects_too_short_history(self):
        with pytest.raises(ValueError):
            STGCNModel((4, 4), history=1, horizon=2, num_features=4, kt=2, rng=0)

    def test_output_shape(self, rng):
        model = STGCNModel((4, 5), history=6, horizon=3, num_features=4, rng=0)
        out = model(Tensor(rng.random((2, 6, 4, 5, 4))))
        assert out.shape == (2, 3, 4, 5)


class TestSTSGCNInternals:
    def test_random_walk_rows_sum_to_one(self):
        adjacency = grid_adjacency(3, 3)
        propagation = _random_walk_normalize(adjacency)
        assert np.allclose(propagation.sum(axis=1), 1.0)

    def test_module_crops_middle_slice(self, rng):
        adjacency = grid_adjacency(3, 3)
        module = STSGCModule(adjacency, channels=4, rng=0)
        out = module(Tensor(rng.standard_normal((2, 3, 9, 4))))
        assert out.shape == (2, 9, 4)

    def test_sweep_count_adapts_to_history(self):
        deep = STSGCNModel((3, 3), history=8, horizon=2, num_features=4, rng=0)
        shallow = STSGCNModel((3, 3), history=4, horizon=2, num_features=4, rng=0)
        assert deep.num_sweeps == 2
        assert shallow.num_sweeps == 1

    def test_rejects_too_short_history(self):
        with pytest.raises(ValueError):
            STSGCNModel((3, 3), history=2, horizon=2, num_features=4, rng=0)

    def test_output_shape(self, rng):
        model = STSGCNModel((3, 4), history=6, horizon=4, num_features=4, rng=0)
        out = model(Tensor(rng.random((2, 6, 3, 4, 4))))
        assert out.shape == (2, 4, 3, 4)


class TestFrameModels:
    def test_convlstm_per_step_predictions(self, rng):
        model = ConvLSTMModel(4, hidden_channels=3, num_layers=1, kernel_size=3, rng=0)
        out = model(Tensor(rng.random((2, 5, 4, 4, 4))))
        assert out.shape == (2, 5, 4, 4, 4)

    def test_predrnn_memory_threads_through_stack(self, rng):
        """The shared M must change the bottom layer's next-step behaviour."""
        model = PredRNNModel(2, hidden_channels=3, num_layers=2, rng=0)
        state = model.begin_state(1, 4, 4)
        frame = Tensor(rng.standard_normal((1, 2, 4, 4)))
        _, state1 = model.step(frame, state)
        # Corrupt the shared memory and verify the next step differs.
        corrupted = dict(state1)
        corrupted["memory"] = Tensor(state1["memory"].data + 10.0)
        out_clean, _ = model.step(frame, state1)
        out_corrupt, _ = model.step(frame, corrupted)
        assert not np.allclose(out_clean.data, out_corrupt.data)

    def test_predrnn_pp_requires_two_layers(self):
        with pytest.raises(ValueError):
            PredRNNPlusPlusModel(4, num_layers=1, rng=0)

    def test_predrnn_pp_highway_state_used(self, rng):
        model = PredRNNPlusPlusModel(2, hidden_channels=3, num_layers=2, rng=0)
        state = model.begin_state(1, 4, 4)
        frame = Tensor(rng.standard_normal((1, 2, 4, 4)))
        _, state1 = model.step(frame, state)
        corrupted = dict(state1)
        corrupted["highway"] = Tensor(state1["highway"].data + 10.0)
        out_clean, _ = model.step(frame, state1)
        out_corrupt, _ = model.step(frame, corrupted)
        assert not np.allclose(out_clean.data, out_corrupt.data)

    @pytest.mark.parametrize(
        "model_cls",
        [ConvLSTMModel, PredRNNModel, PredRNNPlusPlusModel],
        ids=["convLSTM", "PredRNN", "PredRNN++"],
    )
    def test_gradients_reach_all_parameters(self, model_cls, rng):
        model = model_cls(2, hidden_channels=2, num_layers=2, rng=0)
        out = model(Tensor(rng.random((1, 3, 4, 4, 2))))
        out.sum().backward()
        dead = [name for name, p in model.named_parameters() if p.grad is None]
        assert not dead, f"parameters with no gradient: {dead}"
