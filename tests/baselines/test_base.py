"""The recursive multi-step protocol, exercised with a controllable stub."""

import numpy as np
import pytest

from repro.baselines import RecursiveFrameForecaster, clip_normalized
from repro.baselines.frame_models import next_frame_targets


class _PersistenceForecaster(RecursiveFrameForecaster):
    """Stub: predicts the last observed frame (the persistence baseline)."""

    name = "persistence"

    def fit(self, dataset, epochs=10, verbose=False):
        return {}

    def predict_next_frame(self, x):
        return x[:, -1]


class _DriftingForecaster(RecursiveFrameForecaster):
    """Stub: adds a constant bias each step — makes error accumulation exact."""

    name = "drifting"

    def __init__(self, *args, bias=0.1, **kwargs):
        super().__init__(*args, **kwargs)
        self.bias = bias

    def fit(self, dataset, epochs=10, verbose=False):
        return {}

    def predict_next_frame(self, x):
        return x[:, -1] + self.bias


class TestRecursiveProtocol:
    def _window(self, rng, n=2, h=4, g=3, f=4):
        return rng.random((n, h, g, g, f))

    def test_persistence_repeats_last_frame(self, rng):
        model = _PersistenceForecaster(history=4, horizon=3, grid_shape=(3, 3), num_features=4)
        x = self._window(rng)
        out = model.predict(x)
        assert out.shape == (2, 3, 3, 3)
        for step in range(3):
            assert np.allclose(out[:, step], x[:, -1, :, :, 0])

    def test_recursion_feeds_predictions_back(self, rng):
        """With a drifting predictor the k-th step is biased by k*bias —
        the accumulated-error mechanism the paper attributes to
        autoregressive models."""
        bias = 0.25
        model = _DriftingForecaster(
            history=4, horizon=4, grid_shape=(3, 3), num_features=4, bias=bias
        )
        x = self._window(rng)
        out = model.predict(x)
        for step in range(4):
            expected = x[:, -1, :, :, 0] + (step + 1) * bias
            assert np.allclose(out[:, step], expected)

    def test_input_validation(self, rng):
        model = _PersistenceForecaster(history=4, horizon=2, grid_shape=(3, 3), num_features=4)
        with pytest.raises(ValueError):
            model.predict(rng.random((2, 5, 3, 3, 4)))  # wrong history
        with pytest.raises(ValueError):
            model.predict(rng.random((2, 4, 3, 3, 2)))  # wrong features

    def test_predict_does_not_mutate_input(self, rng):
        model = _PersistenceForecaster(history=4, horizon=3, grid_shape=(3, 3), num_features=4)
        x = self._window(rng)
        original = x.copy()
        model.predict(x)
        assert np.array_equal(x, original)


class TestClipNormalized:
    def test_clips_to_range(self):
        frame = np.array([-0.5, 0.2, 2.0])
        assert np.allclose(clip_normalized(frame), [0.0, 0.2, 1.5])


class TestNextFrameTargets:
    def test_alignment(self):
        """Target at step t of window i equals true frame i + t + 1."""
        total, h = 6, 3
        x = np.zeros((total, h, 2, 2, 1))
        for i in range(total):
            x[i] += np.arange(i, i + h)[:, None, None, None]
        targets = next_frame_targets(x)
        assert targets.shape == (total - 1, h, 2, 2, 1)
        for i in range(total - 1):
            for t in range(h):
                assert np.all(targets[i, t] == i + t + 1)
