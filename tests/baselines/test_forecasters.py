"""All eight Table III forecasters: construction, training, prediction."""

import numpy as np
import pytest

from repro.baselines import FORECASTERS, BikeCAPForecaster, make_forecaster
from repro.metrics import evaluate_forecaster

FAST_OVERRIDES = {
    "convLSTM": {"hidden_channels": 3, "kernel_size": 3, "num_layers": 1},
    "PredRNN": {"hidden_channels": 3, "num_layers": 1},
    "PredRNN++": {"hidden_channels": 3},
    "STGCN": {"hidden_channels": 6},
    "STSGCN": {"hidden_channels": 6},
    "LSTM": {"hidden_size": 8, "max_train_samples": 2000},
    "XGBoost": {"n_estimators": 5, "max_train_samples": 2000},
    "BikeCAP": {
        "pyramid_size": 2,
        "capsule_dim": 2,
        "future_capsule_dim": 2,
        "decoder_hidden": 3,
    },
}


class TestRegistry:
    def test_contains_paper_models(self):
        paper_models = {
            "XGBoost",
            "LSTM",
            "convLSTM",
            "PredRNN",
            "PredRNN++",
            "STGCN",
            "STSGCN",
            "BikeCAP",
        }
        assert paper_models <= set(FORECASTERS)

    def test_contains_sanity_anchors(self):
        assert {"Persistence", "SeasonalAverage"} <= set(FORECASTERS)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_forecaster("ARIMA", 4, 2, (3, 3), 4)


@pytest.mark.parametrize("name", sorted(FORECASTERS))
class TestEndToEnd:
    def test_fit_predict_evaluate(self, name, tiny_dataset):
        forecaster = make_forecaster(
            name,
            tiny_dataset.history,
            tiny_dataset.horizon,
            tiny_dataset.grid_shape,
            tiny_dataset.num_features,
            seed=0,
            **FAST_OVERRIDES.get(name, {}),
        )
        history = forecaster.fit(tiny_dataset, epochs=1)
        assert isinstance(history, dict)
        prediction = forecaster.predict(tiny_dataset.split.test_x[:6])
        assert prediction.shape == (6,) + (tiny_dataset.horizon,) + tiny_dataset.grid_shape
        assert np.all(np.isfinite(prediction))
        metrics = evaluate_forecaster(forecaster, tiny_dataset)
        assert metrics["MAE"] >= 0
        assert metrics["RMSE"] >= metrics["MAE"]


class TestBikeCAPAdapter:
    def test_variant_name_propagates(self, tiny_dataset):
        forecaster = BikeCAPForecaster(
            tiny_dataset.history,
            tiny_dataset.horizon,
            tiny_dataset.grid_shape,
            tiny_dataset.num_features,
            variant="BikeCap-Sub",
            pyramid_size=2,
            capsule_dim=2,
        )
        assert forecaster.name == "BikeCap-Sub"
        assert forecaster.model.config.feature_indices == (0, 1)

    def test_config_overrides_apply(self, tiny_dataset):
        forecaster = BikeCAPForecaster(
            tiny_dataset.history,
            tiny_dataset.horizon,
            tiny_dataset.grid_shape,
            tiny_dataset.num_features,
            pyramid_size=2,
            capsule_dim=3,
        )
        assert forecaster.model.config.pyramid_size == 2
        assert forecaster.model.config.capsule_dim == 3


class TestDirectVsRecursive:
    def test_direct_models_emit_horizon_in_one_shot(self, tiny_dataset):
        """Graph models and BikeCAP must not roll predictions forward."""
        from repro.baselines import RecursiveFrameForecaster

        for name in ("STGCN", "STSGCN", "BikeCAP"):
            forecaster = make_forecaster(
                name,
                tiny_dataset.history,
                tiny_dataset.horizon,
                tiny_dataset.grid_shape,
                tiny_dataset.num_features,
                **FAST_OVERRIDES.get(name, {}),
            )
            assert not isinstance(forecaster, RecursiveFrameForecaster)

    def test_autoregressive_models_are_recursive(self, tiny_dataset):
        from repro.baselines import RecursiveFrameForecaster

        for name in ("XGBoost", "LSTM", "convLSTM", "PredRNN", "PredRNN++"):
            forecaster = make_forecaster(
                name,
                tiny_dataset.history,
                tiny_dataset.horizon,
                tiny_dataset.grid_shape,
                tiny_dataset.num_features,
                **FAST_OVERRIDES.get(name, {}),
            )
            assert isinstance(forecaster, RecursiveFrameForecaster)
