"""Reporting helpers: formatting robustness."""

import pytest

from repro.experiments import flatten_metric, format_table
from repro.metrics import MeanStd


class TestFormatTable:
    def test_empty_rows(self):
        text = format_table({}, ["MAE"], row_header="model")
        lines = text.splitlines()
        assert lines[0].startswith("model")
        assert len(lines) == 2  # header + separator only

    def test_missing_cells_render_dash(self):
        rows = {"A": {"MAE": "1.0"}, "B": {}}
        text = format_table(rows, ["MAE"])
        assert "-" in text.splitlines()[-1]

    def test_column_alignment_with_long_values(self):
        rows = {"ShortName": {"x": "1"}, "AVeryVeryLongModelName": {"x": "123456.789"}}
        text = format_table(rows, ["x"], row_header="m")
        lines = text.splitlines()
        widths = {len(line) for line in lines if line.strip()}
        assert len(widths) <= 2  # header may differ by trailing spaces only

    def test_meanstd_values_render(self):
        rows = {"A": {"MAE": MeanStd(1.234, 0.567)}}
        assert "1.23±0.57" in format_table(rows, ["MAE"])

    def test_flatten_metric_empty(self):
        assert flatten_metric({}, "MAE") == {}

    def test_flatten_metric_missing_key_raises(self):
        with pytest.raises(KeyError):
            flatten_metric({"A": {"p2": {"RMSE": 1}}}, "MAE")


class TestMeanStdFormatting:
    def test_rounding_to_two_decimals(self):
        assert str(MeanStd(1.005, 0.004)) in ("1.00±0.00", "1.01±0.00")

    def test_large_values(self):
        assert str(MeanStd(1234.5, 67.89)) == "1234.50±67.89"

    def test_negative_mean(self):
        assert str(MeanStd(-0.5, 0.1)) == "-0.50±0.10"
