"""MAE/RMSE (Eq. 5/6) and mean±std aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import MeanStd, mae, mae_per_step, repeat_runs, rmse, rmse_per_step


class TestErrors:
    def test_mae_value(self):
        assert mae(np.array([1.0, 2.0]), np.array([2.0, 0.0])) == 1.5

    def test_rmse_value(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(np.sqrt(12.5))

    def test_zero_at_perfect_prediction(self, rng):
        y = rng.random((4, 5))
        assert mae(y, y) == 0.0
        assert rmse(y, y) == 0.0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(-100, 100), min_size=2, max_size=20),
        st.lists(st.floats(-100, 100), min_size=2, max_size=20),
    )
    def test_rmse_dominates_mae(self, a, b):
        size = min(len(a), len(b))
        truth = np.asarray(a[:size])
        prediction = np.asarray(b[:size])
        assert rmse(truth, prediction) >= mae(truth, prediction) - 1e-12

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mae(np.zeros(3), np.zeros(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(0), np.zeros(0))

    def test_per_step_metrics(self):
        truth = np.zeros((2, 3, 2, 2))
        prediction = truth.copy()
        prediction[:, 1] += 1.0  # error only at step 1
        step_mae = mae_per_step(truth, prediction)
        assert np.allclose(step_mae, [0.0, 1.0, 0.0])
        assert np.allclose(rmse_per_step(truth, prediction), [0.0, 1.0, 0.0])


class TestMeanStd:
    def test_from_samples(self):
        stat = MeanStd.from_samples([1.0, 2.0, 3.0])
        assert stat.mean == 2.0
        assert stat.std == pytest.approx(np.std([1, 2, 3]))

    def test_single_sample_has_zero_std(self):
        assert MeanStd.from_samples([5.0]).std == 0.0

    def test_format_matches_paper_convention(self):
        assert str(MeanStd(1.86, 0.41)) == "1.86±0.41"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            MeanStd.from_samples([])


class TestRepeatRuns:
    def test_aggregates_each_metric(self):
        def run(seed):
            return {"MAE": float(seed), "RMSE": float(seed * 2)}

        stats = repeat_runs(run, seeds=[1, 2, 3])
        assert stats["MAE"].mean == 2.0
        assert stats["RMSE"].mean == 4.0

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            repeat_runs(lambda s: {"MAE": 0.0}, seeds=[])
