"""Gradient checks and semantics for activation functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, ops
from repro.nn.gradcheck import check_gradients


def _t(array):
    return Tensor(np.asarray(array, dtype=float), requires_grad=True)


class TestGradients:
    @pytest.mark.parametrize(
        "fn",
        [ops.sigmoid, ops.tanh, ops.elu, lambda x: ops.leaky_relu(x, 0.1)],
        ids=["sigmoid", "tanh", "elu", "leaky_relu"],
    )
    def test_smooth_activations(self, fn, rng):
        x = _t(rng.standard_normal((3, 4)) + 0.3)
        check_gradients(fn, [x])

    def test_relu_gradient_away_from_kink(self, rng):
        x = _t(rng.standard_normal((3, 4)) + 3.0)  # strictly positive
        check_gradients(lambda x: ops.relu(x), [x])
        y = _t(-np.abs(rng.standard_normal((3, 4))) - 1.0)  # strictly negative
        check_gradients(lambda y: ops.relu(y), [y])

    @pytest.mark.parametrize("axis", [-1, 0, (0, 1)])
    def test_softmax_gradient(self, axis, rng):
        x = _t(rng.standard_normal((3, 4)))
        weights = Tensor(rng.random((3, 4)))
        check_gradients(lambda x: ops.mul(ops.softmax(x, axis=axis), weights), [x])

    def test_log_softmax_gradient(self, rng):
        x = _t(rng.standard_normal((3, 4)))
        weights = Tensor(rng.random((3, 4)))
        check_gradients(lambda x: ops.mul(ops.log_softmax(x, axis=-1), weights), [x])


class TestSemantics:
    def test_sigmoid_range_and_extremes(self):
        out = ops.sigmoid(Tensor([-1000.0, 0.0, 1000.0])).data
        assert np.allclose(out, [0.0, 0.5, 1.0])
        assert np.all(np.isfinite(out))

    def test_softmax_sums_to_one(self, rng):
        out = ops.softmax(Tensor(rng.standard_normal((5, 7))), axis=-1).data
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_softmax_joint_axes_sum_to_one(self, rng):
        out = ops.softmax(Tensor(rng.standard_normal((5, 3, 7))), axis=(1, 2)).data
        assert np.allclose(out.sum(axis=(1, 2)), 1.0)

    def test_softmax_invariant_to_shift(self, rng):
        data = rng.standard_normal((4, 4))
        a = ops.softmax(Tensor(data), axis=-1).data
        b = ops.softmax(Tensor(data + 100.0), axis=-1).data
        assert np.allclose(a, b)

    def test_log_softmax_is_log_of_softmax(self, rng):
        data = rng.standard_normal((4, 4))
        assert np.allclose(
            ops.log_softmax(Tensor(data)).data,
            np.log(ops.softmax(Tensor(data)).data),
        )

    def test_relu_and_leaky_relu_values(self):
        x = Tensor([-2.0, 3.0])
        assert np.allclose(ops.relu(x).data, [0.0, 3.0])
        assert np.allclose(ops.leaky_relu(x, 0.1).data, [-0.2, 3.0])

    def test_elu_continuous_at_zero(self):
        eps = 1e-9
        left = ops.elu(Tensor([-eps])).data
        right = ops.elu(Tensor([eps])).data
        assert abs(left - right) < 1e-6

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-50, 50), min_size=2, max_size=10))
    def test_tanh_bounded(self, values):
        out = ops.tanh(Tensor(values)).data
        assert np.all(np.abs(out) <= 1.0)
