"""Module system, Linear and convolution layers."""

import numpy as np
import pytest

from repro.nn import (
    Activation,
    Conv2D,
    Conv3D,
    ConvTranspose3D,
    Dropout,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    Parameter,
    Sequential,
    Tensor,
)
from repro.nn.gradcheck import gradcheck_module


class TestModuleRegistration:
    def test_parameters_registered_via_setattr(self):
        class Toy(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(3))
                self.child = Linear(2, 2, rng=0)

        toy = Toy()
        names = [name for name, _p in toy.named_parameters()]
        assert "w" in names
        assert "child.weight" in names and "child.bias" in names

    def test_num_parameters_counts_scalars(self):
        layer = Linear(3, 4, rng=0)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_zero_grad_clears_all(self):
        layer = Linear(2, 2, rng=0)
        out = layer(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_train_eval_propagates(self):
        seq = Sequential(Linear(2, 2, rng=0), Dropout(0.5, rng=0))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_state_dict_roundtrip(self):
        src = Linear(3, 2, rng=0)
        dst = Linear(3, 2, rng=1)
        assert not np.allclose(src.weight.data, dst.weight.data)
        dst.load_state_dict(src.state_dict())
        assert np.allclose(src.weight.data, dst.weight.data)

    def test_load_state_dict_validates_keys_and_shapes(self):
        layer = Linear(3, 2, rng=0)
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": np.zeros((3, 2))})
        state = layer.state_dict()
        state["weight"] = np.zeros((2, 3))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_module_list(self):
        layers = ModuleList([Linear(2, 2, rng=0), Linear(2, 2, rng=1)])
        assert len(layers) == 2
        assert len(list(layers[0].parameters())) == 2
        assert sum(1 for _ in ModuleList(layers).parameters()) == 4


class TestLinear:
    def test_forward_matches_numpy(self, rng):
        layer = Linear(4, 3, rng=0)
        x = rng.standard_normal((5, 4))
        expected = x @ layer.weight.data + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=0)
        assert layer.bias is None
        assert layer.num_parameters() == 12

    def test_gradcheck(self, rng):
        layer = Linear(3, 2, rng=0)
        x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        gradcheck_module(layer, x)


class TestConvLayers:
    def test_conv2d_same_padding_preserves_shape(self, rng):
        layer = Conv2D(2, 3, 3, padding="same", rng=0)
        out = layer(Tensor(rng.standard_normal((1, 2, 5, 7))))
        assert out.shape == (1, 3, 5, 7)

    def test_conv2d_stride_shrinks(self, rng):
        layer = Conv2D(1, 1, 3, stride=2, rng=0)
        out = layer(Tensor(rng.standard_normal((1, 1, 7, 7))))
        assert out.shape == (1, 1, 3, 3)

    def test_conv3d_same_padding_preserves_shape(self, rng):
        layer = Conv3D(2, 4, (3, 3, 3), padding="same", rng=0)
        out = layer(Tensor(rng.standard_normal((1, 2, 4, 5, 6))))
        assert out.shape == (1, 4, 4, 5, 6)

    def test_conv3d_rejects_bad_mask_shape(self):
        with pytest.raises(ValueError):
            Conv3D(1, 1, (2, 2, 2), weight_mask=np.ones((3, 3, 3)), rng=0)

    def test_conv3d_mask_broadcast_from_kernel_shape(self, rng):
        mask = np.zeros((2, 3, 3))
        mask[-1, 1, 1] = 1.0
        layer = Conv3D(2, 3, (2, 3, 3), weight_mask=mask, rng=0)
        assert layer.weight_mask.shape == (3, 2, 2, 3, 3)

    def test_transpose3d_gradcheck_through_layer(self, rng):
        layer = ConvTranspose3D(2, 1, 3, stride=1, padding=1, rng=0)
        x = Tensor(rng.standard_normal((1, 2, 3, 3, 3)), requires_grad=True)
        gradcheck_module(layer, x)


class TestUtilityLayers:
    def test_activation_lookup_and_unknown(self):
        assert np.allclose(Activation("relu")(Tensor([-1.0, 2.0])).data, [0.0, 2.0])
        with pytest.raises(ValueError):
            Activation("nope")

    def test_dropout_identity_in_eval(self, rng):
        drop = Dropout(0.7, rng=0)
        drop.eval()
        x = Tensor(rng.standard_normal((10, 10)))
        assert np.allclose(drop(x).data, x.data)

    def test_dropout_scales_in_train(self):
        drop = Dropout(0.5, rng=0)
        x = Tensor(np.ones((200, 200)))
        out = drop(x).data
        kept = out[out != 0]
        assert np.allclose(kept, 2.0)  # inverted dropout rescales by 1/keep
        assert abs((out != 0).mean() - 0.5) < 0.05

    def test_dropout_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_sequential_applies_in_order(self, rng):
        seq = Sequential(Linear(3, 4, rng=0), Activation("relu"), Linear(4, 2, rng=1))
        out = seq(Tensor(rng.standard_normal((5, 3))))
        assert out.shape == (5, 2)
        assert len(seq) == 3
        assert isinstance(seq[1], Activation)

    def test_layer_norm_normalizes(self, rng):
        norm = LayerNorm(8)
        x = Tensor(rng.standard_normal((4, 8)) * 10 + 5)
        out = norm(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_layer_norm_gradcheck(self, rng):
        norm = LayerNorm(4)
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        gradcheck_module(norm, x, atol=1e-5)
