"""Losses and optimizers."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Linear, Parameter, Tensor, clip_grad_norm
from repro.nn.gradcheck import check_gradients
from repro.nn.losses import get_loss, huber_loss, l1_loss, mse_loss


class TestLosses:
    def test_l1_value(self):
        assert l1_loss(Tensor([1.0, 3.0]), Tensor([0.0, 1.0])).item() == 1.5

    def test_mse_value(self):
        assert mse_loss(Tensor([1.0, 3.0]), Tensor([0.0, 1.0])).item() == 2.5

    def test_huber_is_quadratic_inside_delta(self):
        small = huber_loss(Tensor([0.5]), Tensor([0.0]), delta=1.0).item()
        assert np.isclose(small, 0.5 * 0.25)

    def test_huber_is_linear_outside_delta(self):
        large = huber_loss(Tensor([3.0]), Tensor([0.0]), delta=1.0).item()
        assert np.isclose(large, 3.0 - 0.5)

    def test_losses_zero_at_perfect_prediction(self, rng):
        y = Tensor(rng.standard_normal((4, 5)))
        for loss in (l1_loss, mse_loss, huber_loss):
            assert loss(y, y).item() == 0.0

    def test_gradients(self, rng):
        pred = Tensor(rng.standard_normal((3, 4)) + 2.0, requires_grad=True)
        target = Tensor(rng.standard_normal((3, 4)))
        check_gradients(lambda p: mse_loss(p, target), [pred])
        check_gradients(lambda p: l1_loss(p, target), [pred])

    def test_get_loss_lookup(self):
        assert get_loss("l1") is l1_loss
        with pytest.raises(ValueError):
            get_loss("cross_entropy")


class TestOptimizers:
    def _quadratic_problem(self):
        # Minimize ||w - target||^2; optimum is w = target.
        target = np.array([1.0, -2.0, 3.0])
        w = Parameter(np.zeros(3))
        return w, target

    def _loss_and_grad(self, w, target):
        w.zero_grad()
        w.grad = 2.0 * (w.data - target)
        return float(((w.data - target) ** 2).sum())

    def test_sgd_converges(self):
        w, target = self._quadratic_problem()
        opt = SGD([w], lr=0.1)
        for _ in range(100):
            self._loss_and_grad(w, target)
            opt.step()
        assert np.allclose(w.data, target, atol=1e-4)

    def test_sgd_momentum_converges(self):
        w, target = self._quadratic_problem()
        opt = SGD([w], lr=0.05, momentum=0.9)
        for _ in range(150):
            self._loss_and_grad(w, target)
            opt.step()
        assert np.allclose(w.data, target, atol=1e-3)

    def test_adam_converges(self):
        w, target = self._quadratic_problem()
        opt = Adam([w], lr=0.1)
        for _ in range(300):
            self._loss_and_grad(w, target)
            opt.step()
        assert np.allclose(w.data, target, atol=1e-3)

    def test_weight_decay_shrinks_solution(self):
        w, target = self._quadratic_problem()
        opt = SGD([w], lr=0.1, weight_decay=1.0)
        for _ in range(200):
            self._loss_and_grad(w, target)
            opt.step()
        assert np.all(np.abs(w.data) < np.abs(target))

    def test_step_skips_parameters_without_grad(self):
        w = Parameter(np.ones(2))
        opt = SGD([w], lr=0.5)
        opt.step()  # no grad set: must not move or crash
        assert np.allclose(w.data, 1.0)

    def test_optimizer_rejects_empty_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_zero_grad(self):
        w = Parameter(np.ones(2))
        w.grad = np.ones(2)
        Adam([w]).zero_grad()
        assert w.grad is None


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        w = Parameter(np.zeros(4))
        w.grad = np.full(4, 10.0)
        before = clip_grad_norm([w], max_norm=1.0)
        assert before == pytest.approx(20.0)
        assert np.isclose(np.sqrt((w.grad**2).sum()), 1.0)

    def test_leaves_small_gradients(self):
        w = Parameter(np.zeros(4))
        w.grad = np.full(4, 0.1)
        clip_grad_norm([w], max_norm=5.0)
        assert np.allclose(w.grad, 0.1)
