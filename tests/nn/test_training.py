"""Trainer: mini-batching, fitting, early stopping, prediction."""

import numpy as np
import pytest

from repro.nn import Linear, Sequential, Activation, Tensor, Trainer, iterate_minibatches
from repro.nn.serialization import load_weights, save_weights


class TestMinibatches:
    def test_covers_all_samples(self):
        x = np.arange(10.0).reshape(10, 1)
        y = x * 2
        seen = []
        for bx, _by in iterate_minibatches(x, y, batch_size=3):
            seen.extend(bx.ravel().tolist())
        assert sorted(seen) == x.ravel().tolist()

    def test_shuffles_with_rng(self):
        x = np.arange(32.0).reshape(32, 1)
        rng = np.random.default_rng(0)
        first_batch = next(iter(iterate_minibatches(x, x, 8, rng=rng)))[0]
        assert not np.array_equal(first_batch.ravel(), np.arange(8.0))

    def test_pairs_stay_aligned_after_shuffle(self):
        x = np.arange(20.0).reshape(20, 1)
        y = x * 3
        rng = np.random.default_rng(1)
        for bx, by in iterate_minibatches(x, y, 4, rng=rng):
            assert np.allclose(by, bx * 3)


class TestTrainer:
    def _linear_data(self, rng, n=200):
        x = rng.standard_normal((n, 3))
        w = np.array([[1.0], [-2.0], [0.5]])
        y = x @ w + 0.3
        return x, y

    def test_fit_reduces_loss(self, rng):
        x, y = self._linear_data(rng)
        model = Linear(3, 1, rng=0)
        trainer = Trainer(model, loss="mse", lr=0.05, batch_size=32, seed=0)
        history = trainer.fit(x, y, epochs=30)
        assert history.train_loss[-1] < history.train_loss[0] * 0.01

    def test_fit_records_validation(self, rng):
        x, y = self._linear_data(rng)
        model = Linear(3, 1, rng=0)
        trainer = Trainer(model, loss="mse", lr=0.05, seed=0)
        history = trainer.fit(x[:150], y[:150], epochs=5, val_x=x[150:], val_y=y[150:])
        assert len(history.val_loss) == 5
        assert np.isfinite(history.best_val_loss)

    def test_early_stopping_restores_best_weights(self, rng):
        x, y = self._linear_data(rng, n=64)
        model = Sequential(Linear(3, 8, rng=0), Activation("tanh"), Linear(8, 1, rng=1))
        trainer = Trainer(model, loss="mse", lr=0.5, batch_size=8, seed=0)  # big lr → bouncy
        history = trainer.fit(x[:48], y[:48], epochs=60, val_x=x[48:], val_y=y[48:], patience=3)
        assert len(history.val_loss) < 60  # stopped early
        final_val = trainer.evaluate(x[48:], y[48:])
        assert final_val <= min(history.val_loss) + 1e-6

    def test_predict_matches_forward(self, rng):
        x, _ = self._linear_data(rng, n=10)
        model = Linear(3, 1, rng=0)
        trainer = Trainer(model, seed=0)
        predictions = trainer.predict(x, batch_size=4)
        expected = model(Tensor(x)).data
        assert np.allclose(predictions, expected)

    def test_history_as_dict(self, rng):
        x, y = self._linear_data(rng, n=32)
        trainer = Trainer(Linear(3, 1, rng=0), seed=0)
        history = trainer.fit(x, y, epochs=2)
        payload = history.as_dict()
        assert set(payload) == {
            "train_loss",
            "val_loss",
            "epoch_seconds",
            "best_epoch",
            "total_seconds",
        }
        assert len(payload["train_loss"]) == 2
        assert payload["best_epoch"] == history.best_epoch
        assert payload["total_seconds"] == pytest.approx(sum(payload["epoch_seconds"]))

    def test_history_best_epoch_and_total_seconds(self, rng):
        x, y = self._linear_data(rng)
        model = Linear(3, 1, rng=0)
        trainer = Trainer(model, loss="mse", lr=0.05, seed=0)
        history = trainer.fit(x[:150], y[:150], epochs=4, val_x=x[150:], val_y=y[150:])
        assert history.best_epoch == int(np.argmin(history.val_loss)) + 1
        assert history.total_seconds == pytest.approx(sum(history.epoch_seconds))
        empty = history.__class__()
        assert empty.best_epoch is None
        assert empty.total_seconds == 0.0

    def test_evaluate_and_predict_restore_model_mode(self, rng):
        x, y = self._linear_data(rng, n=16)
        model = Linear(3, 1, rng=0)
        trainer = Trainer(model, seed=0)
        model.eval()
        trainer.evaluate(x, y)
        assert model.training is False  # was eval, stays eval
        trainer.predict(x)
        assert model.training is False
        model.train()
        trainer.evaluate(x, y)
        assert model.training is True  # was train, stays train


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path, rng):
        src = Linear(4, 2, rng=0)
        dst = Linear(4, 2, rng=1)
        path = str(tmp_path / "weights.npz")
        save_weights(src, path)
        load_weights(dst, path)
        x = rng.standard_normal((3, 4))
        assert np.allclose(src(Tensor(x)).data, dst(Tensor(x)).data)

    def test_load_rejects_wrong_architecture(self, tmp_path):
        src = Linear(4, 2, rng=0)
        path = str(tmp_path / "weights.npz")
        save_weights(src, path)
        with pytest.raises((KeyError, ValueError)):
            load_weights(Linear(3, 2, rng=0), path)
