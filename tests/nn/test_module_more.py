"""Additional Module-system behaviours: nesting, sharing, introspection."""

import numpy as np
import pytest

from repro.nn import Linear, Module, ModuleList, Parameter, Sequential, Tensor


class TestNestedModules:
    def test_three_level_nesting_collects_all_parameters(self):
        class Inner(Module):
            def __init__(self):
                super().__init__()
                self.layer = Linear(2, 2, rng=0)

        class Middle(Module):
            def __init__(self):
                super().__init__()
                self.inner = Inner()
                self.own = Parameter(np.zeros(3))

        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.middle = Middle()

        outer = Outer()
        names = sorted(name for name, _p in outer.named_parameters())
        assert names == ["middle.inner.layer.bias", "middle.inner.layer.weight", "middle.own"]

    def test_modules_iterator_visits_every_node(self):
        seq = Sequential(Linear(2, 2, rng=0), Sequential(Linear(2, 2, rng=1)))
        count = sum(1 for _ in seq.modules())
        assert count == 4  # outer seq + linear + inner seq + linear

    def test_module_list_inside_module(self):
        class Holder(Module):
            def __init__(self):
                super().__init__()
                self.items = ModuleList([Linear(2, 2, rng=0), Linear(2, 2, rng=1)])

        holder = Holder()
        assert sum(1 for _ in holder.parameters()) == 4


class TestParameterSharing:
    def test_shared_parameter_accumulates_both_paths(self):
        shared = Parameter(np.ones((2, 2)))

        class Tied(Module):
            def __init__(self):
                super().__init__()
                self.weight = shared

            def forward(self, x):
                from repro.nn import ops

                return ops.add(ops.matmul(x, self.weight), ops.matmul(x, self.weight))

        model = Tied()
        x = Tensor(np.ones((1, 2)))
        model(x).sum().backward()
        # Each path contributes a gradient of ones → total twos.
        assert np.allclose(shared.grad, 2.0)

    def test_reassigning_attribute_updates_registry(self):
        class Swappable(Module):
            def __init__(self):
                super().__init__()
                self.layer = Linear(2, 2, rng=0)

        model = Swappable()
        original = model.layer.weight.data.copy()
        model.layer = Linear(2, 2, rng=99)
        state = model.state_dict()
        assert not np.allclose(state["layer.weight"], original)


class TestStateDictDetails:
    def test_state_dict_values_are_copies(self):
        layer = Linear(2, 2, rng=0)
        state = layer.state_dict()
        state["weight"][...] = 999.0
        assert not np.allclose(layer.weight.data, 999.0)

    def test_load_state_dict_copies_input(self):
        layer = Linear(2, 2, rng=0)
        state = layer.state_dict()
        layer.load_state_dict(state)
        state["weight"][...] = 123.0
        assert not np.allclose(layer.weight.data, 123.0)

    def test_load_preserves_dtype(self):
        layer = Linear(2, 2, rng=0)
        state = {k: v.astype(np.float32) for k, v in layer.state_dict().items()}
        layer.load_state_dict(state)
        assert layer.weight.data.dtype == np.float64
