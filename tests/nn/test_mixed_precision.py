"""Mixed-precision engine mode: float32 compute, float64 masters, loss scaling.

``config.set_engine_mode("mixed")`` keeps every forward/backward kernel in
float32 (bit-identical compute to fast mode) while optimizers update
float64 master copies of the weights and a :class:`GradScaler` applies
power-of-two dynamic loss scaling. Power-of-two scaling is exact in IEEE
arithmetic short of overflow, so step 1's unscaled gradients must equal the
unscaled fast-mode gradients *bitwise* — that, plus curve-level agreement
with fast training, overflow-skip semantics, the loss-scale floor, and
checkpoint round-tripping of scaler + master state, is what this module
pins down.
"""

import numpy as np
import pytest

from repro.core import BikeCAP, BikeCAPConfig
from repro.nn import Trainer
from repro.nn import config, engine
from repro.nn.divergence import LOSS_SCALE_FLOOR, DivergenceError
from repro.nn.optim import GradScaler
from repro.nn.tensor import Tensor


@pytest.fixture(autouse=True)
def _restore_mode():
    previous = config.engine_mode()
    yield
    config.set_engine_mode(previous)
    engine.clear_caches()


def _tiny_trainer(seed=0):
    cfg = BikeCAPConfig(
        grid=(6, 6),
        history=4,
        horizon=2,
        features=2,
        pyramid_size=2,
        capsule_dim=2,
        future_capsule_dim=2,
        decoder_hidden=4,
        seed=seed,
    )
    model = BikeCAP(cfg)
    trainer = Trainer(model, loss="l1", batch_size=4, seed=seed)
    rng = np.random.default_rng(seed)
    dtype = config.dtype()
    x = rng.random((8, 4, 6, 6, 2)).astype(dtype)
    y = rng.random((8, 2, 6, 6)).astype(dtype)
    return trainer, x, y


class TestMixedMode:
    def test_mode_wiring(self):
        config.set_engine_mode("mixed")
        assert config.dtype() == np.float32
        assert config.mixed_precision()
        trainer, _, _ = _tiny_trainer()
        assert trainer.scaler is not None
        for param, master in zip(
            trainer.optimizer.parameters, trainer.optimizer._master
        ):
            assert param.data.dtype == np.float32
            assert master.dtype == np.float64
            assert np.array_equal(master.astype(np.float32), param.data)

    def test_step_one_grads_bitwise_equal_fast(self):
        """Power-of-two loss scaling must not change the unscaled gradients."""
        grads = {}
        for mode in ("fast", "mixed"):
            config.set_engine_mode(mode)
            engine.clear_caches()
            trainer, x, y = _tiny_trainer(seed=3)
            trainer.optimizer.zero_grad()
            prediction = trainer.model(Tensor(x))
            loss = trainer.loss_fn(prediction, Tensor(y))
            if trainer.scaler is not None:
                trainer.scaler.scale_loss(loss).backward()
                trainer.scaler.unscale_(trainer.optimizer.parameters)
            else:
                loss.backward()
            grads[mode] = [
                None if p.grad is None else p.grad.copy()
                for p in trainer.optimizer.parameters
            ]
        for fast_grad, mixed_grad in zip(grads["fast"], grads["mixed"]):
            if fast_grad is None:
                assert mixed_grad is None
                continue
            assert np.array_equal(fast_grad, mixed_grad)

    def test_mixed_training_matches_fast_curve(self):
        curves = {}
        for mode in ("fast", "mixed"):
            config.set_engine_mode(mode)
            engine.clear_caches()
            trainer, x, y = _tiny_trainer(seed=3)
            history = trainer.fit(x, y, epochs=3)
            curves[mode] = np.asarray(history.train_loss)
        assert np.allclose(curves["mixed"], curves["fast"], rtol=2e-2, atol=1e-3)
        assert int(np.argmin(curves["mixed"])) == int(np.argmin(curves["fast"]))


class TestOverflowSkip:
    def test_overflow_skips_step_and_halves_scale(self):
        config.set_engine_mode("mixed")
        engine.clear_caches()
        trainer, x, y = _tiny_trainer(seed=1)
        # Force gradient overflow on the next backward: past float32 max
        # (2**128) the scale factor itself saturates to inf in the float32
        # graph, so every scaled gradient goes non-finite.
        trainer.scaler.scale = 2.0**140
        before_scale = trainer.scaler.scale
        params_before = [p.data.copy() for p in trainer.optimizer.parameters]
        masters_before = [m.copy() for m in trainer.optimizer._master]
        with np.errstate(over="ignore", invalid="ignore"):
            loss = trainer.train_step(x, y)
        # The *unscaled* batch loss is finite — a skipped step must never
        # look like a divergence to the sentinel.
        assert np.isfinite(loss)
        assert trainer.scaler.scale == before_scale / 2.0
        for param, before in zip(trainer.optimizer.parameters, params_before):
            assert np.array_equal(param.data, before)
        for master, before in zip(trainer.optimizer._master, masters_before):
            assert np.array_equal(master, before)

    def test_scale_floor_raises_typed_divergence(self):
        scaler = GradScaler(init_scale=2.0, min_scale=1.0)
        scaler.backoff()  # 2.0 -> 1.0
        assert scaler.scale == 1.0
        with pytest.raises(DivergenceError) as excinfo:
            scaler.backoff()
        assert excinfo.value.reason == LOSS_SCALE_FLOOR

    def test_scale_growth_after_good_steps(self):
        scaler = GradScaler(init_scale=4.0, growth_interval=2)
        scaler.update()
        assert scaler.scale == 4.0
        scaler.update()
        assert scaler.scale == 8.0


class TestMixedCheckpointing:
    def test_scaler_and_master_state_roundtrip(self, tmp_path):
        config.set_engine_mode("mixed")
        engine.clear_caches()
        trainer, x, y = _tiny_trainer(seed=2)
        trainer.train_step(x, y)
        trainer.scaler.scale = 1024.0
        path = str(tmp_path / "mixed.ckpt.npz")
        trainer.fit(x, y, epochs=1, checkpoint_path=path)

        engine.clear_caches()
        restored, _, _ = _tiny_trainer(seed=9)
        restored.fit(x, y, epochs=1, resume_from=path)
        assert restored.scaler.scale == trainer.scaler.scale
        state = trainer.optimizer.state_dict()
        assert "master" in state["slots"]
        for master_a, master_b in zip(
            trainer.optimizer._master, restored.optimizer._master
        ):
            assert master_a.dtype == np.float64
            assert np.array_equal(master_a, master_b)
        for param_a, param_b in zip(
            trainer.optimizer.parameters, restored.optimizer.parameters
        ):
            assert np.array_equal(param_a.data, param_b.data)
