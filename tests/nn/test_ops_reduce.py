"""Gradient checks and semantics for reductions."""

import numpy as np
import pytest

from repro.nn import Tensor, ops
from repro.nn.gradcheck import check_gradients


def _t(array):
    return Tensor(np.asarray(array, dtype=float), requires_grad=True)


class TestSumMean:
    @pytest.mark.parametrize("axis", [None, 0, 1, (0, 2), -1])
    @pytest.mark.parametrize("keepdims", [False, True])
    def test_sum_gradients(self, axis, keepdims, rng):
        x = _t(rng.standard_normal((2, 3, 4)))
        check_gradients(lambda x: ops.sum(x, axis=axis, keepdims=keepdims), [x])

    @pytest.mark.parametrize("axis", [None, 1, (1, 2)])
    def test_mean_gradients(self, axis, rng):
        x = _t(rng.standard_normal((2, 3, 4)))
        check_gradients(lambda x: ops.mean(x, axis=axis), [x])

    def test_sum_matches_numpy(self, rng):
        data = rng.standard_normal((3, 5))
        assert np.allclose(ops.sum(Tensor(data), axis=1).data, data.sum(axis=1))

    def test_mean_matches_numpy(self, rng):
        data = rng.standard_normal((3, 5))
        assert np.allclose(ops.mean(Tensor(data), axis=0).data, data.mean(axis=0))


class TestMaxMin:
    def test_max_gradient_flows_to_argmax(self):
        x = _t([[1.0, 3.0], [5.0, 2.0]])
        ops.max(x, axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_max_splits_gradient_across_ties(self):
        x = _t([2.0, 2.0, 1.0])
        ops.max(x).backward()
        assert np.allclose(x.grad, [0.5, 0.5, 0.0])

    def test_min_matches_numpy(self, rng):
        data = rng.standard_normal((4, 4))
        assert np.allclose(ops.min(Tensor(data), axis=0).data, data.min(axis=0))

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_max_gradcheck_on_distinct_values(self, axis, rng):
        # Distinct values keep finite differences well-defined at the max.
        data = rng.permutation(np.arange(12.0)).reshape(3, 4)
        x = _t(data)
        check_gradients(lambda x: ops.max(x, axis=axis), [x], epsilon=1e-4)


class TestNorm:
    def test_norm_value(self):
        x = Tensor([[3.0, 4.0]])
        assert np.allclose(ops.norm(x, axis=1).data, [5.0])

    def test_norm_gradient(self, rng):
        x = _t(rng.standard_normal((3, 4)) + 1.0)
        check_gradients(lambda x: ops.norm(x, axis=1), [x])

    def test_norm_epsilon_is_zero_safe(self):
        x = _t(np.zeros((2, 3)))
        out = ops.norm(x, axis=1, epsilon=1e-9)
        out.sum().backward()
        assert np.all(np.isfinite(x.grad))
