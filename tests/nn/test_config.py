"""Substrate configuration: dtype switching and grad-mode globals."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad, ops
from repro.nn import config


@pytest.fixture(autouse=True)
def restore_config():
    yield
    config.set_dtype(np.float64)
    config.set_grad_enabled(True)


class TestDtype:
    def test_default_is_float64(self):
        assert Tensor([1.0]).dtype == np.float64

    def test_switch_to_float32(self):
        config.set_dtype(np.float32)
        assert Tensor([1.0]).dtype == np.float32

    def test_rejects_other_dtypes(self):
        with pytest.raises(ValueError):
            config.set_dtype(np.int32)

    def test_float32_training_step_works(self):
        config.set_dtype(np.float32)
        from repro.nn import Linear, Trainer

        rng = np.random.default_rng(0)
        x = rng.standard_normal((32, 3)).astype(np.float32)
        y = (x @ np.array([[1.0], [2.0], [3.0]], dtype=np.float32))
        model = Linear(3, 1, rng=0)
        trainer = Trainer(model, loss="mse", lr=0.05, seed=0)
        history = trainer.fit(x, y, epochs=20)
        assert history.train_loss[-1] < history.train_loss[0]
        assert model.weight.data.dtype == np.float32


class TestGradMode:
    def test_no_grad_nests(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            with no_grad():
                pass
            # Inner exit must not re-enable grads prematurely.
            y = x * 2
        assert not y.requires_grad
        assert (x * 2).requires_grad

    def test_no_grad_restores_on_exception(self):
        x = Tensor([1.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert (x * 2).requires_grad

    def test_ops_cheaper_without_grad(self):
        x = Tensor(np.ones((4, 4)), requires_grad=True)
        with no_grad():
            y = ops.mul(x, 2.0)
        assert y._backward is None
        assert y._parents == ()
