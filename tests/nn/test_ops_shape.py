"""Gradient checks and semantics for shape ops."""

import numpy as np
import pytest

from repro.nn import Tensor, ops
from repro.nn.gradcheck import check_gradients


def _t(array):
    return Tensor(np.asarray(array, dtype=float), requires_grad=True)


class TestReshapeTranspose:
    def test_reshape_gradient(self, rng):
        x = _t(rng.standard_normal((2, 6)))
        check_gradients(lambda x: ops.reshape(x, (3, 4)), [x])

    def test_reshape_with_inferred_dim(self, rng):
        x = Tensor(rng.standard_normal((2, 6)))
        assert ops.reshape(x, (4, -1)).shape == (4, 3)

    @pytest.mark.parametrize("axes", [None, (1, 0, 2), (2, 0, 1)])
    def test_transpose_gradient(self, axes, rng):
        x = _t(rng.standard_normal((2, 3, 4)))
        check_gradients(lambda x: ops.transpose(x, axes), [x])

    def test_moveaxis_roundtrip(self, rng):
        x = _t(rng.standard_normal((2, 3, 4)))
        check_gradients(lambda x: ops.moveaxis(x, 0, 2), [x])

    def test_expand_squeeze(self, rng):
        x = _t(rng.standard_normal((2, 3)))
        check_gradients(lambda x: ops.expand_dims(x, 1), [x])
        y = _t(rng.standard_normal((2, 1, 3)))
        check_gradients(lambda y: ops.squeeze(y, 1), [y])


class TestConcatStack:
    def test_concat_values_and_gradients(self, rng):
        a = _t(rng.standard_normal((2, 3)))
        b = _t(rng.standard_normal((2, 2)))
        out = ops.concat([a, b], axis=1)
        assert out.shape == (2, 5)
        check_gradients(lambda a, b: ops.concat([a, b], axis=1), [a, b])

    def test_stack_values_and_gradients(self, rng):
        a = _t(rng.standard_normal((2, 3)))
        b = _t(rng.standard_normal((2, 3)))
        out = ops.stack([a, b], axis=1)
        assert out.shape == (2, 2, 3)
        check_gradients(lambda a, b: ops.stack([a, b], axis=1), [a, b])


class TestPadGetitemFlipTile:
    def test_pad_gradient(self, rng):
        x = _t(rng.standard_normal((2, 3)))
        check_gradients(lambda x: ops.pad(x, ((1, 0), (2, 1))), [x])

    def test_pad_value(self):
        x = Tensor(np.ones((1, 1)))
        out = ops.pad(x, 1, value=7.0)
        assert out.shape == (3, 3)
        assert out.data[0, 0] == 7.0
        assert out.data[1, 1] == 1.0

    def test_getitem_slice_gradient(self, rng):
        x = _t(rng.standard_normal((4, 5)))
        check_gradients(lambda x: ops.getitem(x, (slice(1, 3), slice(None))), [x])

    def test_getitem_fancy_index_gradient_accumulates(self):
        x = _t(np.arange(4.0))
        out = ops.getitem(x, np.array([1, 1, 2]))
        out.sum().backward()
        assert np.allclose(x.grad, [0.0, 2.0, 1.0, 0.0])

    def test_flip_gradient(self, rng):
        x = _t(rng.standard_normal((3, 4)))
        check_gradients(lambda x: ops.flip(x, axis=1), [x])

    @pytest.mark.parametrize("reps", [2, (2, 3), (2, 1, 3)])
    def test_tile_gradient(self, reps, rng):
        x = _t(rng.standard_normal((2, 3)))
        check_gradients(lambda x: ops.tile(x, reps), [x])

    def test_tile_matches_numpy(self, rng):
        data = rng.standard_normal((2, 2))
        assert np.allclose(ops.tile(Tensor(data), (3, 2)).data, np.tile(data, (3, 2)))
