"""Autograd graph machinery tests."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, no_grad, ops
from repro.nn.tensor import unbroadcast


class TestTensorBasics:
    def test_wraps_data_as_float(self):
        tensor = Tensor([1, 2, 3])
        assert tensor.dtype == np.float64
        assert tensor.shape == (3,)

    def test_repr_shows_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_item_and_len(self):
        assert Tensor([[3.5]]).item() == 3.5
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_as_tensor_is_identity_on_tensor(self):
        tensor = Tensor([1.0])
        assert as_tensor(tensor) is tensor

    def test_wrapping_tensor_copies_data_reference(self):
        inner = Tensor([1.0, 2.0])
        outer = Tensor(inner)
        assert np.array_equal(outer.data, inner.data)


class TestBackward:
    def test_scalar_backward_default_grad(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        y = (x * x).sum()
        y.backward()
        assert np.allclose(x.grad, [4.0, 6.0])

    def test_backward_requires_scalar_without_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2
        with pytest.raises(RuntimeError):
            y.backward()

    def test_backward_with_explicit_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 3
        y.backward(np.array([1.0, 10.0]))
        assert np.allclose(x.grad, [3.0, 30.0])

    def test_backward_rejects_shape_mismatch(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 3
        with pytest.raises(ValueError):
            y.backward(np.zeros(3))

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_gradient_accumulates_across_backward_calls(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        (x * 3).sum().backward()
        assert np.allclose(x.grad, [5.0])

    def test_diamond_graph_accumulates_once_per_path(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * 3
        b = x * 4
        y = (a + b).sum()
        y.backward()
        assert np.allclose(x.grad, [7.0])

    def test_reused_node_receives_summed_gradient(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * x  # used twice downstream
        y = (a + a).sum()
        y.backward()
        assert np.allclose(x.grad, [8.0])

    def test_deep_chain_does_not_hit_recursion_limit(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.0
        y.sum().backward()
        assert np.allclose(x.grad, [1.0])


class TestDetachNoGrad:
    def test_detach_blocks_gradient(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2).detach() * 3
        assert not y.requires_grad

    def test_no_grad_context(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        z = x * 2
        assert z.requires_grad

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None


class TestUnbroadcast:
    def test_no_op_when_shapes_match(self):
        grad = np.ones((2, 3))
        assert unbroadcast(grad, (2, 3)) is grad

    def test_sums_leading_axes(self):
        grad = np.ones((4, 2, 3))
        assert unbroadcast(grad, (2, 3)).shape == (2, 3)
        assert np.all(unbroadcast(grad, (2, 3)) == 4)

    def test_sums_singleton_axes(self):
        grad = np.ones((2, 3))
        out = unbroadcast(grad, (2, 1))
        assert out.shape == (2, 1)
        assert np.all(out == 3)

    def test_scalar_target(self):
        grad = np.ones((2, 3))
        assert unbroadcast(grad, ()).shape == ()


class TestOperatorSugar:
    def test_arithmetic_operators(self):
        x = Tensor([4.0])
        assert (x + 1).item() == 5.0
        assert (1 + x).item() == 5.0
        assert (x - 1).item() == 3.0
        assert (1 - x).item() == -3.0
        assert (x * 2).item() == 8.0
        assert (x / 2).item() == 2.0
        assert (2 / x).item() == 0.5
        assert (-x).item() == -4.0
        assert (x**2).item() == 16.0

    def test_matmul_operator(self):
        a = Tensor(np.eye(2))
        b = Tensor([[1.0], [2.0]])
        assert np.allclose((a @ b).data, [[1.0], [2.0]])

    def test_indexing_and_reshape_helpers(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        assert x[0, 1].item() == 1.0
        assert x.reshape(3, 2).shape == (3, 2)
        assert x.transpose().shape == (3, 2)
        assert x.unsqueeze(0).shape == (1, 2, 3)
        assert x.unsqueeze(0).squeeze(0).shape == (2, 3)
        assert x.sum().item() == 15.0
        assert x.mean().item() == 2.5
        assert x.max().item() == 5.0
