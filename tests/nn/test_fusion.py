"""Bit-parity tests for :mod:`repro.nn.fusion`.

The fused kernels are pure executors: every one must produce outputs *and*
gradients that are bit-identical (``np.array_equal``, no tolerance) to the
unfused autograd graph it replaces, in float64 precise mode. Two facts make
this a real constraint rather than a formality:

- gradient accumulation into a tensor with 3+ consumers is association-
  sensitive, so a fused node must occupy the same topological position as
  the subgraph it replaces (parent ordering is load-bearing);
- numpy's pairwise reductions depend on operand memory layout, so the
  fused routing loop must execute the reference statements verbatim.

``engine.no_cache()`` must bypass the fusion cache along with the plan
cache: the finite-difference gradcheck perturbs ``tensor.data`` in place,
which identity-keyed caches cannot see.
"""

import numpy as np
import pytest

from repro.core import BikeCAP, BikeCAPConfig
from repro.nn import config, engine, ops
from repro.nn import fusion
from repro.nn.gradcheck import gradcheck_module
from repro.nn.tensor import Tensor
from repro.obs import metrics as obs_metrics


@pytest.fixture(autouse=True)
def _precise_mode():
    """Run every parity case in float64 with state restored afterwards."""
    previous_mode = config.engine_mode()
    previous_fusion = config.fusion_enabled()
    config.set_engine_mode("precise")
    yield
    config.set_engine_mode(previous_mode)
    config.set_fusion_enabled(previous_fusion)
    engine.clear_caches()


def _tensor(array):
    return Tensor(array, requires_grad=True)


def _convlstm_case():
    from repro.nn.layers.convlstm import ConvLSTM2DCell

    rng = np.random.default_rng(5)
    cell = ConvLSTM2DCell(2, 3, rng=np.random.default_rng(1))
    x = _tensor(rng.standard_normal((2, 2, 6, 6)))
    h, c = cell.initial_state(2, 6, 6)
    for _ in range(3):
        h, c = cell(x, (h, c))
    ops.sum(ops.mul(h, h)).backward()
    return [h.data, c.data], [p.grad.copy() for p in cell.parameters()] + [x.grad.copy()]


def _lstm_case():
    from repro.nn.layers.recurrent import LSTM

    rng = np.random.default_rng(11)
    module = LSTM(4, 5, num_layers=2, rng=np.random.default_rng(2))
    x = _tensor(rng.standard_normal((3, 5, 4)))
    out, _ = module(x)
    ops.sum(ops.mul(out, out)).backward()
    return [out.data], [p.grad.copy() for p in module.parameters()] + [x.grad.copy()]


def _squash_case():
    from repro.core.squash import squash

    rng = np.random.default_rng(3)
    x = _tensor(rng.standard_normal((2, 4, 3, 5, 5)))
    out = squash(x, axis=2)
    ops.sum(ops.mul(out, out)).backward()
    return [out.data], [x.grad.copy()]


def _stlstm_case():
    from repro.nn.layers.predrnn_cells import STLSTMCell

    rng = np.random.default_rng(13)
    cell = STLSTMCell(2, 3, rng=np.random.default_rng(4))
    x = _tensor(rng.standard_normal((2, 2, 5, 5)))
    h, c, m = cell.initial_state(2, 5, 5)
    for _ in range(2):
        h, c, m = cell(x, h, c, m)
    ops.sum(ops.mul(h, h)).backward()
    return [h.data, c.data, m.data], [
        p.grad.copy() for p in cell.parameters()
    ] + [x.grad.copy()]


def _causal_case():
    from repro.nn.layers.predrnn_cells import CausalLSTMCell

    rng = np.random.default_rng(17)
    cell = CausalLSTMCell(2, 3, rng=np.random.default_rng(6))
    x = _tensor(rng.standard_normal((2, 2, 5, 5)))
    h, c, m = cell.initial_state(2, 5, 5)
    for _ in range(2):
        h, c, m = cell(x, h, c, m)
    ops.sum(ops.mul(h, h)).backward()
    return [h.data], [p.grad.copy() for p in cell.parameters()] + [x.grad.copy()]


def _ghu_case():
    from repro.nn.layers.predrnn_cells import GHU

    rng = np.random.default_rng(19)
    module = GHU(3, rng=np.random.default_rng(8))
    x = _tensor(rng.standard_normal((2, 3, 5, 5)))
    z = module.initial_state(2, 5, 5)
    for _ in range(2):
        z = module(x, z)
    ops.sum(ops.mul(z, z)).backward()
    return [z.data], [p.grad.copy() for p in module.parameters()] + [x.grad.copy()]


def _routing_case():
    from repro.core.routing import SpatialTemporalRouting

    rng = np.random.default_rng(7)
    module = SpatialTemporalRouting(4, 3, 4, iterations=3, rng=np.random.default_rng(0))
    phi = _tensor(rng.standard_normal((2, 3, 4, 4, 5, 5)))
    out = module(phi)
    ops.sum(ops.mul(out, out)).backward()
    return [out.data], [p.grad.copy() for p in module.parameters()] + [phi.grad.copy()]


def _model_case():
    cfg = BikeCAPConfig(
        grid=(6, 6),
        history=4,
        horizon=2,
        features=2,
        pyramid_size=2,
        capsule_dim=2,
        future_capsule_dim=2,
        decoder_hidden=4,
        seed=0,
    )
    model = BikeCAP(cfg)
    rng = np.random.default_rng(23)
    x = _tensor(rng.standard_normal((2, 4, 6, 6, 2)))
    out = model(x)
    ops.sum(ops.mul(out, out)).backward()
    return [out.data], [p.grad.copy() for p in model.parameters()] + [x.grad.copy()]


CASES = {
    "convlstm_gates": _convlstm_case,
    "lstm_gates": _lstm_case,
    "squash": _squash_case,
    "stlstm": _stlstm_case,
    "causal_lstm": _causal_case,
    "ghu": _ghu_case,
    "routing": _routing_case,
    "bikecap_model": _model_case,
}


def _run(build, fused: bool):
    config.set_fusion_enabled(fused)
    engine.clear_caches()
    return build()


class TestFusedBitParity:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_fused_matches_unfused_exactly(self, name):
        build = CASES[name]
        fused_out, fused_grads = _run(build, fused=True)
        plain_out, plain_grads = _run(build, fused=False)
        for index, (a, b) in enumerate(zip(fused_out, plain_out)):
            assert np.array_equal(a, b), f"{name}: output {index} differs"
        assert len(fused_grads) == len(plain_grads)
        for index, (a, b) in enumerate(zip(fused_grads, plain_grads)):
            assert np.array_equal(a, b), (
                f"{name}: gradient {index} differs "
                f"(max abs {np.abs(a - b).max():.3e})"
            )


class TestFusionCache:
    def test_hit_miss_counters(self):
        config.set_fusion_enabled(True)
        engine.clear_caches()
        before = obs_metrics.counter(
            "engine_fusion_cache_misses_total", kind="lstm_gates"
        ).value
        _lstm_case()
        after_first = obs_metrics.counter(
            "engine_fusion_cache_misses_total", kind="lstm_gates"
        ).value
        assert after_first > before
        hits_before = obs_metrics.counter(
            "engine_fusion_cache_hits_total", kind="lstm_gates"
        ).value
        _lstm_case()  # same shapes: plans now come from the cache
        hits_after = obs_metrics.counter(
            "engine_fusion_cache_hits_total", kind="lstm_gates"
        ).value
        assert hits_after > hits_before

    def test_plan_cache_stats_reports_fusion(self):
        config.set_fusion_enabled(True)
        engine.clear_caches()
        _lstm_case()
        stats = engine.plan_cache_stats()
        assert stats["entries"]["fused_kernels"] >= 1
        assert stats["fusion_misses"] >= 1
        published = engine.publish_plan_cache_stats()
        assert published["entries"] == stats["entries"]


class TestNoCacheBypassesFusion:
    def test_fusion_inactive_under_no_cache(self):
        config.set_fusion_enabled(True)
        assert engine.fusion_active()
        with engine.no_cache():
            assert not engine.fusion_active()
            assert engine.fused_plan(("probe", "no_cache"), dict) is None
        assert engine.fusion_active()

    def test_routing_gradcheck_with_fusion_enabled(self):
        """In-place FD perturbation must bypass both plan and fusion caches.

        The gradcheck helper runs under ``engine.no_cache()``; with fusion
        globally enabled, a fusion cache that survived the bypass would
        serve plans traced for the unperturbed weights and the central
        differences would disagree with the analytic gradients.

        ``iterations=1`` keeps the comparison exact: with more iterations
        the routing loop's *detached* coupling has a real (deliberately
        untracked) dependence on the votes, so finite differences and the
        analytic gradient measure different things.
        """
        from repro.core.routing import SpatialTemporalRouting

        config.set_fusion_enabled(True)
        engine.clear_caches()
        module = SpatialTemporalRouting(2, 2, 2, iterations=1, rng=np.random.default_rng(0))
        rng = np.random.default_rng(31)
        phi = _tensor(rng.standard_normal((1, 1, 2, 2, 3, 3)))
        # Warm the fused plans outside no_cache so the bypass is exercised
        # against a *populated* cache, not an empty one.
        module(phi)
        gradcheck_module(module, phi, atol=1e-6, rtol=1e-4)
