"""Mathematical properties of the convolution engine (hypothesis-driven)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, ops
from repro.nn.ops.conv import conv3d_forward


def _rand(shape, seed):
    return np.random.default_rng(seed).standard_normal(shape)


class TestLinearity:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000), st.floats(-3, 3), st.floats(-3, 3))
    def test_conv_is_linear_in_input(self, seed, alpha, beta):
        x1 = _rand((1, 2, 3, 4, 4), seed)
        x2 = _rand((1, 2, 3, 4, 4), seed + 1)
        w = _rand((2, 2, 2, 2, 2), seed + 2)
        pads = ((0, 0), (0, 0), (0, 0))
        combined = conv3d_forward(alpha * x1 + beta * x2, w, (1, 1, 1), pads)
        separate = alpha * conv3d_forward(x1, w, (1, 1, 1), pads) + beta * conv3d_forward(
            x2, w, (1, 1, 1), pads
        )
        assert np.allclose(combined, separate, atol=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_conv_is_linear_in_weight(self, seed):
        x = _rand((1, 2, 3, 4, 4), seed)
        w1 = _rand((2, 2, 2, 2, 2), seed + 1)
        w2 = _rand((2, 2, 2, 2, 2), seed + 2)
        pads = ((0, 0), (0, 0), (0, 0))
        combined = conv3d_forward(x, w1 + w2, (1, 1, 1), pads)
        separate = conv3d_forward(x, w1, (1, 1, 1), pads) + conv3d_forward(x, w2, (1, 1, 1), pads)
        assert np.allclose(combined, separate, atol=1e-9)


class TestEquivariance:
    def test_translation_equivariance_spatial(self):
        """Shifting the input shifts the (valid) output identically."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 1, 2, 8, 8))
        w = rng.standard_normal((1, 1, 2, 3, 3))
        pads = ((0, 0), (0, 0), (0, 0))
        base = conv3d_forward(x, w, (1, 1, 1), pads)
        shifted = conv3d_forward(np.roll(x, 2, axis=3), w, (1, 1, 1), pads)
        # Interior rows (away from the wrap) must match the rolled base.
        assert np.allclose(shifted[:, :, :, 3:, :], np.roll(base, 2, axis=3)[:, :, :, 3:, :])

    def test_identity_kernel_is_identity(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 3, 4, 5, 5))
        w = np.zeros((3, 3, 1, 1, 1))
        for c in range(3):
            w[c, c, 0, 0, 0] = 1.0
        out = conv3d_forward(x, w, (1, 1, 1), ((0, 0), (0, 0), (0, 0)))
        assert np.allclose(out, x)


class TestAdjointProperty:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 500), st.sampled_from([(1, 1, 1), (2, 1, 2), (1, 2, 2)]))
    def test_inner_product_identity(self, seed, stride):
        """<conv(x), y> == <x, conv_transpose(y)> for random shapes/strides."""
        x = Tensor(_rand((1, 2, 5, 6, 6), seed))
        w = Tensor(_rand((3, 2, 2, 3, 3), seed + 1))
        y_shape = ops.conv3d(x, w, stride=stride, padding=1).shape
        y = Tensor(_rand(y_shape, seed + 2))
        forward = float((ops.conv3d(x, w, stride=stride, padding=1).data * y.data).sum())
        # Output padding reconstructs the exact original spatial extent.
        opad = tuple(
            x.shape[2 + i]
            - ((y_shape[2 + i] - 1) * stride[i] - 2 * 1 + w.shape[2 + i])
            for i in range(3)
        )
        back = ops.conv_transpose3d(y, w, stride=stride, padding=1, output_padding=opad)
        backward = float((x.data * back.data).sum())
        assert np.isclose(forward, backward, rtol=1e-9)


class TestStride:
    @pytest.mark.parametrize("stride", [1, 2, 3])
    def test_strided_output_subsamples_dense_output(self, stride):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 1, 6, 7, 7))
        w = rng.standard_normal((1, 1, 2, 2, 2))
        pads = ((0, 0), (0, 0), (0, 0))
        dense = conv3d_forward(x, w, (1, 1, 1), pads)
        strided = conv3d_forward(x, w, (stride, stride, stride), pads)
        assert np.allclose(strided, dense[:, :, ::stride, ::stride, ::stride])
