"""Execution-engine behaviour: plan cache, weight caches, arena, dtype
parity and deterministic threaded sharding."""

import numpy as np
import pytest

from repro.core import BikeCAP, BikeCAPConfig
from repro.nn import Tensor, Trainer, config, engine, ops
from repro.nn.layers.base import Parameter
from repro.nn.optim import SGD
from repro.obs import metrics as obs_metrics


@pytest.fixture(autouse=True)
def _fresh_engine():
    engine.clear_caches()
    engine.arena_clear()
    yield
    engine.clear_caches()
    engine.arena_clear()


def _counter_value(snapshot, name):
    return sum(
        value for key, value in snapshot["counters"].items() if key.startswith(name)
    )


class TestPlanCache:
    def test_hit_after_same_shape_miss_after_shape_change(self):
        before = _counter_value(obs_metrics.snapshot(), "engine_plan_cache_hits_total")
        plan_a = engine.conv_forward_plan(2, 3, (4, 4, 4), (2, 3, 3), np.float64)
        plan_b = engine.conv_forward_plan(2, 3, (4, 4, 4), (2, 3, 3), np.float64)
        assert plan_a == plan_b
        hits = _counter_value(obs_metrics.snapshot(), "engine_plan_cache_hits_total")
        assert hits == before + 1
        # A different signature must be decided afresh, not served from cache.
        engine.conv_forward_plan(2, 3, (5, 4, 4), (2, 3, 3), np.float64)
        assert (
            _counter_value(obs_metrics.snapshot(), "engine_plan_cache_hits_total")
            == hits
        )

    def test_dtype_is_part_of_the_signature(self):
        config.set_conv_dispatch_thresholds(10**9, 10**18, 1)
        try:
            # Flat (depth-1) kernel: GEMM forward is only worth it in float64.
            assert (
                engine.conv_forward_plan(2, 3, (4, 4, 4), (1, 3, 3), np.float64)
                == engine.PLAN_GEMM
            )
            # float32 never takes the GEMM forward (einsum wins below FFT).
            assert (
                engine.conv_forward_plan(2, 3, (4, 4, 4), (1, 3, 3), np.float32)
                == engine.PLAN_EINSUM
            )
            # Deep kernels stay on einsum even in float64: the im2col copy
            # never pays for itself there (see docs/PERFORMANCE.md).
            assert (
                engine.conv_forward_plan(2, 3, (4, 4, 4), (2, 3, 3), np.float64)
                == engine.PLAN_EINSUM
            )
        finally:
            config.set_conv_dispatch_thresholds(48, 4_000_000, 1_500_000)

    def test_einsum_matches_numpy_and_caches_path(self, rng):
        a = rng.standard_normal((3, 4, 5))
        b = rng.standard_normal((3, 5, 6))
        expected = np.einsum("bij,bjk->bik", a, b)
        assert np.allclose(engine.einsum("bij,bjk->bik", a, b), expected)
        before = _counter_value(obs_metrics.snapshot(), "engine_plan_cache_hits_total")
        assert np.allclose(engine.einsum("bij,bjk->bik", a, b), expected)
        assert (
            _counter_value(obs_metrics.snapshot(), "engine_plan_cache_hits_total")
            == before + 1
        )


class TestWarmup:
    def test_runs_forward_once_per_batch_size(self):
        seen = []

        def forward(x):
            # Warm-up must not build autograd state: it primes plan caches,
            # nothing else.
            assert not config.grad_enabled()
            seen.append((x.shape, x.dtype))
            return x

        before = _counter_value(obs_metrics.snapshot(), "engine_warmup_runs_total")
        calls = engine.warmup(forward, (5, 4, 4, 3), batch_sizes=(1, 6))
        assert calls == 2
        assert [shape for shape, _ in seen] == [(1, 5, 4, 4, 3), (6, 5, 4, 4, 3)]
        assert all(dtype == np.dtype(config.dtype()) for _, dtype in seen)
        after = _counter_value(obs_metrics.snapshot(), "engine_warmup_runs_total")
        assert after == before + 2

    def test_warmed_shapes_hit_the_plan_cache(self):
        """After warming a real model at a batch size, a same-shape request
        adds plan-cache hits, not misses — the whole point of warm-up."""
        model = BikeCAP(BikeCAPConfig(
            grid=(4, 4), history=4, horizon=2, features=3,
            pyramid_size=2, capsule_dim=2, future_capsule_dim=2,
            decoder_hidden=4, seed=0,
        ))
        engine.clear_caches()
        engine.warmup(model.predict, (4, 4, 4, 3), batch_sizes=(2,))
        misses_before = _counter_value(
            obs_metrics.snapshot(), "engine_plan_cache_misses_total"
        )
        model.predict(np.zeros((2, 4, 4, 4, 3), dtype=config.dtype()))
        misses_after = _counter_value(
            obs_metrics.snapshot(), "engine_plan_cache_misses_total"
        )
        assert misses_after == misses_before

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ValueError, match=">= 1"):
            engine.warmup(lambda x: x, (2, 2), batch_sizes=(0,))


class TestWeightCaches:
    def test_no_stale_kernel_fft_after_optimizer_step(self, rng):
        # Kernel volume 64 >= the FFT threshold: this conv runs (and caches)
        # the frequency-domain kernel on every call.
        w = Parameter(rng.standard_normal((2, 3, 4, 4, 4)))
        x = Tensor(rng.standard_normal((1, 3, 6, 8, 8)))
        out_before = ops.conv3d(x, w).data.copy()
        optimizer = SGD([w], lr=0.5)
        w.grad = np.ones_like(w.data)
        optimizer.step()
        out_after = ops.conv3d(x, w).data
        with engine.no_cache():
            expected = ops.conv3d(x, w).data
        assert np.allclose(out_after, expected, atol=1e-10)
        assert not np.allclose(out_before, out_after)

    def test_no_stale_masked_weight_after_optimizer_step(self, rng):
        w = Parameter(rng.standard_normal((2, 2, 2, 3, 3)))
        mask = (rng.random(w.shape) > 0.5).astype(w.data.dtype)
        x = Tensor(rng.standard_normal((1, 2, 4, 6, 6)))
        ops.conv3d(x, w, weight_mask=mask)  # populate the cache
        optimizer = SGD([w], lr=0.5)
        w.grad = np.ones_like(w.data)
        optimizer.step()
        out_after = ops.conv3d(x, w, weight_mask=mask).data
        with engine.no_cache():
            expected = ops.conv3d(x, w, weight_mask=mask).data
        assert np.allclose(out_after, expected, atol=1e-12)

    def test_load_state_dict_invalidates_caches(self, rng):
        from repro.nn import Conv3D

        layer = Conv3D(2, 2, kernel_size=4)  # volume 64: FFT path
        x = Tensor(rng.standard_normal((1, 2, 6, 8, 8)))
        layer(x)
        state = {
            name: rng.standard_normal(param.shape)
            for name, param in layer.named_parameters()
        }
        layer.load_state_dict(state)
        out = layer(x).data
        with engine.no_cache():
            expected = layer(x).data
        assert np.allclose(out, expected, atol=1e-10)

    def test_no_cache_bypasses_for_inplace_perturbation(self, rng):
        w = Parameter(rng.standard_normal((2, 3, 4, 4, 4)))
        x = Tensor(rng.standard_normal((1, 3, 6, 8, 8)))
        ops.conv3d(x, w)  # populate the cache
        with engine.no_cache():
            w.data[0, 0, 0, 0, 0] += 1.0
            perturbed = ops.conv3d(x, w).data
            w.data[0, 0, 0, 0, 0] -= 1.0
            restored = ops.conv3d(x, w).data
        assert not np.allclose(perturbed, restored)


class TestArena:
    def test_zeros_buffer_is_reused_and_rezeroed(self):
        buffer = engine.arena_zeros((4, 5), np.float64)
        buffer[:] = 7.0
        engine.arena_release(buffer)
        again = engine.arena_zeros((4, 5), np.float64)
        assert again is buffer
        assert np.all(again == 0.0)

    def test_shape_and_dtype_key_the_pool(self):
        buffer = engine.arena_empty((4, 5), np.float64)
        engine.arena_release(buffer)
        other = engine.arena_empty((5, 4), np.float64)
        assert other is not buffer
        other32 = engine.arena_empty((4, 5), np.float32)
        assert other32 is not buffer

    def test_disabled_arena_never_pools(self):
        config.set_arena_enabled(False)
        try:
            buffer = engine.arena_zeros((3, 3), np.float64)
            engine.arena_release(buffer)
            again = engine.arena_zeros((3, 3), np.float64)
            assert again is not buffer
        finally:
            config.set_arena_enabled(True)


class TestEinsumOp:
    def test_gradcheck(self, rng):
        from repro.nn import check_gradients

        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 4, 5)), requires_grad=True)
        check_gradients(lambda a, b: ops.einsum("bij,bjk->bik", a, b), [a, b])

    def test_rejects_unrecoverable_subscripts(self):
        a = Tensor(np.ones((2, 2)))
        with pytest.raises(ValueError):
            ops.einsum("ij,jk", a, a)  # implicit output
        with pytest.raises(ValueError):
            ops.einsum("ii,ij->j", a, a)  # repeated label in one operand


def _tiny_trainer(seed=0):
    cfg = BikeCAPConfig(
        grid=(6, 6),
        history=4,
        horizon=2,
        features=2,
        pyramid_size=2,
        capsule_dim=2,
        future_capsule_dim=2,
        decoder_hidden=4,
        seed=seed,
    )
    model = BikeCAP(cfg)
    trainer = Trainer(model, loss="l1", batch_size=4, seed=seed)
    rng = np.random.default_rng(seed)
    dtype = config.dtype()
    x = rng.random((8, 4, 6, 6, 2)).astype(dtype)
    y = rng.random((8, 2, 6, 6)).astype(dtype)
    return trainer, x, y


class TestDtypeParity:
    def test_float32_matches_float64_training(self):
        curves = {}
        for dtype in (np.float64, np.float32):
            with config.use_dtype(dtype):
                engine.clear_caches()
                trainer, x, y = _tiny_trainer(seed=3)
                history = trainer.fit(x, y, epochs=3)
                curves[dtype] = np.asarray(history.train_loss)
        assert curves[np.float32].dtype is not None
        assert np.allclose(curves[np.float32], curves[np.float64], rtol=2e-2, atol=1e-3)
        assert int(np.argmin(curves[np.float32])) == int(np.argmin(curves[np.float64]))


class TestShardedTraining:
    def test_pool_matches_serial_bit_for_bit(self):
        trainer_a, x, y = _tiny_trainer(seed=5)
        trainer_b, _, _ = _tiny_trainer(seed=5)
        loss_a = trainer_a._sharded_loss_and_grads(x, y, shards=3, use_pool=True)
        loss_b = trainer_b._sharded_loss_and_grads(x, y, shards=3, use_pool=False)
        assert loss_a == loss_b
        params_a = trainer_a.optimizer.parameters
        params_b = trainer_b.optimizer.parameters
        assert len(params_a) == len(params_b)
        for param_a, param_b in zip(params_a, params_b):
            if param_a.grad is None:
                assert param_b.grad is None
                continue
            assert np.array_equal(param_a.grad, param_b.grad)

    def test_sharded_loss_close_to_full_batch(self):
        trainer_a, x, y = _tiny_trainer(seed=7)
        trainer_b, _, _ = _tiny_trainer(seed=7)
        loss_sharded = trainer_a._sharded_loss_and_grads(x, y, shards=2, use_pool=True)
        prediction = trainer_b.model(Tensor(x))
        loss_full = trainer_b.loss_fn(prediction, Tensor(y))
        loss_full.backward()
        assert np.isclose(loss_sharded, float(loss_full.data), rtol=1e-10)
        for param_a, param_b in zip(
            trainer_a.optimizer.parameters, trainer_b.optimizer.parameters
        ):
            if param_a.grad is None:
                continue
            assert np.allclose(param_a.grad, param_b.grad, rtol=1e-8, atol=1e-10)

    def test_num_threads_controls_train_step_path(self):
        previous = config.num_threads()
        try:
            config.set_num_threads(2)
            trainer_threaded, x, y = _tiny_trainer(seed=9)
            loss_threaded = trainer_threaded.train_step(x, y)
            config.set_num_threads(1)
            trainer_serial, _, _ = _tiny_trainer(seed=9)
            loss_serial = trainer_serial.train_step(x, y)
            # Same step, same data: the shard decomposition only reorders
            # float summation.
            assert np.isclose(loss_threaded, loss_serial, rtol=1e-9)
        finally:
            config.set_num_threads(previous)
