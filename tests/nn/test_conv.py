"""Convolution correctness: naive reference, adjointness, gradients."""

import numpy as np
import pytest

from repro.nn import Tensor, ops
from repro.nn.gradcheck import check_gradients
from repro.nn.ops.conv import (
    conv3d_forward,
    conv_output_size,
    normalize_pads,
    normalize_stride,
    same_padding,
)


def naive_conv3d(x, w, stride, pads):
    """Straight-loop reference implementation."""
    x = np.pad(x, ((0, 0), (0, 0)) + tuple(pads))
    n, c_in, d, h, wdt = x.shape
    c_out = w.shape[0]
    kd, kh, kw = w.shape[2:]
    sd, sh, sw = stride
    od = (d - kd) // sd + 1
    oh = (h - kh) // sh + 1
    ow = (wdt - kw) // sw + 1
    out = np.zeros((n, c_out, od, oh, ow))
    for b in range(n):
        for o in range(c_out):
            for i in range(od):
                for j in range(oh):
                    for k in range(ow):
                        patch = x[b, :, i * sd : i * sd + kd, j * sh : j * sh + kh, k * sw : k * sw + kw]
                        out[b, o, i, j, k] = (patch * w[o]).sum()
    return out


class TestHelpers:
    def test_normalize_stride(self):
        assert normalize_stride(2, 3) == (2, 2, 2)
        assert normalize_stride((1, 2, 3), 3) == (1, 2, 3)
        with pytest.raises(ValueError):
            normalize_stride((1, 2), 3)

    def test_normalize_pads(self):
        assert normalize_pads(1, 2) == ((1, 1), (1, 1))
        assert normalize_pads((1, 2), 2) == ((1, 1), (2, 2))
        assert normalize_pads(((1, 0), (0, 2)), 2) == ((1, 0), (0, 2))

    def test_same_padding(self):
        assert same_padding((3, 5, 1)) == (1, 2, 0)
        with pytest.raises(ValueError):
            same_padding((4,))

    def test_conv_output_size(self):
        assert conv_output_size(8, 3, 1, 1, 1) == 8
        assert conv_output_size(8, 3, 2, 0, 0) == 3
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0, 0)


class TestConv3DForward:
    @pytest.mark.parametrize(
        "stride, pads",
        [
            ((1, 1, 1), ((0, 0), (0, 0), (0, 0))),
            ((2, 1, 2), ((1, 1), (0, 0), (1, 1))),
            ((1, 2, 1), ((2, 0), (1, 1), (0, 2))),
        ],
    )
    def test_matches_naive(self, stride, pads, rng):
        x = rng.standard_normal((2, 3, 5, 6, 6))
        w = rng.standard_normal((4, 3, 2, 3, 3))
        fast = conv3d_forward(x, w, stride, pads)
        slow = naive_conv3d(x, w, stride, pads)
        assert np.allclose(fast, slow)

    def test_bias_added_per_channel(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 2, 2, 2)))
        w = Tensor(np.zeros((3, 1, 1, 1, 1)))
        b = Tensor(np.array([1.0, 2.0, 3.0]))
        out = ops.conv3d(x, w, b)
        assert np.allclose(out.data[0, :, 0, 0, 0], [1.0, 2.0, 3.0])


class TestConv3DGradients:
    @pytest.mark.parametrize(
        "stride, padding",
        [
            (1, 0),
            ((1, 2, 1), 1),
            ((2, 1, 1), ((1, 0), (1, 1), (0, 1))),
        ],
    )
    def test_gradcheck(self, stride, padding, rng):
        x = Tensor(rng.standard_normal((2, 2, 4, 4, 4)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 2, 2, 2)), requires_grad=True)
        b = Tensor(rng.standard_normal(3), requires_grad=True)
        check_gradients(
            lambda x, w, b: ops.conv3d(x, w, b, stride=stride, padding=padding), [x, w, b]
        )

    def test_weight_mask_blocks_gradient(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 3, 3, 3)), requires_grad=True)
        w = Tensor(rng.standard_normal((1, 1, 2, 2, 2)), requires_grad=True)
        mask = np.zeros((1, 1, 2, 2, 2))
        mask[0, 0, 0, 0, 0] = 1.0
        out = ops.conv3d(x, w, weight_mask=mask)
        out.sum().backward()
        assert np.all(w.grad[mask == 0] == 0)
        assert np.any(w.grad[mask == 1] != 0)

    def test_masked_weights_do_not_affect_output(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 3, 3, 3)))
        w1 = rng.standard_normal((1, 1, 2, 2, 2))
        w2 = w1.copy()
        mask = np.zeros_like(w1)
        mask[0, 0, 1, 1, 1] = 1.0
        w2[mask == 0] = 999.0  # garbage outside the mask
        out1 = ops.conv3d(x, Tensor(w1), weight_mask=mask)
        out2 = ops.conv3d(x, Tensor(w2), weight_mask=mask)
        assert np.allclose(out1.data, out2.data)


class TestConvTranspose3D:
    def test_is_exact_adjoint_of_conv(self, rng):
        """<conv(x), y> == <x, conv_transpose(y)> for all x, y."""
        stride = (2, 1, 2)
        padding = 1
        x = rng.standard_normal((1, 2, 4, 5, 4))
        w = rng.standard_normal((3, 2, 2, 3, 3))
        conv_out = ops.conv3d(Tensor(x), Tensor(w), stride=stride, padding=padding).data
        y = rng.standard_normal(conv_out.shape)
        # Transposed direction: weight viewed as (C_in=3, C_out=2).
        back = ops.conv_transpose3d(
            Tensor(y), Tensor(w), stride=stride, padding=padding,
            output_padding=(0, 0, 1),
        ).data
        # Fix output_padding so shapes match x exactly.
        assert back.shape == x.shape
        lhs = float((conv_out * y).sum())
        rhs = float((x * back).sum())
        assert np.isclose(lhs, rhs)

    @pytest.mark.parametrize(
        "stride, padding, output_padding",
        [(1, 0, 0), ((1, 2, 1), 1, (0, 1, 0)), (2, 0, 1)],
    )
    def test_gradcheck(self, stride, padding, output_padding, rng):
        x = Tensor(rng.standard_normal((2, 3, 3, 3, 3)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 2, 2, 2)), requires_grad=True)
        b = Tensor(rng.standard_normal(2), requires_grad=True)
        check_gradients(
            lambda x, w, b: ops.conv_transpose3d(
                x, w, b, stride=stride, padding=padding, output_padding=output_padding
            ),
            [x, w, b],
        )

    def test_stride1_same_padding_preserves_shape(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 4, 5, 6)))
        w = Tensor(rng.standard_normal((2, 3, 3, 3, 3)))
        out = ops.conv_transpose3d(x, w, stride=1, padding=1)
        assert out.shape == (1, 3, 4, 5, 6)

    def test_rejects_nonpositive_output(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 1, 1, 1)))
        w = Tensor(rng.standard_normal((1, 1, 2, 2, 2)))
        with pytest.raises(ValueError):
            ops.conv_transpose3d(x, w, padding=2)


class TestConv2D:
    def test_matches_conv3d_with_unit_depth(self, rng):
        x = rng.standard_normal((2, 3, 5, 5))
        w = rng.standard_normal((4, 3, 3, 3))
        out2d = ops.conv2d(Tensor(x), Tensor(w), padding=1).data
        out3d = conv3d_forward(
            x[:, :, None], w[:, :, None], (1, 1, 1), ((0, 0), (1, 1), (1, 1))
        )[:, :, 0]
        assert np.allclose(out2d, out3d)

    def test_gradcheck(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 4, 4)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal(3), requires_grad=True)
        check_gradients(lambda x, w, b: ops.conv2d(x, w, b, stride=(1, 2), padding=1), [x, w, b])
