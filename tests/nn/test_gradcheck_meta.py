"""Meta-tests: the gradient checker must catch wrong gradients."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.gradcheck import check_gradients, numeric_gradient
from repro.nn.tensor import make_op


def _buggy_double(a):
    """An op whose backward is wrong on purpose (claims gradient 3, truth 2)."""

    def backward(grad):
        return (grad * 3.0,)

    return make_op(a.data * 2.0, (a,), backward)


class TestGradcheck:
    def test_detects_wrong_gradient(self, rng):
        x = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        with pytest.raises(AssertionError, match="gradient mismatch"):
            check_gradients(_buggy_double, [x])

    def test_passes_correct_gradient(self, rng):
        x = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        check_gradients(lambda x: x * 2.0, [x])

    def test_numeric_gradient_of_square(self):
        x = Tensor(np.array([1.0, -2.0]), requires_grad=True)
        numeric = numeric_gradient(lambda x: x * x, [x], index=0)
        assert np.allclose(numeric, [2.0, -4.0], atol=1e-6)

    def test_skips_non_grad_inputs(self, rng):
        x = Tensor(rng.standard_normal(3), requires_grad=True)
        constant = Tensor(rng.standard_normal(3))  # no grad required
        check_gradients(lambda x, c: x * c, [x, constant])

    def test_restores_data_after_perturbation(self, rng):
        x = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
        original = x.data.copy()
        numeric_gradient(lambda x: x * 2.0, [x], index=0)
        assert np.array_equal(x.data, original)
