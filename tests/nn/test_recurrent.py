"""Recurrent cells: LSTM, ConvLSTM, ST-LSTM, Causal LSTM, GHU."""

import numpy as np
import pytest

from repro.nn import (
    GHU,
    LSTM,
    CausalLSTMCell,
    ConvLSTM2DCell,
    LSTMCell,
    STLSTMCell,
    Tensor,
    l1_loss,
)


class TestLSTMCell:
    def test_shapes(self, rng):
        cell = LSTMCell(4, 8, rng=0)
        h, c = cell.initial_state(3)
        h2, c2 = cell(Tensor(rng.standard_normal((3, 4))), (h, c))
        assert h2.shape == (3, 8)
        assert c2.shape == (3, 8)

    def test_forget_bias_initialized_to_one(self):
        cell = LSTMCell(2, 3, rng=0)
        assert np.all(cell.bias.data[3:6] == 1.0)
        assert np.all(cell.bias.data[:3] == 0.0)

    def test_state_evolves(self, rng):
        cell = LSTMCell(2, 3, rng=0)
        state = cell.initial_state(1)
        x = Tensor(rng.standard_normal((1, 2)))
        h1, c1 = cell(x, state)
        h2, _ = cell(x, (h1, c1))
        assert not np.allclose(h1.data, h2.data)


class TestLSTMLayer:
    def test_output_shape_and_state(self, rng):
        lstm = LSTM(3, 5, num_layers=2, rng=0)
        out, state = lstm(Tensor(rng.standard_normal((4, 6, 3))))
        assert out.shape == (4, 6, 5)
        assert len(state) == 2
        assert state[0][0].shape == (4, 5)

    def test_gradients_flow_through_time(self, rng):
        lstm = LSTM(2, 3, rng=0)
        x = Tensor(rng.standard_normal((2, 5, 2)), requires_grad=True)
        out, _ = lstm(x)
        l1_loss(out, Tensor(np.zeros(out.shape))).backward()
        assert x.grad is not None
        # The first time step must receive gradient through the recurrence.
        assert np.abs(x.grad[:, 0]).sum() > 0

    def test_accepts_initial_state(self, rng):
        lstm = LSTM(2, 3, rng=0)
        state = [lstm.cells[0].initial_state(2)]
        out, _ = lstm(Tensor(rng.standard_normal((2, 4, 2))), state=state)
        assert out.shape == (2, 4, 3)


class TestConvLSTM:
    def test_shapes(self, rng):
        cell = ConvLSTM2DCell(2, 4, kernel_size=3, rng=0)
        state = cell.initial_state(2, 5, 6)
        h, c = cell(Tensor(rng.standard_normal((2, 2, 5, 6))), state)
        assert h.shape == (2, 4, 5, 6)
        assert c.shape == (2, 4, 5, 6)

    def test_gate_conv_channel_count(self):
        cell = ConvLSTM2DCell(3, 5, rng=0)
        assert cell.gates.out_channels == 20
        assert cell.gates.in_channels == 8


class TestSTLSTM:
    def test_shapes_and_memory_update(self, rng):
        cell = STLSTMCell(2, 3, rng=0)
        h, c, m = cell.initial_state(2, 4, 4)
        x = Tensor(rng.standard_normal((2, 2, 4, 4)))
        h2, c2, m2 = cell(x, h, c, m)
        assert h2.shape == (2, 3, 4, 4)
        assert not np.allclose(m2.data, m.data)

    def test_memory_flows_between_calls(self, rng):
        cell = STLSTMCell(2, 3, rng=0)
        h, c, m = cell.initial_state(1, 3, 3)
        x = Tensor(rng.standard_normal((1, 2, 3, 3)))
        _, _, m1 = cell(x, h, c, m)
        h2a, _, _ = cell(x, h, c, m1)
        h2b, _, _ = cell(x, h, c, m)
        assert not np.allclose(h2a.data, h2b.data)


class TestCausalLSTMAndGHU:
    def test_causal_shapes(self, rng):
        cell = CausalLSTMCell(2, 3, rng=0)
        h, c, m = cell.initial_state(2, 4, 4)
        h2, c2, m2 = cell(Tensor(rng.standard_normal((2, 2, 4, 4))), h, c, m)
        assert h2.shape == (2, 3, 4, 4)
        assert c2.shape == (2, 3, 4, 4)
        assert m2.shape == (2, 3, 4, 4)

    def test_ghu_identity_at_closed_gate(self, rng):
        ghu = GHU(3, rng=0)
        z = Tensor(rng.standard_normal((1, 3, 4, 4)))
        x = Tensor(np.zeros((1, 3, 4, 4)))
        # Zero both convs' effect: force the switch toward keeping z.
        for param in ghu.parameters():
            param.data[...] = 0.0
        out = ghu(x, z)
        # With s = sigmoid(0) = 0.5 and p = tanh(0) = 0: out = 0.5 * z.
        assert np.allclose(out.data, 0.5 * z.data)

    def test_ghu_interpolates(self, rng):
        ghu = GHU(2, rng=0)
        x = Tensor(rng.standard_normal((2, 2, 3, 3)))
        z = Tensor(rng.standard_normal((2, 2, 3, 3)))
        out = ghu(x, z).data
        assert out.shape == (2, 2, 3, 3)
        assert np.all(np.isfinite(out))
