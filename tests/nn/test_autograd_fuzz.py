"""Autograd fuzzing: random op graphs must always pass gradcheck.

Hypothesis draws a random sequence of ops and shapes, builds a composite
function, and verifies analytic gradients against finite differences —
covering op *compositions* the hand-written tests don't enumerate.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, ops
from repro.nn.gradcheck import check_gradients

# Smooth unary ops, safe on any real input after the standard shift.
_UNARY = [
    ("sigmoid", ops.sigmoid),
    ("tanh", ops.tanh),
    ("elu", ops.elu),
    ("exp_scaled", lambda t: ops.exp(ops.mul(t, 0.3))),
    ("softmax", lambda t: ops.softmax(t, axis=-1)),
    ("neg", ops.neg),
    ("square", lambda t: ops.mul(t, t)),
]

# Binary combiners of two same-shape tensors.
_BINARY = [
    ("add", ops.add),
    ("sub", ops.sub),
    ("mul", ops.mul),
    ("maximum_shifted", lambda a, b: ops.maximum(a, ops.add(b, 0.05))),
]


@st.composite
def _graphs(draw):
    rows = draw(st.integers(2, 4))
    cols = draw(st.integers(2, 4))
    unary_indices = draw(st.lists(st.integers(0, len(_UNARY) - 1), min_size=1, max_size=4))
    binary_index = draw(st.integers(0, len(_BINARY) - 1))
    seed = draw(st.integers(0, 2**31 - 1))
    return rows, cols, unary_indices, binary_index, seed


class TestAutogradFuzz:
    @settings(max_examples=40, deadline=None)
    @given(_graphs())
    def test_random_graph_gradcheck(self, graph):
        rows, cols, unary_indices, binary_index, seed = graph
        rng = np.random.default_rng(seed)
        a = Tensor(rng.standard_normal((rows, cols)), requires_grad=True)
        b = Tensor(rng.standard_normal((rows, cols)), requires_grad=True)

        def fn(a, b):
            _name, combine = _BINARY[binary_index]
            out = combine(a, b)
            for index in unary_indices:
                _name, unary = _UNARY[index]
                out = unary(out)
            return ops.mean(out)

        # Degenerate compositions (e.g. exp of exp of a square) overflow
        # float64; at that scale finite differences of small-gradient
        # entries vanish below the output's resolution, so gradcheck
        # would report spurious mismatches. Discard those draws.
        value = float(fn(a, b).data)
        assume(np.isfinite(value) and abs(value) < 100.0)

        check_gradients(fn, [a, b], atol=5e-6, rtol=5e-4)

    @settings(max_examples=20, deadline=None)
    @given(_graphs())
    def test_graph_with_reductions_and_broadcast(self, graph):
        rows, cols, unary_indices, _binary_index, seed = graph
        rng = np.random.default_rng(seed)
        a = Tensor(rng.standard_normal((rows, cols)), requires_grad=True)
        bias = Tensor(rng.standard_normal((cols,)), requires_grad=True)

        def fn(a, bias):
            out = ops.add(a, bias)  # broadcast
            _name, unary = _UNARY[unary_indices[0]]
            out = unary(out)
            return ops.sum(ops.mean(out, axis=0))

        check_gradients(fn, [a, bias], atol=5e-6, rtol=5e-4)
