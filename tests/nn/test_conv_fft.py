"""Conv execution-path equivalence: einsum vs GEMM vs FFT.

The engine dispatches each conv signature to one of three exact strategies;
these tests pin all of them to the same answers for forward, weight-grad and
input-grad, across strides and asymmetric (causal) paddings.
"""

import numpy as np
import pytest

from repro.nn import config, engine
from repro.nn.ops import conv as conv_module
from repro.nn.ops.conv import (
    conv3d_forward,
    conv3d_input_grad,
    conv3d_weight_grad,
)

CASES = [
    # (x shape, w shape, stride, pads)
    ((2, 3, 6, 9, 9), (4, 3, 4, 7, 7), (1, 1, 1), ((3, 0), (3, 3), (3, 3))),
    ((2, 2, 8, 10, 10), (3, 2, 3, 5, 5), (2, 1, 2), ((1, 1), (2, 2), (2, 2))),
    ((1, 1, 5, 9, 9), (1, 1, 5, 9, 9), (1, 1, 1), ((4, 0), (4, 4), (4, 4))),
    ((2, 1, 16, 6, 6), (6, 1, 4, 3, 3), (4, 1, 1), ((0, 0), (1, 1), (1, 1))),
    # Flat (depth-1) kernel — the only shape class eligible for the GEMM
    # *forward* plan; deep-kernel cases above exercise GEMM via weight-grad.
    ((2, 3, 6, 9, 9), (4, 3, 1, 3, 3), (1, 1, 2), ((0, 0), (1, 1), (1, 1))),
]

HUGE = 10**18

# Threshold settings (fft_kernel_volume, fft_im2col, gemm_min) forcing each plan.
FORCE = {
    "einsum": (HUGE, HUGE, HUGE),
    "gemm": (HUGE, HUGE, 1),
    "fft": (1, 1, HUGE),
}


@pytest.fixture()
def force_paths():
    """Yield a helper that runs a callable under every conv execution plan."""
    saved = (
        config.conv_fft_min_kernel_volume(),
        config.conv_fft_min_im2col_elements(),
        config.conv_gemm_min_elements(),
    )

    def runner(fn):
        results = {}
        for plan, thresholds in FORCE.items():
            config.set_conv_dispatch_thresholds(*thresholds)
            results[plan] = fn()
        return results

    yield runner
    config.set_conv_dispatch_thresholds(*saved)


@pytest.mark.parametrize("x_shape, w_shape, stride, pads", CASES)
class TestPathEquivalence:
    def test_forward(self, x_shape, w_shape, stride, pads, force_paths, rng):
        x = rng.standard_normal(x_shape)
        w = rng.standard_normal(w_shape)
        results = force_paths(lambda: conv3d_forward(x, w, stride, pads))
        assert np.allclose(results["einsum"], results["fft"], atol=1e-10)
        assert np.allclose(results["einsum"], results["gemm"], atol=1e-10)

    def test_weight_grad(self, x_shape, w_shape, stride, pads, force_paths, rng):
        x = rng.standard_normal(x_shape)
        w = rng.standard_normal(w_shape)
        out = conv3d_forward(x, w, stride, pads)
        gout = rng.standard_normal(out.shape)
        results = force_paths(
            lambda: conv3d_weight_grad(x, gout, w_shape[2:], stride, pads)
        )
        assert np.allclose(results["einsum"], results["fft"], atol=1e-10)
        assert np.allclose(results["einsum"], results["gemm"], atol=1e-10)

    def test_input_grad(self, x_shape, w_shape, stride, pads, force_paths, rng):
        x = rng.standard_normal(x_shape)
        w = rng.standard_normal(w_shape)
        out = conv3d_forward(x, w, stride, pads)
        gout = rng.standard_normal(out.shape)
        results = force_paths(
            lambda: conv3d_input_grad(gout, w, x_shape[2:], stride, pads)
        )
        assert np.allclose(results["einsum"], results["fft"], atol=1e-10)
        assert np.allclose(results["einsum"], results["gemm"], atol=1e-10)


class TestPathSelection:
    def test_small_kernels_stay_on_im2col(self):
        assert not conv_module._prefer_fft(2, 3, (4, 4, 4), (2, 3, 3))

    def test_large_kernels_prefer_fft(self):
        assert conv_module._prefer_fft(1, 1, (2, 2, 2), (5, 9, 9))

    def test_large_im2col_copies_prefer_fft(self):
        # Small kernel but huge batchxchannel volume (the routing conv case).
        assert conv_module._prefer_fft(32, 32, (256, 10, 10), (4, 3, 3))

    def test_plans_follow_config_thresholds(self):
        saved = (
            config.conv_fft_min_kernel_volume(),
            config.conv_fft_min_im2col_elements(),
            config.conv_gemm_min_elements(),
        )
        try:
            config.set_conv_dispatch_thresholds(*FORCE["gemm"])
            assert (
                engine.conv_forward_plan(2, 3, (4, 4, 4), (1, 3, 3), np.float64)
                == engine.PLAN_GEMM
            )
            config.set_conv_dispatch_thresholds(*FORCE["fft"])
            assert (
                engine.conv_forward_plan(2, 3, (4, 4, 4), (2, 3, 3), np.float64)
                == engine.PLAN_FFT
            )
        finally:
            config.set_conv_dispatch_thresholds(*saved)
