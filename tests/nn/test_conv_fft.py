"""FFT vs im2col convolution path equivalence.

Large kernels take a frequency-domain route; these tests pin both paths to
the same answers for forward, weight-grad and input-grad, across strides
and asymmetric (causal) paddings.
"""

import numpy as np
import pytest

from repro.nn.ops import conv as conv_module
from repro.nn.ops.conv import (
    conv3d_forward,
    conv3d_input_grad,
    conv3d_weight_grad,
)

CASES = [
    # (x shape, w shape, stride, pads) — all with FFT-sized kernels
    ((2, 3, 6, 9, 9), (4, 3, 4, 7, 7), (1, 1, 1), ((3, 0), (3, 3), (3, 3))),
    ((2, 2, 8, 10, 10), (3, 2, 3, 5, 5), (2, 1, 2), ((1, 1), (2, 2), (2, 2))),
    ((1, 1, 5, 9, 9), (1, 1, 5, 9, 9), (1, 1, 1), ((4, 0), (4, 4), (4, 4))),
    ((2, 1, 16, 6, 6), (6, 1, 4, 3, 3), (4, 1, 1), ((0, 0), (1, 1), (1, 1))),
]


@pytest.fixture()
def force_paths(monkeypatch):
    """Yield a helper that runs a callable under each conv path."""

    def runner(fn):
        monkeypatch.setattr(conv_module, "FFT_MIN_KERNEL_VOLUME", 10**9)
        monkeypatch.setattr(conv_module, "FFT_MIN_IM2COL_ELEMENTS", 10**18)
        reference = fn()
        monkeypatch.setattr(conv_module, "FFT_MIN_KERNEL_VOLUME", 1)
        monkeypatch.setattr(conv_module, "FFT_MIN_IM2COL_ELEMENTS", 1)
        fft = fn()
        return reference, fft

    return runner


@pytest.mark.parametrize("x_shape, w_shape, stride, pads", CASES)
class TestFFTEquivalence:
    def test_forward(self, x_shape, w_shape, stride, pads, force_paths, rng):
        x = rng.standard_normal(x_shape)
        w = rng.standard_normal(w_shape)
        reference, fft = force_paths(lambda: conv3d_forward(x, w, stride, pads))
        assert np.allclose(reference, fft, atol=1e-10)

    def test_weight_grad(self, x_shape, w_shape, stride, pads, force_paths, rng):
        x = rng.standard_normal(x_shape)
        w = rng.standard_normal(w_shape)
        out = conv3d_forward(x, w, stride, pads)
        gout = rng.standard_normal(out.shape)
        reference, fft = force_paths(
            lambda: conv3d_weight_grad(x, gout, w_shape[2:], stride, pads)
        )
        assert np.allclose(reference, fft, atol=1e-10)

    def test_input_grad(self, x_shape, w_shape, stride, pads, force_paths, rng):
        x = rng.standard_normal(x_shape)
        w = rng.standard_normal(w_shape)
        out = conv3d_forward(x, w, stride, pads)
        gout = rng.standard_normal(out.shape)
        reference, fft = force_paths(
            lambda: conv3d_input_grad(gout, w, x_shape[2:], stride, pads)
        )
        assert np.allclose(reference, fft, atol=1e-10)


class TestPathSelection:
    def test_small_kernels_stay_on_im2col(self):
        assert not conv_module._prefer_fft(2, 3, (4, 4, 4), (2, 3, 3))

    def test_large_kernels_prefer_fft(self):
        assert conv_module._prefer_fft(1, 1, (2, 2, 2), (5, 9, 9))

    def test_large_im2col_copies_prefer_fft(self):
        # Small kernel but huge batchxchannel volume (the routing conv case).
        assert conv_module._prefer_fft(32, 32, (256, 10, 10), (4, 3, 3))
