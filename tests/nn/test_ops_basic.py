"""Gradient checks and semantics for elementwise/linear-algebra ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, ops
from repro.nn.gradcheck import check_gradients


def _t(array):
    return Tensor(np.asarray(array, dtype=float), requires_grad=True)


class TestElementwiseGradients:
    @pytest.mark.parametrize(
        "fn",
        [ops.add, ops.sub, ops.mul, ops.div],
        ids=["add", "sub", "mul", "div"],
    )
    def test_binary_op_gradients(self, fn, rng):
        a = _t(rng.standard_normal((3, 4)) + 2.0)
        b = _t(rng.standard_normal((3, 4)) + 2.0)
        check_gradients(lambda a, b: fn(a, b), [a, b])

    @pytest.mark.parametrize(
        "fn",
        [ops.add, ops.sub, ops.mul, ops.div],
        ids=["add", "sub", "mul", "div"],
    )
    def test_binary_op_broadcast_gradients(self, fn, rng):
        a = _t(rng.standard_normal((2, 3, 4)) + 2.0)
        b = _t(rng.standard_normal((4,)) + 2.0)
        check_gradients(lambda a, b: fn(a, b), [a, b])

    def test_neg_power_exp_log_sqrt_abs(self, rng):
        x = _t(rng.random((3, 3)) + 0.5)
        check_gradients(lambda x: ops.neg(x), [x])
        check_gradients(lambda x: ops.power(x, 3.0), [x])
        check_gradients(lambda x: ops.exp(x), [x])
        check_gradients(lambda x: ops.log(x), [x])
        check_gradients(lambda x: ops.sqrt(x), [x])
        shifted = _t(rng.standard_normal((3, 3)) + 5.0)
        check_gradients(lambda x: ops.abs(x), [shifted])

    def test_clip_gradient_masks_outside(self):
        x = _t([-2.0, 0.5, 2.0])
        out = ops.clip(x, -1.0, 1.0)
        out.sum().backward()
        assert np.allclose(out.data, [-1.0, 0.5, 1.0])
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])

    def test_maximum_routes_gradient_to_larger(self):
        a = _t([1.0, 5.0])
        b = _t([2.0, 3.0])
        ops.maximum(a, b).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0])
        assert np.allclose(b.grad, [1.0, 0.0])

    def test_where_selects_and_routes_gradient(self):
        a = _t([1.0, 2.0])
        b = _t([10.0, 20.0])
        condition = np.array([True, False])
        out = ops.where(condition, a, b)
        assert np.allclose(out.data, [1.0, 20.0])
        out.sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0])
        assert np.allclose(b.grad, [0.0, 1.0])


class TestMatmul:
    def test_2d_forward(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 5))
        assert np.allclose(ops.matmul(Tensor(a), Tensor(b)).data, a @ b)

    @pytest.mark.parametrize(
        "shape_a, shape_b",
        [
            ((3, 4), (4, 5)),
            ((2, 3, 4), (4, 5)),
            ((2, 3, 4), (2, 4, 5)),
            ((4,), (4, 5)),
            ((3, 4), (4,)),
            ((4,), (4,)),
            ((2, 3, 4), (4,)),
            ((4,), (2, 4, 5)),
        ],
    )
    def test_matmul_gradients(self, shape_a, shape_b, rng):
        a = _t(rng.standard_normal(shape_a))
        b = _t(rng.standard_normal(shape_b))
        check_gradients(lambda a, b: ops.matmul(a, b), [a, b])


class TestHypothesisProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(-10, 10), min_size=1, max_size=8),
        st.lists(st.floats(-10, 10), min_size=1, max_size=8),
    )
    def test_add_commutes(self, left, right):
        size = min(len(left), len(right))
        a = Tensor(left[:size])
        b = Tensor(right[:size])
        assert np.allclose(ops.add(a, b).data, ops.add(b, a).data)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(0.1, 10), min_size=1, max_size=8))
    def test_exp_log_roundtrip(self, values):
        x = Tensor(values)
        assert np.allclose(ops.exp(ops.log(x)).data, x.data, rtol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-5, 5), min_size=1, max_size=8))
    def test_abs_nonnegative(self, values):
        assert (ops.abs(Tensor(values)).data >= 0).all()
