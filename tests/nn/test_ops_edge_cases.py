"""Edge cases across the op library: degenerate shapes, extreme values,
mixed requires_grad, and op-specific corner semantics."""

import numpy as np
import pytest

from repro.nn import Tensor, ops


class TestDegenerateShapes:
    def test_scalar_tensors_through_arithmetic(self):
        a = Tensor(2.0, requires_grad=True)
        b = Tensor(3.0, requires_grad=True)
        out = ops.mul(ops.add(a, b), a)
        out.backward()
        assert a.grad == pytest.approx(7.0)  # d/da[(a+b)a] = 2a+b
        assert b.grad == pytest.approx(2.0)

    def test_empty_axis_reductions(self):
        x = Tensor(np.zeros((0, 3)))
        assert ops.sum(x).item() == 0.0

    def test_single_element_softmax(self):
        out = ops.softmax(Tensor([[5.0]]), axis=-1)
        assert out.item() == 1.0

    def test_concat_single_tensor(self):
        x = Tensor(np.ones((2, 2)))
        assert ops.concat([x], axis=0).shape == (2, 2)

    def test_stack_single_tensor(self):
        x = Tensor(np.ones((2, 2)))
        assert ops.stack([x], axis=0).shape == (1, 2, 2)

    def test_reshape_to_scalar_and_back(self):
        x = Tensor([[7.0]], requires_grad=True)
        out = ops.reshape(x, ())
        ops.reshape(out, (1, 1)).sum().backward()
        assert x.grad.shape == (1, 1)


class TestExtremeValues:
    def test_sigmoid_saturation_gradients_are_zero_not_nan(self):
        x = Tensor([-1e4, 1e4], requires_grad=True)
        ops.sigmoid(x).sum().backward()
        assert np.all(np.isfinite(x.grad))
        assert np.allclose(x.grad, 0.0)

    def test_softmax_with_neg_inf_like_logits(self):
        out = ops.softmax(Tensor([[-1e30, 0.0]]), axis=-1).data
        assert np.allclose(out, [[0.0, 1.0]])

    def test_log_of_tiny_values(self):
        x = Tensor([1e-300], requires_grad=True)
        out = ops.log(x)
        out.sum().backward()
        assert np.isfinite(out.data).all()
        assert np.isfinite(x.grad).all()

    def test_norm_of_large_vector(self):
        x = Tensor([[1e150, 1e150]])
        # No overflow to inf through the sum-of-squares path at 1e150² = 1e300.
        assert np.isfinite(ops.norm(x, axis=1).data).all()


class TestMixedRequiresGrad:
    def test_grad_flows_only_to_marked_inputs(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0])  # constant
        out = ops.mul(a, b)
        out.sum().backward()
        assert a.grad is not None
        assert b.grad is None

    def test_constant_only_graph_produces_no_graph(self):
        a = Tensor([1.0])
        b = Tensor([2.0])
        out = ops.add(a, b)
        assert not out.requires_grad
        assert out._parents == ()

    def test_detached_branch_contributes_no_gradient(self):
        a = Tensor([2.0], requires_grad=True)
        frozen = ops.mul(a, 3.0).detach()
        out = ops.add(ops.mul(a, 1.0), frozen)
        out.sum().backward()
        assert np.allclose(a.grad, [1.0])


class TestOpSpecificCorners:
    def test_clip_degenerate_range(self):
        x = Tensor([-1.0, 0.0, 1.0])
        out = ops.clip(x, 0.0, 0.0)
        assert np.allclose(out.data, 0.0)

    def test_where_all_true_and_all_false(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([9.0, 9.0])
        assert np.allclose(ops.where(np.array([True, True]), a, b).data, a.data)
        assert np.allclose(ops.where(np.array([False, False]), a, b).data, b.data)

    def test_pad_zero_width_is_identity(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        out = ops.pad(x, ((0, 0), (0, 0)))
        assert out.shape == (2, 3)
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_flip_twice_is_identity(self, rng):
        data = rng.standard_normal((3, 4))
        assert np.allclose(ops.flip(ops.flip(Tensor(data), 0), 0).data, data)

    def test_transpose_default_reverses_axes(self, rng):
        data = rng.standard_normal((2, 3, 4))
        assert ops.transpose(Tensor(data)).shape == (4, 3, 2)

    def test_power_zero_exponent(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        out = ops.power(x, 0.0)
        assert np.allclose(out.data, 1.0)
        out.sum().backward()
        assert np.allclose(x.grad, 0.0)

    def test_maximum_with_scalar_broadcast(self):
        x = Tensor([-1.0, 2.0], requires_grad=True)
        out = ops.maximum(x, 0.0)
        assert np.allclose(out.data, [0.0, 2.0])
