"""Record → tensor aggregation (15-minute slots, paper Sec. IV-D)."""

import numpy as np
import pytest

from repro.city import BikeRecordBatch, GridPartition, SubwayRecordBatch
from repro.data import (
    BIKE_DROPOFF,
    BIKE_PICKUP,
    FEATURE_NAMES,
    SUBWAY_IN,
    SUBWAY_OUT,
    aggregate_bike,
    aggregate_city,
    aggregate_subway,
    bike_series_near_cell,
    num_slots,
    station_series,
)


class TestNumSlots:
    def test_exact_and_partial(self):
        assert num_slots(3600, 900) == 4
        assert num_slots(3601, 900) == 5

    def test_default_slot_is_15_minutes(self):
        assert num_slots(24 * 3600) == 96


class TestAggregation:
    def test_feature_channel_order(self):
        assert FEATURE_NAMES == ("bike_pickup", "bike_dropoff", "subway_in", "subway_out")
        assert (BIKE_PICKUP, BIKE_DROPOFF, SUBWAY_IN, SUBWAY_OUT) == (0, 1, 2, 3)

    def test_bike_counts_conserved(self, rng):
        grid = GridPartition(4, 4, cell_meters=250.0)
        count = 200
        x = rng.random(count) * grid.width_meters
        y = rng.random(count) * grid.height_meters
        lat, lon = grid.to_gps(x, y)
        batch = BikeRecordBatch(
            times=rng.random(count) * 3600 * 4,
            latitudes=lat,
            longitudes=lon,
            pickup=rng.random(count) < 0.5,
            user_ids=np.zeros(count, int),
            bike_ids=np.zeros(count, int),
        )
        tensor = np.zeros((16, 4, 4, 4))
        aggregate_bike(batch, grid, tensor)
        assert tensor[..., BIKE_PICKUP].sum() == batch.pickup.sum()
        assert tensor[..., BIKE_DROPOFF].sum() == (~batch.pickup).sum()
        assert tensor[..., SUBWAY_IN].sum() == 0

    def test_record_lands_in_correct_slot_and_cell(self):
        grid = GridPartition(3, 3, cell_meters=100.0)
        lat, lon = grid.to_gps(np.array([150.0]), np.array([250.0]))  # cell (2, 1)
        batch = BikeRecordBatch(
            times=np.array([20 * 60.0]),  # second slot
            latitudes=lat,
            longitudes=lon,
            pickup=np.array([True]),
            user_ids=np.array([0]),
            bike_ids=np.array([0]),
        )
        tensor = np.zeros((4, 3, 3, 4))
        aggregate_bike(batch, grid, tensor)
        assert tensor[1, 2, 1, BIKE_PICKUP] == 1
        assert tensor.sum() == 1

    def test_subway_counts_at_station_cells(self, tiny_city):
        tensor = aggregate_city(tiny_city)
        inbound = tensor[..., SUBWAY_IN].sum(axis=0)
        station_cells = {s.cell for s in tiny_city.subway.stations}
        nonzero_cells = set(zip(*np.nonzero(inbound)))
        assert nonzero_cells <= station_cells
        assert inbound.sum() == tiny_city.subway_records.boarding.sum()

    def test_aggregate_city_shape(self, tiny_city):
        tensor = aggregate_city(tiny_city)
        slots = num_slots(tiny_city.duration_seconds)
        assert tensor.shape == (slots, 6, 6, 4)
        assert tensor.min() >= 0

    def test_out_of_range_times_dropped(self):
        grid = GridPartition(2, 2, cell_meters=100.0)
        lat, lon = grid.to_gps(np.array([50.0]), np.array([50.0]))
        batch = BikeRecordBatch(
            times=np.array([1e9]),
            latitudes=lat,
            longitudes=lon,
            pickup=np.array([True]),
            user_ids=np.array([0]),
            bike_ids=np.array([0]),
        )
        tensor = np.zeros((4, 2, 2, 4))
        aggregate_bike(batch, grid, tensor)
        assert tensor.sum() == 0


class TestSeriesHelpers:
    def test_station_series_counts(self, tiny_city):
        subway = tiny_city.subway_records
        station = int(subway.station_ids[0])
        series = station_series(subway, station, tiny_city.duration_seconds, boarding=True)
        expected = ((subway.station_ids == station) & subway.boarding).sum()
        assert series.sum() == expected

    def test_bike_series_radius_zero_vs_one(self, tiny_city):
        cell = tiny_city.zones.dominant_cbd_cell()
        narrow = bike_series_near_cell(
            tiny_city.bike_records, tiny_city.grid, cell, tiny_city.duration_seconds, radius_cells=0
        )
        wide = bike_series_near_cell(
            tiny_city.bike_records, tiny_city.grid, cell, tiny_city.duration_seconds, radius_cells=1
        )
        assert wide.sum() >= narrow.sum()
