"""Dataset assembly from simulator output."""

import numpy as np
import pytest

from repro.data import BIKE_PICKUP, dataset_from_city, dataset_from_tensor


class TestDatasetFromTensor:
    def _tensor(self, rng, total=60):
        return rng.random((total, 3, 3, 4)) * 20

    def test_shapes_and_split(self, rng):
        dataset = dataset_from_tensor(self._tensor(rng), history=5, horizon=2)
        x = dataset.split.train_x
        assert x.shape[1:] == (5, 3, 3, 4)
        assert dataset.split.train_y.shape[1:] == (2, 3, 3)
        assert dataset.grid_shape == (3, 3)
        assert dataset.num_features == 4

    def test_normalized_range(self, rng):
        dataset = dataset_from_tensor(self._tensor(rng), history=5, horizon=2)
        assert dataset.split.train_x.min() >= 0.0
        assert dataset.split.train_x.max() <= 1.0 + 1e-9

    def test_scaler_fitted_on_training_slots_only(self, rng):
        tensor = self._tensor(rng)
        tensor[50:] *= 100  # extreme values only in the test region
        dataset = dataset_from_tensor(tensor, history=5, horizon=2)
        # Train portion stays within [0, 1]; test windows may exceed 1.
        assert dataset.split.train_x.max() <= 1.0 + 1e-9
        assert dataset.split.test_x.max() > 1.0

    def test_denormalize_target_round_trip(self, rng):
        tensor = self._tensor(rng)
        dataset = dataset_from_tensor(tensor, history=5, horizon=2)
        restored = dataset.denormalize_target(dataset.split.train_y)
        span = dataset.scaler.maximum[BIKE_PICKUP] - dataset.scaler.minimum[BIKE_PICKUP]
        assert restored.max() <= dataset.scaler.maximum[BIKE_PICKUP] + 1e-6 + 0.0 * span

    def test_dataset_from_city(self, tiny_city):
        dataset = dataset_from_city(tiny_city, history=6, horizon=3)
        assert dataset.history == 6
        assert dataset.horizon == 3
        assert dataset.grid_shape == tiny_city.grid.shape
        total = sum(dataset.split.sizes)
        assert total > 0

    def test_windows_are_chronological_across_splits(self, tiny_dataset):
        """No test window can start before the last training window."""
        # Training windows come strictly first by construction; verify via
        # monotone demand sums only loosely — check sizes ratio instead.
        train, val, test = tiny_dataset.split.sizes
        total = train + val + test
        assert 0.55 <= train / total <= 0.65
        assert 0.15 <= val / total <= 0.25
