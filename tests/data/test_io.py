"""CSV and tensor IO round trips."""

import numpy as np
import pytest

from repro.data import (
    load_demand_tensor,
    read_bike_csv,
    read_subway_csv,
    save_demand_tensor,
    write_bike_csv,
    write_subway_csv,
)


class TestSubwayCsv:
    def test_round_trip(self, tiny_city, tmp_path):
        path = str(tmp_path / "subway.csv")
        original = tiny_city.subway_records
        write_subway_csv(original, tiny_city.station_names, path)
        restored = read_subway_csv(path, tiny_city.station_names)
        assert len(restored) == len(original)
        # Timestamps are serialized at 1-second granularity.
        assert np.allclose(np.floor(original.times), restored.times, atol=1.0)
        assert np.array_equal(original.station_ids, restored.station_ids)
        assert np.array_equal(original.boarding, restored.boarding)
        assert np.array_equal(original.user_ids, restored.user_ids)
        assert np.array_equal(original.lines, restored.lines)

    def test_rejects_malformed_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="missing columns"):
            read_subway_csv(str(path), ["S1"])


class TestBikeCsv:
    def test_round_trip(self, tiny_city, tmp_path):
        path = str(tmp_path / "bike.csv")
        original = tiny_city.bike_records
        write_bike_csv(original, path)
        restored = read_bike_csv(path)
        assert len(restored) == len(original)
        assert np.allclose(np.floor(original.times), restored.times, atol=1.0)
        assert np.allclose(original.latitudes, restored.latitudes, atol=1e-6)
        assert np.allclose(original.longitudes, restored.longitudes, atol=1e-6)
        assert np.array_equal(original.pickup, restored.pickup)
        assert np.array_equal(original.bike_ids, restored.bike_ids)

    def test_round_trip_preserves_aggregation(self, tiny_city, tmp_path):
        """Aggregating restored records must match the original tensors
        (1-second serialization granularity cannot cross 15-min slots often)."""
        from repro.data import aggregate_bike

        path = str(tmp_path / "bike.csv")
        write_bike_csv(tiny_city.bike_records, path)
        restored = read_bike_csv(path)

        slots = int(np.ceil(tiny_city.duration_seconds / 900))
        original_tensor = np.zeros((slots, 6, 6, 4))
        restored_tensor = np.zeros((slots, 6, 6, 4))
        aggregate_bike(tiny_city.bike_records, tiny_city.grid, original_tensor)
        aggregate_bike(restored, tiny_city.grid, restored_tensor)
        # Allow a handful of boundary-crossing slot shifts.
        assert np.abs(original_tensor - restored_tensor).sum() <= len(restored) * 0.01 + 4

    def test_rejects_malformed_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x\n1\n")
        with pytest.raises(ValueError, match="missing columns"):
            read_bike_csv(str(path))


class TestTensorIO:
    def test_round_trip(self, tmp_path, rng):
        tensor = rng.random((10, 4, 4, 4))
        path = str(tmp_path / "demand.npz")
        save_demand_tensor(tensor, path)
        assert np.allclose(load_demand_tensor(path), tensor)
