"""Min-max scaler: round trips and edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import MinMaxScaler


class TestMinMaxScaler:
    def test_maps_to_unit_interval(self, rng):
        data = rng.random((20, 3, 3, 4)) * 100 - 50
        scaled = MinMaxScaler().fit_transform(data)
        assert scaled.min() >= 0.0
        assert scaled.max() <= 1.0

    def test_per_feature_extremes_hit_bounds(self, rng):
        data = rng.random((50, 4)) * np.array([1, 10, 100, 1000])
        scaled = MinMaxScaler().fit_transform(data)
        assert np.allclose(scaled.min(axis=0), 0.0)
        assert np.allclose(scaled.max(axis=0), 1.0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=8, max_size=40))
    def test_round_trip_property(self, values):
        values = values[: len(values) - len(values) % 2]
        data = np.asarray(values).reshape(-1, 2)
        scaler = MinMaxScaler().fit(data)
        restored = scaler.inverse_transform(scaler.transform(data))
        assert np.allclose(restored, data, rtol=1e-9, atol=1e-6)

    def test_constant_feature_maps_to_zero(self):
        data = np.column_stack([np.full(10, 7.0), np.arange(10.0)])
        scaled = MinMaxScaler().fit_transform(data)
        assert np.allclose(scaled[:, 0], 0.0)
        assert np.all(np.isfinite(scaled))

    def test_single_feature_inverse(self, rng):
        data = rng.random((10, 4)) * 50
        scaler = MinMaxScaler().fit(data)
        target = scaler.transform(data)[..., 2]
        restored = scaler.inverse_transform(target, feature=2)
        assert np.allclose(restored, data[..., 2])

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((2, 2)))

    def test_state_round_trip(self, rng):
        data = rng.random((10, 3))
        scaler = MinMaxScaler().fit(data)
        clone = MinMaxScaler.from_state(scaler.state())
        assert np.allclose(clone.transform(data), scaler.transform(data))

    def test_state_preserves_quantile(self, rng):
        """A restored robust scaler must stay robust: dropping ``quantile``
        would silently turn it into a plain max scaler on the next fit."""
        data = rng.random((200, 3)) * 10
        data[0] = 1e4  # the outlier the quantile is there to ignore
        robust = MinMaxScaler(quantile=0.9).fit(data)
        clone = MinMaxScaler.from_state(robust.state())
        assert clone.quantile == 0.9
        assert np.array_equal(clone.transform(data), robust.transform(data))
        # Refitting the clone keeps the robust behaviour too.
        refit = clone.fit(data)
        assert np.allclose(refit.maximum, robust.maximum)

    def test_from_state_accepts_legacy_dicts_without_quantile(self, rng):
        data = rng.random((10, 3))
        scaler = MinMaxScaler().fit(data)
        legacy = {"minimum": scaler.minimum, "maximum": scaler.maximum}
        clone = MinMaxScaler.from_state(legacy)
        assert clone.quantile is None
        assert np.array_equal(clone.transform(data), scaler.transform(data))

    def test_from_state_missing_keys_raise(self):
        with pytest.raises(ValueError, match="maximum"):
            MinMaxScaler.from_state({"minimum": np.zeros(3)})
        with pytest.raises(ValueError, match="minimum.*maximum|maximum.*minimum"):
            MinMaxScaler.from_state({})

    def test_transform_generalizes_beyond_fit_range(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        assert scaler.transform(np.array([[20.0]]))[0, 0] == 2.0


class TestRobustQuantileScaling:
    def test_outlier_does_not_crush_signal(self, rng):
        """One extreme hub cell must not push everything else toward zero."""
        data = rng.random((1000, 1)) * 5.0
        data[0, 0] = 1000.0
        plain = MinMaxScaler().fit_transform(data)
        robust = MinMaxScaler(quantile=0.99).fit_transform(data)
        assert plain[1:].mean() < 0.01
        assert robust[1:].mean() > 0.2

    def test_values_above_quantile_exceed_one(self, rng):
        data = rng.random((500, 1))
        data[0, 0] = 50.0
        robust = MinMaxScaler(quantile=0.9).fit_transform(data)
        assert robust.max() > 1.0

    def test_still_exactly_invertible(self, rng):
        data = rng.random((200, 3)) * np.array([1.0, 10.0, 100.0])
        scaler = MinMaxScaler(quantile=0.95).fit(data)
        restored = scaler.inverse_transform(scaler.transform(data))
        assert np.allclose(restored, data)

    def test_degenerate_quantile_falls_back_to_max(self):
        # 99% zeros: the 0.9-quantile equals the minimum → use the true max.
        data = np.zeros((1000, 1))
        data[:5, 0] = 10.0
        scaler = MinMaxScaler(quantile=0.9).fit(data)
        assert scaler.maximum[0] == 10.0

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            MinMaxScaler(quantile=0.3)

    def test_dataset_accepts_quantile(self, rng):
        from repro.data import dataset_from_tensor

        tensor = rng.random((50, 3, 3, 4)) * 10
        tensor[0, 0, 0, 0] = 1e5
        dataset = dataset_from_tensor(tensor, history=5, horizon=2, normalization_quantile=0.99)
        assert dataset.split.train_x.mean() > 0.05
