"""Streaming ingestion parity: chunked simulator days ≡ eager aggregation."""

import numpy as np
import pytest

from repro.city import CityConfig, simulate_city
from repro.data import build_dataset, iter_demand_chunks, streaming_dataset_from_city
from repro.data.aggregation import aggregate_city


CONFIG = CityConfig(
    rows=4,
    cols=4,
    num_lines=2,
    num_commuters=120,
    num_bikes=60,
    days=3,
    background_subway_per_day=60,
    background_bike_per_day=50,
    seed=5,
)


@pytest.fixture(scope="module")
def eager_tensor():
    return aggregate_city(simulate_city(CONFIG))


class TestChunkedAggregationParity:
    @pytest.mark.parametrize("chunk_slots", [7, 32, 96, 4096])
    def test_concatenated_chunks_bit_identical_to_eager(self, eager_tensor, chunk_slots):
        chunks = list(iter_demand_chunks(CONFIG, chunk_slots=chunk_slots))
        streamed = np.concatenate(chunks)
        assert streamed.shape == eager_tensor.shape
        assert streamed.tobytes() == eager_tensor.tobytes()

    def test_chunks_respect_the_requested_size(self, eager_tensor):
        chunks = list(iter_demand_chunks(CONFIG, chunk_slots=32))
        assert all(len(chunk) <= 32 for chunk in chunks)
        assert sum(len(chunk) for chunk in chunks) == eager_tensor.shape[0]

    def test_coarser_slots_also_match(self):
        eager = aggregate_city(simulate_city(CONFIG), slot_seconds=3600)
        streamed = np.concatenate(
            list(iter_demand_chunks(CONFIG, slot_seconds=3600, chunk_slots=16))
        )
        assert streamed.tobytes() == eager.tobytes()


class TestStreamingDatasetParity:
    def test_splits_and_scaler_match_eager_build(self):
        history, horizon = 6, 3
        eager = build_dataset(CONFIG, history=history, horizon=horizon)
        streamed = streaming_dataset_from_city(
            CONFIG, history=history, horizon=horizon, chunk_slots=32
        )
        assert streamed.streaming and streamed.store is not None
        assert np.array_equal(streamed.scaler.minimum, eager.scaler.minimum)
        assert np.array_equal(streamed.scaler.maximum, eager.scaler.maximum)
        for part in ("train", "val", "test"):
            assert np.array_equal(
                getattr(streamed.split, f"{part}_x"), getattr(eager.split, f"{part}_x")
            )
            assert np.array_equal(
                getattr(streamed.split, f"{part}_y"), getattr(eager.split, f"{part}_y")
            )

    def test_views_feed_the_trainer_protocol(self):
        dataset = streaming_dataset_from_city(CONFIG, history=6, horizon=3, chunk_slots=32)
        source = dataset.train_source()
        assert source.num_samples == len(dataset.split.train_x)
        x, y = next(iter(source.batches(8, rng=np.random.default_rng(0))))
        assert x.shape[1:] == dataset.split.train_x.shape[1:]
        assert y.shape[1:] == dataset.split.train_y.shape[1:]
