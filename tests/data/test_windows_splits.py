"""Sliding windows and chronological splits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import chronological_split, flatten_windows, make_windows


def _series(total, g1=2, g2=2, features=3):
    """Tensor whose value encodes its time index, for alignment checks."""
    tensor = np.zeros((total, g1, g2, features))
    tensor += np.arange(total)[:, None, None, None]
    return tensor


class TestMakeWindows:
    def test_shapes(self):
        x, y = make_windows(_series(20), history=6, horizon=3)
        assert x.shape == (12, 6, 2, 2, 3)
        assert y.shape == (12, 3, 2, 2)

    def test_window_alignment(self):
        """Window i covers slots [i, i+h); targets cover [i+h, i+h+p)."""
        x, y = make_windows(_series(15), history=4, horizon=2)
        for i in range(len(x)):
            assert np.all(x[i, 0] == i)
            assert np.all(x[i, -1] == i + 3)
            assert np.all(y[i, 0] == i + 4)
            assert np.all(y[i, -1] == i + 5)

    def test_target_feature_selection(self):
        tensor = _series(10)
        tensor[..., 1] *= 100
        _, y = make_windows(tensor, history=3, horizon=2, target_feature=1)
        assert np.all(y[0, 0] == 3 * 100)

    def test_stride_thins_windows(self):
        x, _ = make_windows(_series(20), history=4, horizon=2, stride=3)
        assert np.all(x[1, 0] == 3)

    def test_rejects_too_short_series(self):
        with pytest.raises(ValueError):
            make_windows(_series(5), history=4, horizon=3)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            make_windows(np.zeros((10, 2, 2)), history=2, horizon=2)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 6), st.integers(1, 6))
    def test_window_count_property(self, history, horizon):
        total = 20
        x, y = make_windows(_series(total), history=history, horizon=horizon)
        assert len(x) == total - history - horizon + 1
        assert len(x) == len(y)

    def test_flatten_windows(self):
        x, _ = make_windows(_series(10), history=3, horizon=2)
        flat = flatten_windows(x)
        assert flat.shape == (len(x), 3 * 2 * 2 * 3)


class TestChronologicalSplit:
    def test_622_ratio(self):
        x = np.arange(100.0).reshape(100, 1)
        split = chronological_split(x, x)
        assert split.sizes == (60, 20, 20)

    def test_chronological_order_preserved(self):
        x = np.arange(50.0).reshape(50, 1)
        split = chronological_split(x, x)
        assert split.train_x.max() < split.val_x.min()
        assert split.val_x.max() < split.test_x.min()

    def test_custom_ratios(self):
        x = np.arange(10.0).reshape(10, 1)
        split = chronological_split(x, x, ratios=(0.8, 0.1, 0.1))
        assert split.sizes == (8, 1, 1)

    def test_rejects_ratio_not_summing_to_one(self):
        x = np.zeros((10, 1))
        with pytest.raises(ValueError):
            chronological_split(x, x, ratios=(0.5, 0.2, 0.2))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            chronological_split(np.zeros((5, 1)), np.zeros((4, 1)))

    def test_tiny_dataset_gets_nonempty_parts(self):
        x = np.arange(4.0).reshape(4, 1)
        split = chronological_split(x, x)
        assert all(size > 0 for size in split.sizes)

    def test_too_tiny_dataset_raises(self):
        x = np.zeros((2, 1))
        with pytest.raises(ValueError):
            chronological_split(x, x, ratios=(1.0, 0.0, 0.0))
