"""Smoke-run the substrate/train bench modules with timing disabled.

The benches live outside ``testpaths`` and only run on demand, so nothing
would catch an import error or a broken kernel call until someone next
benchmarks. This runs each module once with ``--benchmark-disable`` (every
benched callable executes exactly once, untimed) in a subprocess, with
``REPRO_BENCH_DIR`` pointed at a tmpdir so no snapshot files land in the
repo.
"""

import importlib.util
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.mark.parametrize(
    "module",
    [
        "benchmarks/bench_substrate.py",
        "benchmarks/bench_train.py",
        "benchmarks/bench_model.py",
        "benchmarks/bench_store.py",
    ],
)
def test_bench_module_smoke(module, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["REPRO_BENCH_DIR"] = str(tmp_path)
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "-p",
            "no:cacheprovider",
            "--benchmark-disable",
            module,
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{module} smoke run failed:\n{result.stdout}\n{result.stderr}"
    )


def _load_bench_model():
    path = os.path.join(REPO_ROOT, "benchmarks", "bench_model.py")
    spec = importlib.util.spec_from_file_location("_bench_model_smoke", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_fused_and_mixed_bench_modes_match_fast():
    """The bench's fused and mixed modes agree with fast — parity, not speed.

    Speed is gated on demand by ``scripts/bench_compare.py`` against
    ``results/BENCH_model.json`` floors; tier-1 only guards that the three
    benched configurations train the *same model*. Fusion is bit-exact by
    contract and mixed mode shares the float32 compute graph, so the
    first-step loss must be bitwise identical across all three modes; the
    second step lets mixed drift by at most the float64-master rounding.
    """
    import numpy as np

    from repro.nn import config as nn_config
    from repro.nn import engine

    bench_model = _load_bench_model()
    case = dict(
        grid=(6, 6), history=4, horizon=2, batch=4, batches=1,
        pyramid=2, capsule=2, future_capsule=2, decoder=4,
    )
    previous_mode = nn_config.engine_mode()
    previous_fusion = nn_config.fusion_enabled()
    losses = {}
    try:
        for mode, (engine_mode, fusion) in sorted(bench_model.MODES.items()):
            nn_config.set_engine_mode(engine_mode)
            nn_config.set_fusion_enabled(fusion)
            engine.clear_caches()
            trainer, batches = bench_model._make_trainer(case)
            x, y = batches[0]
            losses[mode] = [trainer.train_step(x, y), trainer.train_step(x, y)]
    finally:
        nn_config.set_engine_mode(previous_mode)
        nn_config.set_fusion_enabled(previous_fusion)
        engine.clear_caches()

    assert losses["fused"] == losses["fast"]
    assert losses["mixed"][0] == losses["fast"][0]
    assert np.isclose(losses["mixed"][1], losses["fast"][1], rtol=1e-5, atol=1e-7)


@pytest.mark.parametrize(
    "extra",
    [
        [],  # happy path
        ["--fault-rate", "0.5"],  # degraded traffic still answers
    ],
    ids=["clean", "degraded"],
)
def test_serve_bench_smoke(extra, tmp_path):
    """``python -m repro.serve.bench`` end to end, tiny geometry.

    Covers the acceptance loop: the CLI must run, write BENCH_serve.json
    with the gauges bench_compare diffs, and — with faults injected — keep
    answering through the degradation chain instead of erroring out.
    """
    import json

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["REPRO_BENCH_DIR"] = str(tmp_path)
    env["REPRO_RUNLOG"] = "0"
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.serve.bench",
            "--requests", "12",
            "--clients", "3",
            "--grid", "4", "4",
            "--history", "5",
            "--horizon", "2",
            "--features", "3",
            "--slots", "40",
            "--max-batch", "4",
            *extra,
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"serve bench smoke failed:\n{result.stdout}\n{result.stderr}"
    )
    with open(tmp_path / "BENCH_serve.json") as handle:
        payload = json.load(handle)
    gauges = payload["gauges"]
    for key in (
        "bench_serve_latency_mean_seconds",
        "bench_serve_latency_p50_seconds",
        "bench_serve_latency_p99_seconds",
        "bench_serve_throughput_rps",
        "bench_serve_degraded_fraction",
    ):
        assert key in gauges, key
    assert payload["requests"] == 12
    assert gauges["bench_serve_throughput_rps"] > 0
    if extra:  # fault injection must actually exercise the fallback tier
        assert gauges["bench_serve_degraded_fraction"] > 0
        assert payload["tier_counts"].get("Persistence", 0) > 0


@pytest.mark.parametrize(
    "extra",
    [
        [],  # happy path
        ["--fault-rate", "0.5", "--deadline-ms", "200"],  # faulted shards
    ],
    ids=["clean", "faulted"],
)
def test_serve_bench_sharded_smoke(extra, tmp_path):
    """``python -m repro.serve.bench --shards N`` end to end.

    The sharded closed loop must run clean *and* faulted, writing the
    sharded throughput/latency/degradation gauges bench_compare gates
    (``*_throughput_rps`` is auto-gated by suffix) plus the per-shard
    breakdown.
    """
    import json

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["REPRO_BENCH_DIR"] = str(tmp_path)
    env["REPRO_RUNLOG"] = "0"
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.serve.bench",
            "--shards", "2",
            "--requests", "12",
            "--clients", "3",
            "--grid", "4", "4",
            "--history", "5",
            "--horizon", "2",
            "--features", "3",
            "--slots", "40",
            "--max-batch", "4",
            *extra,
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"sharded serve bench smoke failed:\n{result.stdout}\n{result.stderr}"
    )
    with open(tmp_path / "BENCH_serve.json") as handle:
        payload = json.load(handle)
    gauges = payload["gauges"]
    for key in (
        "bench_serve_sharded_latency_mean_seconds",
        "bench_serve_sharded_latency_p50_seconds",
        "bench_serve_sharded_latency_p99_seconds",
        "bench_serve_sharded_throughput_rps",
        "bench_serve_sharded_degraded_fraction",
        "bench_serve_sharded_deadline_missed_fraction",
    ):
        assert key in gauges, key
    assert gauges["bench_serve_sharded_throughput_rps"] > 0
    assert set(payload["shards"]) == {"shard0", "shard1"}
    for shard in payload["shards"].values():
        assert shard["batches"] > 0
    if extra:  # injected faults must surface as merged degradation
        assert gauges["bench_serve_sharded_degraded_fraction"] > 0
        assert any(
            tier != "BikeCAP"
            for shard in payload["shards"].values()
            for tier in shard["tier_counts"]
        )


def test_gateway_selfcheck_smoke():
    """``python -m repro.serve.gateway --selfcheck``: the HTTP front door
    must come up, answer one real POSTed window, and exit 0."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["REPRO_RUNLOG"] = "0"
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.serve.gateway",
            "--selfcheck",
            "--shards", "2",
            "--grid", "4", "4",
            "--history", "5",
            "--horizon", "2",
            "--features", "3",
            "--slots", "40",
            "--model", "Persistence",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"gateway selfcheck failed:\n{result.stdout}\n{result.stderr}"
    )
    assert "selfcheck ok" in result.stdout


def test_serve_bench_traced_faulted_acceptance(tmp_path):
    """The issue's acceptance run: faults + tracing + drift + telemetry.

    One faulted bench run must leave (a) a Perfetto-loadable chrome trace
    in which a degraded request's tier-retry span links to its request
    span, (b) a live /metrics endpoint while it ran, and (c) exactly one
    drift_detected event from the deterministic injected error shift.
    """
    import json

    runlog_dir = tmp_path / "runs"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["REPRO_BENCH_DIR"] = str(tmp_path)
    env["REPRO_RUNLOG"] = "1"
    env["REPRO_RUNLOG_DIR"] = str(runlog_dir)
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.serve.bench",
            "--requests", "16",
            "--clients", "4",
            "--grid", "4", "4",
            "--history", "5",
            "--horizon", "2",
            "--features", "3",
            "--slots", "40",
            "--max-batch", "4",
            "--fault-rate", "0.5",
            "--deadline-ms", "50",
            "--trace",
            "--telemetry-port", "0",
            "--drift-samples", "64",
            "--drift-shift", "1.0",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"traced serve bench failed:\n{result.stdout}\n{result.stderr}"
    )
    assert "telemetry live at" in result.stdout

    with open(tmp_path / "BENCH_serve.json") as handle:
        payload = json.load(handle)
    assert payload["drift"]["events"] == 1
    assert "breaches" in payload["slo"]

    # (a) chrome trace: a degraded request's failed tier-retry span links
    # back to a serve.request span in the same trace.
    with open(tmp_path / "BENCH_serve.trace.json") as handle:
        chrome = json.load(handle)
    spans = [e for e in chrome["traceEvents"] if e.get("ph") == "X"]
    requests = {
        e["args"]["span_id"]: e for e in spans if e["name"] == "serve.request"
    }
    assert requests
    failed_retries = [
        e
        for e in spans
        if e["name"] == "serve.tier.retry" and e["args"].get("status") == "error"
    ]
    assert failed_retries, "faulted run recorded no failed tier retries"
    # Retries from the drift replay (direct predict_one calls) parent to
    # tier spans; the batched load's retries must link to request spans.
    linked = [e for e in failed_retries if e["args"]["parent_id"] in requests]
    assert linked, "no failed retry linked back to a request span"
    for retry in linked:
        parent = requests[retry["args"]["parent_id"]]
        assert parent["args"]["trace_id"] == retry["args"]["trace_id"]

    # (c) exactly one drift_detected event in the run log.
    logs = [
        name
        for name in os.listdir(runlog_dir)
        if name.endswith(".jsonl") and ".trace" not in name
    ]
    assert len(logs) == 1
    with open(runlog_dir / logs[0]) as handle:
        events = [json.loads(line) for line in handle]
    drift_events = [e for e in events if e.get("event") == "drift_detected"]
    assert len(drift_events) == 1
    assert drift_events[0]["service"] == "serve-bench"


def test_serve_bench_adapt_smoke(tmp_path):
    """``--adapt``: deterministic drift replay → exactly one warm-start
    fine-tune → shadow-gated hot-swap, with post-swap error measurably
    below pre-swap (the ISSUE-10 acceptance loop, end to end)."""
    import json

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["REPRO_BENCH_DIR"] = str(tmp_path)
    env["REPRO_RUNLOG"] = "0"
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.serve.bench",
            "--requests", "12",
            "--clients", "2",
            "--grid", "4", "4",
            "--history", "5",
            "--horizon", "2",
            "--features", "3",
            "--slots", "40",
            "--max-batch", "4",
            "--adapt",
            "--drift-shift", "1.5",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"adapt serve bench smoke failed:\n{result.stdout}\n{result.stderr}"
    )
    with open(tmp_path / "BENCH_serve.json") as handle:
        payload = json.load(handle)
    adaptation = payload["adaptation"]
    status = adaptation["status"]
    assert status["triggered"] == 1  # the infinite cooldown allows exactly one
    assert status["swapped"] == 1
    assert status["failed"] == status["rejected"] == 0
    assert status["generation"] == 1
    assert status["last_shadow"]["passed"] is True
    assert adaptation["drift_events"] == 1
    assert adaptation["pre_samples"] > 0 and adaptation["post_samples"] > 0
    # The fine-tuned generation measurably recovered from the regime shift.
    assert adaptation["post_swap_error"] < adaptation["pre_swap_error"]
    assert adaptation["improvement_fraction"] > 0
    gauges = payload["gauges"]
    for key in (
        "serve_adaptation_recovery_pre_swap_error",
        "serve_adaptation_recovery_post_swap_error",
        "serve_adaptation_recovery_improvement_fraction",
    ):
        assert key in gauges, key


@pytest.mark.parametrize("fault", ["fine-tune", "swap"])
def test_serve_bench_adapt_fault_smoke(fault, tmp_path):
    """``--adapt-fault``: a poisoned fine-tune (recovery retries exhaust)
    or a crash inside the hot-swap critical section must leave the
    original generation serving every request — zero failures, typed
    ``adaptation_failed`` outcome, and no recovery gauges (nothing
    recovered)."""
    import json

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["REPRO_BENCH_DIR"] = str(tmp_path)
    env["REPRO_RUNLOG"] = "0"
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.serve.bench",
            "--requests", "12",
            "--clients", "2",
            "--grid", "4", "4",
            "--history", "5",
            "--horizon", "2",
            "--features", "3",
            "--slots", "40",
            "--max-batch", "4",
            "--adapt",
            "--drift-shift", "1.5",
            "--adapt-fault", fault,
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"faulted adapt bench ({fault}) failed:\n{result.stdout}\n{result.stderr}"
    )
    with open(tmp_path / "BENCH_serve.json") as handle:
        payload = json.load(handle)
    adaptation = payload["adaptation"]
    status = adaptation["status"]
    assert status["triggered"] == 1
    assert status["swapped"] == 0
    assert status["failed"] == 1
    assert status["generation"] == 0  # the original model kept serving
    expected_reason = {
        "fine-tune": "fine_tune_divergence",
        "swap": "swap_crash",
    }[fault]
    assert status["last_reason"] == expected_reason
    assert adaptation["fault_fired"], "the injected fault never fired"
    assert adaptation["post_samples"] == 0  # no swap → no post-swap stream
    # The load phase before the replay answered everything normally.
    assert payload["gauges"]["bench_serve_throughput_rps"] > 0
    # And the recovery gauges are omitted: bench_compare must not diff
    # misleading zeros from a run that never recovered.
    for key in (
        "serve_adaptation_recovery_pre_swap_error",
        "serve_adaptation_recovery_post_swap_error",
        "serve_adaptation_recovery_improvement_fraction",
    ):
        assert key not in payload["gauges"], key
