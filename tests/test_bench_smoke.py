"""Smoke-run the substrate/train bench modules with timing disabled.

The benches live outside ``testpaths`` and only run on demand, so nothing
would catch an import error or a broken kernel call until someone next
benchmarks. This runs each module once with ``--benchmark-disable`` (every
benched callable executes exactly once, untimed) in a subprocess, with
``REPRO_BENCH_DIR`` pointed at a tmpdir so no snapshot files land in the
repo.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.mark.parametrize(
    "module", ["benchmarks/bench_substrate.py", "benchmarks/bench_train.py"]
)
def test_bench_module_smoke(module, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["REPRO_BENCH_DIR"] = str(tmp_path)
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "-p",
            "no:cacheprovider",
            "--benchmark-disable",
            module,
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{module} smoke run failed:\n{result.stdout}\n{result.stderr}"
    )


@pytest.mark.parametrize(
    "extra",
    [
        [],  # happy path
        ["--fault-rate", "0.5"],  # degraded traffic still answers
    ],
    ids=["clean", "degraded"],
)
def test_serve_bench_smoke(extra, tmp_path):
    """``python -m repro.serve.bench`` end to end, tiny geometry.

    Covers the acceptance loop: the CLI must run, write BENCH_serve.json
    with the gauges bench_compare diffs, and — with faults injected — keep
    answering through the degradation chain instead of erroring out.
    """
    import json

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["REPRO_BENCH_DIR"] = str(tmp_path)
    env["REPRO_RUNLOG"] = "0"
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.serve.bench",
            "--requests", "12",
            "--clients", "3",
            "--grid", "4", "4",
            "--history", "5",
            "--horizon", "2",
            "--features", "3",
            "--slots", "40",
            "--max-batch", "4",
            *extra,
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"serve bench smoke failed:\n{result.stdout}\n{result.stderr}"
    )
    with open(tmp_path / "BENCH_serve.json") as handle:
        payload = json.load(handle)
    gauges = payload["gauges"]
    for key in (
        "bench_serve_latency_mean_seconds",
        "bench_serve_latency_p50_seconds",
        "bench_serve_latency_p99_seconds",
        "bench_serve_throughput_rps",
        "bench_serve_degraded_fraction",
    ):
        assert key in gauges, key
    assert payload["requests"] == 12
    assert gauges["bench_serve_throughput_rps"] > 0
    if extra:  # fault injection must actually exercise the fallback tier
        assert gauges["bench_serve_degraded_fraction"] > 0
        assert payload["tier_counts"].get("Persistence", 0) > 0
