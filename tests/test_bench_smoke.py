"""Smoke-run the substrate/train bench modules with timing disabled.

The benches live outside ``testpaths`` and only run on demand, so nothing
would catch an import error or a broken kernel call until someone next
benchmarks. This runs each module once with ``--benchmark-disable`` (every
benched callable executes exactly once, untimed) in a subprocess, with
``REPRO_BENCH_DIR`` pointed at a tmpdir so no snapshot files land in the
repo.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.mark.parametrize(
    "module", ["benchmarks/bench_substrate.py", "benchmarks/bench_train.py"]
)
def test_bench_module_smoke(module, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["REPRO_BENCH_DIR"] = str(tmp_path)
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "-p",
            "no:cacheprovider",
            "--benchmark-disable",
            module,
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{module} smoke run failed:\n{result.stdout}\n{result.stderr}"
    )
