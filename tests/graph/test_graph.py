"""Graph substrate: adjacency, Laplacians, Chebyshev stacks, GCN layers."""

import numpy as np
import pytest

from repro.graph import (
    ChebGraphConv,
    DenseGraphConv,
    chebyshev_polynomials,
    grid_adjacency,
    grid_cell_index,
    localized_spatial_temporal_adjacency,
    normalized_laplacian,
    scaled_laplacian,
)
from repro.nn import Tensor


class TestGridAdjacency:
    def test_symmetric_zero_diagonal(self):
        adjacency = grid_adjacency(3, 4, hops=1)
        assert np.array_equal(adjacency, adjacency.T)
        assert np.all(np.diag(adjacency) == 0)

    def test_one_hop_includes_diagonal_neighbours(self):
        adjacency = grid_adjacency(3, 3, hops=1)
        center = 4  # (1, 1)
        assert adjacency[center].sum() == 8

    def test_corner_has_three_one_hop_neighbours(self):
        adjacency = grid_adjacency(3, 3, hops=1)
        assert adjacency[0].sum() == 3

    def test_two_hops_strictly_denser(self):
        one = grid_adjacency(5, 5, hops=1)
        two = grid_adjacency(5, 5, hops=2)
        assert two.sum() > one.sum()
        assert np.all(two[one == 1] == 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_adjacency(0, 3)
        with pytest.raises(ValueError):
            grid_adjacency(3, 3, hops=0)

    def test_grid_cell_index_row_major(self):
        rows, cols = grid_cell_index(2, 3)
        assert rows.tolist() == [0, 0, 0, 1, 1, 1]
        assert cols.tolist() == [0, 1, 2, 0, 1, 2]


class TestLaplacians:
    def test_normalized_laplacian_eigenvalues_in_range(self):
        laplacian = normalized_laplacian(grid_adjacency(4, 4))
        eigenvalues = np.linalg.eigvalsh(laplacian)
        assert eigenvalues.min() >= -1e-9
        assert eigenvalues.max() <= 2.0 + 1e-9

    def test_scaled_laplacian_spectrum_in_unit_interval(self):
        scaled = scaled_laplacian(grid_adjacency(4, 4))
        eigenvalues = np.linalg.eigvalsh(scaled)
        assert eigenvalues.min() >= -1.0 - 1e-9
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_isolated_nodes_handled(self):
        adjacency = np.zeros((3, 3))
        laplacian = normalized_laplacian(adjacency)
        assert np.all(np.isfinite(laplacian))


class TestChebyshev:
    def test_first_terms_are_identity_and_laplacian(self):
        scaled = scaled_laplacian(grid_adjacency(3, 3))
        stack = chebyshev_polynomials(scaled, order=3)
        assert np.allclose(stack[0], np.eye(9))
        assert np.allclose(stack[1], scaled)

    def test_recurrence_holds(self):
        scaled = scaled_laplacian(grid_adjacency(3, 3))
        stack = chebyshev_polynomials(scaled, order=4)
        assert np.allclose(stack[3], 2 * scaled @ stack[2] - stack[1])

    def test_order_one_is_identity_only(self):
        scaled = scaled_laplacian(grid_adjacency(2, 2))
        stack = chebyshev_polynomials(scaled, order=1)
        assert stack.shape == (1, 4, 4)

    def test_rejects_zero_order(self):
        with pytest.raises(ValueError):
            chebyshev_polynomials(np.eye(2), order=0)


class TestLocalizedAdjacency:
    def test_block_structure(self):
        adjacency = grid_adjacency(2, 2)
        localized = localized_spatial_temporal_adjacency(adjacency, steps=3)
        assert localized.shape == (12, 12)
        nodes = 4
        assert np.array_equal(localized[:nodes, :nodes], adjacency)
        assert np.array_equal(localized[:nodes, nodes : 2 * nodes], np.eye(nodes))
        # No direct links between slices 0 and 2.
        assert localized[:nodes, 2 * nodes :].sum() == 0

    def test_symmetric(self):
        localized = localized_spatial_temporal_adjacency(grid_adjacency(3, 3))
        assert np.array_equal(localized, localized.T)


class TestGraphConvLayers:
    def test_cheb_conv_shapes_and_gradients(self, rng):
        adjacency = grid_adjacency(3, 3)
        layer = ChebGraphConv(adjacency, in_channels=4, out_channels=6, order=3, rng=0)
        x = Tensor(rng.standard_normal((2, 9, 4)), requires_grad=True)
        out = layer(x)
        assert out.shape == (2, 9, 6)
        out.sum().backward()
        assert layer.weight.grad is not None
        assert x.grad is not None

    def test_cheb_conv_batched_leading_dims(self, rng):
        adjacency = grid_adjacency(2, 2)
        layer = ChebGraphConv(adjacency, 3, 5, order=2, rng=0)
        out = layer(Tensor(rng.standard_normal((2, 7, 4, 3))))
        assert out.shape == (2, 7, 4, 5)

    def test_cheb_order_one_is_pointwise(self, rng):
        """Order-1 ChebConv uses only T_0 = I: no neighbour mixing."""
        adjacency = grid_adjacency(2, 2)
        layer = ChebGraphConv(adjacency, 2, 2, order=1, rng=0)
        base = rng.standard_normal((1, 4, 2))
        perturbed = base.copy()
        perturbed[0, 0] += 5.0
        delta = layer(Tensor(perturbed)).data - layer(Tensor(base)).data
        assert np.abs(delta[0, 1:]).sum() == 0

    def test_dense_graph_conv(self, rng):
        propagation = np.eye(4)
        layer = DenseGraphConv(propagation, 3, 2, rng=0)
        out = layer(Tensor(rng.standard_normal((2, 4, 3))))
        assert out.shape == (2, 4, 2)
