"""Classic setup shim.

This offline environment lacks the ``wheel`` package that modern
``pip install -e .`` requires, so ``python setup.py develop`` provides the
editable install instead. Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
