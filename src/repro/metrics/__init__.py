"""Metrics and evaluation utilities."""

from repro.metrics.errors import mae, mae_per_step, rmse, rmse_per_step
from repro.metrics.evaluation import MeanStd, evaluate_forecaster, repeat_runs

__all__ = [
    "MeanStd",
    "evaluate_forecaster",
    "mae",
    "mae_per_step",
    "repeat_runs",
    "rmse",
    "rmse_per_step",
]
