"""Evaluation metrics: MAE (Eq. 5) and RMSE (Eq. 6)."""

from __future__ import annotations

import numpy as np


def mae(truth: np.ndarray, prediction: np.ndarray) -> float:
    """Mean absolute error over all elements."""
    truth, prediction = _validate(truth, prediction)
    return float(np.abs(truth - prediction).mean())


def rmse(truth: np.ndarray, prediction: np.ndarray) -> float:
    """Root mean squared error over all elements."""
    truth, prediction = _validate(truth, prediction)
    return float(np.sqrt(((truth - prediction) ** 2).mean()))


def mae_per_step(truth: np.ndarray, prediction: np.ndarray) -> np.ndarray:
    """MAE separately for each prediction step (axis 1)."""
    truth, prediction = _validate(truth, prediction)
    axes = (0,) + tuple(range(2, truth.ndim))
    return np.abs(truth - prediction).mean(axis=axes)


def rmse_per_step(truth: np.ndarray, prediction: np.ndarray) -> np.ndarray:
    """RMSE separately for each prediction step (axis 1)."""
    truth, prediction = _validate(truth, prediction)
    axes = (0,) + tuple(range(2, truth.ndim))
    return np.sqrt(((truth - prediction) ** 2).mean(axis=axes))


def _validate(truth, prediction):
    truth = np.asarray(truth, dtype=float)
    prediction = np.asarray(prediction, dtype=float)
    if truth.shape != prediction.shape:
        raise ValueError(f"shape mismatch: truth {truth.shape} vs prediction {prediction.shape}")
    if truth.size == 0:
        raise ValueError("cannot compute metrics on empty arrays")
    return truth, prediction
