"""Denormalized evaluation with repeated-seed aggregation.

The paper evaluates on denormalized predictions and reports results as
``mean ± standard deviation`` over 5 repeated runs; :class:`MeanStd` and
:func:`repeat_runs` reproduce that reporting convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.data.datasets import BikeDemandDataset
from repro.metrics.errors import mae, rmse


@dataclass(frozen=True)
class MeanStd:
    """A mean ± std statistic, formatted like the paper's tables."""

    mean: float
    std: float

    def __str__(self) -> str:
        return f"{self.mean:.2f}±{self.std:.2f}"

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "MeanStd":
        samples = np.asarray(list(samples), dtype=float)
        if samples.size == 0:
            raise ValueError("need at least one sample")
        std = float(samples.std(ddof=0)) if samples.size > 1 else 0.0
        return cls(mean=float(samples.mean()), std=std)


def evaluate_forecaster(
    forecaster,
    dataset: BikeDemandDataset,
    denormalize: bool = True,
) -> Dict[str, float]:
    """Test-split MAE/RMSE, denormalized to raw demand counts by default."""
    prediction = forecaster.predict(dataset.split.test_x)
    truth = dataset.split.test_y
    if denormalize:
        prediction = dataset.denormalize_target(prediction)
        truth = dataset.denormalize_target(truth)
    return {"MAE": mae(truth, prediction), "RMSE": rmse(truth, prediction)}


def aggregate_runs(per_run_metrics: Sequence[Dict[str, float]]) -> Dict[str, MeanStd]:
    """Aggregate per-run metric dicts to mean±std, keyed like the first run.

    Shared by the serial :func:`repeat_runs` loop and the multiprocess sweep
    executor (:mod:`repro.pipeline.parallel`), so both report identically.
    """
    if not per_run_metrics:
        raise ValueError("need at least one run")
    collected: Optional[Dict[str, List[float]]] = None
    for metrics in per_run_metrics:
        if collected is None:
            collected = {key: [] for key in metrics}
        for key, value in metrics.items():
            collected[key].append(float(value))
    return {key: MeanStd.from_samples(values) for key, values in collected.items()}


def repeat_runs(
    run: Callable[[int], Dict[str, float]],
    seeds: Sequence[int],
) -> Dict[str, MeanStd]:
    """Run ``run(seed)`` for each seed and aggregate each metric to mean±std."""
    if not seeds:
        raise ValueError("need at least one seed")
    return aggregate_runs([run(int(seed)) for seed in seeds])
