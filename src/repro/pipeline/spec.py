"""Declarative run specifications.

A :class:`RunSpec` is the single serializable description of one training
run: which registered model, which window geometry, how long to train, the
optimizer settings, the engine configuration and the seed. Experiment
scripts build specs; :func:`repro.pipeline.runner.execute` turns a spec
plus a dataset into a trained, evaluated forecaster. Because a spec
round-trips through a plain dict (and JSON), every run log can embed the
exact recipe that produced it.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.pipeline import forecast


@dataclass
class RunSpec:
    """One run of one model: everything needed to reproduce it.

    ``history``/``horizon`` are optional; when set they are validated
    against the dataset at execution time (a mismatched spec fails loudly
    instead of silently training on different windows than it claims).
    ``hparams`` are passed to the registered factory on top of its declared
    defaults; ``engine_mode``/``dtype`` of ``None`` mean "use the process
    globals" (see :mod:`repro.nn.config`).
    """

    model: str
    history: Optional[int] = None
    horizon: Optional[int] = None
    epochs: int = 10
    seed: int = 0
    hparams: Dict[str, Any] = field(default_factory=dict)
    engine_mode: Optional[str] = None
    dtype: Optional[str] = None
    tag: Optional[str] = None
    # Divergence-recovery options (repro.resilience.RecoveryPolicy.from_dict
    # keys, e.g. {"max_retries": 3, "lr_backoff": 0.25}); None means the
    # runner's defaults. Kept as a plain dict so specs stay JSON-round-trip
    # without this layer importing upward into resilience.
    resilience: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if not self.model:
            raise ValueError("RunSpec.model must be a non-empty model name")
        if self.epochs < 0:
            raise ValueError(f"RunSpec.epochs must be >= 0, got {self.epochs}")
        self.hparams = dict(self.hparams)
        if self.resilience is not None:
            if not isinstance(self.resilience, dict):
                raise ValueError(
                    "RunSpec.resilience must be a dict of RecoveryPolicy options "
                    f"or None, got {type(self.resilience).__name__}"
                )
            self.resilience = dict(self.resilience)

    # ------------------------------------------------------------------
    def with_overrides(self, **changes: Any) -> "RunSpec":
        """A copy with fields replaced; ``hparams`` merge instead of replace."""
        hparams = changes.pop("hparams", None)
        merged = dict(self.hparams)
        if hparams:
            merged.update(hparams)
        return dataclasses.replace(self, hparams=merged, **changes)

    def label(self, default_horizon: Optional[int] = None) -> str:
        """Default run-log/checkpoint label: ``<model>-pts<horizon>``."""
        horizon = self.horizon if self.horizon is not None else default_horizon
        base = self.model if horizon is None else f"{self.model}-pts{horizon}"
        return f"{base}-{self.tag}" if self.tag else base

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["hparams"] = dict(self.hparams)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"RunSpec does not understand fields: {unknown}")
        if "model" not in data:
            raise ValueError("RunSpec dict needs a 'model' field")
        return cls(**data)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("RunSpec JSON must decode to an object")
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    def validate_against(self, dataset) -> None:
        """Fail loudly when the spec disagrees with the dataset geometry."""
        if self.history is not None and self.history != dataset.history:
            raise ValueError(
                f"RunSpec(model={self.model!r}) declares history={self.history} "
                f"but the dataset has history={dataset.history}"
            )
        if self.horizon is not None and self.horizon != dataset.horizon:
            raise ValueError(
                f"RunSpec(model={self.model!r}) declares horizon={self.horizon} "
                f"but the dataset has horizon={dataset.horizon}"
            )


__all__ = ["RunSpec"]

# Re-exported so spec consumers can name protocols without another import.
RECURSIVE = forecast.RECURSIVE
DIRECT = forecast.DIRECT
