"""Multiprocess data-parallel execution of independent RunSpecs.

``REPRO_NUM_THREADS`` shards one training step across threads; this module
is the level above it: whole *runs* (one :class:`~repro.pipeline.spec.RunSpec`
per seed) are independent by construction — each seeds its own generators
from ``spec.seed`` and never reads process-global RNG state — so a repeated-
seed sweep can fan out across worker processes without changing a single
bit of the result. ``run_all --jobs N`` routes through :func:`run_specs`.

Design constraints the implementation follows:

- **Fork, not spawn.** Workers are forked after the parent has simulated
  the city and built the dataset, so the (potentially large) training
  arrays are inherited copy-on-write through module globals instead of
  being pickled per task. Only small things cross the pipe: spec dicts in,
  metric dicts out. On platforms without ``fork`` the sweep silently runs
  serially — same results, no worker processes.
- **Engine config travels with the job.** Each worker re-applies the
  parent's engine snapshot (mode/dtype/precision, fusion, thread count,
  plan-cache/arena flags, conv dispatch thresholds) before its first run,
  so a ``--engine mixed`` sweep is mixed in every worker even if the pool
  outlives a config change in the parent.
- **Crash isolation.** A worker that raises — or dies outright, taking the
  pool with it — fails only its own runs; the parent retries each failed
  spec serially, with ``resume=True`` when a checkpoint directory is
  configured so the retry continues from the crashed worker's last
  autosave (the same :mod:`repro.pipeline.checkpoint` machinery the
  resilience layer uses).
- **Per-worker run logs.** Run-log files already embed the writing
  process's pid (``run-<label>-<pid>-<seq>.jsonl``), so concurrent workers
  never contend for a file; each worker additionally stamps its pid into
  the run config as ``worker_pid`` for cross-referencing.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, process
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import config as nn_config
from repro.obs import metrics as obs_metrics
from repro.pipeline.spec import RunSpec

# Fork-inherited job context: the parent parks the dataset (and shared run
# settings) here right before creating the pool; forked children see the
# same object through copy-on-write memory, so it never crosses a pipe.
_FORK_CONTEXT: Dict[str, Any] = {}


def engine_snapshot() -> Dict[str, Any]:
    """The engine configuration a worker must replicate to match the parent."""
    return {
        "engine_mode": nn_config.engine_mode(),
        "dtype": np.dtype(nn_config.dtype()).str,
        "fusion": nn_config.fusion_enabled(),
        "num_threads": nn_config.num_threads(),
        "plan_cache": nn_config.plan_cache_enabled(),
        "arena": nn_config.arena_enabled(),
        "conv_dispatch": {
            "fft_min_kernel_volume": nn_config.conv_fft_min_kernel_volume(),
            "fft_min_im2col_elements": nn_config.conv_fft_min_im2col_elements(),
            "fft_min_im2col_fused": nn_config.conv_fft_min_im2col_fused(),
            "gemm_min_elements": nn_config.conv_gemm_min_elements(),
        },
    }


def apply_engine_snapshot(snapshot: Dict[str, Any]) -> None:
    """Re-apply a parent's :func:`engine_snapshot` in this process."""
    nn_config.set_engine_mode(snapshot["engine_mode"])
    nn_config.set_dtype(snapshot["dtype"])
    nn_config.set_fusion_enabled(snapshot["fusion"])
    nn_config.set_num_threads(snapshot["num_threads"])
    nn_config.set_plan_cache_enabled(snapshot["plan_cache"])
    nn_config.set_arena_enabled(snapshot["arena"])
    dispatch = snapshot.get("conv_dispatch") or {}
    nn_config.set_conv_dispatch_thresholds(**dispatch)


def _worker_init(snapshot: Dict[str, Any]) -> None:
    """Pool initializer: make the forked child a faithful engine replica.

    The fork inherited the parent's executor handle and caches by value;
    reset them so this worker lazily builds its own (a thread pool object
    cannot be shared across processes), then pin the engine config.
    """
    from repro.nn import engine

    engine.reset_executor(wait=False)
    engine.clear_caches()
    apply_engine_snapshot(snapshot)


def _run_one(job: Tuple[int, Dict[str, Any]]) -> Tuple[int, Optional[Dict[str, float]], Optional[str]]:
    """Execute one spec in a worker; never raises across the pipe.

    Returns ``(index, metrics, None)`` on success and
    ``(index, None, reason)`` on failure, so one diverged or crashed run
    cannot poison the sweep — the parent retries it serially.
    """
    index, spec_dict = job
    try:
        from repro.pipeline import runner as pipeline_runner

        spec = RunSpec.from_dict(spec_dict)
        log_config = dict(_FORK_CONTEXT.get("log_config") or {})
        log_config["worker_pid"] = os.getpid()
        result = pipeline_runner.execute(
            spec,
            _FORK_CONTEXT["dataset"],
            label=_FORK_CONTEXT.get("label"),
            log_config=log_config,
            checkpoint_dir=_FORK_CONTEXT.get("checkpoint_dir"),
            resume=bool(_FORK_CONTEXT.get("resume")),
        )
        return index, result.metrics, None
    except BaseException as error:  # noqa: BLE001 - the pipe is the boundary
        return index, None, f"{type(error).__name__}: {error}"


def _run_serial(
    spec: RunSpec,
    dataset,
    *,
    label: Optional[str],
    log_config: Optional[Dict[str, Any]],
    checkpoint_dir: Optional[str],
    resume: bool,
) -> Dict[str, float]:
    from repro.pipeline import runner as pipeline_runner

    return pipeline_runner.execute(
        spec,
        dataset,
        label=label,
        log_config=log_config,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    ).metrics


def fork_available() -> bool:
    """Whether this platform supports fork-based worker pools."""
    return "fork" in multiprocessing.get_all_start_methods()


def run_specs(
    specs: Sequence[RunSpec],
    dataset,
    *,
    jobs: int = 1,
    label: Optional[str] = None,
    log_config: Optional[Dict[str, Any]] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
) -> List[Dict[str, float]]:
    """Execute every spec, fanning out across ``jobs`` worker processes.

    Returns one metrics dict per spec, in input order — byte-identical to
    running the same specs in a serial loop, because each run's randomness
    derives solely from its ``spec.seed``. With ``jobs <= 1``, a single
    spec, or no fork support, no pool is created at all.
    """
    specs = list(specs)
    jobs = max(1, int(jobs))
    if jobs <= 1 or len(specs) <= 1 or not fork_available():
        return [
            _run_serial(
                spec,
                dataset,
                label=label,
                log_config=log_config,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
            )
            for spec in specs
        ]

    # Park the heavyweight, non-picklable job context where forked children
    # can inherit it; keep it in place for the pool's whole lifetime.
    _FORK_CONTEXT.clear()
    _FORK_CONTEXT.update(
        {
            "dataset": dataset,
            "label": label,
            "log_config": log_config,
            "checkpoint_dir": checkpoint_dir,
            "resume": resume,
        }
    )
    jobs_used = min(jobs, len(specs))
    obs_metrics.gauge("sweep_jobs").set(jobs_used)
    results: List[Optional[Dict[str, float]]] = [None] * len(specs)
    failed: List[Tuple[int, str]] = []
    payload = [(index, spec.to_dict()) for index, spec in enumerate(specs)]
    try:
        with ProcessPoolExecutor(
            max_workers=jobs_used,
            mp_context=multiprocessing.get_context("fork"),
            initializer=_worker_init,
            initargs=(engine_snapshot(),),
        ) as pool:
            try:
                for index, metrics, error in pool.map(_run_one, payload):
                    if error is None:
                        results[index] = metrics
                        obs_metrics.counter("sweep_runs_total", outcome="ok").inc()
                    else:
                        failed.append((index, error))
            except process.BrokenProcessPool:
                # A worker died hard (signal/OOM): everything not yet
                # collected is unaccounted for — retry it serially below.
                failed = [
                    (index, "BrokenProcessPool")
                    for index in range(len(specs))
                    if results[index] is None
                ]
    finally:
        _FORK_CONTEXT.clear()

    for index, reason in failed:
        obs_metrics.counter("sweep_runs_total", outcome="retried").inc()
        from repro.obs import runlog

        if runlog.active():  # pragma: no cover - depends on ambient run log
            runlog.emit("sweep_retry", index=index, reason=reason)
        # Serial retry in the parent, resuming from the crashed worker's
        # newest autosave when checkpoints are on. A failure here raises
        # for real — the sweep is genuinely broken, not just one worker.
        results[index] = _run_serial(
            specs[index],
            dataset,
            label=label,
            log_config=log_config,
            checkpoint_dir=checkpoint_dir,
            resume=resume or checkpoint_dir is not None,
        )
    return [result for result in results if result is not None]


__all__ = [
    "apply_engine_snapshot",
    "engine_snapshot",
    "fork_available",
    "run_specs",
]
