"""The multi-step forecast protocol, in one place (paper Sec. IV-B).

Every model in the zoo produces ``(N, p, G1, G2)`` multi-step demand one of
two ways:

- ``RECURSIVE`` — a single-step frame predictor rolled forward: drop the
  oldest history slot, append the model's own predicted frame, repeat.
  This feedback loop is where the paper's accumulated error comes from.
- ``DIRECT`` — all ``p`` future slots emitted in one forward pass
  (STGCN, STSGCN, BikeCAP); no feedback, no accumulation.

:func:`recursive_forecast` is the single implementation of the roll-forward
loop; :class:`repro.baselines.base.RecursiveFrameForecaster` and the
teacher-forcing diagnostics both decode through it, so the protocol cannot
drift between models.

Layering note: like :mod:`repro.pipeline.seeding` this is a dependency-free
leaf (numpy + callables only) importable from any layer; the rest of
``repro.pipeline`` is top-of-stack.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

RECURSIVE = "recursive"
DIRECT = "direct"
PROTOCOLS = (RECURSIVE, DIRECT)

# Normalized demand is clipped to this range when predictions are fed back,
# keeping the recursion from wandering outside the training distribution.
CLIP_RANGE = (0.0, 1.5)


def clip_normalized(frame: np.ndarray) -> np.ndarray:
    """Clamp rolled-forward predictions to the normalized demand range."""
    return np.clip(frame, CLIP_RANGE[0], CLIP_RANGE[1])


def recursive_forecast(
    predict_next_frame: Callable[[np.ndarray], np.ndarray],
    window: np.ndarray,
    horizon: int,
    target_feature: int = 0,
) -> np.ndarray:
    """Roll a single-step frame predictor forward ``horizon`` steps.

    ``predict_next_frame`` maps a history window ``(N, h, G1, G2, F)`` to
    the full next feature frame ``(N, G1, G2, F)``. Each step slides the
    window by one slot, feeding the prediction back as input — exactly the
    deployment condition of the paper's autoregressive baselines. Returns
    the ``target_feature`` channel of every step, ``(N, p, G1, G2)``.
    """
    if horizon < 1:
        raise ValueError(f"horizon must be positive, got {horizon}")
    window = np.asarray(window).copy()
    steps = []
    for _step in range(horizon):
        frame = np.asarray(predict_next_frame(window))
        if frame.shape != window.shape[:1] + window.shape[2:]:
            raise ValueError(
                "predict_next_frame must return a full feature frame "
                f"{window.shape[:1] + window.shape[2:]}, got {frame.shape}"
            )
        steps.append(frame[..., target_feature])
        window = np.concatenate([window[:, 1:], frame[:, None]], axis=1)
    return np.stack(steps, axis=1)


def teacher_forced_forecast(
    predict_next_frame: Callable[[np.ndarray], np.ndarray],
    windows: np.ndarray,
    horizon: int,
    target_feature: int = 0,
    count: Optional[int] = None,
) -> np.ndarray:
    """Multi-step decode where each step sees the *true* previous frames.

    ``windows`` must be consecutive chronological windows, so window
    ``i + t`` holds the frames the model would have seen had all its
    predictions up to step ``t`` been perfect. The gap between this and
    :func:`recursive_forecast` *is* the accumulated error (offline
    diagnostic only — impossible in deployment).

    ``windows`` may be an eager array or any lazily-materialized window
    source supporting ``len`` and contiguous slicing — e.g. the ``.x``
    accessor of a ``repro.store`` window view: the decode only ever touches
    ``windows[step : step + count]``, so a store-backed decode materializes
    one slice at a time instead of the whole split.

    The default ``count`` uses every usable window: decoding window ``i``
    needs windows ``i … i + horizon - 1``, so ``len(windows) - horizon + 1``
    starting points fit (the last one consumes the final window at its
    final step).
    """
    if count is None:
        count = len(windows) - horizon + 1
    if count <= 0:
        raise ValueError("not enough consecutive windows for teacher forcing")
    steps = []
    for step in range(horizon):
        frame = np.asarray(predict_next_frame(windows[step : step + count]))
        steps.append(frame[..., target_feature])
    return np.stack(steps, axis=1)
