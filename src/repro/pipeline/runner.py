"""Execute a :class:`~repro.pipeline.spec.RunSpec` against a dataset.

``execute`` is the one funnel every experiment goes through: it builds the
model from the registry, applies the spec's engine configuration, opens a
structured run log and a tracing span, trains with optional full-state
checkpointing/resume, and evaluates on the test split. Experiment scripts
never touch forecaster classes directly — they describe runs as specs and
hand them here (enforced by ``scripts/check_layering.py``).
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.data.datasets import BikeDemandDataset
from repro.metrics.evaluation import evaluate_forecaster
from repro.nn import config as nn_config
from repro.obs import runlog, serve_metrics, tracing
from repro.pipeline import checkpoint as ckpt
from repro.pipeline import registry
from repro.pipeline.spec import RunSpec
from repro.resilience import RecoveryPolicy, run_with_recovery


@dataclass
class RunResult:
    """Everything one executed spec produced."""

    spec: RunSpec
    label: str
    metrics: Dict[str, float]
    history: Dict[str, Any] = field(default_factory=dict)
    forecaster: Any = None
    checkpoint_path: Optional[str] = None
    resumed_from: Optional[str] = None
    # RecoveryReport.as_dict() of the divergence-recovery loop (neural
    # runs only; empty rollback list when training stayed healthy).
    resilience: Optional[Dict[str, Any]] = None


@contextlib.contextmanager
def _engine_overrides(spec: RunSpec):
    """Temporarily apply the spec's engine mode / dtype, if any."""
    previous_mode = nn_config.engine_mode()
    previous_dtype = nn_config.dtype()
    try:
        if spec.engine_mode is not None:
            nn_config.set_engine_mode(spec.engine_mode)
        if spec.dtype is not None:
            nn_config.set_dtype(spec.dtype)
        yield
    finally:
        nn_config.set_engine_mode(previous_mode)
        nn_config.set_dtype(previous_dtype)


def run_config(spec: RunSpec, extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The config dict recorded in the run log: spec + live engine state."""
    config: Dict[str, Any] = dict(extra) if extra else {}
    config["spec"] = spec.to_dict()
    # Engine state belongs in every run record: results are only comparable
    # across runs that used the same precision and sharding.
    config.setdefault("dtype", np.dtype(nn_config.dtype()).name)
    config.setdefault("engine_mode", nn_config.engine_mode())
    config.setdefault("num_threads", nn_config.num_threads())
    return config


def execute(
    spec: RunSpec,
    dataset: BikeDemandDataset,
    *,
    label: Optional[str] = None,
    log_config: Optional[Dict[str, Any]] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    verbose: bool = False,
) -> RunResult:
    """Build, train, and evaluate the model a spec describes.

    With ``checkpoint_dir`` set, neural models autosave full training state
    each epoch to ``<dir>/<label>-seed<seed>.ckpt.npz``; with ``resume``
    also set, an existing file there is *validated* (CRC manifest; a
    damaged autosave is quarantined to ``*.corrupt`` and the rotated
    ``*.prev`` generation tried instead) and restored, so an interrupted
    run continues bit-exactly where it stopped.

    Neural runs train under a divergence-recovery policy (see
    :mod:`repro.resilience`): a NaN/Inf loss, gradient or weight — or a
    loss spike past the policy's threshold — rolls the trainer back to its
    last good epoch snapshot, halves the learning rate, and retries.
    ``spec.resilience`` tunes or disables this
    (``{"enabled": False}`` for raise-immediately behavior); the
    result's ``resilience`` field records what the policy saw and did.
    """
    label = label or spec.label(default_horizon=dataset.horizon)
    with _engine_overrides(spec):
        forecaster = registry.build(spec, dataset)
        neural = registry.is_neural(spec.model)
        checkpoint_path = None
        resume_from = None
        if checkpoint_dir is not None and neural:
            os.makedirs(checkpoint_dir, exist_ok=True)
            checkpoint_path = ckpt.checkpoint_path(checkpoint_dir, label, spec.seed)
            if resume:
                resume_from = ckpt.validated_restore(
                    ckpt.find_checkpoint(checkpoint_dir, label, spec.seed)
                )

        policy = RecoveryPolicy.from_dict(spec.resilience)
        report = None
        # Opt-in live telemetry + request-scoped tracing: REPRO_TELEMETRY_PORT
        # exposes /metrics while the run is alive; REPRO_TRACE records real
        # spans and persists them beside the run log on completion.
        serve_metrics.ensure_exporter_from_env()
        tracing_run = tracing.env_enabled() and not tracing.is_recording()
        if tracing_run:
            tracing.start_recording()
        logger = runlog.start_run(label, seed=spec.seed, config=run_config(spec, log_config))
        trace_base = None
        if tracing_run:
            trace_base = (
                os.path.splitext(logger.path)[0]
                if logger is not None
                else os.path.join(runlog.default_dir(), f"trace-{label}-{os.getpid()}")
            )
        try:
            with tracing.span(f"experiment.{label}"):
                trainer = getattr(forecaster, "trainer", None)
                if neural and trainer is not None:

                    def fit_once(resume_point, watchers):
                        return forecaster.fit(
                            dataset,
                            epochs=spec.epochs,
                            verbose=verbose,
                            checkpoint_path=checkpoint_path,
                            resume_from=resume_point,
                            observers=watchers,
                        )

                    history, report = run_with_recovery(
                        trainer,
                        fit_once,
                        policy=policy,
                        model_label=label,
                        initial_resume=resume_from,
                    )
                else:
                    history = forecaster.fit(
                        dataset,
                        epochs=spec.epochs,
                        verbose=verbose,
                        checkpoint_path=checkpoint_path,
                        resume_from=resume_from,
                    )
                metrics = evaluate_forecaster(forecaster, dataset)
            if logger is not None:
                close_info: Dict[str, Any] = dict(metrics)
                if report is not None and report.rollback_count:
                    close_info["rollbacks"] = report.rollback_count
                logger.event("eval", split="test", **metrics)
                # Publish the engine's plan-cache statistics as obs gauges
                # and record them in the log, so ``obs.report --format
                # json`` can digest cache effectiveness per run.
                from repro.nn import engine as nn_engine

                logger.event("plan_cache", **nn_engine.publish_plan_cache_stats())
                logger.close(status="ok", **close_info)
                logger = None
        finally:
            if logger is not None:
                logger.close(status="error")
            if trace_base is not None:
                # Persist whatever spans the run recorded beside its run log,
                # in both the raw JSONL form and the Perfetto-loadable one.
                tracing.dump_jsonl(trace_base + ".trace.jsonl")
                tracing.dump_chrome_trace(trace_base + ".chrome.json")
                tracing.stop_recording()

    return RunResult(
        spec=spec,
        label=label,
        metrics=metrics,
        history=history if isinstance(history, dict) else {},
        forecaster=forecaster,
        checkpoint_path=checkpoint_path,
        resumed_from=resume_from,
        resilience=report.as_dict() if report is not None else None,
    )


__all__ = ["RunResult", "execute", "run_config"]
