"""Checkpoint naming and discovery for pipeline runs.

The actual archive format lives in :mod:`repro.nn.serialization` (one
``.npz`` holding model weights, optimizer state, RNG state and progress
metadata); this module owns the *conventions*: where a run's checkpoint
file goes and how a resuming caller finds the newest one.
"""

from __future__ import annotations

import os
import re
import warnings
from typing import Optional

from repro.nn.serialization import (
    PREVIOUS_SUFFIX,
    CheckpointCorruptError,
    TrainingCheckpoint,
    is_checkpoint,
    load_checkpoint,
    quarantine,
    save_checkpoint,
)
from repro.obs import runlog

CHECKPOINT_SUFFIX = ".ckpt.npz"


def _slug(text: str) -> str:
    """Filesystem-safe version of a run label (``PredRNN++`` → ``PredRNN--``)."""
    return re.sub(r"[^A-Za-z0-9._-]", "-", text)


def checkpoint_filename(label: str, seed: int) -> str:
    return f"{_slug(label)}-seed{int(seed)}{CHECKPOINT_SUFFIX}"


def checkpoint_path(directory: str, label: str, seed: int) -> str:
    """Canonical checkpoint location for one labelled, seeded run."""
    return os.path.join(directory, checkpoint_filename(label, seed))


def find_checkpoint(directory: str, label: str, seed: int) -> Optional[str]:
    """The run's checkpoint path if it exists on disk, else ``None``."""
    path = checkpoint_path(directory, label, seed)
    return path if os.path.exists(path) else None


def newest_checkpoint(directory: str, prefix: Optional[str] = None) -> Optional[str]:
    """Most recently written checkpoint in ``directory`` (optional label).

    Used by ``run_all --resume`` to pick up the latest autosave without
    knowing exactly which epoch it covers — the archive itself records
    that.

    ``prefix`` is the run label (as passed to :func:`checkpoint_path`) and
    matches only on the exact ``<slug>-seed<N>`` boundary. A raw
    string-prefix match would collide across model names once slugged:
    ``_slug("PredRNN++") == "PredRNN--"`` starts with ``"PredRNN"``, so a
    resuming ``PredRNN`` run could silently pick up a ``PredRNN++``
    checkpoint.
    """
    if not os.path.isdir(directory):
        return None
    pattern = None
    if prefix is not None:
        pattern = re.compile(rf"^{re.escape(_slug(prefix))}-seed\d+$")
    candidates = []
    for entry in os.listdir(directory):
        if not entry.endswith(CHECKPOINT_SUFFIX):
            continue
        stem = entry[: -len(CHECKPOINT_SUFFIX)]
        if pattern is not None and pattern.match(stem) is None:
            continue
        full = os.path.join(directory, entry)
        candidates.append((os.path.getmtime(full), full))
    if not candidates:
        return None
    return max(candidates)[1]


def validated_restore(path: Optional[str]) -> Optional[str]:
    """The path of a *loadable* resume point at (or behind) ``path``.

    Crash-safety gate for every resume: the newest autosave is fully
    parsed and CRC-verified before a run commits to it. A damaged file is
    quarantined to ``*.corrupt`` (kept for post-mortems, never offered
    again) and the previous generation ``<path>.prev`` — rotated aside by
    the checkpoint writer — is validated next. Returns ``None`` when no
    trustworthy snapshot remains, which callers treat as "start fresh,
    with a warning" rather than an error: losing an autosave must never
    lose the run.
    """
    if path is None:
        return None
    candidates = [path, path + PREVIOUS_SUFFIX]
    for candidate in candidates:
        if not os.path.exists(candidate):
            continue
        try:
            load_checkpoint(candidate)
            return candidate
        except CheckpointCorruptError as exc:
            moved = quarantine(candidate)
            warnings.warn(
                f"checkpoint {candidate} failed validation and was quarantined "
                f"to {moved}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            runlog.emit(
                "checkpoint_quarantined",
                path=candidate,
                quarantined_to=moved,
                error=str(exc),
            )
    return None


__all__ = [
    "CHECKPOINT_SUFFIX",
    "CheckpointCorruptError",
    "PREVIOUS_SUFFIX",
    "TrainingCheckpoint",
    "checkpoint_filename",
    "checkpoint_path",
    "find_checkpoint",
    "is_checkpoint",
    "load_checkpoint",
    "newest_checkpoint",
    "quarantine",
    "save_checkpoint",
    "validated_restore",
]
