"""`repro.pipeline` — the config-driven experiment layer.

One place where model construction, training, checkpointing and evaluation
meet, so every experiment *declares* a run instead of hand-rolling it:

- :mod:`repro.pipeline.registry` — model zoo: names → factories with their
  declared default hyperparameters (BikeCAP + ablation variants, the seven
  paper baselines, the naive anchors).
- :mod:`repro.pipeline.spec` — :class:`RunSpec`, the declarative run
  description (model, window/data params, optimizer, engine mode, seed)
  with dict/JSON round-trip.
- :mod:`repro.pipeline.runner` — :func:`execute`: registry build + fit
  (with checkpoint/resume) + denormalized evaluation + structured run log.
- :mod:`repro.pipeline.checkpoint` — naming and discovery of full-state
  training checkpoints (format in :mod:`repro.nn.serialization`).
- :mod:`repro.pipeline.loading` — :func:`load_forecaster`: spec +
  checkpoint → ready-to-serve forecaster, no training loop involved.
- :mod:`repro.pipeline.seeding` / :mod:`repro.pipeline.forecast` —
  dependency-free leaves (centralized RNG seeding; the recursive/direct
  multi-step decode protocol) importable from any layer.

The heavyweight submodules are loaded lazily (PEP 562): the low layers may
import the leaf modules without dragging the whole model zoo — and its
import cycle — into ``repro.nn``.
"""

from __future__ import annotations

from repro.pipeline import forecast, seeding

_LAZY = {
    "RunSpec": ("repro.pipeline.spec", "RunSpec"),
    "registry": ("repro.pipeline.registry", None),
    "spec": ("repro.pipeline.spec", None),
    "runner": ("repro.pipeline.runner", None),
    "parallel": ("repro.pipeline.parallel", None),
    "checkpoint": ("repro.pipeline.checkpoint", None),
    "loading": ("repro.pipeline.loading", None),
    "load_forecaster": ("repro.pipeline.loading", "load_forecaster"),
    "available_models": ("repro.pipeline.registry", "available_models"),
    "model_entry": ("repro.pipeline.registry", "model_entry"),
    "default_hparams": ("repro.pipeline.registry", "default_hparams"),
    "build": ("repro.pipeline.registry", "build"),
    "create": ("repro.pipeline.registry", "create"),
    "protocol_of": ("repro.pipeline.registry", "protocol_of"),
    "is_neural": ("repro.pipeline.registry", "is_neural"),
    "execute": ("repro.pipeline.runner", "execute"),
    "RunResult": ("repro.pipeline.runner", "RunResult"),
}

__all__ = sorted(set(_LAZY) | {"forecast", "seeding"})


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = module if attribute is None else getattr(module, attribute)
    globals()[name] = value
    return value


def __dir__():
    return __all__
