"""Rebuild a trained forecaster from a spec plus a checkpoint — no training.

:func:`repro.pipeline.runner.execute` is the offline funnel (build, train,
evaluate); this module is its online counterpart: given the :class:`RunSpec`
that produced a run and the checkpoint it autosaved, reconstruct the exact
forecaster so a serving process can answer requests without ever touching
the training loop. The spec's engine mode/dtype are applied while the model
is constructed (parameters adopt the ambient dtype at creation time), and
the checkpoint's weights are restored with the same strict name/shape
validation the trainer uses.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.pipeline import checkpoint as ckpt
from repro.pipeline import registry
from repro.pipeline.runner import _engine_overrides
from repro.pipeline.spec import RunSpec


def _resolve_geometry(
    spec: RunSpec, history: Optional[int], horizon: Optional[int]
) -> Tuple[int, int]:
    history = history if history is not None else spec.history
    horizon = horizon if horizon is not None else spec.horizon
    if history is None or horizon is None:
        raise ValueError(
            f"RunSpec(model={spec.model!r}) does not pin history/horizon; "
            "pass them explicitly to load_forecaster"
        )
    return history, horizon


def load_forecaster(
    spec: RunSpec,
    checkpoint_path: Optional[str] = None,
    *,
    grid_shape,
    num_features: int,
    history: Optional[int] = None,
    horizon: Optional[int] = None,
):
    """Instantiate the model a spec describes and restore its checkpoint.

    ``grid_shape``/``num_features`` (and ``history``/``horizon`` when the
    spec leaves them unset) describe the window geometry the model was
    trained on — the same values a :class:`BikeDemandDataset` carries.
    With ``checkpoint_path`` set the archive's serving weights (best
    validation snapshot when tracked, else the last autosave) are loaded;
    non-neural models have no weights to restore and reject a checkpoint
    loudly instead of ignoring it.
    """
    history, horizon = _resolve_geometry(spec, history, horizon)
    with _engine_overrides(spec):
        forecaster = registry.create(
            spec.model,
            history,
            horizon,
            tuple(grid_shape),
            num_features,
            seed=spec.seed,
            **spec.hparams,
        )
        if checkpoint_path is not None:
            if not registry.is_neural(spec.model):
                raise ValueError(
                    f"{spec.model} is not a neural model; it has no weights "
                    "to restore from a checkpoint"
                )
            checkpoint = ckpt.load_checkpoint(checkpoint_path)
            checkpoint.restore_serving_model(forecaster.model)
    return forecaster


def warm_start_forecaster(
    spec: RunSpec,
    *,
    grid_shape,
    num_features: int,
    history: Optional[int] = None,
    horizon: Optional[int] = None,
    source_model=None,
    checkpoint_path: Optional[str] = None,
    lr: Optional[float] = None,
):
    """A fresh forecaster carrying the serving weights, ready to fine-tune.

    The online-adaptation seam: build the spec's model exactly as
    :func:`load_forecaster` would, then copy weights either from a live
    serving model (``source_model`` — a :class:`repro.nn.layers.Module`,
    cloned via its ``state_dict`` so fine-tuning never touches the serving
    parameters) or from a checkpoint archive (``checkpoint_path``).
    Exactly one source must be given. ``lr`` overrides the fine-tune
    learning rate; non-neural specs have no weights to warm-start and are
    rejected loudly.
    """
    if (source_model is None) == (checkpoint_path is None):
        raise ValueError(
            "warm_start_forecaster needs exactly one of source_model or "
            "checkpoint_path"
        )
    if not registry.is_neural(spec.model):
        raise ValueError(
            f"{spec.model} is not a neural model; there are no weights to "
            "warm-start a fine-tune from"
        )
    forecaster = load_forecaster(
        spec,
        checkpoint_path,
        grid_shape=grid_shape,
        num_features=num_features,
        history=history,
        horizon=horizon,
    )
    if source_model is not None:
        # state_dict() returns copies, so the candidate's parameters are
        # fully decoupled from the live model's; load_state_dict validates
        # names/shapes strictly and bumps the engine weight version.
        forecaster.model.load_state_dict(source_model.state_dict())
    if lr is not None:
        forecaster.trainer.optimizer.lr = float(lr)
    return forecaster


__all__ = ["load_forecaster", "warm_start_forecaster"]
