"""The model registry: every runnable model, one namespace.

Each entry binds a paper-facing name to a forecaster factory plus the
metadata the pipeline needs without instantiating anything:

- ``protocol`` — how the model produces multi-step forecasts
  (:data:`repro.pipeline.forecast.RECURSIVE` roll-forward vs
  :data:`~repro.pipeline.forecast.DIRECT` all-steps-at-once); Table III's
  error-accumulation story hangs on this split, so it is declared here
  instead of being probed with ``isinstance`` at experiment time;
- ``neural`` — whether the model trains through ``repro.nn`` (and hence
  supports weight serialization and full-state checkpoint/resume);
- ``defaults`` — the factory's declared hyperparameters, introspected from
  its signature so the registry can never drift from the code.

Covers BikeCAP, its four ablation variants, the paper's seven baselines
and the two naive sanity anchors.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.baselines import FORECASTERS, Forecaster
from repro.baselines.bikecap_adapter import BikeCAPForecaster
from repro.core.variants import VARIANTS
from repro.pipeline.forecast import DIRECT, PROTOCOLS, RECURSIVE
from repro.pipeline.spec import RunSpec

# Hyperparameters every factory receives positionally from the dataset;
# they are part of the run geometry, not of ``defaults``.
_STRUCTURAL = ("self", "history", "horizon", "grid_shape", "num_features")


def _introspect_defaults(factory: Callable) -> Dict[str, Any]:
    """Keyword parameters (with defaults) a factory declares."""
    signature = inspect.signature(factory)
    defaults: Dict[str, Any] = {}
    for name, parameter in signature.parameters.items():
        if name in _STRUCTURAL:
            continue
        if parameter.kind in (parameter.VAR_POSITIONAL, parameter.VAR_KEYWORD):
            continue
        if parameter.default is not parameter.empty:
            defaults[name] = parameter.default
    return defaults


def _accepts_kwargs(factory: Callable) -> bool:
    return any(
        parameter.kind is parameter.VAR_KEYWORD
        for parameter in inspect.signature(factory).parameters.values()
    )


@dataclass(frozen=True)
class ModelEntry:
    """One registered model: factory + pipeline-facing metadata."""

    name: str
    factory: Callable[..., Forecaster]
    protocol: str
    neural: bool
    defaults: Mapping[str, Any] = field(default_factory=dict)
    open_hparams: bool = False  # factory accepts **kwargs beyond defaults

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(
                f"{self.name}: protocol must be one of {sorted(PROTOCOLS)}, got {self.protocol!r}"
            )

    def resolve_hparams(self, overrides: Mapping[str, Any]) -> Dict[str, Any]:
        """Declared defaults merged with ``overrides``; unknown keys fail."""
        unknown = sorted(set(overrides) - set(self.defaults))
        if unknown and not self.open_hparams:
            raise ValueError(
                f"{self.name}: unknown hyperparameters {unknown}; "
                f"declared: {sorted(self.defaults)}"
            )
        merged = dict(self.defaults)
        merged.update(overrides)
        return merged


def _variant_factory(variant: str) -> Callable[..., Forecaster]:
    def factory(history, horizon, grid_shape, num_features, **hparams):
        return BikeCAPForecaster(
            history, horizon, grid_shape, num_features, variant=variant, **hparams
        )

    factory.__signature__ = inspect.signature(BikeCAPForecaster.__init__)
    factory.__name__ = f"make_{variant.replace('-', '_').lower()}"
    return factory


def _build_registry() -> Dict[str, ModelEntry]:
    protocol_by_name = {
        "XGBoost": RECURSIVE,
        "LSTM": RECURSIVE,
        "convLSTM": RECURSIVE,
        "PredRNN": RECURSIVE,
        "PredRNN++": RECURSIVE,
        "STGCN": DIRECT,
        "STSGCN": DIRECT,
        "BikeCAP": DIRECT,
        "Persistence": DIRECT,
        "SeasonalAverage": DIRECT,
    }
    non_neural = {"XGBoost", "Persistence", "SeasonalAverage"}
    registry: Dict[str, ModelEntry] = {}
    for name, cls in FORECASTERS.items():
        registry[name] = ModelEntry(
            name=name,
            factory=cls,
            protocol=protocol_by_name[name],
            neural=name not in non_neural,
            defaults=_introspect_defaults(cls.__init__),
            open_hparams=_accepts_kwargs(cls.__init__),
        )
    # The ablation variants share the BikeCAP adapter; the "variant" default
    # is pinned by the factory, so it is not an overridable hyperparameter.
    adapter_defaults = {
        key: value
        for key, value in _introspect_defaults(BikeCAPForecaster.__init__).items()
        if key != "variant"
    }
    for variant in VARIANTS:
        if variant in registry:
            continue  # plain "BikeCAP" is already registered via FORECASTERS
        registry[variant] = ModelEntry(
            name=variant,
            factory=_variant_factory(variant),
            protocol=DIRECT,
            neural=True,
            defaults=adapter_defaults,
            open_hparams=True,
        )
    return registry


_REGISTRY: Dict[str, ModelEntry] = _build_registry()


def available_models() -> Tuple[str, ...]:
    """Registered model names, registration order (Table III order first)."""
    return tuple(_REGISTRY)


def model_entry(name: str) -> ModelEntry:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def default_hparams(name: str) -> Dict[str, Any]:
    """A mutable copy of the declared hyperparameter defaults."""
    return dict(model_entry(name).defaults)


def protocol_of(name: str) -> str:
    """``"recursive"`` or ``"direct"`` — the model's multi-step protocol."""
    return model_entry(name).protocol


def is_neural(name: str) -> bool:
    return model_entry(name).neural


def bikecap_variants() -> Tuple[str, ...]:
    """The full model plus its ablation variants, Fig. 7 order."""
    return tuple(VARIANTS)


def create(
    name: str,
    history: int,
    horizon: int,
    grid_shape,
    num_features: int,
    seed: Optional[int] = None,
    **hparams: Any,
) -> Forecaster:
    """Instantiate a registered model with defaults + keyword overrides."""
    entry = model_entry(name)
    if seed is not None:
        hparams = dict(hparams, seed=seed)
    resolved = entry.resolve_hparams(hparams)
    return entry.factory(history, horizon, grid_shape, num_features, **resolved)


def build(spec: RunSpec, dataset) -> Forecaster:
    """Instantiate the model a :class:`RunSpec` describes, for a dataset."""
    spec.validate_against(dataset)
    return create(
        spec.model,
        dataset.history,
        dataset.horizon,
        dataset.grid_shape,
        dataset.num_features,
        seed=spec.seed,
        **spec.hparams,
    )


__all__ = [
    "ModelEntry",
    "available_models",
    "bikecap_variants",
    "build",
    "create",
    "default_hparams",
    "is_neural",
    "model_entry",
    "protocol_of",
]
