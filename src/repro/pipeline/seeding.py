"""Centralized RNG seeding for every stochastic component in the repo.

One module owns randomness so that a run is reproducible from a single
recorded seed (the ``RunSpec.seed`` written into every structured run log):

- :func:`seed_everything` pins the process-wide sources (``random``,
  numpy's legacy global state, and this module's shared generator);
- :func:`rng` hands out a ``np.random.Generator`` for an explicit seed —
  bit-compatible with ``np.random.default_rng(seed)``, so historical
  parameter initializations are unchanged — or the shared generator when
  no seed is given;
- :func:`derive` builds statistically independent streams from one seed
  plus string keys (e.g. per-worker, per-channel) via ``SeedSequence``.

Layering note: this is a deliberately dependency-free *leaf* module (numpy
only). Any layer — ``city``, ``nn``, ``graph``, ``boosting``, ``baselines``
— may import it, unlike the rest of :mod:`repro.pipeline`, which sits at
the top of the stack (see ``scripts/check_layering.py``).
"""

from __future__ import annotations

import random as _py_random
from typing import Optional, Tuple, Union

import numpy as np

SeedLike = Optional[Union[int, np.integer, np.random.Generator]]

_global_rng: Optional[np.random.Generator] = None
_global_seed: Optional[int] = None


def seed_everything(seed: int) -> np.random.Generator:
    """Seed every process-wide randomness source; returns the shared generator.

    Pins Python's ``random``, numpy's legacy global state (for any
    third-party code still using ``np.random.*`` module functions), and the
    generator handed out by :func:`rng`/:func:`global_rng` for unseeded
    callers.
    """
    global _global_rng, _global_seed
    seed = int(seed)
    _py_random.seed(seed)
    np.random.seed(seed % (2**32))
    _global_rng = np.random.default_rng(seed)
    _global_seed = seed
    return _global_rng


def last_seed() -> Optional[int]:
    """The seed passed to the most recent :func:`seed_everything`, if any."""
    return _global_seed


def global_rng() -> np.random.Generator:
    """The process-shared generator (entropy-seeded until ``seed_everything``)."""
    global _global_rng
    if _global_rng is None:
        _global_rng = np.random.default_rng()
    return _global_rng


def rng(seed: SeedLike = None) -> np.random.Generator:
    """A generator for ``seed``; the shared generator when ``seed`` is None.

    ``rng(k)`` produces the exact stream of ``np.random.default_rng(k)``,
    and a ``Generator`` passes through untouched, so replacing scattered
    ``default_rng`` call sites with this helper changes no results.
    """
    if seed is None:
        return global_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(int(seed))


def derive(seed: Optional[int], *keys: Union[int, str]) -> np.random.Generator:
    """An independent stream identified by ``(seed, *keys)``.

    String keys are hashed stably (not with ``hash()``, which is salted per
    process) so derived streams are reproducible across runs.
    """
    entropy = [0 if seed is None else int(seed)]
    for key in keys:
        if isinstance(key, str):
            entropy.append(int.from_bytes(key.encode("utf-8"), "little") % (2**63))
        else:
            entropy.append(int(key))
    return np.random.default_rng(np.random.SeedSequence(entropy))


def get_state(generator: np.random.Generator) -> dict:
    """JSON-serializable snapshot of a generator's exact position."""
    return generator.bit_generator.state


def set_state(generator: np.random.Generator, state: dict) -> None:
    """Restore a snapshot taken by :func:`get_state` (bit-exact resume)."""
    generator.bit_generator.state = state
