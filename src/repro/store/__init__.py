"""repro.store — the chunked, lazy window/feature store.

Dependency-free leaf (stdlib + numpy only, layering rule 11): training,
serving and streaming ingestion all slice supervised windows through this
one dataflow instead of keeping private copies of the window arithmetic.
See docs/DATAFLOW.md for the store layout and lifecycle.
"""

from repro.store.chunks import DEFAULT_CHUNK_SLOTS, ChunkBuffer
from repro.store.normalization import MinMaxScaler
from repro.store.store import LazyWindows, WindowIterator, WindowStore, WindowView
from repro.store.windows import (
    lazy_window_view,
    shuffled_batch_indices,
    split_bounds,
    supervised_pairs,
    window_count,
)

__all__ = [
    "ChunkBuffer",
    "DEFAULT_CHUNK_SLOTS",
    "LazyWindows",
    "MinMaxScaler",
    "WindowIterator",
    "WindowStore",
    "WindowView",
    "lazy_window_view",
    "shuffled_batch_indices",
    "split_bounds",
    "supervised_pairs",
    "window_count",
]
