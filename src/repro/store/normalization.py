"""Min-max normalization (paper Sec. IV-D) with incremental statistics.

The paper maps all features to [0, 1] with min-max normalization and
denormalizes predictions before computing MAE/RMSE. The scaler here is
per-feature (last axis) and explicitly invertible.

This module lives in ``repro.store`` (the chunked-dataflow leaf) so the
same scaler object can be fitted offline on a full tensor *or* refreshed
online as slots stream into a :class:`~repro.store.store.WindowStore` —
``partial_fit`` merges running extrema chunk by chunk and is bit-exactly
equivalent to one ``fit`` over the concatenated data. ``repro.data``
re-exports it unchanged for existing callers.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np


class MinMaxScaler:
    """Per-feature min-max scaler over the trailing axis.

    ``quantile`` (optional) makes the scaler *robust*: the per-feature
    "max" is that quantile of the data instead of the absolute maximum, so
    a single extreme cell does not crush every other value toward zero.
    The transform stays affine and exactly invertible — values above the
    quantile simply map above 1. Demand data with one dominant hub is
    exactly the case this exists for.

    ``count`` tracks how many ``(..., F)`` rows the running extrema have
    seen, so a restored scaler (:meth:`from_state`) can resume
    ``partial_fit`` after a service restart.
    """

    def __init__(self, quantile: Optional[float] = None):
        if quantile is not None and not 0.5 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0.5, 1], got {quantile}")
        self.quantile = quantile
        self.minimum: Optional[np.ndarray] = None
        self.maximum: Optional[np.ndarray] = None
        self.count: int = 0

    @property
    def fitted(self) -> bool:
        return self.minimum is not None

    @staticmethod
    def _rows(tensor: np.ndarray) -> int:
        return int(math.prod(tensor.shape[:-1]))

    def fit(self, tensor: np.ndarray) -> "MinMaxScaler":
        """Learn per-feature min/max from ``(..., F)`` data."""
        tensor = np.asarray(tensor)
        axes = tuple(range(tensor.ndim - 1))
        self.minimum = tensor.min(axis=axes)
        if self.quantile is None:
            self.maximum = tensor.max(axis=axes)
        else:
            flat = tensor.reshape(-1, tensor.shape[-1])
            self.maximum = np.quantile(flat, self.quantile, axis=0)
            # Guard degenerate features whose quantile equals the minimum.
            collapsed = self.maximum <= self.minimum
            if np.any(collapsed):
                true_max = flat.max(axis=0)
                self.maximum = np.where(collapsed, true_max, self.maximum)
        self.count = self._rows(tensor)
        return self

    def partial_fit(self, tensor: np.ndarray) -> "MinMaxScaler":
        """Merge one chunk of ``(..., F)`` data into the running extrema.

        Running ``np.minimum``/``np.maximum`` merges are bit-exactly the
        min/max of the concatenated chunks, so any chunking of the same
        data yields the same fitted state as a single :meth:`fit` — the
        parity the streaming ingestion path relies on. The robust quantile
        is a rank statistic over the *full* sample and cannot be merged
        chunkwise, so quantile mode refuses loudly rather than drifting.
        """
        if self.quantile is not None:
            raise ValueError(
                "partial_fit supports plain min-max scaling only: the robust "
                f"quantile ({self.quantile}) is a rank statistic over the full "
                "sample — gather the data and call fit() instead"
            )
        tensor = np.asarray(tensor)
        if tensor.size == 0:
            return self
        axes = tuple(range(tensor.ndim - 1))
        low = tensor.min(axis=axes)
        high = tensor.max(axis=axes)
        if not self.fitted:
            self.minimum = low
            self.maximum = high
            self.count = self._rows(tensor)
        else:
            self.minimum = np.minimum(self.minimum, low)
            self.maximum = np.maximum(self.maximum, high)
            self.count += self._rows(tensor)
        return self

    def transform(self, tensor: np.ndarray, feature: Optional[int] = None) -> np.ndarray:
        """Scale data; ``feature`` selects one channel's parameters when the
        tensor carries a single feature (e.g. realized target demand), the
        exact forward of ``inverse_transform(..., feature=...)``."""
        self._check_fitted()
        span = self._span()
        if feature is None:
            return (np.asarray(tensor) - self.minimum) / span
        return (np.asarray(tensor) - self.minimum[feature]) / span[feature]

    def fit_transform(self, tensor: np.ndarray) -> np.ndarray:
        return self.fit(tensor).transform(tensor)

    def inverse_transform(self, tensor: np.ndarray, feature: Optional[int] = None) -> np.ndarray:
        """Undo scaling; ``feature`` selects one channel's parameters when the
        data carries a single feature (e.g. predicted bike pick-ups)."""
        self._check_fitted()
        if feature is None:
            return np.asarray(tensor) * self._span() + self.minimum
        span = self._span()[feature]
        return np.asarray(tensor) * span + self.minimum[feature]

    def _span(self) -> np.ndarray:
        span = self.maximum - self.minimum
        # Constant features map to 0 rather than dividing by zero.
        return np.where(span == 0, 1.0, span)

    def _check_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError("scaler must be fitted before use")

    def state(self) -> dict:
        """Everything needed to rebuild this fitted scaler elsewhere.

        ``quantile`` rides along so a restored robust scaler stays robust if
        it is ever refitted (a restored scaler that silently became a plain
        max scaler would renormalize served data differently than training).
        ``count`` rides along so a warmed service resumes ``partial_fit``
        from the statistics it shut down with.
        """
        self._check_fitted()
        return {
            "minimum": self.minimum.copy(),
            "maximum": self.maximum.copy(),
            "quantile": self.quantile,
            "count": int(self.count),
        }

    @classmethod
    def from_state(cls, state: dict) -> "MinMaxScaler":
        missing = sorted({"minimum", "maximum"} - set(state))
        if missing:
            raise ValueError(
                f"MinMaxScaler.from_state: state dict is missing {missing}; "
                "expected a dict produced by MinMaxScaler.state()"
            )
        # Older state dicts predate the "quantile" key; absent means plain
        # min-max, which is what they were. Likewise "count": absent means
        # the provenance row count is unknown, and the first partial_fit
        # after restore still merges correctly (extrema are present).
        scaler = cls(quantile=state.get("quantile"))
        scaler.minimum = np.asarray(state["minimum"])
        scaler.maximum = np.asarray(state["maximum"])
        scaler.count = int(state.get("count", 0))
        return scaler
