"""Zero-copy sliding-window construction for multi-step forecasting.

The paper uses two hours of history (h = 8 slots of 15 minutes) to predict
the next p ∈ [2, 8] slots of bike pick-up demand.

``lazy_window_view`` wraps ``np.lib.stride_tricks.sliding_window_view``:
the view shares the source tensor's memory (O(1) regardless of window
count) and only the batch-slice that is actually consumed gets copied.
``supervised_pairs`` materializes ``(X, Y)`` pairs from those views and is
bit-identical to the historical Python-loop ``np.stack`` implementation of
``repro.data.windows.make_windows`` (pinned by tests), including
``stride > 1`` thinning — both produce fresh C-contiguous copies of the
same float values.

Per layering rule 11, this module is the only place in ``src/repro``
allowed to touch the stride-trick primitives.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view


def window_count(total: int, history: int, horizon: int) -> int:
    """Number of supervised windows a series of ``total`` slots yields."""
    if history < 1 or horizon < 1:
        raise ValueError("history and horizon must be positive")
    return max(0, total - history - horizon + 1)


def _validate(tensor: np.ndarray, history: int, horizon: int) -> int:
    if tensor.ndim != 4:
        raise ValueError(f"expected (T, G1, G2, F) tensor, got shape {tensor.shape}")
    if history < 1 or horizon < 1:
        raise ValueError("history and horizon must be positive")
    total = tensor.shape[0]
    count = total - history - horizon + 1
    if count <= 0:
        raise ValueError(
            f"series of length {total} too short for history={history}, horizon={horizon}"
        )
    return count


def lazy_window_view(tensor: np.ndarray, length: int) -> np.ndarray:
    """``(T, ...)`` → zero-copy ``(T - length + 1, length, ...)`` view.

    Window ``i`` is ``tensor[i : i + length]`` without copying: the result
    aliases ``tensor``'s buffer via stride tricks (the window axis is moved
    to position 1, the layout ``sliding_window_view`` hands back puts it
    last). Slicing the result copies only the slice.
    """
    view = sliding_window_view(tensor, length, axis=0)
    return np.moveaxis(view, -1, 1)


def supervised_pairs(
    tensor: np.ndarray,
    history: int,
    horizon: int,
    target_feature: int = 0,
    stride: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Slice ``(T, G1, G2, F)`` into supervised pairs.

    Returns ``X`` of shape ``(N, history, G1, G2, F)`` and ``Y`` of shape
    ``(N, horizon, G1, G2)`` where ``Y`` holds the target feature only.
    Windows are chronological; ``stride`` thins them.
    """
    tensor = np.asarray(tensor)
    count = _validate(tensor, history, horizon)
    starts = np.arange(0, count, stride)
    x_view = lazy_window_view(tensor, history)
    y_view = lazy_window_view(tensor[history:, :, :, target_feature], horizon)
    # Fancy indexing materializes fresh C-contiguous copies, exactly like
    # the historical per-start np.stack loop.
    return x_view[starts], y_view[starts]


def split_bounds(
    count: int, ratios: Tuple[float, float, float] = (0.6, 0.2, 0.2)
) -> Tuple[int, int]:
    """Chronological split boundaries ``(train_end, val_end)`` over windows.

    Shared by the eager :func:`repro.data.splits.chronological_split` and
    the store's lazy split views so both partition identically (paper:
    6:2:2; chronological to avoid leakage between overlapping windows).
    """
    if abs(sum(ratios) - 1.0) > 1e-9:
        raise ValueError(f"ratios must sum to 1, got {ratios}")
    if any(r < 0 for r in ratios):
        raise ValueError(f"ratios must be non-negative, got {ratios}")
    train_end = int(np.floor(count * ratios[0]))
    val_end = train_end + int(np.floor(count * ratios[1]))
    if train_end == 0 or val_end == train_end or val_end == count:
        if count < 3:
            raise ValueError(f"need at least 3 windows to split, got {count}")
        # Degenerate rounding on tiny datasets: guarantee non-empty parts.
        train_end = max(1, train_end)
        val_end = max(train_end + 1, min(val_end, count - 1))
    return train_end, val_end


def shuffled_batch_indices(
    count: int, batch_size: int, rng: np.random.Generator = None
) -> Sequence[np.ndarray]:
    """Yield index batches exactly like ``nn.training.iterate_minibatches``.

    Same ``np.arange`` + ``rng.shuffle`` call sequence, so a streamed epoch
    consumes the trainer RNG identically to an in-memory epoch and the two
    produce bit-identical batch orderings.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    order = np.arange(count)
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, count, batch_size):
        yield order[start : start + batch_size]
