"""Fixed-size time-chunked storage for the demand tensor.

A :class:`ChunkBuffer` holds a growing ``(T, *frame_shape)`` series as a
list of preallocated chunks of ``chunk_slots`` time slots each. Appends
amortize to O(1) (no quadratic re-concatenation as slots stream in) and a
``gather`` that stays inside one chunk is a zero-copy view — the common
case for batch-sized window slices once ``chunk_slots`` exceeds
``history + horizon``.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

DEFAULT_CHUNK_SLOTS = 256


class ChunkBuffer:
    """Append-only chunked buffer over the leading (time) axis."""

    def __init__(
        self,
        frame_shape: Optional[Tuple[int, ...]] = None,
        chunk_slots: int = DEFAULT_CHUNK_SLOTS,
        dtype=np.float64,
    ):
        if chunk_slots < 1:
            raise ValueError(f"chunk_slots must be positive, got {chunk_slots}")
        self.chunk_slots = int(chunk_slots)
        self.dtype = np.dtype(dtype)
        self.frame_shape = tuple(frame_shape) if frame_shape is not None else None
        self._chunks: list[np.ndarray] = []
        self._filled = 0  # slots used in the last chunk

    def __len__(self) -> int:
        if not self._chunks:
            return 0
        return (len(self._chunks) - 1) * self.chunk_slots + self._filled

    @property
    def num_slots(self) -> int:
        return len(self)

    def extend(self, slots: np.ndarray) -> int:
        """Append ``(n, *frame_shape)`` slots (or one bare frame); return n."""
        slots = np.asarray(slots, dtype=self.dtype)
        if self.frame_shape is None:
            if slots.ndim < 1:
                raise ValueError("cannot infer frame shape from a scalar")
            self.frame_shape = tuple(slots.shape[1:]) if slots.ndim > 1 else ()
        if slots.shape == self.frame_shape:  # a single bare frame
            slots = slots[np.newaxis]
        if slots.shape[1:] != self.frame_shape:
            raise ValueError(
                f"slot shape {slots.shape[1:]} does not match "
                f"frame shape {self.frame_shape}"
            )
        remaining = slots.shape[0]
        offset = 0
        while remaining:
            if not self._chunks or self._filled == self.chunk_slots:
                self._chunks.append(
                    np.empty((self.chunk_slots, *self.frame_shape), dtype=self.dtype)
                )
                self._filled = 0
            take = min(remaining, self.chunk_slots - self._filled)
            self._chunks[-1][self._filled : self._filled + take] = slots[
                offset : offset + take
            ]
            self._filled += take
            offset += take
            remaining -= take
        return slots.shape[0]

    def gather(self, start: int, stop: int) -> np.ndarray:
        """Slots ``[start, stop)`` as one array.

        Zero-copy view when the range lies within a single chunk; otherwise
        the pieces are copied into a fresh array of just ``stop - start``
        slots (never the whole series).
        """
        total = len(self)
        if not 0 <= start <= stop <= total:
            raise IndexError(
                f"slot range [{start}, {stop}) out of bounds for {total} slots"
            )
        if start == stop:
            shape = (0, *(self.frame_shape or ()))
            return np.empty(shape, dtype=self.dtype)
        first, first_off = divmod(start, self.chunk_slots)
        last, last_off = divmod(stop - 1, self.chunk_slots)
        if first == last:
            return self._chunks[first][first_off : last_off + 1]
        out = np.empty((stop - start, *self.frame_shape), dtype=self.dtype)
        cursor = 0
        for index in range(first, last + 1):
            lo = first_off if index == first else 0
            hi = last_off + 1 if index == last else self.chunk_slots
            out[cursor : cursor + hi - lo] = self._chunks[index][lo:hi]
            cursor += hi - lo
        return out

    def chunk_views(self) -> Iterator[np.ndarray]:
        """Yield each filled chunk as a zero-copy view, in time order."""
        for index, chunk in enumerate(self._chunks):
            if index == len(self._chunks) - 1:
                yield chunk[: self._filled]
            else:
                yield chunk
