"""The unified window/feature store: one chunked, lazy dataflow.

A :class:`WindowStore` owns the growing ``(T, G1, G2, F)`` demand tensor
as fixed-size time chunks (:class:`~repro.store.chunks.ChunkBuffer`) and
hands out *lazy* supervised windows over it:

- ``extend(slots)`` appends aggregated slots — the training loader, the
  streaming city simulator and live serve ingestion all call the same
  method;
- the scaler (:class:`~repro.store.normalization.MinMaxScaler`) is fitted
  incrementally chunk by chunk (``partial_fit``), bit-identical to one
  whole-tensor ``fit``;
- window ``i`` is normalized + clipped *at materialization time* from the
  raw slots ``[i, i + history + horizon)`` — normalization is elementwise,
  so normalize-then-window equals window-then-normalize bitwise and lazy
  batches match the eager ``make_windows`` path exactly (pinned by tests);
- ``split_views`` partitions the window range chronologically with the
  same boundaries as ``repro.data.splits.chronological_split``;
- :class:`WindowIterator` streams ``(X, Y)`` batches holding only
  ``O(batch)`` windows in memory.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.store.chunks import DEFAULT_CHUNK_SLOTS, ChunkBuffer
from repro.store.normalization import MinMaxScaler
from repro.store.windows import (
    lazy_window_view,
    shuffled_batch_indices,
    split_bounds,
    supervised_pairs,
    window_count,
)


class WindowStore:
    """Chunked, incrementally-normalized store of supervised windows."""

    def __init__(
        self,
        history: int,
        horizon: int,
        target_feature: int = 0,
        chunk_slots: int = DEFAULT_CHUNK_SLOTS,
        scaler: Optional[MinMaxScaler] = None,
        normalize: bool = True,
        clip_min: Optional[float] = 0.0,
        dtype=np.float64,
    ):
        if history < 1 or horizon < 1:
            raise ValueError("history and horizon must be positive")
        self.history = int(history)
        self.horizon = int(horizon)
        self.target_feature = int(target_feature)
        self.scaler = scaler if scaler is not None else MinMaxScaler()
        self.normalize = normalize
        self.clip_min = clip_min
        self._chunks = ChunkBuffer(chunk_slots=chunk_slots, dtype=dtype)

    # ---------------------------------------------------------------- shape

    @property
    def num_slots(self) -> int:
        return len(self._chunks)

    @property
    def num_windows(self) -> int:
        """Windows whose full history *and* horizon have materialized."""
        return window_count(self.num_slots, self.history, self.horizon)

    @property
    def frame_shape(self) -> Optional[Tuple[int, ...]]:
        return self._chunks.frame_shape

    @property
    def grid_shape(self) -> Tuple[int, int]:
        frame = self._require_frame()
        return (frame[0], frame[1])

    @property
    def num_features(self) -> int:
        return self._require_frame()[2]

    def _require_frame(self) -> Tuple[int, ...]:
        if self._chunks.frame_shape is None:
            raise RuntimeError("store is empty: extend() slots before querying shape")
        return self._chunks.frame_shape

    # --------------------------------------------------------------- append

    def extend(self, slots: np.ndarray, update_scaler: bool = False) -> int:
        """Append ``(n, G1, G2, F)`` aggregated slots; return n.

        ``update_scaler=True`` folds the new raw slots into the running
        scaler statistics (``partial_fit``) — the live-ingestion refresh
        path. Offline dataset builds instead fit once on the training range
        (:meth:`fit_scaler`) to keep normalization leakage-free.
        """
        slots = np.asarray(slots)
        if slots.ndim == 3:
            slots = slots[np.newaxis]
        if slots.ndim != 4:
            raise ValueError(f"expected (n, G1, G2, F) slots, got shape {slots.shape}")
        appended = self._chunks.extend(slots)
        if update_scaler and appended:
            self.scaler.partial_fit(self.raw_slots(self.num_slots - appended))
        return appended

    def fit_scaler(self, slots: Optional[int] = None) -> MinMaxScaler:
        """(Re)fit the scaler on the first ``slots`` raw slots (default all).

        Plain min-max streams ``partial_fit`` chunk by chunk — never
        materializing the range — with bit-exact parity to a whole-range
        ``fit``. The robust quantile is a rank statistic, so quantile mode
        gathers the range and fits eagerly.
        """
        stop = self.num_slots if slots is None else min(int(slots), self.num_slots)
        stop = max(stop, 1)
        if self.scaler.quantile is not None:
            return self.scaler.fit(self.raw_slots(0, stop))
        fresh = MinMaxScaler()
        for piece in self._iter_raw(0, stop):
            fresh.partial_fit(piece)
        self.scaler.minimum = fresh.minimum
        self.scaler.maximum = fresh.maximum
        self.scaler.count = fresh.count
        return self.scaler

    def _iter_raw(self, start: int, stop: int) -> Iterator[np.ndarray]:
        """Zero-copy pieces of raw slots ``[start, stop)``, chunk by chunk."""
        cursor = 0
        for view in self._chunks.chunk_views():
            chunk_end = cursor + len(view)
            if chunk_end > start and cursor < stop:
                yield view[max(start - cursor, 0) : min(stop, chunk_end) - cursor]
            cursor = chunk_end
            if cursor >= stop:
                break

    # ----------------------------------------------------------------- raw

    def raw_slots(self, start: int = 0, stop: Optional[int] = None) -> np.ndarray:
        """Raw (denormalized) slots ``[start, stop)``."""
        stop = self.num_slots if stop is None else stop
        return self._chunks.gather(start, stop)

    def raw_window(self, index: int) -> np.ndarray:
        """Raw history window ``index``: slots ``[index, index + history)``."""
        return self._chunks.gather(index, index + self.history)

    def latest_raw_window(self) -> Optional[np.ndarray]:
        """The most recent full history window, or None if too few slots."""
        if self.num_slots < self.history:
            return None
        return self._chunks.gather(self.num_slots - self.history, self.num_slots)

    # ------------------------------------------------------------- windows

    def _prepare(self, slots: np.ndarray) -> np.ndarray:
        """Normalize + clip a raw slot span exactly like the eager path."""
        if not self.normalize:
            return slots
        normalized = self.scaler.transform(slots)
        if self.clip_min is not None:
            normalized = np.clip(normalized, self.clip_min, None)
        return normalized

    def windows(
        self,
        start: int = 0,
        stop: Optional[int] = None,
        stride: int = 1,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Materialize windows ``[start, stop)`` as ``(X, Y)`` arrays.

        Gathers only the covering slot span, normalizes it, then slices
        through the zero-copy window view — identical values to windowing
        the whole normalized tensor eagerly.
        """
        stop = self.num_windows if stop is None else stop
        self._check_window_range(start, stop)
        if stop == start:
            return self._empty_x(), self._empty_y()
        span = self._prepare(
            self._chunks.gather(start, stop - 1 + self.history + self.horizon)
        )
        return supervised_pairs(
            span, self.history, self.horizon, self.target_feature, stride=stride
        )

    def windows_x(self, start: int = 0, stop: Optional[int] = None) -> np.ndarray:
        """History windows only (no targets) — the forecast-decode input."""
        stop = self.num_windows if stop is None else stop
        self._check_window_range(start, stop)
        if stop == start:
            return self._empty_x()
        span = self._prepare(self._chunks.gather(start, stop - 1 + self.history))
        return np.ascontiguousarray(lazy_window_view(span, self.history))

    def windows_y(self, start: int = 0, stop: Optional[int] = None) -> np.ndarray:
        """Target horizons only."""
        stop = self.num_windows if stop is None else stop
        self._check_window_range(start, stop)
        if stop == start:
            return self._empty_y()
        span = self._prepare(
            self._chunks.gather(start + self.history, stop - 1 + self.history + self.horizon)
        )
        return np.ascontiguousarray(
            lazy_window_view(span[:, :, :, self.target_feature], self.horizon)
        )

    def windows_at(self, indices: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Materialize an arbitrary (e.g. shuffled) batch of windows.

        Holds only ``O(len(indices))`` windows: each index gathers its own
        ``history + horizon`` slot span (a zero-copy chunk view in the
        common case) and normalizes just that span.
        """
        indices = np.asarray(indices, dtype=np.intp)
        frame = self._require_frame()
        grid = frame[:2]
        x = np.empty((len(indices), self.history, *frame), dtype=self._chunks.dtype)
        y = np.empty((len(indices), self.horizon, *grid), dtype=self._chunks.dtype)
        for row, index in enumerate(indices):
            index = int(index)
            self._check_window_range(index, index + 1)
            span = self._prepare(
                self._chunks.gather(index, index + self.history + self.horizon)
            )
            x[row] = span[: self.history]
            y[row] = span[self.history :, :, :, self.target_feature]
        return x, y

    def _check_window_range(self, start: int, stop: int) -> None:
        if not 0 <= start <= stop <= self.num_windows:
            raise IndexError(
                f"window range [{start}, {stop}) out of bounds for "
                f"{self.num_windows} windows"
            )

    def _empty_x(self) -> np.ndarray:
        frame = self._require_frame()
        return np.empty((0, self.history, *frame), dtype=self._chunks.dtype)

    def _empty_y(self) -> np.ndarray:
        frame = self._require_frame()
        return np.empty((0, self.horizon, *frame[:2]), dtype=self._chunks.dtype)

    # --------------------------------------------------------------- views

    def view(self, start: int = 0, stop: Optional[int] = None) -> "WindowView":
        stop = self.num_windows if stop is None else stop
        self._check_window_range(start, stop)
        return WindowView(self, start, stop)

    def split_views(
        self, ratios: Tuple[float, float, float] = (0.6, 0.2, 0.2)
    ) -> Tuple["WindowView", "WindowView", "WindowView"]:
        """Chronological train/val/test views (same bounds as the eager split)."""
        count = self.num_windows
        train_end, val_end = split_bounds(count, ratios)
        return (
            WindowView(self, 0, train_end),
            WindowView(self, train_end, val_end),
            WindowView(self, val_end, count),
        )

    @classmethod
    def from_tensor(
        cls,
        tensor: np.ndarray,
        history: int,
        horizon: int,
        target_feature: int = 0,
        chunk_slots: int = DEFAULT_CHUNK_SLOTS,
        scaler: Optional[MinMaxScaler] = None,
        fit_slots: Optional[int] = None,
        normalize: bool = True,
    ) -> "WindowStore":
        """Build a store from an in-memory ``(T, G1, G2, F)`` tensor.

        Slots are appended chunk by chunk; with ``normalize`` and no
        pre-fitted ``scaler``, the scaler is fitted on the first
        ``fit_slots`` raw slots (default: all).
        """
        tensor = np.asarray(tensor)
        store = cls(
            history,
            horizon,
            target_feature=target_feature,
            chunk_slots=chunk_slots,
            scaler=scaler,
            normalize=normalize,
        )
        for start in range(0, tensor.shape[0], store._chunks.chunk_slots):
            store.extend(tensor[start : start + store._chunks.chunk_slots])
        if normalize and not store.scaler.fitted:
            store.fit_scaler(fit_slots)
        return store


class LazyWindows:
    """Sliceable, lazily-materialized window sequence over a view.

    Supports ``len``, integer indexing and contiguous slicing — the full
    protocol ``pipeline.forecast`` decoding needs — materializing only the
    slice requested. ``np.asarray`` materializes everything.
    """

    def __init__(self, view: "WindowView", part: str):
        if part not in ("x", "y"):
            raise ValueError(f"part must be 'x' or 'y', got {part!r}")
        self._view = view
        self._part = part

    def __len__(self) -> int:
        return len(self._view)

    def __getitem__(self, key):
        view = self._view
        if isinstance(key, slice):
            start, stop, step = key.indices(len(view))
            if step != 1:
                raise ValueError("LazyWindows slices must be contiguous (step 1)")
            return self._materialize(view.start + start, view.start + max(stop, start))
        index = int(key)
        if index < 0:
            index += len(view)
        if not 0 <= index < len(view):
            raise IndexError(f"window {key} out of range for {len(view)} windows")
        return self._materialize(view.start + index, view.start + index + 1)[0]

    def _materialize(self, start: int, stop: int) -> np.ndarray:
        store = self._view.store
        if self._part == "x":
            return store.windows_x(start, stop)
        return store.windows_y(start, stop)

    def __array__(self, dtype=None, copy=None):
        arrays = self._materialize(self._view.start, self._view.stop)
        return arrays if dtype is None else arrays.astype(dtype)


class WindowView:
    """A contiguous range ``[start, stop)`` of a store's windows."""

    def __init__(self, store: WindowStore, start: int, stop: int):
        self.store = store
        self.start = int(start)
        self.stop = int(stop)

    def __len__(self) -> int:
        return self.stop - self.start

    @property
    def num_samples(self) -> int:
        return len(self)

    @property
    def x(self) -> LazyWindows:
        return LazyWindows(self, "x")

    @property
    def targets(self) -> LazyWindows:
        return LazyWindows(self, "y")

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Materialize the whole view as eager ``(X, Y)`` arrays."""
        return self.store.windows(self.start, self.stop)

    def raw_x(self) -> np.ndarray:
        """The view's *raw* (denormalized) history windows, stacked.

        What an online caller would actually send: demand counts straight
        from the store's chunks, before any normalization. Serving layers
        use this instead of re-slicing windows themselves.
        """
        if len(self) == 0:
            return np.empty(
                (0, self.store.history, *self.store._require_frame()),
                dtype=self.store._chunks.dtype,
            )
        span = self.store.raw_slots(self.start, self.stop - 1 + self.store.history)
        return np.ascontiguousarray(lazy_window_view(span, self.store.history))

    def batches(
        self, batch_size: int, rng: Optional[np.random.Generator] = None
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Stream ``(X, Y)`` batches, shuffled exactly like the eager loop.

        Consumes ``rng`` identically to ``iterate_minibatches`` so a
        streamed epoch is bit-identical to an in-memory one.
        """
        for indices in shuffled_batch_indices(len(self), batch_size, rng):
            yield self.store.windows_at(self.start + indices)


class WindowIterator:
    """Re-iterable ``(X, Y)`` batch stream over a view.

    Satisfies the trainer's batch-source protocol (``num_samples`` +
    ``batches``) and doubles as a plain unshuffled iterable for evaluation
    sweeps; memory stays ``O(batch)`` either way.
    """

    def __init__(
        self,
        view: WindowView,
        batch_size: int = 32,
        rng: Optional[np.random.Generator] = None,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.view = view
        self.batch_size = int(batch_size)
        self.rng = rng

    @property
    def num_samples(self) -> int:
        return len(self.view)

    def batches(
        self, batch_size: Optional[int] = None, rng: Optional[np.random.Generator] = None
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        return self.view.batches(batch_size or self.batch_size, rng if rng is not None else self.rng)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        return self.view.batches(self.batch_size, self.rng)
