"""Graph convolution layers on the numpy substrate."""

from __future__ import annotations

import numpy as np

from repro.nn import init, ops
from repro.nn.layers.base import Module, Parameter
from repro.nn.tensor import Tensor
from repro.graph.adjacency import chebyshev_polynomials, scaled_laplacian


class ChebGraphConv(Module):
    """Chebyshev-polynomial graph convolution (Defferrard et al., 2016).

    ``y = Σ_k T_k(L̂) x W_k`` over node features ``x`` of shape
    ``(..., N, C_in)``; the polynomial stack is precomputed from the fixed
    adjacency at construction time.
    """

    def __init__(self, adjacency: np.ndarray, in_channels: int, out_channels: int, order: int = 3, rng=None):
        super().__init__()
        self.order = order
        self.in_channels = in_channels
        self.out_channels = out_channels
        polynomials = chebyshev_polynomials(scaled_laplacian(adjacency), order)
        self.polynomials = [Tensor(p) for p in polynomials]
        rng = init.default_rng(rng)
        self.weight = Parameter(init.glorot_uniform((order, in_channels, out_channels), rng))
        self.bias = Parameter(init.zeros((out_channels,)))

    def forward(self, x):
        output = None
        for k, basis in enumerate(self.polynomials):
            # (..., N, C) -> T_k applied over the node axis, then channel map.
            diffused = ops.matmul(basis, x)
            term = ops.matmul(diffused, self.weight[k])
            output = term if output is None else ops.add(output, term)
        return ops.add(output, self.bias)


class DenseGraphConv(Module):
    """First-order GCN layer ``y = Â x W`` with a fixed propagation matrix.

    Used by the STSGCN baseline on its localized spatial-temporal graph.
    """

    def __init__(self, propagation: np.ndarray, in_channels: int, out_channels: int, rng=None):
        super().__init__()
        self.propagation = Tensor(np.asarray(propagation, dtype=float))
        rng = init.default_rng(rng)
        self.weight = Parameter(init.glorot_uniform((in_channels, out_channels), rng))
        self.bias = Parameter(init.zeros((out_channels,)))

    def forward(self, x):
        diffused = ops.matmul(self.propagation, x)
        return ops.add(ops.matmul(diffused, self.weight), self.bias)
