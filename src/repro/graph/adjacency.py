"""Grid → graph conversion for the graph baselines.

Per the paper's STGCN setup: "We transfer each grid as a node, and use
h-hop neighbor grids to construct the relation matrix"; grids within h hops
are connected.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def grid_adjacency(rows: int, cols: int, hops: int = 1) -> np.ndarray:
    """Adjacency matrix of the ``rows×cols`` grid with ``hops``-hop links.

    Nodes are cells in row-major order; two cells are connected when their
    Chebyshev (chessboard) distance is at most ``hops``. Diagonal is zero.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"grid must be at least 1x1, got {rows}x{cols}")
    if hops < 1:
        raise ValueError(f"hops must be >= 1, got {hops}")
    row_index, col_index = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    row_flat = row_index.ravel()
    col_flat = col_index.ravel()
    row_distance = np.abs(row_flat[:, None] - row_flat[None, :])
    col_distance = np.abs(col_flat[:, None] - col_flat[None, :])
    adjacency = ((np.maximum(row_distance, col_distance) <= hops)).astype(float)
    np.fill_diagonal(adjacency, 0.0)
    return adjacency


def normalized_laplacian(adjacency: np.ndarray) -> np.ndarray:
    """Symmetric normalized Laplacian ``L = I − D^{-1/2} A D^{-1/2}``."""
    adjacency = np.asarray(adjacency, dtype=float)
    degree = adjacency.sum(axis=1)
    inv_sqrt = np.where(degree > 0, 1.0 / np.sqrt(np.maximum(degree, 1e-12)), 0.0)
    normalized = adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]
    return np.eye(len(adjacency)) - normalized


def scaled_laplacian(adjacency: np.ndarray) -> np.ndarray:
    """Rescale the Laplacian to [-1, 1]: ``L̂ = 2L/λ_max − I`` (ChebNet)."""
    laplacian = normalized_laplacian(adjacency)
    eigenvalues = np.linalg.eigvalsh(laplacian)
    lambda_max = float(eigenvalues[-1])
    if lambda_max <= 0:
        return laplacian - np.eye(len(laplacian))
    return (2.0 / lambda_max) * laplacian - np.eye(len(laplacian))


def chebyshev_polynomials(scaled: np.ndarray, order: int) -> np.ndarray:
    """Stack ``T_0 … T_{K-1}`` of the scaled Laplacian, shape ``(K, N, N)``.

    Chebyshev recurrence: ``T_k = 2 L̂ T_{k-1} − T_{k-2}``.
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    count = scaled.shape[0]
    polynomials = [np.eye(count)]
    if order > 1:
        polynomials.append(scaled.copy())
    for _ in range(2, order):
        polynomials.append(2.0 * scaled @ polynomials[-1] - polynomials[-2])
    return np.stack(polynomials)


def localized_spatial_temporal_adjacency(adjacency: np.ndarray, steps: int = 3) -> np.ndarray:
    """STSGCN's localized spatial-temporal graph over ``steps`` time slices.

    Block matrix of shape ``(steps*N, steps*N)``: spatial adjacency on the
    diagonal blocks, identity links between the same node at adjacent time
    steps on the off-diagonal blocks — connecting each node to itself in the
    previous/next slice (Song et al., AAAI 2020).
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    count = adjacency.shape[0]
    size = steps * count
    block = np.zeros((size, size))
    identity = np.eye(count)
    for step in range(steps):
        start = step * count
        block[start : start + count, start : start + count] = adjacency
        if step + 1 < steps:
            nxt = start + count
            block[start : start + count, nxt : nxt + count] = identity
            block[nxt : nxt + count, start : start + count] = identity
    return block


def grid_cell_index(rows: int, cols: int) -> Tuple[np.ndarray, np.ndarray]:
    """Row-major (row, col) coordinates of every node, for round-tripping."""
    row_index, col_index = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    return row_index.ravel(), col_index.ravel()
