"""Graph substrate for the STGCN / STSGCN baselines."""

from repro.graph.adjacency import (
    chebyshev_polynomials,
    grid_adjacency,
    grid_cell_index,
    localized_spatial_temporal_adjacency,
    normalized_laplacian,
    scaled_laplacian,
)
from repro.graph.conv import ChebGraphConv, DenseGraphConv

__all__ = [
    "ChebGraphConv",
    "DenseGraphConv",
    "chebyshev_polynomials",
    "grid_adjacency",
    "grid_cell_index",
    "localized_spatial_temporal_adjacency",
    "normalized_laplacian",
    "scaled_laplacian",
]
