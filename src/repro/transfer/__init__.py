"""Station-level transfer-time analysis (paper Sec. V-D future work)."""

from repro.transfer.estimation import (
    TransferStats,
    estimate_transfer_times,
    match_transfers,
    stations_exceeding_threshold,
)

__all__ = [
    "TransferStats",
    "estimate_transfer_times",
    "match_transfers",
    "stations_exceeding_threshold",
]
