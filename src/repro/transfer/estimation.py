"""Station-level transfer-time estimation (paper future work, Sec. V-D).

The paper proposes estimating, per subway station, the average time between
a passenger *exiting* the station and *picking up* a bike nearby, to drive
timetable rescheduling. This module implements that analysis over trip
records: it joins subway alightings with subsequent bike pick-ups of the
same (anonymous) user id within a matching window and aggregates per
station.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.city.records import BikeRecordBatch, SubwayRecordBatch
from repro.city.simulator import SyntheticCity


@dataclass(frozen=True)
class TransferStats:
    """Transfer-time statistics for one subway station."""

    station_id: int
    transfers: int
    mean_seconds: float
    median_seconds: float
    p90_seconds: float

    @property
    def mean_minutes(self) -> float:
        return self.mean_seconds / 60.0


def match_transfers(
    subway: SubwayRecordBatch,
    bikes: BikeRecordBatch,
    max_gap_seconds: float = 30 * 60,
) -> Dict[int, np.ndarray]:
    """Per-station arrays of observed transfer gaps (seconds).

    A transfer is a subway alighting followed by the same user's next bike
    pick-up within ``max_gap_seconds``. User ids are the anonymized SZT/user
    ids the paper's datasets carry.
    """
    gaps: Dict[int, List[float]] = {}

    alight_mask = ~subway.boarding
    alight_users = subway.user_ids[alight_mask]
    alight_times = subway.times[alight_mask]
    alight_stations = subway.station_ids[alight_mask]

    pick_mask = bikes.pickup
    pick_users = bikes.user_ids[pick_mask]
    pick_times = bikes.times[pick_mask]

    # Index bike pick-ups by user for O(1) lookup; times are already sorted.
    pickup_index: Dict[int, np.ndarray] = {}
    order = np.argsort(pick_users, kind="stable")
    sorted_users = pick_users[order]
    sorted_times = pick_times[order]
    boundaries = np.flatnonzero(np.diff(sorted_users)) + 1
    for chunk_users, chunk_times in zip(
        np.split(sorted_users, boundaries), np.split(sorted_times, boundaries)
    ):
        if len(chunk_users):
            pickup_index[int(chunk_users[0])] = np.sort(chunk_times)

    for user, time, station in zip(alight_users, alight_times, alight_stations):
        user_pickups = pickup_index.get(int(user))
        if user_pickups is None:
            continue
        position = np.searchsorted(user_pickups, time, side="right")
        if position >= len(user_pickups):
            continue
        gap = float(user_pickups[position] - time)
        if gap <= max_gap_seconds:
            gaps.setdefault(int(station), []).append(gap)

    return {station: np.asarray(values) for station, values in gaps.items()}


def estimate_transfer_times(
    city: SyntheticCity,
    max_gap_seconds: float = 30 * 60,
    min_transfers: int = 5,
) -> Dict[int, TransferStats]:
    """Aggregate matched transfers into per-station statistics."""
    gaps = match_transfers(city.subway_records, city.bike_records, max_gap_seconds)
    stats: Dict[int, TransferStats] = {}
    for station, values in gaps.items():
        if len(values) < min_transfers:
            continue
        stats[station] = TransferStats(
            station_id=station,
            transfers=len(values),
            mean_seconds=float(values.mean()),
            median_seconds=float(np.median(values)),
            p90_seconds=float(np.percentile(values, 90)),
        )
    return stats


def stations_exceeding_threshold(
    stats: Dict[int, TransferStats],
    threshold_seconds: float,
) -> List[int]:
    """Stations whose mean transfer time exceeds the rescheduling threshold.

    The paper's proposed use: when a station's transfer time exceeds a
    pre-defined threshold, operators reschedule the downstream timetable.
    """
    return sorted(
        station
        for station, stat in stats.items()
        if stat.mean_seconds > threshold_seconds
    )
