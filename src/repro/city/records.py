"""Trip-record formats matching the paper's Tables I and II.

The simulator produces records in two layouts:

- :class:`SubwayRecord` / :class:`BikeRecord` — one dataclass per row,
  mirroring the paper's tables field-for-field (SZT ID, time, line, status,
  station / user ID, GPS point, bike ID).
- :class:`SubwayRecordBatch` / :class:`BikeRecordBatch` — column-oriented
  numpy batches, the fast path the aggregation pipeline consumes. Batches
  convert losslessly to row records for inspection and tests.

Times are seconds since the start of the simulated period; formatting
helpers render them as timestamps in the dataset's month (2018-10, as in
the paper).
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

BOARDING = "Boarding"
DISEMBARKING = "Disembarking"
PICK_UP = "Pick-up"
DROP_OFF = "Drop-off"

EPOCH = dt.datetime(2018, 10, 1)


def format_time(seconds: float) -> str:
    """Render simulation seconds as the paper's timestamp format."""
    moment = EPOCH + dt.timedelta(seconds=float(seconds))
    return moment.strftime("%Y-%m-%d %H:%M:%S")


@dataclass(frozen=True)
class SubwayRecord:
    """One subway-trip row (paper Table I)."""

    record_id: int
    szt_id: int
    time_seconds: float
    line: int
    status: str  # BOARDING or DISEMBARKING
    station_id: int
    station_name: str

    @property
    def transportation(self) -> str:
        return f"Subway Line No.{self.line + 1}"

    @property
    def time(self) -> str:
        return format_time(self.time_seconds)


@dataclass(frozen=True)
class BikeRecord:
    """One bike-trip row (paper Table II)."""

    record_id: int
    user_id: int
    time_seconds: float
    latitude: float
    longitude: float
    status: str  # PICK_UP or DROP_OFF
    bike_id: int

    @property
    def location(self) -> Tuple[float, float]:
        return (self.latitude, self.longitude)

    @property
    def time(self) -> str:
        return format_time(self.time_seconds)


class SubwayRecordBatch:
    """Column-oriented subway records."""

    def __init__(
        self,
        times: np.ndarray,
        station_ids: np.ndarray,
        lines: np.ndarray,
        boarding: np.ndarray,
        user_ids: np.ndarray,
    ):
        self.times = np.asarray(times, dtype=float)
        self.station_ids = np.asarray(station_ids, dtype=int)
        self.lines = np.asarray(lines, dtype=int)
        self.boarding = np.asarray(boarding, dtype=bool)
        self.user_ids = np.asarray(user_ids, dtype=int)
        lengths = {len(self.times), len(self.station_ids), len(self.lines), len(self.boarding), len(self.user_ids)}
        if len(lengths) != 1:
            raise ValueError(f"inconsistent column lengths: {sorted(lengths)}")

    def __len__(self) -> int:
        return len(self.times)

    def sorted_by_time(self) -> "SubwayRecordBatch":
        order = np.argsort(self.times, kind="stable")
        return SubwayRecordBatch(
            self.times[order],
            self.station_ids[order],
            self.lines[order],
            self.boarding[order],
            self.user_ids[order],
        )

    def to_records(self, station_names: List[str]) -> Iterator[SubwayRecord]:
        for index in range(len(self)):
            station = int(self.station_ids[index])
            yield SubwayRecord(
                record_id=index,
                szt_id=int(self.user_ids[index]),
                time_seconds=float(self.times[index]),
                line=int(self.lines[index]),
                status=BOARDING if self.boarding[index] else DISEMBARKING,
                station_id=station,
                station_name=station_names[station],
            )

    @staticmethod
    def concatenate(batches: List["SubwayRecordBatch"]) -> "SubwayRecordBatch":
        return SubwayRecordBatch(
            np.concatenate([b.times for b in batches]) if batches else np.empty(0),
            np.concatenate([b.station_ids for b in batches]) if batches else np.empty(0, int),
            np.concatenate([b.lines for b in batches]) if batches else np.empty(0, int),
            np.concatenate([b.boarding for b in batches]) if batches else np.empty(0, bool),
            np.concatenate([b.user_ids for b in batches]) if batches else np.empty(0, int),
        )


class BikeRecordBatch:
    """Column-oriented bike records (locations as GPS fixes)."""

    def __init__(
        self,
        times: np.ndarray,
        latitudes: np.ndarray,
        longitudes: np.ndarray,
        pickup: np.ndarray,
        user_ids: np.ndarray,
        bike_ids: np.ndarray,
    ):
        self.times = np.asarray(times, dtype=float)
        self.latitudes = np.asarray(latitudes, dtype=float)
        self.longitudes = np.asarray(longitudes, dtype=float)
        self.pickup = np.asarray(pickup, dtype=bool)
        self.user_ids = np.asarray(user_ids, dtype=int)
        self.bike_ids = np.asarray(bike_ids, dtype=int)
        lengths = {
            len(self.times),
            len(self.latitudes),
            len(self.longitudes),
            len(self.pickup),
            len(self.user_ids),
            len(self.bike_ids),
        }
        if len(lengths) != 1:
            raise ValueError(f"inconsistent column lengths: {sorted(lengths)}")

    def __len__(self) -> int:
        return len(self.times)

    def sorted_by_time(self) -> "BikeRecordBatch":
        order = np.argsort(self.times, kind="stable")
        return BikeRecordBatch(
            self.times[order],
            self.latitudes[order],
            self.longitudes[order],
            self.pickup[order],
            self.user_ids[order],
            self.bike_ids[order],
        )

    def to_records(self) -> Iterator[BikeRecord]:
        for index in range(len(self)):
            yield BikeRecord(
                record_id=index,
                user_id=int(self.user_ids[index]),
                time_seconds=float(self.times[index]),
                latitude=float(self.latitudes[index]),
                longitude=float(self.longitudes[index]),
                status=PICK_UP if self.pickup[index] else DROP_OFF,
                bike_id=int(self.bike_ids[index]),
            )

    @staticmethod
    def concatenate(batches: List["BikeRecordBatch"]) -> "BikeRecordBatch":
        return BikeRecordBatch(
            np.concatenate([b.times for b in batches]) if batches else np.empty(0),
            np.concatenate([b.latitudes for b in batches]) if batches else np.empty(0),
            np.concatenate([b.longitudes for b in batches]) if batches else np.empty(0),
            np.concatenate([b.pickup for b in batches]) if batches else np.empty(0, bool),
            np.concatenate([b.user_ids for b in batches]) if batches else np.empty(0, int),
            np.concatenate([b.bike_ids for b in batches]) if batches else np.empty(0, int),
        )
