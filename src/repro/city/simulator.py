"""End-to-end synthetic multimodal mobility simulator.

This is the stand-in for the paper's proprietary Shenzhen datasets
(30,000 bikes, 7 subway lines, one month). It generates *causally*
structured trips:

- commuters live in residential cells and work in CBD cells;
- the long commute leg rides the subway (upstream system);
- commuters whose workplace is a few cells from the exit station take a
  shared bike for the last mile, with a stochastic transfer lag —
  producing the upstream→downstream lagged correlation of paper Fig. 1;
- evening flows reverse direction, making the correlation *time-specific*
  (the property BikeCAP's routing is designed to capture);
- background (non-commute) subway and bike trips add realistic noise.

Everything is seeded and vectorized with numpy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.city.grid import GridPartition
from repro.pipeline import seeding
from repro.city.profiles import (
    SECONDS_PER_DAY,
    CommutePeaks,
    is_weekend,
    sample_background_times,
)
from repro.city.records import BikeRecordBatch, SubwayRecordBatch
from repro.city.subway import SubwayNetwork, generate_subway
from repro.city.zones import ZoneMap, generate_zones

BIKE_SPEED_M_PER_MIN = 200.0  # ~12 km/h
WALK_SPEED_M_PER_MIN = 80.0  # ~4.8 km/h


@dataclass
class CityConfig:
    """Scale knobs for the synthetic city.

    Defaults target laptop-scale training; tests shrink them further and
    ``REPRO_PROFILE=paper`` benchmarks scale them up.
    """

    rows: int = 16
    cols: int = 12
    cell_meters: float = 500.0
    num_lines: int = 4
    station_spacing_cells: int = 2
    num_commuters: int = 1500
    num_bikes: int = 600
    days: int = 14
    background_subway_per_day: int = 400
    background_bike_per_day: int = 300
    weekend_participation: float = 0.25
    last_mile_bike_probability: float = 0.8
    transfer_lag_minutes: Tuple[float, float] = (2.0, 8.0)
    day_variation_std: float = 0.08
    seed: int = 7

    def __post_init__(self):
        if self.days < 1:
            raise ValueError("simulation needs at least one day")
        if self.num_commuters < 1:
            raise ValueError("simulation needs at least one commuter")
        if not 0.0 <= self.last_mile_bike_probability <= 1.0:
            raise ValueError("last_mile_bike_probability must be a probability")


@dataclass
class SyntheticCity:
    """The simulator's output bundle."""

    config: CityConfig
    grid: GridPartition
    zones: ZoneMap
    subway: SubwayNetwork
    subway_records: SubwayRecordBatch
    bike_records: BikeRecordBatch

    @property
    def duration_seconds(self) -> float:
        return self.config.days * SECONDS_PER_DAY

    @property
    def station_names(self) -> List[str]:
        return [station.name for station in self.subway.stations]


@dataclass
class _Commuters:
    """Column-oriented commuter population."""

    home_rows: np.ndarray
    home_cols: np.ndarray
    work_rows: np.ndarray
    work_cols: np.ndarray
    home_station: np.ndarray
    work_station: np.ndarray
    ride_minutes: np.ndarray  # subway leg, precomputed
    bike_last_mile: np.ndarray  # bool
    last_mile_minutes: np.ndarray

    def __len__(self) -> int:
        return len(self.home_rows)


class CitySimulator:
    """Generates a :class:`SyntheticCity` from a :class:`CityConfig`."""

    def __init__(self, config: Optional[CityConfig] = None):
        self.config = config or CityConfig()
        self.rng = seeding.rng(self.config.seed)
        self.grid = GridPartition(self.config.rows, self.config.cols, self.config.cell_meters)
        self.zones = generate_zones(self.grid, self.rng)
        self.subway = generate_subway(
            self.grid,
            num_lines=self.config.num_lines,
            station_spacing_cells=self.config.station_spacing_cells,
            rng=self.rng,
        )
        self.peaks = CommutePeaks()

    # ------------------------------------------------------------------
    def iter_day_records(self):
        """Yield ``(subway_batch, bike_batch)`` one simulated day at a time.

        This is the streaming spine of the simulator: day ``d`` records all
        carry times ≥ ``d * SECONDS_PER_DAY`` (trips may spill *forward*
        into later days, never backward), so a consumer can finalize every
        time slot strictly before a day's start as soon as that day is
        emitted — the invariant the chunked demand stream
        (:func:`repro.data.streaming.iter_demand_chunks`) relies on to
        aggregate a month of a large grid without materializing all trips.
        The RNG call sequence is identical to the historical monolithic
        loop, so :meth:`generate` output is bit-for-bit unchanged.
        """
        commuters = self._sample_commuters()
        for day in range(self.config.days):
            weekend = is_weekend(day)
            active = self._active_mask(commuters, weekend)
            subway_parts: List[SubwayRecordBatch] = []
            bike_parts: List[BikeRecordBatch] = []
            for morning in (True, False):
                subway_batch, bike_batch = self._commute_wave(commuters, active, day, morning)
                subway_parts.append(subway_batch)
                bike_parts.append(bike_batch)
            subway_parts.append(self._background_subway(day, weekend))
            bike_parts.append(self._background_bike(day, weekend))
            yield (
                SubwayRecordBatch.concatenate(subway_parts),
                BikeRecordBatch.concatenate(bike_parts),
            )

    def generate(self) -> SyntheticCity:
        """Run the full simulation."""
        subway_parts: List[SubwayRecordBatch] = []
        bike_parts: List[BikeRecordBatch] = []
        for subway_batch, bike_batch in self.iter_day_records():
            subway_parts.append(subway_batch)
            bike_parts.append(bike_batch)

        subway_records = SubwayRecordBatch.concatenate(subway_parts).sorted_by_time()
        bike_records = BikeRecordBatch.concatenate(bike_parts).sorted_by_time()
        return SyntheticCity(
            config=self.config,
            grid=self.grid,
            zones=self.zones,
            subway=self.subway,
            subway_records=subway_records,
            bike_records=bike_records,
        )

    # ------------------------------------------------------------------
    def _sample_commuters(self) -> _Commuters:
        count = self.config.num_commuters
        flat_population = self.zones.population.ravel()
        flat_jobs = self.zones.jobs.ravel()
        home_flat = self.rng.choice(self.grid.num_cells, size=count, p=flat_population)
        work_flat = self.rng.choice(self.grid.num_cells, size=count, p=flat_jobs)
        home_rows, home_cols = np.unravel_index(home_flat, self.grid.shape)
        work_rows, work_cols = np.unravel_index(work_flat, self.grid.shape)

        home_station = np.array(
            [self.subway.nearest_station((r, c)) for r, c in zip(home_rows, home_cols)]
        )
        work_station = np.array(
            [self.subway.nearest_station((r, c)) for r, c in zip(work_rows, work_cols)]
        )
        ride_minutes = np.array(
            [
                self.subway.travel_minutes(int(o), int(d)) if o != d else 0.0
                for o, d in zip(home_station, work_station)
            ]
        )
        # Last-mile: bike is attractive when the workplace is 1+ cells from
        # the exit station but still bikeable (< ~5 cells).
        station_cells = np.array([self.subway.stations[int(s)].cell for s in work_station])
        exit_distance_m = (
            np.hypot(
                station_cells[:, 0] - work_rows,
                station_cells[:, 1] - work_cols,
            )
            * self.grid.cell_meters
        )
        bikeable = (exit_distance_m >= 0.8 * self.grid.cell_meters) & (
            exit_distance_m <= 5.0 * self.grid.cell_meters
        )
        bike_last_mile = bikeable & (
            self.rng.random(count) < self.config.last_mile_bike_probability
        )
        last_mile_minutes = np.maximum(exit_distance_m / BIKE_SPEED_M_PER_MIN, 1.0)
        return _Commuters(
            home_rows=home_rows,
            home_cols=home_cols,
            work_rows=work_rows,
            work_cols=work_cols,
            home_station=home_station,
            work_station=work_station,
            ride_minutes=ride_minutes,
            bike_last_mile=bike_last_mile,
            last_mile_minutes=last_mile_minutes,
        )

    def _active_mask(self, commuters: _Commuters, weekend: bool) -> np.ndarray:
        count = len(commuters)
        if weekend:
            return self.rng.random(count) < self.config.weekend_participation
        # Day-to-day variation: most people commute, some stay home.
        day_scale = 1.0 + self.rng.normal(0.0, self.config.day_variation_std)
        probability = np.clip(0.92 * day_scale, 0.0, 1.0)
        return self.rng.random(count) < probability

    def _commute_wave(
        self,
        commuters: _Commuters,
        active: np.ndarray,
        day: int,
        morning: bool,
    ) -> Tuple[SubwayRecordBatch, BikeRecordBatch]:
        """One direction of the daily commute for all active commuters."""
        index = np.flatnonzero(active)
        count = len(index)
        if count == 0:
            return _empty_subway(), _empty_bike()
        if morning:
            departures = self.peaks.sample_morning(self.rng, count)
            origin_station = commuters.home_station[index]
            destination_station = commuters.work_station[index]
        else:
            departures = self.peaks.sample_evening(self.rng, count)
            origin_station = commuters.work_station[index]
            destination_station = commuters.home_station[index]
        departures = departures + day * SECONDS_PER_DAY

        # Walk from origin cell to origin station (1-6 min), then board.
        walk_minutes = self.rng.uniform(1.0, 6.0, size=count)
        board_times = departures + walk_minutes * 60.0
        ride = commuters.ride_minutes[index] + self.rng.uniform(-1.0, 1.0, size=count)
        alight_times = board_times + np.maximum(ride, 1.0) * 60.0

        rides_subway = origin_station != destination_station
        lines = np.array([self.subway.stations[int(s)].line for s in origin_station])
        dest_lines = np.array([self.subway.stations[int(s)].line for s in destination_station])

        subway_times = np.concatenate([board_times[rides_subway], alight_times[rides_subway]])
        subway_stations = np.concatenate(
            [origin_station[rides_subway], destination_station[rides_subway]]
        )
        subway_lines = np.concatenate([lines[rides_subway], dest_lines[rides_subway]])
        subway_boarding = np.concatenate(
            [np.ones(rides_subway.sum(), bool), np.zeros(rides_subway.sum(), bool)]
        )
        subway_users = np.concatenate([index[rides_subway], index[rides_subway]])
        subway_batch = SubwayRecordBatch(
            subway_times, subway_stations, subway_lines, subway_boarding, subway_users
        )

        # Last-mile bike leg: only on the *destination* side, after the
        # transfer lag — this is the upstream→downstream propagation.
        bike_mask = commuters.bike_last_mile[index] & rides_subway if morning else (
            commuters.bike_last_mile[index] & rides_subway
        )
        bike_index = index[bike_mask]
        bike_count = len(bike_index)
        if bike_count == 0:
            return subway_batch, _empty_bike()

        low, high = self.config.transfer_lag_minutes
        lag = self.rng.uniform(low, high, size=bike_count) * 60.0
        pickup_times = alight_times[bike_mask] + lag
        ride_seconds = (
            commuters.last_mile_minutes[bike_index]
            + self.rng.uniform(-0.5, 0.5, size=bike_count)
        ).clip(min=1.0) * 60.0
        dropoff_times = pickup_times + ride_seconds

        if morning:
            # Pick up near the work-side exit station, drop at the workplace.
            station_ids = commuters.work_station[bike_index]
            end_rows = commuters.work_rows[bike_index]
            end_cols = commuters.work_cols[bike_index]
        else:
            # Evening: pick up near the home-side exit station, drop at home.
            station_ids = commuters.home_station[bike_index]
            end_rows = commuters.home_rows[bike_index]
            end_cols = commuters.home_cols[bike_index]
        station_cells = np.array([self.subway.stations[int(s)].cell for s in station_ids])
        pickup_x, pickup_y = self.grid.random_point_in(
            station_cells[:, 0], station_cells[:, 1], self.rng
        )
        drop_x, drop_y = self.grid.random_point_in(end_rows, end_cols, self.rng)
        pickup_lat, pickup_lon = self.grid.to_gps(pickup_x, pickup_y)
        drop_lat, drop_lon = self.grid.to_gps(drop_x, drop_y)

        bike_ids = self.rng.integers(0, self.config.num_bikes, size=bike_count)
        bike_batch = BikeRecordBatch(
            np.concatenate([pickup_times, dropoff_times]),
            np.concatenate([pickup_lat, drop_lat]),
            np.concatenate([pickup_lon, drop_lon]),
            np.concatenate([np.ones(bike_count, bool), np.zeros(bike_count, bool)]),
            np.concatenate([bike_index, bike_index]),
            np.concatenate([bike_ids, bike_ids]),
        )
        return subway_batch, bike_batch

    # ------------------------------------------------------------------
    def _background_subway(self, day: int, weekend: bool) -> SubwayRecordBatch:
        base = self.config.background_subway_per_day
        count = int(self.rng.poisson(base * (1.3 if weekend else 1.0)))
        if count == 0:
            return _empty_subway()
        times = sample_background_times(self.rng, count, day)
        mass = self.zones.population + self.zones.jobs
        station_weights = np.array(
            [mass[s.cell] for s in self.subway.stations], dtype=float
        )
        station_weights /= station_weights.sum()
        origins = self.rng.choice(self.subway.num_stations, size=count, p=station_weights)
        destinations = self.rng.choice(self.subway.num_stations, size=count, p=station_weights)
        valid = origins != destinations
        origins, destinations, times = origins[valid], destinations[valid], times[valid]
        count = len(times)
        ride_minutes = np.array(
            [self.subway.travel_minutes(int(o), int(d)) for o, d in zip(origins, destinations)]
        )
        alight_times = times + ride_minutes * 60.0
        lines = np.array([self.subway.stations[int(s)].line for s in origins])
        dest_lines = np.array([self.subway.stations[int(s)].line for s in destinations])
        users = self.rng.integers(
            self.config.num_commuters, self.config.num_commuters * 10, size=count
        )
        return SubwayRecordBatch(
            np.concatenate([times, alight_times]),
            np.concatenate([origins, destinations]),
            np.concatenate([lines, dest_lines]),
            np.concatenate([np.ones(count, bool), np.zeros(count, bool)]),
            np.concatenate([users, users]),
        )

    def _background_bike(self, day: int, weekend: bool) -> BikeRecordBatch:
        base = self.config.background_bike_per_day
        count = int(self.rng.poisson(base * (1.4 if weekend else 1.0)))
        if count == 0:
            return _empty_bike()
        times = sample_background_times(self.rng, count, day)
        mass = (self.zones.population + self.zones.jobs).ravel()
        mass = mass / mass.sum()
        start_flat = self.rng.choice(self.grid.num_cells, size=count, p=mass)
        start_rows, start_cols = np.unravel_index(start_flat, self.grid.shape)
        # Short random hops (bikes are for short trips).
        end_rows = np.clip(start_rows + self.rng.integers(-2, 3, size=count), 0, self.grid.rows - 1)
        end_cols = np.clip(start_cols + self.rng.integers(-2, 3, size=count), 0, self.grid.cols - 1)
        distance_m = (
            np.hypot(end_rows - start_rows, end_cols - start_cols) * self.grid.cell_meters
        )
        ride_seconds = np.maximum(distance_m / BIKE_SPEED_M_PER_MIN, 2.0) * 60.0
        start_x, start_y = self.grid.random_point_in(start_rows, start_cols, self.rng)
        end_x, end_y = self.grid.random_point_in(end_rows, end_cols, self.rng)
        start_lat, start_lon = self.grid.to_gps(start_x, start_y)
        end_lat, end_lon = self.grid.to_gps(end_x, end_y)
        users = self.rng.integers(
            self.config.num_commuters, self.config.num_commuters * 10, size=count
        )
        bikes = self.rng.integers(0, self.config.num_bikes, size=count)
        return BikeRecordBatch(
            np.concatenate([times, times + ride_seconds]),
            np.concatenate([start_lat, end_lat]),
            np.concatenate([start_lon, end_lon]),
            np.concatenate([np.ones(count, bool), np.zeros(count, bool)]),
            np.concatenate([users, users]),
            np.concatenate([bikes, bikes]),
        )


def _empty_subway() -> SubwayRecordBatch:
    return SubwayRecordBatch(
        np.empty(0), np.empty(0, int), np.empty(0, int), np.empty(0, bool), np.empty(0, int)
    )


def _empty_bike() -> BikeRecordBatch:
    return BikeRecordBatch(
        np.empty(0),
        np.empty(0),
        np.empty(0),
        np.empty(0, bool),
        np.empty(0, int),
        np.empty(0, int),
    )


def simulate_city(config: Optional[CityConfig] = None) -> SyntheticCity:
    """One-call convenience wrapper."""
    return CitySimulator(config).generate()
