"""Grid partition of the city (paper Sec. III-A).

The paper divides the city into ``N_g1 × N_g2`` grids and argues the
grid-based representation deploys anywhere because it needs only a space
partition. We model the city in a planar frame measured in meters and also
expose a GPS view anchored at Shenzhen's coordinates, so synthetic bike
records carry realistic-looking GPS points that the aggregation pipeline
must map back to cells — exactly the step a real deployment performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

# Anchor for the GPS view (roughly Futian, Shenzhen).
SHENZHEN_LAT = 22.543
SHENZHEN_LON = 114.057
_METERS_PER_DEG_LAT = 111_320.0


@dataclass(frozen=True)
class GridPartition:
    """A rectangular city of ``rows × cols`` square cells.

    ``cell_meters`` is the edge length of one cell; the paper aggregates
    bike GPS points into grids of a few hundred meters.
    """

    rows: int
    cols: int
    cell_meters: float = 500.0

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"grid must be at least 1x1, got {self.rows}x{self.cols}")
        if self.cell_meters <= 0:
            raise ValueError(f"cell size must be positive, got {self.cell_meters}")

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def num_cells(self) -> int:
        return self.rows * self.cols

    @property
    def width_meters(self) -> float:
        return self.cols * self.cell_meters

    @property
    def height_meters(self) -> float:
        return self.rows * self.cell_meters

    # ------------------------------------------------------------------
    # Planar frame
    # ------------------------------------------------------------------
    def cell_of(self, x, y):
        """Map planar coordinates (meters) to (row, col); vectorized.

        Points outside the city are clipped to the border cell, mirroring
        how real pipelines snap slightly-out-of-bound GPS fixes.
        """
        col = np.clip(np.floor_divide(np.asarray(x), self.cell_meters), 0, self.cols - 1)
        row = np.clip(np.floor_divide(np.asarray(y), self.cell_meters), 0, self.rows - 1)
        return row.astype(int), col.astype(int)

    def center_of(self, row: int, col: int) -> Tuple[float, float]:
        """Planar center (x, y) in meters of a cell."""
        self._check_cell(row, col)
        return ((col + 0.5) * self.cell_meters, (row + 0.5) * self.cell_meters)

    def random_point_in(self, row, col, rng: np.random.Generator):
        """Uniform random planar point inside the given cell(s); vectorized."""
        row = np.asarray(row)
        col = np.asarray(col)
        x = (col + rng.random(col.shape)) * self.cell_meters
        y = (row + rng.random(row.shape)) * self.cell_meters
        return x, y

    def distance_meters(self, cell_a: Tuple[int, int], cell_b: Tuple[int, int]) -> float:
        """Euclidean distance between cell centers."""
        ax, ay = self.center_of(*cell_a)
        bx, by = self.center_of(*cell_b)
        return float(np.hypot(ax - bx, ay - by))

    def _check_cell(self, row: int, col: int) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"cell ({row}, {col}) outside {self.rows}x{self.cols} grid")

    # ------------------------------------------------------------------
    # GPS view
    # ------------------------------------------------------------------
    def to_gps(self, x, y):
        """Convert planar meters to (latitude, longitude)."""
        lat = SHENZHEN_LAT + np.asarray(y) / _METERS_PER_DEG_LAT
        meters_per_deg_lon = _METERS_PER_DEG_LAT * np.cos(np.deg2rad(SHENZHEN_LAT))
        lon = SHENZHEN_LON + np.asarray(x) / meters_per_deg_lon
        return lat, lon

    def from_gps(self, lat, lon):
        """Convert (latitude, longitude) back to planar meters."""
        y = (np.asarray(lat) - SHENZHEN_LAT) * _METERS_PER_DEG_LAT
        meters_per_deg_lon = _METERS_PER_DEG_LAT * np.cos(np.deg2rad(SHENZHEN_LAT))
        x = (np.asarray(lon) - SHENZHEN_LON) * meters_per_deg_lon
        return x, y

    def cell_of_gps(self, lat, lon):
        """Map GPS fixes straight to (row, col) cells."""
        x, y = self.from_gps(lat, lon)
        return self.cell_of(x, y)
