"""Land-use zoning: residential vs CBD structure that drives commute flows.

Fig. 1 of the paper hinges on station A sitting in a *residential* area and
station B in a *CBD* area. The zone map reproduces that asymmetry: CBD
employment mass is concentrated in a few clusters, residential population in
the remaining cells, with smooth falloff so demand is spatially coherent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.city.grid import GridPartition

RESIDENTIAL = "residential"
CBD = "cbd"
MIXED = "mixed"


@dataclass
class ZoneMap:
    """Per-cell population (home) and job (work) weights plus a label map."""

    grid: GridPartition
    population: np.ndarray  # (rows, cols), sums to 1
    jobs: np.ndarray  # (rows, cols), sums to 1
    labels: np.ndarray  # (rows, cols) of str

    def label_of(self, row: int, col: int) -> str:
        return str(self.labels[row, col])

    def dominant_cbd_cell(self) -> Tuple[int, int]:
        """The cell with the highest job mass (the 'station B' neighbourhood)."""
        index = int(np.argmax(self.jobs))
        return np.unravel_index(index, self.jobs.shape)

    def dominant_residential_cell(self) -> Tuple[int, int]:
        """The cell with the highest population mass (the 'station A' area)."""
        index = int(np.argmax(self.population))
        return np.unravel_index(index, self.population.shape)


def _gaussian_bump(grid: GridPartition, center: Tuple[float, float], sigma_cells: float) -> np.ndarray:
    rows = np.arange(grid.rows)[:, None]
    cols = np.arange(grid.cols)[None, :]
    return np.exp(
        -((rows - center[0]) ** 2 + (cols - center[1]) ** 2) / (2.0 * sigma_cells**2)
    )


def generate_zones(
    grid: GridPartition,
    rng: np.random.Generator,
    num_cbd_clusters: int = 2,
    num_residential_clusters: int = 3,
) -> ZoneMap:
    """Lay out CBD and residential clusters on opposite sides of the city.

    CBD clusters are sampled from one half of the grid, residential clusters
    from the other, creating the long commute corridors (and hence the long
    upstream→downstream lags) the paper exploits.
    """
    if num_cbd_clusters < 1 or num_residential_clusters < 1:
        raise ValueError("need at least one cluster of each kind")

    jobs = np.zeros(grid.shape)
    population = np.zeros(grid.shape)

    # CBD in the "east" (high column) half, homes in the "west" half.
    for _ in range(num_cbd_clusters):
        center = (
            rng.uniform(0, grid.rows - 1),
            rng.uniform(grid.cols * 0.6, grid.cols - 1),
        )
        jobs += _gaussian_bump(grid, center, sigma_cells=max(1.0, grid.cols / 10))
    for _ in range(num_residential_clusters):
        center = (
            rng.uniform(0, grid.rows - 1),
            rng.uniform(0, grid.cols * 0.4),
        )
        population += _gaussian_bump(grid, center, sigma_cells=max(1.5, grid.cols / 8))

    # Light background mass so no cell is strictly empty.
    jobs += 0.02
    population += 0.02
    jobs /= jobs.sum()
    population /= population.sum()

    labels = np.full(grid.shape, MIXED, dtype=object)
    labels[jobs > np.quantile(jobs, 0.85)] = CBD
    labels[(population > np.quantile(population, 0.85)) & (labels == MIXED)] = RESIDENTIAL
    return ZoneMap(grid=grid, population=population, jobs=jobs, labels=labels)
