"""Synthetic subway network: the upstream transportation system.

Lines are generated as monotone paths across the grid (mimicking how real
lines connect residential belts to CBD cores), with stations every few
cells. The network is a :mod:`networkx` graph whose edge weights are
inter-station travel times; interchanges happen where lines share a cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.city.grid import GridPartition
from repro.pipeline import seeding


@dataclass(frozen=True)
class Station:
    """A subway station pinned to one grid cell."""

    station_id: int
    name: str
    line: int
    cell: Tuple[int, int]

    @property
    def row(self) -> int:
        return self.cell[0]

    @property
    def col(self) -> int:
        return self.cell[1]


@dataclass
class SubwayNetwork:
    """Stations, lines and a travel-time graph over them."""

    grid: GridPartition
    stations: List[Station]
    lines: Dict[int, List[int]]  # line -> ordered station ids
    graph: nx.Graph = field(repr=False)
    minutes_per_hop: float = 3.0

    def __post_init__(self):
        self._by_cell: Dict[Tuple[int, int], List[int]] = {}
        for station in self.stations:
            self._by_cell.setdefault(station.cell, []).append(station.station_id)
        self._station_cells = np.array([s.cell for s in self.stations])
        self._travel_cache: Dict[int, np.ndarray] = {}

    @property
    def num_lines(self) -> int:
        return len(self.lines)

    @property
    def num_stations(self) -> int:
        return len(self.stations)

    def station(self, station_id: int) -> Station:
        return self.stations[station_id]

    def stations_in_cell(self, cell: Tuple[int, int]) -> List[int]:
        return list(self._by_cell.get(tuple(cell), []))

    def nearest_station(self, cell: Tuple[int, int]) -> int:
        """Station id closest (in cell space) to ``cell``."""
        deltas = self._station_cells - np.asarray(cell)
        return int(np.argmin((deltas**2).sum(axis=1)))

    def nearest_station_distance_cells(self, cell: Tuple[int, int]) -> float:
        deltas = self._station_cells - np.asarray(cell)
        return float(np.sqrt((deltas**2).sum(axis=1).min()))

    def travel_minutes(self, origin: int, destination: int) -> float:
        """Shortest-path ride time between two stations (minutes)."""
        if origin not in self._travel_cache:
            lengths = nx.single_source_dijkstra_path_length(self.graph, origin, weight="minutes")
            table = np.full(self.num_stations, np.inf)
            for node, minutes in lengths.items():
                table[node] = minutes
            self._travel_cache[origin] = table
        return float(self._travel_cache[origin][destination])


def _line_path(
    grid: GridPartition,
    rng: np.random.Generator,
    start: Tuple[int, int],
    end: Tuple[int, int],
) -> List[Tuple[int, int]]:
    """A jittered monotone lattice path from ``start`` to ``end``."""
    path = [start]
    row, col = start
    while (row, col) != end:
        row_step = int(np.sign(end[0] - row))
        col_step = int(np.sign(end[1] - col))
        if row_step and col_step:
            if rng.random() < 0.5:
                row += row_step
            else:
                col += col_step
        elif row_step:
            row += row_step
        else:
            col += col_step
        path.append((row, col))
    return path


def generate_subway(
    grid: GridPartition,
    num_lines: int = 4,
    station_spacing_cells: int = 2,
    rng: Optional[np.random.Generator] = None,
    minutes_per_hop: float = 3.0,
) -> SubwayNetwork:
    """Generate a west↔east subway network with ``num_lines`` lines.

    Each line starts in the residential (west) margin and ends in the CBD
    (east) margin, so subway rides embody the long-distance commute legs
    whose demand precedes downstream bike demand.
    """
    if num_lines < 1:
        raise ValueError("need at least one subway line")
    rng = seeding.rng(rng)

    stations: List[Station] = []
    lines: Dict[int, List[int]] = {}
    graph = nx.Graph()

    for line in range(num_lines):
        start = (int(rng.integers(0, grid.rows)), 0)
        end = (int(rng.integers(0, grid.rows)), grid.cols - 1)
        path = _line_path(grid, rng, start, end)
        cells = path[::station_spacing_cells]
        if cells[-1] != path[-1]:
            cells.append(path[-1])
        line_station_ids: List[int] = []
        for cell in cells:
            station_id = len(stations)
            station = Station(
                station_id=station_id,
                name=f"L{line + 1}-S{len(line_station_ids) + 1}",
                line=line,
                cell=cell,
            )
            stations.append(station)
            graph.add_node(station_id)
            line_station_ids.append(station_id)
        for previous, current in zip(line_station_ids, line_station_ids[1:]):
            hops = abs(stations[previous].row - stations[current].row) + abs(
                stations[previous].col - stations[current].col
            )
            graph.add_edge(previous, current, minutes=minutes_per_hop * max(1, hops))
        lines[line] = line_station_ids

    # Interchange: stations of different lines sharing a cell get a cheap
    # transfer edge (walk across the platform).
    by_cell: Dict[Tuple[int, int], List[int]] = {}
    for station in stations:
        by_cell.setdefault(station.cell, []).append(station.station_id)
    for cell_stations in by_cell.values():
        for i, a in enumerate(cell_stations):
            for b in cell_stations[i + 1 :]:
                graph.add_edge(a, b, minutes=2.0)

    # Guarantee connectivity across lines so any commute is feasible: link
    # the closest station pairs between consecutive components.
    components = [sorted(c) for c in nx.connected_components(graph)]
    while len(components) > 1:
        base, other = components[0], components[1]
        best = None
        for a in base:
            for b in other:
                distance = abs(stations[a].row - stations[b].row) + abs(
                    stations[a].col - stations[b].col
                )
                if best is None or distance < best[0]:
                    best = (distance, a, b)
        _, a, b = best
        graph.add_edge(a, b, minutes=minutes_per_hop * max(1, best[0]) + 5.0)
        components = [sorted(c) for c in nx.connected_components(graph)]

    return SubwayNetwork(
        grid=grid,
        stations=stations,
        lines=lines,
        graph=graph,
        minutes_per_hop=minutes_per_hop,
    )
