"""Diurnal demand profiles.

Encodes the temporal structure visible in the paper's Fig. 1: a morning
rush (residential→CBD) around 7–9 AM, an evening rush (CBD→residential)
around 5–8 PM, low overnight activity, and weekend flattening.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

SECONDS_PER_DAY = 24 * 3600
SECONDS_PER_HOUR = 3600


@dataclass(frozen=True)
class CommutePeaks:
    """Gaussian departure-time peaks for the two commute directions."""

    morning_mean_hour: float = 8.0
    morning_std_hour: float = 0.8
    evening_mean_hour: float = 18.0
    evening_std_hour: float = 1.1

    def sample_morning(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Departure seconds-into-day for morning commutes."""
        hours = rng.normal(self.morning_mean_hour, self.morning_std_hour, size=count)
        return np.clip(hours, 4.5, 12.0) * SECONDS_PER_HOUR

    def sample_evening(self, rng: np.random.Generator, count: int) -> np.ndarray:
        hours = rng.normal(self.evening_mean_hour, self.evening_std_hour, size=count)
        return np.clip(hours, 13.0, 23.0) * SECONDS_PER_HOUR


def is_weekend(day: int, first_weekday: int = 0) -> bool:
    """Whether simulated ``day`` (0-based) falls on a weekend.

    2018-10-01 was a Monday, so the default ``first_weekday=0`` matches the
    paper's data month.
    """
    return (first_weekday + day) % 7 >= 5


def background_rate(seconds_into_day: np.ndarray) -> np.ndarray:
    """Relative intensity of non-commute trips across the day.

    A smooth double-hump curve: quiet overnight, busy midday through
    evening. Normalized to peak 1.0.
    """
    hours = np.asarray(seconds_into_day) / SECONDS_PER_HOUR
    midday = np.exp(-((hours - 13.0) ** 2) / (2 * 3.0**2))
    evening = 0.8 * np.exp(-((hours - 20.0) ** 2) / (2 * 2.0**2))
    overnight = 0.05
    return np.clip(midday + evening + overnight, 0.0, 1.0)


def sample_background_times(
    rng: np.random.Generator, count: int, day: int
) -> np.ndarray:
    """Rejection-sample ``count`` trip start times (absolute seconds) in ``day``."""
    times = np.empty(0)
    while len(times) < count:
        need = (count - len(times)) * 2 + 8
        candidates = rng.random(need) * SECONDS_PER_DAY
        accepted = candidates[rng.random(need) < background_rate(candidates)]
        times = np.concatenate([times, accepted])
    return np.sort(times[:count]) + day * SECONDS_PER_DAY
