"""Synthetic multimodal city: the substitute for the Shenzhen datasets."""

from repro.city.grid import GridPartition
from repro.city.profiles import (
    SECONDS_PER_DAY,
    CommutePeaks,
    background_rate,
    is_weekend,
    sample_background_times,
)
from repro.city.records import (
    BOARDING,
    DISEMBARKING,
    DROP_OFF,
    PICK_UP,
    BikeRecord,
    BikeRecordBatch,
    SubwayRecord,
    SubwayRecordBatch,
    format_time,
)
from repro.city.simulator import (
    CityConfig,
    CitySimulator,
    SyntheticCity,
    simulate_city,
)
from repro.city.subway import Station, SubwayNetwork, generate_subway
from repro.city.zones import CBD, MIXED, RESIDENTIAL, ZoneMap, generate_zones

__all__ = [
    "BOARDING",
    "BikeRecord",
    "BikeRecordBatch",
    "CBD",
    "CityConfig",
    "CitySimulator",
    "CommutePeaks",
    "DISEMBARKING",
    "DROP_OFF",
    "GridPartition",
    "MIXED",
    "PICK_UP",
    "RESIDENTIAL",
    "SECONDS_PER_DAY",
    "Station",
    "SubwayNetwork",
    "SubwayRecord",
    "SubwayRecordBatch",
    "SyntheticCity",
    "ZoneMap",
    "background_rate",
    "format_time",
    "generate_subway",
    "generate_zones",
    "is_weekend",
    "sample_background_times",
    "simulate_city",
]
