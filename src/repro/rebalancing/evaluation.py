"""Scoring rebalancing plans against realized demand."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.rebalancing.planner import RebalancingPlan


@dataclass(frozen=True)
class PlanScore:
    """How a plan fared against what actually happened."""

    unmet_demand: float
    bikes_moved: int
    transport_work: float  # bike-cells moved
    coverage: float  # fraction of demand servable after the plan

    def __str__(self) -> str:
        return (
            f"unmet={self.unmet_demand:.0f} moved={self.bikes_moved} "
            f"work={self.transport_work:.1f} coverage={self.coverage:.1%}"
        )


def unmet_demand(stock: np.ndarray, realized_demand: np.ndarray) -> float:
    """Demand exceeding available stock, summed over cells."""
    stock = np.asarray(stock, dtype=float)
    realized_demand = np.asarray(realized_demand, dtype=float)
    return float(np.maximum(realized_demand - stock, 0.0).sum())


def score_plan(
    plan: RebalancingPlan,
    stock: np.ndarray,
    realized_demand: np.ndarray,
) -> PlanScore:
    """Apply the plan to the stock and score it against realized demand."""
    adjusted = plan.apply(stock)
    shortfall = unmet_demand(adjusted, realized_demand)
    total = float(np.asarray(realized_demand, dtype=float).sum())
    coverage = 1.0 - shortfall / total if total > 0 else 1.0
    return PlanScore(
        unmet_demand=shortfall,
        bikes_moved=plan.total_bikes,
        transport_work=plan.total_distance,
        coverage=coverage,
    )


def forecast_value(
    plan_from_forecast: RebalancingPlan,
    plan_from_baseline: RebalancingPlan,
    stock: np.ndarray,
    realized_demand: np.ndarray,
) -> float:
    """Unmet demand avoided by planning on the forecast instead of the baseline.

    Positive values mean the forecast-driven plan served more demand.
    """
    forecast_score = score_plan(plan_from_forecast, stock, realized_demand)
    baseline_score = score_plan(plan_from_baseline, stock, realized_demand)
    return baseline_score.unmet_demand - forecast_score.unmet_demand
