"""Bike rebalancing planners — the application BikeCAP exists to serve.

The paper's Sec. I motivation: rebalancing a large number of bikes takes
operators on the order of an hour, so they need demand forecasts *that far
ahead*. Given a multi-step forecast this module turns (current stock,
expected demand) into a relocation plan.

Two planners are provided:

- :func:`greedy_plan` — nearest-surplus-first heuristic; fast, no optimality
  guarantee.
- :func:`min_cost_flow_plan` — optimal transport distance via
  :func:`networkx.min_cost_flow` on a bipartite surplus→deficit graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import networkx as nx
import numpy as np

Cell = Tuple[int, int]


@dataclass(frozen=True)
class Move:
    """Relocate ``count`` bikes from ``source`` to ``destination``."""

    source: Cell
    destination: Cell
    count: int

    @property
    def distance_cells(self) -> float:
        return float(
            np.hypot(
                self.source[0] - self.destination[0],
                self.source[1] - self.destination[1],
            )
        )


@dataclass
class RebalancingPlan:
    """A set of moves plus summary statistics."""

    moves: List[Move]

    @property
    def total_bikes(self) -> int:
        return sum(move.count for move in self.moves)

    @property
    def total_distance(self) -> float:
        """Bike-cells of transport work: Σ count × distance."""
        return sum(move.count * move.distance_cells for move in self.moves)

    def apply(self, stock: np.ndarray) -> np.ndarray:
        """Return the stock map after executing every move."""
        adjusted = np.asarray(stock, dtype=float).copy()
        for move in self.moves:
            adjusted[move.source] -= move.count
            adjusted[move.destination] += move.count
        if adjusted.min() < 0:
            raise ValueError("plan moves more bikes than a cell holds")
        return adjusted


def _balance(stock: np.ndarray, expected_demand: np.ndarray, reserve: float) -> np.ndarray:
    stock = np.asarray(stock, dtype=float)
    expected_demand = np.asarray(expected_demand, dtype=float)
    if stock.shape != expected_demand.shape:
        raise ValueError(
            f"stock {stock.shape} and demand {expected_demand.shape} shapes differ"
        )
    return stock - expected_demand - reserve


def greedy_plan(
    stock: np.ndarray,
    expected_demand: np.ndarray,
    reserve: float = 0.0,
) -> RebalancingPlan:
    """Serve the largest deficits first from the nearest surplus cells."""
    balance = _balance(stock, expected_demand, reserve)
    surplus = {
        tuple(cell): int(balance[tuple(cell)])
        for cell in np.argwhere(balance >= 1.0)
    }
    deficits = sorted(
        (
            (tuple(cell), int(np.ceil(-balance[tuple(cell)])))
            for cell in np.argwhere(balance < 0)
        ),
        key=lambda item: -item[1],
    )
    moves: List[Move] = []
    for cell, need in deficits:
        while need > 0 and surplus:
            donor = min(
                surplus,
                key=lambda s: (s[0] - cell[0]) ** 2 + (s[1] - cell[1]) ** 2,
            )
            take = min(need, surplus[donor])
            moves.append(Move(source=donor, destination=cell, count=take))
            need -= take
            surplus[donor] -= take
            if surplus[donor] == 0:
                del surplus[donor]
    return RebalancingPlan(moves=moves)


def min_cost_flow_plan(
    stock: np.ndarray,
    expected_demand: np.ndarray,
    reserve: float = 0.0,
    cost_scale: int = 100,
) -> RebalancingPlan:
    """Distance-optimal relocation via min-cost flow.

    Surplus cells supply, deficit cells demand; edge cost is the rounded
    Euclidean cell distance. When total surplus cannot cover total deficit,
    a zero-cost slack source absorbs the shortfall, so the plan serves as
    much demand as the fleet allows.
    """
    balance = _balance(stock, expected_demand, reserve)
    surplus_cells = [tuple(cell) for cell in np.argwhere(balance >= 1.0)]
    deficit_cells = [tuple(cell) for cell in np.argwhere(balance < 0)]
    if not deficit_cells or not surplus_cells:
        return RebalancingPlan(moves=[])

    supply = {cell: int(balance[cell]) for cell in surplus_cells}
    need = {cell: int(np.ceil(-balance[cell])) for cell in deficit_cells}
    total_supply = sum(supply.values())
    total_need = sum(need.values())

    graph = nx.DiGraph()
    for cell, amount in supply.items():
        graph.add_node(("s", cell), demand=-amount)
    for cell, amount in need.items():
        graph.add_node(("d", cell), demand=amount)
    for s_cell in surplus_cells:
        for d_cell in deficit_cells:
            distance = int(
                round(np.hypot(s_cell[0] - d_cell[0], s_cell[1] - d_cell[1]) * cost_scale)
            )
            graph.add_edge(("s", s_cell), ("d", d_cell), weight=distance)
    # Slack absorbs whichever side is larger so the flow is feasible.
    if total_supply > total_need:
        graph.add_node("sink", demand=total_supply - total_need)
        for s_cell in surplus_cells:
            graph.add_edge(("s", s_cell), "sink", weight=0)
    elif total_need > total_supply:
        graph.add_node("slack", demand=-(total_need - total_supply))
        for d_cell in deficit_cells:
            graph.add_edge("slack", ("d", d_cell), weight=0)

    flow = nx.min_cost_flow(graph)
    moves: List[Move] = []
    for source, targets in flow.items():
        if not (isinstance(source, tuple) and source[0] == "s"):
            continue
        for target, count in targets.items():
            if count > 0 and isinstance(target, tuple) and target[0] == "d":
                moves.append(Move(source=source[1], destination=target[1], count=int(count)))
    return RebalancingPlan(moves=moves)
