"""Bike rebalancing: the application BikeCAP's multi-step forecasts serve."""

from repro.rebalancing.evaluation import (
    PlanScore,
    forecast_value,
    score_plan,
    unmet_demand,
)
from repro.rebalancing.planner import (
    Move,
    RebalancingPlan,
    greedy_plan,
    min_cost_flow_plan,
)

__all__ = [
    "Move",
    "PlanScore",
    "RebalancingPlan",
    "forecast_value",
    "greedy_plan",
    "min_cost_flow_plan",
    "score_plan",
    "unmet_demand",
]
