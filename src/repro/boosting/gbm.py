"""Gradient-boosted regression trees (the XGBoost baseline's engine)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.boosting.tree import RegressionTree
from repro.pipeline import seeding
from repro.obs import metrics as obs_metrics
from repro.obs import runlog


class GradientBoostedTrees:
    """Second-order boosting for squared-error regression.

    For squared loss the per-sample gradient is ``pred − y`` and the hessian
    is 1, so each round fits a tree to the residuals with XGBoost's
    regularized leaf weights, scaled by the learning rate (shrinkage).
    """

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.3,
        max_depth: int = 4,
        min_child_weight: float = 1.0,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        subsample: float = 1.0,
        max_bins: int = 32,
        seed: Optional[int] = None,
    ):
        if not 0.0 < subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        if n_estimators < 1:
            raise ValueError("need at least one boosting round")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_child_weight = min_child_weight
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.subsample = subsample
        self.max_bins = max_bins
        self.rng = seeding.rng(seed)
        self.base_score: float = 0.0
        self.trees: List[RegressionTree] = []

    @property
    def fitted(self) -> bool:
        return bool(self.trees)

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoostedTrees":
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float).ravel()
        if len(features) != len(targets):
            raise ValueError("features and targets lengths differ")
        self.trees = []
        self.base_score = float(targets.mean())
        predictions = np.full(len(targets), self.base_score)
        count = len(targets)
        for _round in range(self.n_estimators):
            gradients = predictions - targets
            hessians = np.ones(count)
            if self.subsample < 1.0:
                keep = self.rng.random(count) < self.subsample
                if not keep.any():
                    keep[self.rng.integers(count)] = True
            else:
                keep = slice(None)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_child_weight=self.min_child_weight,
                reg_lambda=self.reg_lambda,
                gamma=self.gamma,
                max_bins=self.max_bins,
            )
            tree.fit(features[keep], gradients[keep], hessians[keep])
            update = tree.predict(features)
            predictions = predictions + self.learning_rate * update
            self.trees.append(tree)
            # Boosting-round telemetry: the gradient RMS is the training
            # residual RMSE for squared loss, so its per-round decay is the
            # convergence curve of the booster.
            grad_rms = float(np.sqrt(np.mean(gradients**2)))
            obs_metrics.counter("boosting_rounds_total").inc()
            obs_metrics.histogram("boosting_round_grad_rms").observe(grad_rms)
            if runlog.active():
                runlog.emit(
                    "boost_round",
                    round=_round + 1,
                    rounds=self.n_estimators,
                    grad_rms=grad_rms,
                )
        obs_metrics.gauge("boosting_last_grad_rms").set(
            float(np.sqrt(np.mean((predictions - targets) ** 2)))
        )
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self.fitted:
            raise RuntimeError("model is not fitted")
        features = np.asarray(features, dtype=float)
        predictions = np.full(len(features), self.base_score)
        for tree in self.trees:
            predictions += self.learning_rate * tree.predict(features)
        return predictions

    def staged_predict(self, features: np.ndarray):
        """Yield predictions after each boosting round (for diagnostics)."""
        features = np.asarray(features, dtype=float)
        predictions = np.full(len(features), self.base_score)
        for tree in self.trees:
            predictions = predictions + self.learning_rate * tree.predict(features)
            yield predictions.copy()
