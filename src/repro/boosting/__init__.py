"""From-scratch gradient boosting (the XGBoost baseline's substrate)."""

from repro.boosting.gbm import GradientBoostedTrees
from repro.boosting.tree import RegressionTree, quantile_bins

__all__ = ["GradientBoostedTrees", "RegressionTree", "quantile_bins"]
