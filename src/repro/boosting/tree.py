"""Regression trees with XGBoost-style second-order split gain.

Implements the *histogram* algorithm of Chen & Guestrin (2016): features
are quantile-binned once per tree, per-node split search reduces to
``bincount`` histograms of gradients/hessians plus a vectorized gain scan —
leaf weight ``w* = -G/(H+λ)`` and split gain

``gain = 1/2 [ G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ) ] − γ``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass
class _Node:
    """One tree node; leaves carry ``value``, internal nodes a split."""

    value: float = 0.0
    feature: int = -1
    threshold: float = 0.0
    bin_index: int = -1
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def quantile_bins(values: np.ndarray, max_bins: int) -> np.ndarray:
    """Candidate split thresholds at (approximately) equal-mass quantiles."""
    unique = np.unique(values)
    if len(unique) <= 1:
        return np.empty(0)
    if len(unique) <= max_bins:
        return (unique[:-1] + unique[1:]) / 2.0
    quantiles = np.quantile(values, np.linspace(0, 1, max_bins + 1)[1:-1])
    return np.unique(quantiles)


class RegressionTree:
    """A depth-limited regression tree fitted to (gradient, hessian) pairs."""

    def __init__(
        self,
        max_depth: int = 4,
        min_child_weight: float = 1.0,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        max_bins: int = 32,
    ):
        self.max_depth = max_depth
        self.min_child_weight = min_child_weight
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.max_bins = max_bins
        self.root: Optional[_Node] = None
        self._edges: List[np.ndarray] = []

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, gradients: np.ndarray, hessians: np.ndarray) -> "RegressionTree":
        features = np.asarray(features, dtype=float)
        gradients = np.asarray(gradients, dtype=float)
        hessians = np.asarray(hessians, dtype=float)
        if features.ndim != 2:
            raise ValueError(f"features must be (n, d), got {features.shape}")
        if len(features) != len(gradients) or len(gradients) != len(hessians):
            raise ValueError("features/gradients/hessians lengths differ")

        dims = features.shape[1]
        self._edges = [quantile_bins(features[:, f], self.max_bins) for f in range(dims)]
        binned = np.empty(features.shape, dtype=np.int32)
        for f in range(dims):
            # side="left" makes bin b ⇔ value <= edges[b], matching predict's
            # "feature <= threshold" routing exactly at boundary values.
            binned[:, f] = np.searchsorted(self._edges[f], features[:, f], side="left")
        self.root = self._build(binned, gradients, hessians, np.arange(len(features)), depth=0)
        return self

    def _leaf_value(self, grad_sum: float, hess_sum: float) -> float:
        return -grad_sum / (hess_sum + self.reg_lambda)

    def _build(
        self,
        binned: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        index: np.ndarray,
        depth: int,
    ) -> _Node:
        grad_sum = float(gradients[index].sum())
        hess_sum = float(hessians[index].sum())
        node = _Node(value=self._leaf_value(grad_sum, hess_sum))
        if depth >= self.max_depth or len(index) < 2:
            return node

        parent_score = grad_sum**2 / (hess_sum + self.reg_lambda)
        best_gain = 0.0
        best_feature = -1
        best_bin = -1
        for feature in range(binned.shape[1]):
            edges = self._edges[feature]
            if len(edges) == 0:
                continue
            bins = binned[index, feature]
            grad_hist = np.bincount(bins, weights=gradients[index], minlength=len(edges) + 1)
            hess_hist = np.bincount(bins, weights=hessians[index], minlength=len(edges) + 1)
            grad_left = np.cumsum(grad_hist)[:-1]
            hess_left = np.cumsum(hess_hist)[:-1]
            grad_right = grad_sum - grad_left
            hess_right = hess_sum - hess_left
            valid = (hess_left >= self.min_child_weight) & (hess_right >= self.min_child_weight)
            if not valid.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                gains = (
                    0.5
                    * (
                        grad_left**2 / (hess_left + self.reg_lambda)
                        + grad_right**2 / (hess_right + self.reg_lambda)
                        - parent_score
                    )
                    - self.gamma
                )
            gains = np.where(valid & np.isfinite(gains), gains, -np.inf)
            candidate = int(np.argmax(gains))
            if gains[candidate] > best_gain:
                best_gain = float(gains[candidate])
                best_feature = feature
                best_bin = candidate

        if best_feature < 0:
            return node

        node.feature = best_feature
        node.bin_index = best_bin
        node.threshold = float(self._edges[best_feature][best_bin])
        goes_left = binned[index, best_feature] <= best_bin
        node.left = self._build(binned, gradients, hessians, index[goes_left], depth + 1)
        node.right = self._build(binned, gradients, hessians, index[~goes_left], depth + 1)
        return node

    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        features = np.asarray(features, dtype=float)
        output = np.empty(len(features))
        # Iterative partition-based traversal: much faster than per-row walks.
        stack = [(self.root, np.arange(len(features)))]
        while stack:
            node, index = stack.pop()
            if len(index) == 0:
                continue
            if node.is_leaf:
                output[index] = node.value
                continue
            goes_left = features[index, node.feature] <= node.threshold
            stack.append((node.left, index[goes_left]))
            stack.append((node.right, index[~goes_left]))
        return output

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root)

    def num_leaves(self) -> int:
        def walk(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self.root)
