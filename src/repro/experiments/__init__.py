"""Experiment runners: one per reproducible table/figure (see DESIGN.md)."""

from repro.experiments.error_propagation import (
    ErrorPropagationResult,
    run_error_propagation,
)
from repro.experiments.fig1 import Fig1Result, best_lag, lagged_correlation, run_fig1
from repro.experiments.fig7 import Fig7Result, run_fig7
from repro.experiments.profiles import (
    PROFILE_ENV,
    PROFILES,
    ExperimentProfile,
    get_profile,
)
from repro.experiments.reporting import flatten_metric, format_table
from repro.experiments.runner import ExperimentContext
from repro.experiments.stability import StabilityResult, run_stability
from repro.experiments.table3 import Table3Result, run_table3
from repro.experiments.table4 import Table4Result, run_table4
from repro.experiments.table5 import Table5Result, run_table5

__all__ = [
    "ErrorPropagationResult",
    "ExperimentContext",
    "ExperimentProfile",
    "Fig1Result",
    "Fig7Result",
    "PROFILES",
    "PROFILE_ENV",
    "StabilityResult",
    "Table3Result",
    "Table4Result",
    "Table5Result",
    "best_lag",
    "flatten_metric",
    "format_table",
    "get_profile",
    "lagged_correlation",
    "run_error_propagation",
    "run_fig1",
    "run_fig7",
    "run_stability",
    "run_table3",
    "run_table4",
    "run_table5",
]
