"""Command-line entry point: regenerate every paper artifact.

Usage::

    python -m repro.experiments.run_all --profile smoke --output results/

Writes one text file per artifact plus a combined ``summary.txt`` and a
machine-readable ``results.json``.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import time
from typing import Dict

_LOGGER = logging.getLogger(__name__)

from repro.experiments.fig1 import run_fig1
from repro.experiments.fig7 import run_fig7
from repro.experiments.profiles import get_profile
from repro.experiments.runner import ExperimentContext
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5


def _mean_std_tree(results) -> Dict:
    """Convert nested MeanStd values to JSON-friendly dicts."""
    if hasattr(results, "mean") and hasattr(results, "std"):
        return {"mean": results.mean, "std": results.std}
    if isinstance(results, dict):
        return {str(key): _mean_std_tree(value) for key, value in results.items()}
    return results


def run_all(
    profile_name: str, output_dir: str, verbose: bool = True, engine: str = None
) -> Dict:
    """Run every artifact at the named profile; returns the JSON payload.

    ``engine`` (``fast`` | ``precise``) selects the substrate precision for
    the whole run — ``fast`` trains float32 (see docs/PERFORMANCE.md).
    """
    from repro.nn import config as nn_config

    if engine is not None:
        nn_config.set_engine_mode(engine)
    profile = get_profile(profile_name)
    context = ExperimentContext(profile)
    os.makedirs(output_dir, exist_ok=True)
    payload: Dict = {
        "profile": profile.name,
        "engine_mode": nn_config.engine_mode(),
    }
    sections = []

    started = time.time()
    artifacts = (
        ("fig1", lambda: run_fig1(profile=profile, city=context.city)),
        ("table3", lambda: run_table3(profile=profile, context=context, verbose=verbose)),
        ("fig7", lambda: run_fig7(profile=profile, context=context, verbose=verbose)),
        ("table4", lambda: run_table4(profile=profile, context=context, verbose=verbose)),
        ("table5", lambda: run_table5(profile=profile, context=context, verbose=verbose)),
    )
    for name, runner in artifacts:
        artifact_start = time.time()
        result = runner()
        elapsed = time.time() - artifact_start
        rendered = result.render()
        sections.append(rendered + f"\n[{name}: {elapsed:.1f}s]")
        with open(os.path.join(output_dir, f"{name}.txt"), "w") as handle:
            handle.write(rendered + "\n")
        if hasattr(result, "results"):
            payload[name] = _mean_std_tree(result.results)
        if name == "table3":
            payload["table3_degradation_mae"] = result.degradation("MAE")
            payload["table3_degradation_rmse"] = result.degradation("RMSE")
        if name == "fig1":
            payload[name] = {
                "morning_subway_lag": result.morning_subway_lag,
                "morning_bike_lag": result.morning_bike_lag,
                "evening_subway_lag": result.evening_subway_lag,
                "evening_bike_lag": result.evening_bike_lag,
            }
        if verbose:
            _LOGGER.info("[%s done in %.1fs]", name, elapsed)

    summary = "\n\n".join(sections) + f"\n\ntotal: {time.time() - started:.1f}s\n"
    with open(os.path.join(output_dir, "summary.txt"), "w") as handle:
        handle.write(summary)
    with open(os.path.join(output_dir, "results.json"), "w") as handle:
        json.dump(payload, handle, indent=2, default=str)
    if verbose:
        _LOGGER.info("%s", summary)
    return payload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default=None, help="smoke | default | paper (default: env REPRO_PROFILE or smoke)")
    parser.add_argument("--output", default="results", help="output directory")
    parser.add_argument(
        "--engine",
        choices=("fast", "precise"),
        default=None,
        help="substrate precision: fast=float32, precise=float64 (default: env REPRO_ENGINE or precise)",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args()
    if not args.quiet:
        # CLI progress goes through logging so library use (and -q pytest
        # runs) stays silent unless a handler is configured.
        logging.basicConfig(level=logging.INFO, format="%(message)s")
    run_all(
        args.profile or os.environ.get("REPRO_PROFILE", "smoke"),
        args.output,
        verbose=not args.quiet,
        engine=args.engine,
    )


if __name__ == "__main__":
    main()
