"""Command-line entry point: regenerate every paper artifact.

Usage::

    python -m repro.experiments.run_all --profile smoke --output results/

Writes one text file per artifact plus a combined ``summary.txt`` and a
machine-readable ``results.json``. Training checkpoints autosave under
``<output>/checkpoints/``; ``--resume`` skips artifacts whose result file
already exists and restarts interrupted training runs from their newest
checkpoint. ``--only`` restricts the model comparison to a subset (the
BikeCAP-only ablation artifacts run only when BikeCAP is included).
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import time
from typing import Dict, Optional, Sequence

_LOGGER = logging.getLogger(__name__)

from repro.experiments.fig1 import run_fig1
from repro.experiments.fig7 import run_fig7
from repro.experiments.profiles import get_profile
from repro.experiments.runner import ExperimentContext
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.nn.divergence import DivergenceError
from repro.obs.artifacts import atomic_write_json, atomic_write_text
from repro.pipeline import registry


def _mean_std_tree(results) -> Dict:
    """Convert nested MeanStd values to JSON-friendly dicts."""
    if hasattr(results, "mean") and hasattr(results, "std"):
        return {"mean": results.mean, "std": results.std}
    if isinstance(results, dict):
        return {str(key): _mean_std_tree(value) for key, value in results.items()}
    return results


def _resolve_only(only, profile) -> Optional[list]:
    """Validate ``--only`` names against the registry and the profile."""
    if only is None:
        return None
    names = [name.strip() for name in only.split(",")] if isinstance(only, str) else list(only)
    names = [name for name in names if name]
    for name in names:
        registry.model_entry(name)  # raises ValueError with the known names
    if not names:
        raise ValueError("--only was given but named no models")
    return names


def run_all(
    profile_name: str,
    output_dir: str,
    verbose: bool = True,
    engine: str = None,
    only: Optional[Sequence[str]] = None,
    resume: bool = False,
    jobs: int = 1,
) -> Dict:
    """Run every artifact at the named profile; returns the JSON payload.

    ``engine`` (``fast`` | ``mixed`` | ``precise``) selects the substrate
    precision for the whole run — ``fast`` trains float32, ``mixed`` adds
    float64 master weights and dynamic loss scaling (see
    docs/PERFORMANCE.md). ``only`` restricts to a comma-separated (or
    listed) subset of registered models; ``resume`` skips finished
    artifacts and continues interrupted training from the autosaved
    checkpoints. ``jobs > 1`` trains repeated-seed runs concurrently in
    worker processes with identical results.
    """
    from repro.nn import config as nn_config

    if engine is not None:
        nn_config.set_engine_mode(engine)
    profile = get_profile(profile_name)
    only = _resolve_only(only, profile)
    os.makedirs(output_dir, exist_ok=True)
    context = ExperimentContext(
        profile,
        checkpoint_dir=os.path.join(output_dir, "checkpoints"),
        resume=resume,
        jobs=jobs,
    )

    payload: Dict = {
        "profile": profile.name,
        "engine_mode": nn_config.engine_mode(),
    }
    if resume:
        # Carry finished artifacts' numbers over so results.json stays
        # complete even when this invocation skips them.
        previous = os.path.join(output_dir, "results.json")
        if os.path.exists(previous):
            try:
                with open(previous) as handle:
                    stale = json.load(handle)
                stale.pop("profile", None)
                stale.pop("engine_mode", None)
                payload.update(stale)
            except (OSError, ValueError):
                pass

    table3_models = [m for m in profile.models if only is None or m in only]
    include_bikecap = only is None or "BikeCAP" in only
    sections = []

    started = time.time()
    artifacts = [
        ("fig1", lambda: run_fig1(profile=profile, city=context.city)),
    ]
    if table3_models:
        artifacts.append(
            (
                "table3",
                lambda: run_table3(
                    profile=profile, context=context, models=table3_models, verbose=verbose
                ),
            )
        )
    if include_bikecap:
        artifacts.extend(
            [
                ("fig7", lambda: run_fig7(profile=profile, context=context, verbose=verbose)),
                ("table4", lambda: run_table4(profile=profile, context=context, verbose=verbose)),
                ("table5", lambda: run_table5(profile=profile, context=context, verbose=verbose)),
            ]
        )
    for name, runner in artifacts:
        artifact_path = os.path.join(output_dir, f"{name}.txt")
        if resume and os.path.exists(artifact_path):
            with open(artifact_path) as handle:
                rendered = handle.read().rstrip("\n")
            sections.append(rendered + f"\n[{name}: resumed from existing result]")
            if verbose:
                _LOGGER.info("[%s skipped: %s exists]", name, artifact_path)
            continue
        artifact_start = time.time()
        try:
            result = runner()
        except DivergenceError as exc:
            # One unrecoverable divergence must not take down the other
            # artifacts: record the failure, keep the file absent (so a
            # --resume retries this artifact), and move on.
            elapsed = time.time() - artifact_start
            failure = f"[{name} FAILED after {elapsed:.1f}s: {exc}]"
            sections.append(failure)
            payload.setdefault("failures", {})[name] = str(exc)
            _LOGGER.warning("%s", failure)
            continue
        elapsed = time.time() - artifact_start
        rendered = result.render()
        sections.append(rendered + f"\n[{name}: {elapsed:.1f}s]")
        atomic_write_text(artifact_path, rendered + "\n")
        if hasattr(result, "results"):
            payload[name] = _mean_std_tree(result.results)
        if name == "table3":
            payload["table3_degradation_mae"] = result.degradation("MAE")
            payload["table3_degradation_rmse"] = result.degradation("RMSE")
        if name == "fig1":
            payload[name] = {
                "morning_subway_lag": result.morning_subway_lag,
                "morning_bike_lag": result.morning_bike_lag,
                "evening_subway_lag": result.evening_subway_lag,
                "evening_bike_lag": result.evening_bike_lag,
            }
        if verbose:
            _LOGGER.info("[%s done in %.1fs]", name, elapsed)

    summary = "\n\n".join(sections) + f"\n\ntotal: {time.time() - started:.1f}s\n"
    atomic_write_text(os.path.join(output_dir, "summary.txt"), summary)
    atomic_write_text(
        os.path.join(output_dir, "results.json"),
        json.dumps(payload, indent=2, default=str) + "\n",
    )
    if verbose:
        _LOGGER.info("%s", summary)
    return payload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default=None, help="smoke | default | paper (default: env REPRO_PROFILE or smoke)")
    parser.add_argument("--output", default="results", help="output directory")
    parser.add_argument(
        "--engine",
        choices=("fast", "mixed", "precise"),
        default=None,
        help="substrate precision: fast=float32, mixed=float32 compute with "
        "float64 master weights + dynamic loss scaling, precise=float64 "
        "(default: env REPRO_ENGINE or precise)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for repeated-seed sweeps (1 = serial; "
        "results are identical either way)",
    )
    parser.add_argument(
        "--only",
        default=None,
        help="comma-separated registered model names; restricts the comparison "
        "(ablation artifacts run only when BikeCAP is included)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip artifacts whose result file exists; resume interrupted "
        "training from the newest checkpoint in <output>/checkpoints/",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args()
    if not args.quiet:
        # CLI progress goes through logging so library use (and -q pytest
        # runs) stays silent unless a handler is configured.
        logging.basicConfig(level=logging.INFO, format="%(message)s")
    run_all(
        args.profile or os.environ.get("REPRO_PROFILE", "smoke"),
        args.output,
        verbose=not args.quiet,
        engine=args.engine,
        only=args.only,
        resume=args.resume,
        jobs=args.jobs,
    )


if __name__ == "__main__":
    main()
