"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence


def format_table(
    rows: Mapping[str, Mapping[str, object]],
    columns: Sequence[str],
    row_header: str = "",
) -> str:
    """Render nested ``{row: {column: value}}`` results as an aligned table."""
    header_cells = [row_header] + list(columns)
    body = []
    for row_name, values in rows.items():
        body.append([str(row_name)] + [str(values.get(col, "-")) for col in columns])
    widths = [
        max(len(header_cells[i]), *(len(line[i]) for line in body)) if body else len(header_cells[i])
        for i in range(len(header_cells))
    ]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(header_cells, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for line in body:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def flatten_metric(
    results: Mapping[str, Mapping[str, Dict]],
    metric: str,
) -> Dict[str, Dict[str, object]]:
    """Slice ``{row: {column: {metric: value}}}`` down to one metric."""
    return {
        row: {column: cell[metric] for column, cell in columns.items()}
        for row, columns in results.items()
    }
