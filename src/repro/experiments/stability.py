"""Stability analysis (paper Sec. V-A "Limitations").

The paper observes BikeCAP's run-to-run variance is larger than the graph
baselines' because each time slot's representation is built from all nearby
slots, and claims introducing *separated capsules for different time slots*
reduces the effect. This experiment measures exactly that: the across-seed
standard deviation of test MAE/RMSE for the joint-routing model versus the
separated-temporal-capsules variant.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentContext
from repro.metrics.evaluation import MeanStd, repeat_runs

_LOGGER = logging.getLogger(__name__)


@dataclass
class StabilityResult:
    """Across-seed spread for each routing arrangement."""

    profile: str
    horizon: int
    seeds: int
    results: Dict[str, Dict[str, MeanStd]]

    def render(self) -> str:
        rows = {
            name: {
                "MAE": metrics["MAE"],
                "RMSE": metrics["RMSE"],
                "MAE std": f"{metrics['MAE'].std:.3f}",
            }
            for name, metrics in self.results.items()
        }
        return (
            f"Stability (Sec. V-A, PTS={self.horizon}, {self.seeds} seeds) — "
            f"profile {self.profile}\n"
            + format_table(rows, ["MAE", "RMSE", "MAE std"], row_header="routing")
        )

    def variance_reduced(self) -> bool:
        """Whether separated capsules reduced the MAE spread."""
        return (
            self.results["separated"]["MAE"].std
            <= self.results["joint"]["MAE"].std + 1e-12
        )


def run_stability(
    profile: Optional[ExperimentProfile] = None,
    seeds: Optional[Sequence[int]] = None,
    epochs: Optional[int] = None,
    context: Optional[ExperimentContext] = None,
    verbose: bool = False,
) -> StabilityResult:
    """Compare run-to-run variance of joint vs separated temporal capsules."""
    profile = profile or get_profile()
    context = context or ExperimentContext(profile)
    seeds = tuple(seeds) if seeds is not None else tuple(profile.seeds) + tuple(
        seed + 100 for seed in profile.seeds
    )
    horizon = profile.ablation_horizon
    dataset = context.dataset(horizon)

    results: Dict[str, Dict[str, MeanStd]] = {}
    for name, separated in (("joint", False), ("separated", True)):

        def single_run(seed: int, name=name, separated=separated):
            spec = context.spec_for(
                "BikeCAP",
                horizon,
                epochs=epochs,
                seed=seed,
                separate_temporal_capsules=separated,
            )
            return context.execute(
                spec,
                dataset,
                label=f"BikeCAP-{name}",
                config={"experiment": "stability", "routing": name},
            ).metrics

        results[name] = repeat_runs(single_run, seeds)
        if verbose:
            _LOGGER.info("%s: MAE=%s RMSE=%s", name, results[name]['MAE'], results[name]['RMSE'])
    return StabilityResult(
        profile=profile.name, horizon=horizon, seeds=len(seeds), results=results
    )
