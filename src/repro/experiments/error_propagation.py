"""Accumulated-error analysis (paper Fig. 2's claim, measured directly).

The paper argues autoregressive models accumulate error because each step
consumes the previous step's *prediction*, while BikeCAP reconstructs every
future slot from history independently. This experiment isolates that
mechanism: for a trained recursive model we compare

- **rollout** — the deployment condition: predictions are fed back; and
- **teacher-forced** — a diagnostic upper bound: each step receives the
  *true* previous frames.

Their gap, per step, *is* the accumulated error. For direct models the two
conditions coincide by construction (gap ≡ 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.baselines import RecursiveFrameForecaster, make_forecaster
from repro.data.datasets import BikeDemandDataset
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.experiments.runner import ExperimentContext
from repro.metrics.errors import mae_per_step


@dataclass
class ErrorPropagationResult:
    """Per-step MAE under rollout vs teacher forcing for one model."""

    model: str
    horizon: int
    rollout_mae: np.ndarray
    teacher_forced_mae: np.ndarray

    @property
    def accumulated_error(self) -> np.ndarray:
        """The rollout penalty attributable to feeding predictions back."""
        return self.rollout_mae - self.teacher_forced_mae

    def render(self) -> str:
        lines = [f"accumulated error — {self.model} (per-step MAE)"]
        lines.append(f"{'step':>6s} {'rollout':>9s} {'teacher':>9s} {'gap':>9s}")
        for step in range(self.horizon):
            lines.append(
                f"{step + 1:6d} {self.rollout_mae[step]:9.4f} "
                f"{self.teacher_forced_mae[step]:9.4f} "
                f"{self.accumulated_error[step]:9.4f}"
            )
        return "\n".join(lines)


def teacher_forced_prediction(
    forecaster: RecursiveFrameForecaster,
    dataset: BikeDemandDataset,
    x: np.ndarray,
    window_offset: int,
) -> np.ndarray:
    """Multi-step prediction where each step sees *true* previous frames.

    True frames come from the later windows of the same chronological
    split, so window ``i``'s step-``t`` input is the genuine demand at
    ``i + t`` — possible offline, impossible in deployment.
    """
    del window_offset  # windows are consecutive: x[i + t] holds the truth
    horizon = forecaster.horizon
    steps = []
    count = len(x) - horizon
    if count <= 0:
        raise ValueError("not enough consecutive windows for teacher forcing")
    for step in range(horizon):
        # The true window at offset `step` contains the frames the model
        # would have seen had all its previous predictions been perfect.
        frame = forecaster.predict_next_frame(x[step : step + count])
        steps.append(frame[..., forecaster.target_feature])
    return np.stack(steps, axis=1)


def run_error_propagation(
    model: str = "convLSTM",
    profile: Optional[ExperimentProfile] = None,
    context: Optional[ExperimentContext] = None,
    horizon: Optional[int] = None,
    epochs: Optional[int] = None,
) -> ErrorPropagationResult:
    """Train one recursive model; measure rollout vs teacher-forced error."""
    profile = profile or get_profile()
    context = context or ExperimentContext(profile)
    horizon = horizon if horizon is not None else max(profile.horizons)
    dataset = context.dataset(horizon)
    overrides = dict(profile.model_overrides.get(model, {}))
    overrides.pop("epochs", None)

    forecaster = make_forecaster(
        model,
        dataset.history,
        horizon,
        dataset.grid_shape,
        dataset.num_features,
        seed=0,
        **overrides,
    )
    if not isinstance(forecaster, RecursiveFrameForecaster):
        raise ValueError(f"{model} is a direct model; the rollout gap is zero by construction")
    forecaster.fit(dataset, epochs=epochs if epochs is not None else profile.epochs)

    x = dataset.split.test_x
    truth = dataset.denormalize_target(dataset.split.test_y)
    count = len(x) - horizon

    rollout = dataset.denormalize_target(forecaster.predict(x[:count]))
    teacher = dataset.denormalize_target(
        teacher_forced_prediction(forecaster, dataset, x, window_offset=0)
    )
    return ErrorPropagationResult(
        model=model,
        horizon=horizon,
        rollout_mae=mae_per_step(truth[:count], rollout),
        teacher_forced_mae=mae_per_step(truth[:count], teacher),
    )
