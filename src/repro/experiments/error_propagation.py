"""Accumulated-error analysis (paper Fig. 2's claim, measured directly).

The paper argues autoregressive models accumulate error because each step
consumes the previous step's *prediction*, while BikeCAP reconstructs every
future slot from history independently. This experiment isolates that
mechanism: for a trained recursive model we compare

- **rollout** — the deployment condition: predictions are fed back; and
- **teacher-forced** — a diagnostic upper bound: each step receives the
  *true* previous frames.

Their gap, per step, *is* the accumulated error. For direct models the two
conditions coincide by construction (gap ≡ 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.data.datasets import BikeDemandDataset
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.experiments.runner import ExperimentContext
from repro.metrics.errors import mae_per_step
from repro.pipeline import forecast, registry


@dataclass
class ErrorPropagationResult:
    """Per-step MAE under rollout vs teacher forcing for one model."""

    model: str
    horizon: int
    rollout_mae: np.ndarray
    teacher_forced_mae: np.ndarray

    @property
    def accumulated_error(self) -> np.ndarray:
        """The rollout penalty attributable to feeding predictions back."""
        return self.rollout_mae - self.teacher_forced_mae

    def render(self) -> str:
        lines = [f"accumulated error — {self.model} (per-step MAE)"]
        lines.append(f"{'step':>6s} {'rollout':>9s} {'teacher':>9s} {'gap':>9s}")
        for step in range(self.horizon):
            lines.append(
                f"{step + 1:6d} {self.rollout_mae[step]:9.4f} "
                f"{self.teacher_forced_mae[step]:9.4f} "
                f"{self.accumulated_error[step]:9.4f}"
            )
        return "\n".join(lines)


def teacher_forced_prediction(
    forecaster,
    dataset: BikeDemandDataset,
    x: np.ndarray,
    window_offset: int,
) -> np.ndarray:
    """Multi-step prediction where each step sees *true* previous frames.

    True frames come from the later windows of the same chronological
    split, so window ``i``'s step-``t`` input is the genuine demand at
    ``i + t`` — possible offline, impossible in deployment. The decode
    loop itself is :func:`repro.pipeline.forecast.teacher_forced_forecast`,
    the same implementation the recursive rollout mirrors.
    """
    del window_offset  # windows are consecutive: x[i + t] holds the truth
    return forecast.teacher_forced_forecast(
        forecaster.predict_next_frame,
        x,
        forecaster.horizon,
        target_feature=forecaster.target_feature,
    )


def run_error_propagation(
    model: str = "convLSTM",
    profile: Optional[ExperimentProfile] = None,
    context: Optional[ExperimentContext] = None,
    horizon: Optional[int] = None,
    epochs: Optional[int] = None,
) -> ErrorPropagationResult:
    """Train one recursive model; measure rollout vs teacher-forced error."""
    profile = profile or get_profile()
    context = context or ExperimentContext(profile)
    horizon = horizon if horizon is not None else max(profile.horizons)
    dataset = context.dataset(horizon)
    if registry.protocol_of(model) != forecast.RECURSIVE:
        raise ValueError(f"{model} is a direct model; the rollout gap is zero by construction")

    spec = context.spec_for(model, horizon, epochs=epochs, seed=0)
    result = context.execute(
        spec, dataset, label=f"{model}-error-propagation",
        config={"experiment": "error_propagation"},
    )
    forecaster = result.forecaster

    if dataset.store is not None:
        # Decode against the store's lazy test view: teacher forcing slices
        # consecutive windows straight out of the chunked store, identical
        # values to the eager split arrays.
        view = dataset.test_view()
        x = view.x
        truth = dataset.denormalize_target(np.asarray(view.targets))
    else:
        x = dataset.split.test_x
        truth = dataset.denormalize_target(dataset.split.test_y)
    # Every usable starting window: window i's last teacher-forced step
    # consumes window i + horizon - 1 (same default as the decode loop).
    count = len(x) - horizon + 1

    rollout = dataset.denormalize_target(forecaster.predict(x[:count]))
    teacher = dataset.denormalize_target(
        teacher_forced_prediction(forecaster, dataset, x, window_offset=0)
    )
    return ErrorPropagationResult(
        model=model,
        horizon=horizon,
        rollout_mae=mae_per_step(truth[:count], rollout),
        teacher_forced_mae=mae_per_step(truth[:count], teacher),
    )
