"""Experiment scale profiles.

The paper ran one month of city-scale data for 100 epochs on an A4000 GPU;
this reproduction's substrate is a CPU numpy framework, so every experiment
supports three profiles:

- ``smoke`` — seconds-scale; used by the benchmark suite's default run and
  CI. Verifies the full pipeline and directional claims on a small city.
- ``default`` — minutes-scale; reproduces the qualitative shape of every
  table/figure with multiple seeds.
- ``paper`` — the paper's parameters (grid scale excepted); hours-scale on
  CPU. Selected with ``REPRO_PROFILE=paper``.

Select with the ``REPRO_PROFILE`` environment variable (default ``smoke``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.city.simulator import CityConfig

PROFILE_ENV = "REPRO_PROFILE"


@dataclass(frozen=True)
class ExperimentProfile:
    """Everything that scales an experiment run."""

    name: str
    city: CityConfig
    history: int
    horizons: Tuple[int, ...]
    ablation_horizon: int
    epochs: int
    seeds: Tuple[int, ...]
    pyramid_sizes: Tuple[int, ...]
    capsule_dims: Tuple[int, ...]
    models: Tuple[str, ...] = (
        "XGBoost",
        "LSTM",
        "convLSTM",
        "PredRNN",
        "PredRNN++",
        "STGCN",
        "STSGCN",
        "BikeCAP",
    )
    model_overrides: Dict[str, dict] = field(default_factory=dict)
    # Robust min-max (see MinMaxScaler): None keeps the paper's plain
    # min-max; the larger profiles use a high quantile because the
    # synthetic city concentrates demand on one hub cell far more than
    # dense Shenzhen does, which would crush every other cell's signal.
    normalization_quantile: float = None


_SMOKE = ExperimentProfile(
    name="smoke",
    city=CityConfig(
        rows=6,
        cols=6,
        num_lines=2,
        num_commuters=400,
        num_bikes=150,
        days=5,
        background_subway_per_day=120,
        background_bike_per_day=100,
        seed=7,
    ),
    history=6,
    horizons=(2, 3),
    ablation_horizon=3,
    epochs=2,
    seeds=(0,),
    pyramid_sizes=(2, 3),
    capsule_dims=(2, 4),
    model_overrides={
        "convLSTM": {"hidden_channels": 4, "kernel_size": 3},
        "PredRNN": {"hidden_channels": 4},
        "PredRNN++": {"hidden_channels": 4},
        "BikeCAP": {"pyramid_size": 3, "capsule_dim": 2, "future_capsule_dim": 2, "decoder_hidden": 4},
    },
)

_DEFAULT = ExperimentProfile(
    name="default",
    city=CityConfig(
        rows=8,
        cols=8,
        num_lines=3,
        num_commuters=1500,
        num_bikes=500,
        days=12,
        background_subway_per_day=300,
        background_bike_per_day=250,
        seed=7,
    ),
    history=8,
    horizons=(2, 4, 6, 8),
    ablation_horizon=6,
    epochs=8,
    seeds=(0, 1),
    pyramid_sizes=(2, 4, 6),
    capsule_dims=(2, 4, 8, 16),
    model_overrides={
        "convLSTM": {"hidden_channels": 4, "kernel_size": 3},
        "PredRNN": {"hidden_channels": 4},
        "PredRNN++": {"hidden_channels": 4},
        "STGCN": {"hidden_channels": 12},
        "STSGCN": {"hidden_channels": 12},
        "BikeCAP": {"pyramid_size": 4, "decoder_hidden": 6, "loss": "mse", "lr": 3e-3, "epochs": 24},
    },
    normalization_quantile=0.99,
)

_PAPER = ExperimentProfile(
    name="paper",
    city=CityConfig(
        rows=16,
        cols=12,
        num_lines=7,
        num_commuters=3000,
        num_bikes=1500,
        days=28,
        background_subway_per_day=600,
        background_bike_per_day=500,
        seed=7,
    ),
    history=8,
    horizons=(2, 3, 4, 5, 6, 7, 8),
    ablation_horizon=8,
    epochs=100,
    seeds=(0, 1, 2, 3, 4),
    pyramid_sizes=(2, 4, 6, 8),
    capsule_dims=(2, 4, 8, 16, 32),
    model_overrides={"BikeCAP": {"loss": "mse"}},
    normalization_quantile=0.995,
)

PROFILES: Dict[str, ExperimentProfile] = {
    "smoke": _SMOKE,
    "default": _DEFAULT,
    "paper": _PAPER,
}


def get_profile(name: str = None) -> ExperimentProfile:
    """Resolve a profile by name or the ``REPRO_PROFILE`` environment variable."""
    if name is None:
        name = os.environ.get(PROFILE_ENV, "smoke")
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(f"unknown profile {name!r}; choose from {sorted(PROFILES)}") from None
