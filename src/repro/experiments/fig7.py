"""Fig. 7: ablation study for component importance.

Compares the full BikeCAP with its subtractive variants at one multi-step
horizon. Paper shape (lower error = better):

- BikeCAP beats BikeCap-Sub → upstream subway data helps;
- BikeCap-Pyra beats BikeCap-3D-Pyra by a large margin → pyramid
  convolution (propagation-direction correlations) matters;
- BikeCap-3D beats BikeCap-3D-Pyra → the 3-D deconv decoder's
  neighbourhood sharing matters.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentContext
from repro.metrics.evaluation import MeanStd, repeat_runs
from repro.pipeline import registry

_LOGGER = logging.getLogger(__name__)


@dataclass
class Fig7Result:
    """``results[variant] = {"MAE": MeanStd, "RMSE": MeanStd}``."""

    profile: str
    horizon: int
    results: Dict[str, Dict[str, MeanStd]]

    def render(self) -> str:
        return (
            f"Fig. 7 (ablations, PTS={self.horizon}) — profile {self.profile}\n"
            + format_table(self.results, ["MAE", "RMSE"], row_header="variant")
        )


def run_fig7(
    profile: Optional[ExperimentProfile] = None,
    variants: Optional[Sequence[str]] = None,
    epochs: Optional[int] = None,
    context: Optional[ExperimentContext] = None,
    verbose: bool = False,
) -> Fig7Result:
    """Regenerate the Fig. 7 ablation comparison."""
    profile = profile or get_profile()
    context = context or ExperimentContext(profile)
    variants = list(variants) if variants is not None else list(registry.bikecap_variants())
    horizon = profile.ablation_horizon
    dataset = context.dataset(horizon)
    results: Dict[str, Dict[str, MeanStd]] = {}
    for variant in variants:

        def single_run(seed: int, variant=variant):
            # Every variant trains with the profile's BikeCAP settings so
            # the comparison isolates architecture, not hyperparameters.
            spec = context.spec_for(
                "BikeCAP", horizon, epochs=epochs, seed=seed
            ).with_overrides(model=variant)
            return context.execute(
                spec,
                dataset,
                label=f"{variant}-fig7",
                config={"experiment": "fig7", "variant": variant},
            ).metrics

        results[variant] = repeat_runs(single_run, profile.seeds)
        if verbose:
            _LOGGER.info("%s: MAE=%s RMSE=%s", variant, results[variant]['MAE'], results[variant]['RMSE'])
    return Fig7Result(profile=profile.name, horizon=horizon, results=results)
