"""Table III: performance comparison of all models across horizons.

The paper's headline result: autoregressive baselines' MAE/RMSE grow
rapidly with the number of predicted time slots (PTS), graph models degrade
more slowly, and BikeCAP degrades slowest — overtaking everything for
PTS ≥ 5 despite losing to the graph models at PTS = 2–3.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.experiments.reporting import flatten_metric, format_table
from repro.experiments.runner import ExperimentContext
from repro.metrics.evaluation import MeanStd
from repro.nn.divergence import DivergenceError

_LOGGER = logging.getLogger(__name__)


@dataclass
class Table3Result:
    """``results[model][pts] = {"MAE": MeanStd, "RMSE": MeanStd}``."""

    profile: str
    results: Dict[str, Dict[int, Dict[str, MeanStd]]]
    # Models whose training diverged beyond recovery: name -> error text.
    # They are excluded from results/degradation instead of aborting the
    # whole table (per-model failure isolation).
    failures: Dict[str, str] = field(default_factory=dict)

    def metric_table(self, metric: str) -> Dict[str, Dict[str, object]]:
        return {
            model: {f"PTS={pts}": cell[metric] for pts, cell in by_pts.items()}
            for model, by_pts in self.results.items()
        }

    def render(self) -> str:
        sections = []
        for metric in ("MAE", "RMSE"):
            rows = self.metric_table(metric)
            columns = next(iter(rows.values())).keys() if rows else []
            sections.append(
                f"Table III ({metric}) — profile {self.profile}\n"
                + format_table(rows, list(columns), row_header="model")
            )
        if self.failures:
            lines = [f"  {model}: {error}" for model, error in sorted(self.failures.items())]
            sections.append("failed models (training diverged):\n" + "\n".join(lines))
        return "\n\n".join(sections)

    def degradation(self, metric: str = "MAE") -> Dict[str, float]:
        """Per-model error growth: last-horizon mean / first-horizon mean.

        Paper shape: this ratio is much larger for the recursive baselines
        than for BikeCAP.
        """
        ratios = {}
        for model, by_pts in self.results.items():
            horizons = sorted(by_pts)
            first = by_pts[horizons[0]][metric].mean
            last = by_pts[horizons[-1]][metric].mean
            ratios[model] = last / max(first, 1e-12)
        return ratios


def run_table3(
    profile: Optional[ExperimentProfile] = None,
    models: Optional[Sequence[str]] = None,
    horizons: Optional[Sequence[int]] = None,
    epochs: Optional[int] = None,
    context: Optional[ExperimentContext] = None,
    verbose: bool = False,
) -> Table3Result:
    """Regenerate Table III at the given (or env-selected) profile.

    Recursive (autoregressive) models are trained *once* per seed — their
    single-step training does not depend on the prediction horizon — and
    rolled out to every PTS, exactly as the paper's protocol implies.
    Direct models (STGCN, STSGCN, BikeCAP) are retrained per horizon. The
    recursive/direct split is the registry's declared protocol metadata
    (:func:`repro.pipeline.registry.protocol_of`), not an instance probe.
    """
    from repro.pipeline import forecast, registry

    profile = profile or get_profile()
    context = context or ExperimentContext(profile)
    models = list(models) if models is not None else list(profile.models)
    horizons = list(horizons) if horizons is not None else list(profile.horizons)
    run_epochs = epochs if epochs is not None else profile.epochs

    results: Dict[str, Dict[int, Dict[str, MeanStd]]] = {}
    failures: Dict[str, str] = {}
    for model in models:
        try:
            if registry.protocol_of(model) == forecast.RECURSIVE:
                per_pts = _run_recursive_model(
                    model, context, horizons, run_epochs, profile.seeds
                )
            else:
                per_pts = {
                    pts: context.run_model(model, pts, epochs=epochs) for pts in horizons
                }
        except DivergenceError as exc:
            # Recovery (rollback + LR backoff) already ran inside the
            # pipeline and gave up; losing one model must not lose the
            # whole comparison table.
            failures[model] = str(exc)
            _LOGGER.warning("%s failed (training diverged): %s", model, exc)
            continue
        results[model] = per_pts
        if verbose:
            for pts in horizons:
                cell = per_pts[pts]
                _LOGGER.info("%s PTS=%s: MAE=%s RMSE=%s", model, pts, cell["MAE"], cell["RMSE"])
    return Table3Result(profile=profile.name, results=results, failures=failures)


def _run_recursive_model(model, context, horizons, epochs, seeds):
    """Fit a recursive model once per seed, evaluate at every horizon."""
    from repro.metrics.evaluation import evaluate_forecaster

    samples: Dict[int, Dict[str, list]] = {
        pts: {"MAE": [], "RMSE": []} for pts in horizons
    }
    fit_dataset = context.dataset(horizons[0])
    for seed in seeds:
        spec = context.spec_for(model, horizons[0], epochs=epochs, seed=int(seed))
        # One pipeline run fits the single-step model and evaluates it at
        # the first horizon; the later horizons reuse the trained model,
        # rolled further.
        result = context.execute(
            spec,
            fit_dataset,
            label=f"{model}-recursive",
            config={"horizons": list(horizons), "protocol": "recursive"},
        )
        samples[horizons[0]]["MAE"].append(result.metrics["MAE"])
        samples[horizons[0]]["RMSE"].append(result.metrics["RMSE"])
        forecaster = result.forecaster
        for pts in horizons[1:]:
            dataset = context.dataset(pts)
            forecaster.horizon = pts  # roll the same single-step model further
            metrics = evaluate_forecaster(forecaster, dataset)
            samples[pts]["MAE"].append(metrics["MAE"])
            samples[pts]["RMSE"].append(metrics["RMSE"])
    return {
        pts: {name: MeanStd.from_samples(values) for name, values in by_metric.items()}
        for pts, by_metric in samples.items()
    }
