"""Fig. 1: the motivating upstream→downstream correlation analysis.

The paper's Fig. 1 shows, over one day:

- morning: passengers *entering* residential station A rise before
  passengers *exiting* CBD station B; bike rentals near B track B's exits;
- evening: the direction reverses (entries at B lead exits at A; bike
  rentals near A track A's exits).

This module reconstructs those series from simulated records and quantifies
the lead-lag relationships with normalized cross-correlation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.city.simulator import SyntheticCity, simulate_city
from repro.data.aggregation import (
    DEFAULT_SLOT_SECONDS,
    bike_series_near_cell,
    station_series,
)
from repro.experiments.profiles import ExperimentProfile, get_profile


def lagged_correlation(leader: np.ndarray, follower: np.ndarray, max_lag: int) -> Dict[int, float]:
    """Pearson correlation of ``follower[t+lag]`` against ``leader[t]``.

    Positive lags test whether the leader *precedes* the follower.
    """
    leader = np.asarray(leader, dtype=float)
    follower = np.asarray(follower, dtype=float)
    if leader.shape != follower.shape:
        raise ValueError("series must have equal length")
    correlations = {}
    for lag in range(0, max_lag + 1):
        a = leader[: len(leader) - lag] if lag else leader
        b = follower[lag:]
        if a.std() == 0 or b.std() == 0:
            correlations[lag] = 0.0
        else:
            correlations[lag] = float(np.corrcoef(a, b)[0, 1])
    return correlations


def best_lag(correlations: Dict[int, float]) -> int:
    """The lag with maximal correlation."""
    return max(correlations, key=correlations.get)


@dataclass
class Fig1Result:
    """Series and lead-lag statistics reconstructing the paper's Fig. 1."""

    profile: str
    residential_station: int
    cbd_station: int
    slot_seconds: int
    # One-day series (per slot): the three curves of each panel.
    morning_entries_at_a: np.ndarray
    morning_exits_at_b: np.ndarray
    morning_bikes_near_b: np.ndarray
    evening_entries_at_b: np.ndarray
    evening_exits_at_a: np.ndarray
    evening_bikes_near_a: np.ndarray
    # Cross-correlations over the full period.
    morning_subway_lag: Dict[int, float]
    morning_bike_lag: Dict[int, float]
    evening_subway_lag: Dict[int, float]
    evening_bike_lag: Dict[int, float]

    def render(self) -> str:
        lines = [
            f"Fig. 1 analysis — profile {self.profile}",
            f"residential station A = {self.residential_station}, CBD station B = {self.cbd_station}",
            f"morning: corr[in(A) → out(B)] best lag {best_lag(self.morning_subway_lag)} "
            f"(r={max(self.morning_subway_lag.values()):.3f})",
            f"morning: corr[out(B) → bikes near B] best lag {best_lag(self.morning_bike_lag)} "
            f"(r={max(self.morning_bike_lag.values()):.3f})",
            f"evening: corr[in(B) → out(A)] best lag {best_lag(self.evening_subway_lag)} "
            f"(r={max(self.evening_subway_lag.values()):.3f})",
            f"evening: corr[out(A) → bikes near A] best lag {best_lag(self.evening_bike_lag)} "
            f"(r={max(self.evening_bike_lag.values()):.3f})",
        ]
        return "\n".join(lines)


def _window(series: np.ndarray, day: int, start_hour: float, end_hour: float, slot_seconds: int) -> np.ndarray:
    slots_per_day = int(round(24 * 3600 / slot_seconds))
    start = day * slots_per_day + int(start_hour * 3600 / slot_seconds)
    end = day * slots_per_day + int(end_hour * 3600 / slot_seconds)
    return series[start:end]


def run_fig1(
    profile: Optional[ExperimentProfile] = None,
    city: Optional[SyntheticCity] = None,
    day: int = 1,
    max_lag: int = 4,
    slot_seconds: int = DEFAULT_SLOT_SECONDS,
) -> Fig1Result:
    """Reconstruct the Fig. 1 analysis from a simulated city."""
    profile = profile or get_profile()
    city = city or simulate_city(profile.city)
    duration = city.duration_seconds

    station_a = city.subway.nearest_station(city.zones.dominant_residential_cell())
    station_b = city.subway.nearest_station(city.zones.dominant_cbd_cell())
    if station_a == station_b:
        raise RuntimeError("degenerate city: residential and CBD share a station")
    cell_a = city.subway.stations[station_a].cell
    cell_b = city.subway.stations[station_b].cell

    entries_a = station_series(city.subway_records, station_a, duration, boarding=True, slot_seconds=slot_seconds)
    exits_a = station_series(city.subway_records, station_a, duration, boarding=False, slot_seconds=slot_seconds)
    entries_b = station_series(city.subway_records, station_b, duration, boarding=True, slot_seconds=slot_seconds)
    exits_b = station_series(city.subway_records, station_b, duration, boarding=False, slot_seconds=slot_seconds)
    bikes_b = bike_series_near_cell(
        city.bike_records, city.grid, cell_b, duration, pickup=True, radius_cells=1, slot_seconds=slot_seconds
    )
    bikes_a = bike_series_near_cell(
        city.bike_records, city.grid, cell_a, duration, pickup=True, radius_cells=1, slot_seconds=slot_seconds
    )

    return Fig1Result(
        profile=profile.name,
        residential_station=station_a,
        cbd_station=station_b,
        slot_seconds=slot_seconds,
        morning_entries_at_a=_window(entries_a, day, 6, 12, slot_seconds),
        morning_exits_at_b=_window(exits_b, day, 6, 12, slot_seconds),
        morning_bikes_near_b=_window(bikes_b, day, 6, 12, slot_seconds),
        evening_entries_at_b=_window(entries_b, day, 14, 22, slot_seconds),
        evening_exits_at_a=_window(exits_a, day, 14, 22, slot_seconds),
        evening_bikes_near_a=_window(bikes_a, day, 14, 22, slot_seconds),
        morning_subway_lag=lagged_correlation(entries_a, exits_b, max_lag),
        morning_bike_lag=lagged_correlation(exits_b, bikes_b, max_lag),
        evening_subway_lag=lagged_correlation(entries_b, exits_a, max_lag),
        evening_bike_lag=lagged_correlation(exits_a, bikes_a, max_lag),
    )
