"""Table IV: performance with varying pyramid size.

Paper shape: error falls as the pyramid grows (more spatial-temporal
context) up to a sweet spot, then rises once the kernel drags in
uncorrelated grids — a U-shaped curve with the optimum at size ≈ 5.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentContext
from repro.metrics.evaluation import MeanStd, repeat_runs

_LOGGER = logging.getLogger(__name__)


@dataclass
class Table4Result:
    """``results[size] = {"MAE": MeanStd, "RMSE": MeanStd}``."""

    profile: str
    horizon: int
    results: Dict[int, Dict[str, MeanStd]]

    def render(self) -> str:
        rows = {f"size={size}": metrics for size, metrics in self.results.items()}
        return (
            f"Table IV (pyramid size, PTS={self.horizon}) — profile {self.profile}\n"
            + format_table(rows, ["MAE", "RMSE"], row_header="pyramid")
        )


def run_table4(
    profile: Optional[ExperimentProfile] = None,
    sizes: Optional[Sequence[int]] = None,
    epochs: Optional[int] = None,
    context: Optional[ExperimentContext] = None,
    verbose: bool = False,
) -> Table4Result:
    """Regenerate the pyramid-size sweep."""
    profile = profile or get_profile()
    context = context or ExperimentContext(profile)
    sizes = list(sizes) if sizes is not None else list(profile.pyramid_sizes)
    horizon = profile.ablation_horizon
    dataset = context.dataset(horizon)

    results: Dict[int, Dict[str, MeanStd]] = {}
    for size in sizes:

        def single_run(seed: int, size=size):
            spec = context.spec_for(
                "BikeCAP", horizon, epochs=epochs, seed=seed, pyramid_size=size
            )
            return context.execute(
                spec,
                dataset,
                label=f"BikeCAP-pyramid{size}",
                config={"experiment": "table4", "pyramid_size": size},
            ).metrics

        results[size] = repeat_runs(single_run, profile.seeds)
        if verbose:
            _LOGGER.info("pyramid=%s: MAE=%s RMSE=%s", size, results[size]['MAE'], results[size]['RMSE'])
    return Table4Result(profile=profile.name, horizon=horizon, results=results)
