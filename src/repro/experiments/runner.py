"""Shared experiment machinery: datasets per horizon, repeated-seed runs.

Every trained model run is wrapped in an ``experiment.<model>`` span and —
unless disabled with ``REPRO_RUNLOG=0`` — writes a structured JSONL run log
under ``results/runs/`` (``REPRO_RUNLOG_DIR``) recording seed, config, the
per-epoch curve emitted by :meth:`repro.nn.Trainer.fit`, and the final
test-split evaluation. Render one with ``python -m repro.obs.report``.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines import make_forecaster
from repro.city.simulator import SyntheticCity, simulate_city
from repro.data.aggregation import aggregate_city
from repro.data.datasets import BikeDemandDataset, dataset_from_tensor
from repro.experiments.profiles import ExperimentProfile
from repro.metrics.evaluation import MeanStd, evaluate_forecaster, repeat_runs
from repro.nn import config as nn_config
from repro.obs import runlog, tracing


def run_and_log(
    forecaster,
    dataset: BikeDemandDataset,
    label: str,
    seed: int,
    epochs: int,
    config: Optional[Dict] = None,
) -> Dict[str, float]:
    """Fit + evaluate one forecaster under a span and a JSONL run log."""
    config = dict(config) if config else {}
    # Engine state belongs in every run record: results are only comparable
    # across runs that used the same precision and sharding.
    config.setdefault("dtype", np.dtype(nn_config.dtype()).name)
    config.setdefault("engine_mode", nn_config.engine_mode())
    config.setdefault("num_threads", nn_config.num_threads())
    logger = runlog.start_run(label, seed=seed, config=config)
    try:
        with tracing.span(f"experiment.{label}"):
            forecaster.fit(dataset, epochs=epochs)
            metrics = evaluate_forecaster(forecaster, dataset)
        if logger is not None:
            logger.event("eval", split="test", **metrics)
            logger.close(status="ok", **metrics)
            logger = None
        return metrics
    finally:
        if logger is not None:
            logger.close(status="error")


class ExperimentContext:
    """Caches the simulated city and per-horizon datasets for one profile."""

    def __init__(self, profile: ExperimentProfile):
        self.profile = profile
        self._city: Optional[SyntheticCity] = None
        self._tensor: Optional[np.ndarray] = None
        self._datasets: Dict[int, BikeDemandDataset] = {}

    @property
    def city(self) -> SyntheticCity:
        if self._city is None:
            self._city = simulate_city(self.profile.city)
        return self._city

    @property
    def tensor(self) -> np.ndarray:
        if self._tensor is None:
            self._tensor = aggregate_city(self.city)
        return self._tensor

    def dataset(self, horizon: int) -> BikeDemandDataset:
        if horizon not in self._datasets:
            self._datasets[horizon] = dataset_from_tensor(
                self.tensor,
                history=self.profile.history,
                horizon=horizon,
                normalization_quantile=self.profile.normalization_quantile,
            )
        return self._datasets[horizon]

    # ------------------------------------------------------------------
    def run_model(
        self,
        name: str,
        horizon: int,
        epochs: Optional[int] = None,
        seeds=None,
        **overrides,
    ) -> Dict[str, MeanStd]:
        """Train+evaluate one model at one horizon over repeated seeds."""
        dataset = self.dataset(horizon)
        seeds = tuple(seeds) if seeds is not None else self.profile.seeds
        profile_overrides = dict(self.profile.model_overrides.get(name, {}))
        profile_overrides.update(overrides)
        # A per-model "epochs" override wins over the profile default (some
        # models need more optimization steps than others at equal budget).
        override_epochs = profile_overrides.pop("epochs", None)
        if epochs is None:
            epochs = override_epochs if override_epochs is not None else self.profile.epochs

        def single_run(seed: int) -> Dict[str, float]:
            forecaster = make_forecaster(
                name,
                dataset.history,
                dataset.horizon,
                dataset.grid_shape,
                dataset.num_features,
                seed=seed,
                **profile_overrides,
            )
            return run_and_log(
                forecaster,
                dataset,
                label=f"{name}-pts{horizon}",
                seed=seed,
                epochs=epochs,
                config={
                    "profile": self.profile.name,
                    "model": name,
                    "horizon": horizon,
                    "epochs": epochs,
                    "overrides": profile_overrides,
                },
            )

        return repeat_runs(single_run, seeds)
