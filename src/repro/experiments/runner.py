"""Shared experiment machinery: datasets per horizon, repeated-seed runs.

Experiments never touch forecaster classes: they describe each run as a
:class:`repro.pipeline.RunSpec` and hand it to
:func:`repro.pipeline.runner.execute`, which builds the model from the
registry, trains (with optional full-state checkpoint/resume), evaluates
on the test split and — unless disabled with ``REPRO_RUNLOG=0`` — writes a
structured JSONL run log under ``results/runs/`` (``REPRO_RUNLOG_DIR``).
Render one with ``python -m repro.obs.report``.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.city.simulator import SyntheticCity, simulate_city
from repro.data.aggregation import aggregate_city
from repro.data.datasets import BikeDemandDataset, dataset_from_tensor
from repro.experiments.profiles import ExperimentProfile
from repro.metrics.evaluation import MeanStd, aggregate_runs, repeat_runs
from repro.pipeline import RunSpec
from repro.pipeline import parallel as pipeline_parallel
from repro.pipeline import runner as pipeline_runner


def run_spec(
    spec: RunSpec,
    dataset: BikeDemandDataset,
    label: Optional[str] = None,
    config: Optional[Dict] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
) -> Dict[str, float]:
    """Execute one spec through the pipeline; return the test metrics."""
    result = pipeline_runner.execute(
        spec,
        dataset,
        label=label,
        log_config=config,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    return result.metrics


class ExperimentContext:
    """Caches the simulated city and per-horizon datasets for one profile.

    ``checkpoint_dir``/``resume`` (when set, e.g. by ``run_all --resume``)
    are threaded into every trained run so interrupted experiments restart
    from their newest autosave instead of from scratch. ``jobs > 1`` fans
    repeated-seed sweeps out across worker processes
    (:mod:`repro.pipeline.parallel`) — results are identical to serial.
    """

    def __init__(
        self,
        profile: ExperimentProfile,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        jobs: int = 1,
    ):
        self.profile = profile
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.jobs = max(1, int(jobs))
        self._city: Optional[SyntheticCity] = None
        self._tensor: Optional[np.ndarray] = None
        self._datasets: Dict[int, BikeDemandDataset] = {}

    @property
    def city(self) -> SyntheticCity:
        if self._city is None:
            self._city = simulate_city(self.profile.city)
        return self._city

    @property
    def tensor(self) -> np.ndarray:
        if self._tensor is None:
            self._tensor = aggregate_city(self.city)
        return self._tensor

    def dataset(self, horizon: int) -> BikeDemandDataset:
        if horizon not in self._datasets:
            self._datasets[horizon] = dataset_from_tensor(
                self.tensor,
                history=self.profile.history,
                horizon=horizon,
                normalization_quantile=self.profile.normalization_quantile,
            )
        return self._datasets[horizon]

    # ------------------------------------------------------------------
    def spec_for(
        self,
        name: str,
        horizon: int,
        epochs: Optional[int] = None,
        seed: int = 0,
        **overrides,
    ) -> RunSpec:
        """The profile's RunSpec for one model at one horizon.

        Profile ``model_overrides`` come first, call-site overrides win. A
        per-model "epochs" override beats the profile default (some models
        need more optimization steps than others at equal budget).
        """
        hparams = dict(self.profile.model_overrides.get(name, {}))
        hparams.update(overrides)
        override_epochs = hparams.pop("epochs", None)
        if epochs is None:
            epochs = override_epochs if override_epochs is not None else self.profile.epochs
        return RunSpec(
            model=name,
            history=self.profile.history,
            horizon=horizon,
            epochs=epochs,
            seed=seed,
            hparams=hparams,
        )

    def execute(
        self,
        spec: RunSpec,
        dataset: BikeDemandDataset,
        label: Optional[str] = None,
        config: Optional[Dict] = None,
    ) -> pipeline_runner.RunResult:
        """Run one spec with the context's checkpoint/resume settings."""
        log_config = {"profile": self.profile.name}
        if config:
            log_config.update(config)
        return pipeline_runner.execute(
            spec,
            dataset,
            label=label,
            log_config=log_config,
            checkpoint_dir=self.checkpoint_dir,
            resume=self.resume,
        )

    def run_model(
        self,
        name: str,
        horizon: int,
        epochs: Optional[int] = None,
        seeds=None,
        **overrides,
    ) -> Dict[str, MeanStd]:
        """Train+evaluate one model at one horizon over repeated seeds.

        With ``jobs > 1`` the per-seed runs execute concurrently in worker
        processes; aggregation (and the result, bit for bit) matches the
        serial path because every run is seeded solely by its spec.
        """
        dataset = self.dataset(horizon)
        seeds = tuple(seeds) if seeds is not None else self.profile.seeds
        if self.jobs > 1 and len(seeds) > 1:
            specs = [
                self.spec_for(name, horizon, epochs=epochs, seed=int(seed), **overrides)
                for seed in seeds
            ]
            per_run = pipeline_parallel.run_specs(
                specs,
                dataset,
                jobs=self.jobs,
                log_config={"profile": self.profile.name},
                checkpoint_dir=self.checkpoint_dir,
                resume=self.resume,
            )
            return aggregate_runs(per_run)

        def single_run(seed: int) -> Dict[str, float]:
            spec = self.spec_for(name, horizon, epochs=epochs, seed=seed, **overrides)
            return self.execute(spec, dataset).metrics

        return repeat_runs(single_run, seeds)
