"""Table V: performance with varying capsule dimension.

Paper shape: larger capsules carry more information and help up to a point
(optimum at 8), after which the extra parameters overfit and error rises —
another U-shaped sweep.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentContext
from repro.metrics.evaluation import MeanStd, repeat_runs

_LOGGER = logging.getLogger(__name__)


@dataclass
class Table5Result:
    """``results[dim] = {"MAE": MeanStd, "RMSE": MeanStd}``."""

    profile: str
    horizon: int
    results: Dict[int, Dict[str, MeanStd]]

    def render(self) -> str:
        rows = {f"dim={dim}": metrics for dim, metrics in self.results.items()}
        return (
            f"Table V (capsule dimension, PTS={self.horizon}) — profile {self.profile}\n"
            + format_table(rows, ["MAE", "RMSE"], row_header="capsule")
        )


def run_table5(
    profile: Optional[ExperimentProfile] = None,
    dims: Optional[Sequence[int]] = None,
    epochs: Optional[int] = None,
    context: Optional[ExperimentContext] = None,
    verbose: bool = False,
) -> Table5Result:
    """Regenerate the capsule-dimension sweep."""
    profile = profile or get_profile()
    context = context or ExperimentContext(profile)
    dims = list(dims) if dims is not None else list(profile.capsule_dims)
    horizon = profile.ablation_horizon
    dataset = context.dataset(horizon)

    results: Dict[int, Dict[str, MeanStd]] = {}
    for dim in dims:

        def single_run(seed: int, dim=dim):
            spec = context.spec_for(
                "BikeCAP",
                horizon,
                epochs=epochs,
                seed=seed,
                capsule_dim=dim,
                future_capsule_dim=dim,
            )
            return context.execute(
                spec,
                dataset,
                label=f"BikeCAP-capsule{dim}",
                config={"experiment": "table5", "capsule_dim": dim},
            ).metrics

        results[dim] = repeat_runs(single_run, profile.seeds)
        if verbose:
            _LOGGER.info("capsule_dim=%s: MAE=%s RMSE=%s", dim, results[dim]['MAE'], results[dim]['RMSE'])
    return Table5Result(profile=profile.name, horizon=horizon, results=results)
