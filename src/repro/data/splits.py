"""Chronological train/validation/test splits (paper: 6:2:2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.store.windows import split_bounds


@dataclass(frozen=True)
class Split:
    """A train/val/test partition of supervised windows."""

    train_x: np.ndarray
    train_y: np.ndarray
    val_x: np.ndarray
    val_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray

    @property
    def sizes(self) -> Tuple[int, int, int]:
        return (len(self.train_x), len(self.val_x), len(self.test_x))


def chronological_split(
    x: np.ndarray,
    y: np.ndarray,
    ratios: Tuple[float, float, float] = (0.6, 0.2, 0.2),
) -> Split:
    """Split windows chronologically by the given ratios.

    Chronological (not shuffled) splitting avoids leakage between
    overlapping windows of adjacent time slots. The boundary arithmetic
    lives in :func:`repro.store.windows.split_bounds` so the store's lazy
    split views partition identically.
    """
    if len(x) != len(y):
        raise ValueError(f"x and y lengths differ: {len(x)} vs {len(y)}")
    train_end, val_end = split_bounds(len(x), ratios)
    return Split(
        train_x=x[:train_end],
        train_y=y[:train_end],
        val_x=x[train_end:val_end],
        val_y=y[train_end:val_end],
        test_x=x[val_end:],
        test_y=y[val_end:],
    )
