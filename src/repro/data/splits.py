"""Chronological train/validation/test splits (paper: 6:2:2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class Split:
    """A train/val/test partition of supervised windows."""

    train_x: np.ndarray
    train_y: np.ndarray
    val_x: np.ndarray
    val_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray

    @property
    def sizes(self) -> Tuple[int, int, int]:
        return (len(self.train_x), len(self.val_x), len(self.test_x))


def chronological_split(
    x: np.ndarray,
    y: np.ndarray,
    ratios: Tuple[float, float, float] = (0.6, 0.2, 0.2),
) -> Split:
    """Split windows chronologically by the given ratios.

    Chronological (not shuffled) splitting avoids leakage between
    overlapping windows of adjacent time slots.
    """
    if len(x) != len(y):
        raise ValueError(f"x and y lengths differ: {len(x)} vs {len(y)}")
    if abs(sum(ratios) - 1.0) > 1e-9:
        raise ValueError(f"ratios must sum to 1, got {ratios}")
    if any(r < 0 for r in ratios):
        raise ValueError(f"ratios must be non-negative, got {ratios}")
    count = len(x)
    train_end = int(np.floor(count * ratios[0]))
    val_end = train_end + int(np.floor(count * ratios[1]))
    if train_end == 0 or val_end == train_end or val_end == count:
        if count < 3:
            raise ValueError(f"need at least 3 windows to split, got {count}")
        # Degenerate rounding on tiny datasets: guarantee non-empty parts.
        train_end = max(1, train_end)
        val_end = max(train_end + 1, min(val_end, count - 1))
    return Split(
        train_x=x[:train_end],
        train_y=y[:train_end],
        val_x=x[train_end:val_end],
        val_y=y[train_end:val_end],
        test_x=x[val_end:],
        test_y=y[val_end:],
    )
