"""Data pipeline: aggregation, normalization, windowing, splits, datasets."""

from repro.data.aggregation import (
    BIKE_DROPOFF,
    BIKE_PICKUP,
    DEFAULT_SLOT_SECONDS,
    FEATURE_NAMES,
    SUBWAY_IN,
    SUBWAY_OUT,
    aggregate_bike,
    aggregate_city,
    aggregate_subway,
    bike_series_near_cell,
    num_slots,
    station_series,
)
from repro.data.datasets import (
    BikeDemandDataset,
    build_dataset,
    dataset_from_city,
    dataset_from_tensor,
)
from repro.data.io import (
    load_demand_tensor,
    read_bike_csv,
    read_subway_csv,
    save_demand_tensor,
    write_bike_csv,
    write_subway_csv,
)
from repro.data.normalization import MinMaxScaler
from repro.data.splits import Split, chronological_split
from repro.data.streaming import iter_demand_chunks, streaming_dataset_from_city
from repro.data.windows import flatten_windows, make_windows

__all__ = [
    "BIKE_DROPOFF",
    "BIKE_PICKUP",
    "BikeDemandDataset",
    "DEFAULT_SLOT_SECONDS",
    "FEATURE_NAMES",
    "MinMaxScaler",
    "SUBWAY_IN",
    "SUBWAY_OUT",
    "Split",
    "aggregate_bike",
    "aggregate_city",
    "aggregate_subway",
    "bike_series_near_cell",
    "build_dataset",
    "chronological_split",
    "dataset_from_city",
    "dataset_from_tensor",
    "flatten_windows",
    "iter_demand_chunks",
    "load_demand_tensor",
    "make_windows",
    "streaming_dataset_from_city",
    "num_slots",
    "read_bike_csv",
    "read_subway_csv",
    "save_demand_tensor",
    "station_series",
    "write_bike_csv",
    "write_subway_csv",
]
