"""Dataset assembly: simulator output → ready-to-train splits.

``BikeDemandDataset`` bundles the fitted scaler (for denormalized
evaluation, as the paper does), grid metadata and — since the unified
dataflow refactor — a chunked :class:`repro.store.WindowStore`. The
``split`` arrays are a *lazy* facade: store-backed datasets materialize
them on first touch, bit-identical to the historical eager pipeline
(normalize whole tensor → ``make_windows`` → ``chronological_split``),
while streaming consumers iterate the store views directly and never hold
every window at once.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.city.simulator import CityConfig, SyntheticCity, simulate_city
from repro.data.aggregation import BIKE_PICKUP, FEATURE_NAMES, aggregate_city
from repro.data.normalization import MinMaxScaler
from repro.data.splits import Split, chronological_split
from repro.data.windows import make_windows
from repro.store import DEFAULT_CHUNK_SLOTS, WindowStore, WindowView


class BikeDemandDataset:
    """Supervised multi-step forecasting dataset.

    Construct either eagerly (``split=``, the historical shape) or lazily
    (``store=``); with a store, ``.split`` materializes on first access and
    the ``*_view()`` accessors expose the underlying lazy window ranges.
    ``streaming=True`` marks the dataset as preferring chunk-by-chunk
    iteration — forecasters that support it stream epochs from the store.
    """

    def __init__(
        self,
        split: Optional[Split] = None,
        scaler: Optional[MinMaxScaler] = None,
        grid_shape: Optional[Tuple[int, int]] = None,
        history: Optional[int] = None,
        horizon: Optional[int] = None,
        target_feature: int = BIKE_PICKUP,
        store: Optional[WindowStore] = None,
        ratios: Tuple[float, float, float] = (0.6, 0.2, 0.2),
        streaming: bool = False,
    ):
        if split is None and store is None:
            raise ValueError("BikeDemandDataset needs a split or a store")
        self._split = split
        self._views: Optional[Tuple[WindowView, WindowView, WindowView]] = None
        self.store = store
        self.scaler = scaler if scaler is not None else (store.scaler if store else None)
        self.grid_shape = grid_shape if grid_shape is not None else store.grid_shape
        self.history = history if history is not None else store.history
        self.horizon = horizon if horizon is not None else store.horizon
        self.target_feature = target_feature
        self.ratios = ratios
        self.streaming = streaming

    @property
    def split(self) -> Split:
        """The train/val/test arrays; materialized from the store lazily."""
        if self._split is None:
            train, val, test = self._split_views()
            train_x, train_y = train.arrays()
            val_x, val_y = val.arrays()
            test_x, test_y = test.arrays()
            self._split = Split(
                train_x=train_x,
                train_y=train_y,
                val_x=val_x,
                val_y=val_y,
                test_x=test_x,
                test_y=test_y,
            )
        return self._split

    def _split_views(self) -> Tuple[WindowView, WindowView, WindowView]:
        if self.store is None:
            raise RuntimeError("eager dataset has no store views; use .split")
        if self._views is None:
            self._views = self.store.split_views(self.ratios)
        return self._views

    def train_view(self) -> WindowView:
        return self._split_views()[0]

    def val_view(self) -> WindowView:
        return self._split_views()[1]

    def test_view(self) -> WindowView:
        return self._split_views()[2]

    def train_source(self) -> WindowView:
        """Batch source for streamed training (trainer batch protocol)."""
        return self.train_view()

    @property
    def num_features(self) -> int:
        if self.store is not None:
            return self.store.num_features
        return self.split.train_x.shape[-1]

    def denormalize_target(self, values: np.ndarray) -> np.ndarray:
        """Map normalized target predictions back to raw demand counts."""
        return self.scaler.inverse_transform(values, feature=self.target_feature)


def dataset_from_tensor(
    tensor: np.ndarray,
    history: int = 8,
    horizon: int = 4,
    target_feature: int = BIKE_PICKUP,
    ratios: Tuple[float, float, float] = (0.6, 0.2, 0.2),
    normalization_quantile: Optional[float] = None,
    chunk_slots: Optional[int] = DEFAULT_CHUNK_SLOTS,
    streaming: bool = False,
) -> BikeDemandDataset:
    """Normalize an aggregated ``(T, G1, G2, F)`` tensor and window it.

    The scaler is fitted on the *training* portion of the raw series only,
    to avoid test-set leakage through the normalization constants.
    ``normalization_quantile`` switches to robust min-max (see
    :class:`MinMaxScaler`).

    The tensor lands in a chunked :class:`~repro.store.WindowStore`
    (``chunk_slots`` time slots per chunk) and windows materialize lazily —
    bit-identical to the historical eager path, which ``chunk_slots=None``
    still selects for reference/pinning purposes.
    """
    tensor = np.asarray(tensor, dtype=float)
    train_slots = int(tensor.shape[0] * ratios[0])
    if chunk_slots is None:
        scaler = MinMaxScaler(quantile=normalization_quantile).fit(
            tensor[: max(train_slots, 1)]
        )
        normalized = np.clip(scaler.transform(tensor), 0.0, None)
        x, y = make_windows(normalized, history, horizon, target_feature=target_feature)
        split = chronological_split(x, y, ratios)
        return BikeDemandDataset(
            split=split,
            scaler=scaler,
            grid_shape=(tensor.shape[1], tensor.shape[2]),
            history=history,
            horizon=horizon,
            target_feature=target_feature,
            ratios=ratios,
        )
    store = WindowStore.from_tensor(
        tensor,
        history,
        horizon,
        target_feature=target_feature,
        chunk_slots=chunk_slots,
        scaler=MinMaxScaler(quantile=normalization_quantile),
        fit_slots=max(train_slots, 1),
    )
    return BikeDemandDataset(
        store=store,
        target_feature=target_feature,
        ratios=ratios,
        streaming=streaming,
    )


def build_dataset(
    city_config: Optional[CityConfig] = None,
    history: int = 8,
    horizon: int = 4,
    slot_seconds: int = 15 * 60,
    normalization_quantile: Optional[float] = None,
) -> BikeDemandDataset:
    """Simulate a city and build the forecasting dataset in one call."""
    city = simulate_city(city_config)
    return dataset_from_city(
        city,
        history=history,
        horizon=horizon,
        slot_seconds=slot_seconds,
        normalization_quantile=normalization_quantile,
    )


def dataset_from_city(
    city: SyntheticCity,
    history: int = 8,
    horizon: int = 4,
    slot_seconds: int = 15 * 60,
    normalization_quantile: Optional[float] = None,
) -> BikeDemandDataset:
    """Aggregate an already-simulated city into a dataset."""
    tensor = aggregate_city(city, slot_seconds=slot_seconds)
    return dataset_from_tensor(
        tensor,
        history=history,
        horizon=horizon,
        normalization_quantile=normalization_quantile,
    )


__all__ = [
    "BikeDemandDataset",
    "FEATURE_NAMES",
    "build_dataset",
    "dataset_from_city",
    "dataset_from_tensor",
]
