"""Dataset assembly: simulator output → ready-to-train splits.

``BikeDemandDataset`` bundles normalized windows, the fitted scaler (for
denormalized evaluation, as the paper does), and grid metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.city.simulator import CityConfig, SyntheticCity, simulate_city
from repro.data.aggregation import BIKE_PICKUP, FEATURE_NAMES, aggregate_city
from repro.data.normalization import MinMaxScaler
from repro.data.splits import Split, chronological_split
from repro.data.windows import make_windows


@dataclass
class BikeDemandDataset:
    """Supervised multi-step forecasting dataset."""

    split: Split
    scaler: MinMaxScaler
    grid_shape: Tuple[int, int]
    history: int
    horizon: int
    target_feature: int = BIKE_PICKUP

    @property
    def num_features(self) -> int:
        return self.split.train_x.shape[-1]

    def denormalize_target(self, values: np.ndarray) -> np.ndarray:
        """Map normalized target predictions back to raw demand counts."""
        return self.scaler.inverse_transform(values, feature=self.target_feature)


def dataset_from_tensor(
    tensor: np.ndarray,
    history: int = 8,
    horizon: int = 4,
    target_feature: int = BIKE_PICKUP,
    ratios: Tuple[float, float, float] = (0.6, 0.2, 0.2),
    normalization_quantile: Optional[float] = None,
) -> BikeDemandDataset:
    """Normalize an aggregated ``(T, G1, G2, F)`` tensor and window it.

    The scaler is fitted on the *training* portion of the raw series only,
    to avoid test-set leakage through the normalization constants.
    ``normalization_quantile`` switches to robust min-max (see
    :class:`MinMaxScaler`).
    """
    tensor = np.asarray(tensor, dtype=float)
    train_slots = int(tensor.shape[0] * ratios[0])
    scaler = MinMaxScaler(quantile=normalization_quantile).fit(tensor[: max(train_slots, 1)])
    normalized = np.clip(scaler.transform(tensor), 0.0, None)
    x, y = make_windows(normalized, history, horizon, target_feature=target_feature)
    split = chronological_split(x, y, ratios)
    return BikeDemandDataset(
        split=split,
        scaler=scaler,
        grid_shape=(tensor.shape[1], tensor.shape[2]),
        history=history,
        horizon=horizon,
        target_feature=target_feature,
    )


def build_dataset(
    city_config: Optional[CityConfig] = None,
    history: int = 8,
    horizon: int = 4,
    slot_seconds: int = 15 * 60,
    normalization_quantile: Optional[float] = None,
) -> BikeDemandDataset:
    """Simulate a city and build the forecasting dataset in one call."""
    city = simulate_city(city_config)
    return dataset_from_city(
        city,
        history=history,
        horizon=horizon,
        slot_seconds=slot_seconds,
        normalization_quantile=normalization_quantile,
    )


def dataset_from_city(
    city: SyntheticCity,
    history: int = 8,
    horizon: int = 4,
    slot_seconds: int = 15 * 60,
    normalization_quantile: Optional[float] = None,
) -> BikeDemandDataset:
    """Aggregate an already-simulated city into a dataset."""
    tensor = aggregate_city(city, slot_seconds=slot_seconds)
    return dataset_from_tensor(
        tensor,
        history=history,
        horizon=horizon,
        normalization_quantile=normalization_quantile,
    )


__all__ = [
    "BikeDemandDataset",
    "FEATURE_NAMES",
    "build_dataset",
    "dataset_from_city",
    "dataset_from_tensor",
]
