"""Sliding-window construction for multi-step forecasting.

The paper uses two hours of history (h = 8 slots of 15 minutes) to predict
the next p ∈ [2, 8] slots of bike pick-up demand.

``make_windows`` is a compatibility shim over the store's zero-copy
sliding-window fast path (:func:`repro.store.windows.supervised_pairs`) —
bit-identical to the historical Python-loop ``np.stack`` implementation,
O(output) copies instead of O(N·h·G·F) intermediate stacking. All window
slicing routes through ``repro.store`` (layering rule 11).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.aggregation import BIKE_PICKUP
from repro.store.windows import supervised_pairs


def make_windows(
    tensor: np.ndarray,
    history: int,
    horizon: int,
    target_feature: int = BIKE_PICKUP,
    stride: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Slice ``(T, G1, G2, F)`` into supervised pairs.

    Returns ``X`` of shape ``(N, history, G1, G2, F)`` and ``Y`` of shape
    ``(N, horizon, G1, G2)`` where ``Y`` holds the target feature only.
    Windows are chronological; ``stride`` thins them.
    """
    return supervised_pairs(
        tensor, history, horizon, target_feature=target_feature, stride=stride
    )


def flatten_windows(x: np.ndarray) -> np.ndarray:
    """Flatten ``(N, h, G1, G2, F)`` windows to ``(N, h*G1*G2*F)`` vectors.

    Used by the purely-temporal baselines (XGBoost, LSTM) that consume
    per-grid series rather than spatial tensors.
    """
    return x.reshape(len(x), -1)
