"""Sliding-window construction for multi-step forecasting.

The paper uses two hours of history (h = 8 slots of 15 minutes) to predict
the next p ∈ [2, 8] slots of bike pick-up demand.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.aggregation import BIKE_PICKUP


def make_windows(
    tensor: np.ndarray,
    history: int,
    horizon: int,
    target_feature: int = BIKE_PICKUP,
    stride: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Slice ``(T, G1, G2, F)`` into supervised pairs.

    Returns ``X`` of shape ``(N, history, G1, G2, F)`` and ``Y`` of shape
    ``(N, horizon, G1, G2)`` where ``Y`` holds the target feature only.
    Windows are chronological; ``stride`` thins them.
    """
    tensor = np.asarray(tensor)
    if tensor.ndim != 4:
        raise ValueError(f"expected (T, G1, G2, F) tensor, got shape {tensor.shape}")
    if history < 1 or horizon < 1:
        raise ValueError("history and horizon must be positive")
    total = tensor.shape[0]
    count = total - history - horizon + 1
    if count <= 0:
        raise ValueError(
            f"series of length {total} too short for history={history}, horizon={horizon}"
        )
    starts = np.arange(0, count, stride)
    x = np.stack([tensor[s : s + history] for s in starts])
    y = np.stack(
        [tensor[s + history : s + history + horizon, :, :, target_feature] for s in starts]
    )
    return x, y


def flatten_windows(x: np.ndarray) -> np.ndarray:
    """Flatten ``(N, h, G1, G2, F)`` windows to ``(N, h*G1*G2*F)`` vectors.

    Used by the purely-temporal baselines (XGBoost, LSTM) that consume
    per-grid series rather than spatial tensors.
    """
    return x.reshape(len(x), -1)
