"""Min-max normalization (paper Sec. IV-D) — compatibility re-export.

The scaler implementation moved to :mod:`repro.store.normalization` (the
chunked-dataflow leaf) so offline dataset builds and online serve
ingestion share one set of incremental statistics. This module keeps the
historical import path alive; the class is the same object.
"""

from __future__ import annotations

from repro.store.normalization import MinMaxScaler

__all__ = ["MinMaxScaler"]
