"""Min-max normalization (paper Sec. IV-D).

The paper maps all features to [0, 1] with min-max normalization and
denormalizes predictions before computing MAE/RMSE. The scaler here is
per-feature (last axis) and explicitly invertible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class MinMaxScaler:
    """Per-feature min-max scaler over the trailing axis.

    ``quantile`` (optional) makes the scaler *robust*: the per-feature
    "max" is that quantile of the data instead of the absolute maximum, so
    a single extreme cell does not crush every other value toward zero.
    The transform stays affine and exactly invertible — values above the
    quantile simply map above 1. Demand data with one dominant hub is
    exactly the case this exists for.
    """

    def __init__(self, quantile: Optional[float] = None):
        if quantile is not None and not 0.5 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0.5, 1], got {quantile}")
        self.quantile = quantile
        self.minimum: Optional[np.ndarray] = None
        self.maximum: Optional[np.ndarray] = None

    @property
    def fitted(self) -> bool:
        return self.minimum is not None

    def fit(self, tensor: np.ndarray) -> "MinMaxScaler":
        """Learn per-feature min/max from ``(..., F)`` data."""
        tensor = np.asarray(tensor)
        axes = tuple(range(tensor.ndim - 1))
        self.minimum = tensor.min(axis=axes)
        if self.quantile is None:
            self.maximum = tensor.max(axis=axes)
        else:
            flat = tensor.reshape(-1, tensor.shape[-1])
            self.maximum = np.quantile(flat, self.quantile, axis=0)
            # Guard degenerate features whose quantile equals the minimum.
            collapsed = self.maximum <= self.minimum
            if np.any(collapsed):
                true_max = flat.max(axis=0)
                self.maximum = np.where(collapsed, true_max, self.maximum)
        return self

    def transform(self, tensor: np.ndarray) -> np.ndarray:
        self._check_fitted()
        span = self._span()
        return (np.asarray(tensor) - self.minimum) / span

    def fit_transform(self, tensor: np.ndarray) -> np.ndarray:
        return self.fit(tensor).transform(tensor)

    def inverse_transform(self, tensor: np.ndarray, feature: Optional[int] = None) -> np.ndarray:
        """Undo scaling; ``feature`` selects one channel's parameters when the
        data carries a single feature (e.g. predicted bike pick-ups)."""
        self._check_fitted()
        if feature is None:
            return np.asarray(tensor) * self._span() + self.minimum
        span = self._span()[feature]
        return np.asarray(tensor) * span + self.minimum[feature]

    def _span(self) -> np.ndarray:
        span = self.maximum - self.minimum
        # Constant features map to 0 rather than dividing by zero.
        return np.where(span == 0, 1.0, span)

    def _check_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError("scaler must be fitted before use")

    def state(self) -> dict:
        """Everything needed to rebuild this fitted scaler elsewhere.

        ``quantile`` rides along so a restored robust scaler stays robust if
        it is ever refitted (a restored scaler that silently became a plain
        max scaler would renormalize served data differently than training).
        """
        self._check_fitted()
        return {
            "minimum": self.minimum.copy(),
            "maximum": self.maximum.copy(),
            "quantile": self.quantile,
        }

    @classmethod
    def from_state(cls, state: dict) -> "MinMaxScaler":
        missing = sorted({"minimum", "maximum"} - set(state))
        if missing:
            raise ValueError(
                f"MinMaxScaler.from_state: state dict is missing {missing}; "
                "expected a dict produced by MinMaxScaler.state()"
            )
        # Older state dicts predate the "quantile" key; absent means plain
        # min-max, which is what they were.
        scaler = cls(quantile=state.get("quantile"))
        scaler.minimum = np.asarray(state["minimum"])
        scaler.maximum = np.asarray(state["maximum"])
        return scaler
