"""CSV import/export for trip records (paper Table I/II layouts).

Lets users bring their own bike/subway data: export the simulator's records
for inspection, or load real records exported from another system into the
same aggregation pipeline.
"""

from __future__ import annotations

import csv
import os
from typing import List

import numpy as np

from repro.city.records import (
    BOARDING,
    PICK_UP,
    BikeRecordBatch,
    SubwayRecordBatch,
    format_time,
)

_SUBWAY_HEADER = ["record", "szt_id", "time", "transportation", "status", "station"]
_BIKE_HEADER = ["record", "user_id", "time", "latitude", "longitude", "status", "bike_id"]


def _parse_time(text: str) -> float:
    """Timestamp string → seconds since the dataset epoch (2018-10-01)."""
    import datetime as dt

    from repro.city.records import EPOCH

    moment = dt.datetime.strptime(text, "%Y-%m-%d %H:%M:%S")
    return (moment - EPOCH).total_seconds()


def write_subway_csv(batch: SubwayRecordBatch, station_names: List[str], path: str) -> None:
    """Write records in the paper's Table I layout."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_SUBWAY_HEADER)
        for record in batch.to_records(station_names):
            writer.writerow(
                [
                    record.record_id,
                    record.szt_id,
                    record.time,
                    record.transportation,
                    record.status,
                    record.station_name,
                ]
            )


def read_subway_csv(path: str, station_names: List[str]) -> SubwayRecordBatch:
    """Read a Table I-layout CSV back into a column batch."""
    name_to_id = {name: index for index, name in enumerate(station_names)}
    times, stations, lines, boarding, users = [], [], [], [], []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(_SUBWAY_HEADER) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"subway CSV missing columns: {sorted(missing)}")
        for row in reader:
            times.append(_parse_time(row["time"]))
            stations.append(name_to_id[row["station"]])
            lines.append(int(row["transportation"].rsplit(".", 1)[-1]) - 1)
            boarding.append(row["status"] == BOARDING)
            users.append(int(row["szt_id"]))
    return SubwayRecordBatch(
        np.asarray(times),
        np.asarray(stations, dtype=int),
        np.asarray(lines, dtype=int),
        np.asarray(boarding, dtype=bool),
        np.asarray(users, dtype=int),
    )


def write_bike_csv(batch: BikeRecordBatch, path: str) -> None:
    """Write records in the paper's Table II layout."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_BIKE_HEADER)
        for record in batch.to_records():
            writer.writerow(
                [
                    record.record_id,
                    record.user_id,
                    record.time,
                    f"{record.latitude:.6f}",
                    f"{record.longitude:.6f}",
                    record.status,
                    record.bike_id,
                ]
            )


def read_bike_csv(path: str) -> BikeRecordBatch:
    """Read a Table II-layout CSV back into a column batch."""
    times, lats, lons, pickup, users, bikes = [], [], [], [], [], []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(_BIKE_HEADER) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"bike CSV missing columns: {sorted(missing)}")
        for row in reader:
            times.append(_parse_time(row["time"]))
            lats.append(float(row["latitude"]))
            lons.append(float(row["longitude"]))
            pickup.append(row["status"] == PICK_UP)
            users.append(int(row["user_id"]))
            bikes.append(int(row["bike_id"]))
    return BikeRecordBatch(
        np.asarray(times),
        np.asarray(lats),
        np.asarray(lons),
        np.asarray(pickup, dtype=bool),
        np.asarray(users, dtype=int),
        np.asarray(bikes, dtype=int),
    )


def save_demand_tensor(tensor: np.ndarray, path: str) -> None:
    """Persist an aggregated ``(T, G1, G2, F)`` tensor as npz."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez_compressed(path, demand=np.asarray(tensor))


def load_demand_tensor(path: str) -> np.ndarray:
    with np.load(path) as archive:
        return archive["demand"]
