"""Aggregate raw trip records into spatial-temporal demand tensors.

Follows the paper's pre-processing (Sec. IV-D): 15-minute traffic data is
aggregated into one time slot — the number of bike rentals/returns and the
number of passengers entering/exiting each subway station, per grid cell.

The resulting tensor has shape ``(T, G1, G2, 4)`` with the channel order of
:data:`FEATURE_NAMES`: bike pick-ups (the prediction target), bike
drop-offs, subway boardings, subway alightings.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.city.grid import GridPartition
from repro.city.records import BikeRecordBatch, SubwayRecordBatch
from repro.city.simulator import SyntheticCity
from repro.city.subway import SubwayNetwork

FEATURE_NAMES = ("bike_pickup", "bike_dropoff", "subway_in", "subway_out")
BIKE_PICKUP, BIKE_DROPOFF, SUBWAY_IN, SUBWAY_OUT = range(4)
DEFAULT_SLOT_SECONDS = 15 * 60


def num_slots(duration_seconds: float, slot_seconds: int = DEFAULT_SLOT_SECONDS) -> int:
    """Number of complete time slots covering ``duration_seconds``."""
    return int(np.ceil(duration_seconds / slot_seconds))


def _accumulate(
    tensor: np.ndarray,
    times: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    feature: int,
    slot_seconds: int,
) -> None:
    slots = (times // slot_seconds).astype(int)
    valid = (slots >= 0) & (slots < tensor.shape[0])
    np.add.at(tensor, (slots[valid], rows[valid], cols[valid], feature), 1.0)


def aggregate_bike(
    batch: BikeRecordBatch,
    grid: GridPartition,
    tensor: np.ndarray,
    slot_seconds: int = DEFAULT_SLOT_SECONDS,
) -> None:
    """Add bike pick-up/drop-off counts into ``tensor`` in place."""
    rows, cols = grid.cell_of_gps(batch.latitudes, batch.longitudes)
    pickups = batch.pickup
    _accumulate(tensor, batch.times[pickups], rows[pickups], cols[pickups], BIKE_PICKUP, slot_seconds)
    drops = ~pickups
    _accumulate(tensor, batch.times[drops], rows[drops], cols[drops], BIKE_DROPOFF, slot_seconds)


def aggregate_subway(
    batch: SubwayRecordBatch,
    subway: SubwayNetwork,
    tensor: np.ndarray,
    slot_seconds: int = DEFAULT_SLOT_SECONDS,
) -> None:
    """Add subway boarding/alighting counts into ``tensor`` in place."""
    cells = np.array([subway.stations[int(s)].cell for s in batch.station_ids]).reshape(-1, 2)
    rows = cells[:, 0] if len(cells) else np.empty(0, int)
    cols = cells[:, 1] if len(cells) else np.empty(0, int)
    boarding = batch.boarding
    _accumulate(tensor, batch.times[boarding], rows[boarding], cols[boarding], SUBWAY_IN, slot_seconds)
    alighting = ~boarding
    _accumulate(
        tensor, batch.times[alighting], rows[alighting], cols[alighting], SUBWAY_OUT, slot_seconds
    )


def aggregate_city(
    city: SyntheticCity, slot_seconds: int = DEFAULT_SLOT_SECONDS
) -> np.ndarray:
    """Aggregate a simulated city into a ``(T, G1, G2, 4)`` demand tensor."""
    slots = num_slots(city.duration_seconds, slot_seconds)
    tensor = np.zeros((slots, city.grid.rows, city.grid.cols, len(FEATURE_NAMES)))
    aggregate_bike(city.bike_records, city.grid, tensor, slot_seconds)
    aggregate_subway(city.subway_records, city.subway, tensor, slot_seconds)
    return tensor


def station_series(
    batch: SubwayRecordBatch,
    station_id: int,
    duration_seconds: float,
    boarding: bool,
    slot_seconds: int = DEFAULT_SLOT_SECONDS,
) -> np.ndarray:
    """Per-slot counts for one station — used by the Fig. 1 analysis."""
    slots = num_slots(duration_seconds, slot_seconds)
    series = np.zeros(slots)
    mask = (batch.station_ids == station_id) & (batch.boarding == boarding)
    slot_index = (batch.times[mask] // slot_seconds).astype(int)
    valid = (slot_index >= 0) & (slot_index < slots)
    np.add.at(series, slot_index[valid], 1.0)
    return series


def bike_series_near_cell(
    batch: BikeRecordBatch,
    grid: GridPartition,
    cell: Tuple[int, int],
    duration_seconds: float,
    pickup: bool = True,
    radius_cells: int = 0,
    slot_seconds: int = DEFAULT_SLOT_SECONDS,
) -> np.ndarray:
    """Per-slot bike counts in/around a cell — used by the Fig. 1 analysis."""
    slots = num_slots(duration_seconds, slot_seconds)
    series = np.zeros(slots)
    rows, cols = grid.cell_of_gps(batch.latitudes, batch.longitudes)
    near = (np.abs(rows - cell[0]) <= radius_cells) & (np.abs(cols - cell[1]) <= radius_cells)
    mask = near & (batch.pickup == pickup)
    slot_index = (batch.times[mask] // slot_seconds).astype(int)
    valid = (slot_index >= 0) & (slot_index < slots)
    np.add.at(series, slot_index[valid], 1.0)
    return series
