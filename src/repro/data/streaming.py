"""Chunked demand aggregation: simulator days → store slots, incrementally.

``aggregate_city`` materializes every trip record and the full
``(T, G1, G2, 4)`` tensor at once. This module streams instead: the
simulator emits one day of records at a time
(:meth:`~repro.city.simulator.CitySimulator.iter_day_records`), each day
is accumulated into a small *carry* buffer, and time slots are emitted in
``chunk_slots``-sized pieces as soon as they can no longer change — a
month of a 10× grid never fully materializes.

Finalization leans on the simulator's time invariant: day ``d`` records
all have times ≥ ``d * SECONDS_PER_DAY`` (trips spill forward only), so
once day ``d`` has been accumulated, every slot before day ``d + 1``'s
start is final. Counting is exact (+1.0 increments into float64 zeros),
so the concatenated chunks are bit-identical to the eager
``aggregate_city`` tensor — pinned by tests.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.city.profiles import SECONDS_PER_DAY
from repro.city.records import BikeRecordBatch, SubwayRecordBatch
from repro.city.simulator import CityConfig, CitySimulator
from repro.data.aggregation import (
    BIKE_PICKUP,
    DEFAULT_SLOT_SECONDS,
    FEATURE_NAMES,
    aggregate_bike,
    aggregate_subway,
    num_slots,
)
from repro.data.datasets import BikeDemandDataset
from repro.store import DEFAULT_CHUNK_SLOTS, MinMaxScaler, WindowStore


def _shift_subway(batch: SubwayRecordBatch, seconds: float) -> SubwayRecordBatch:
    return SubwayRecordBatch(
        batch.times - seconds,
        batch.station_ids,
        batch.lines,
        batch.boarding,
        batch.user_ids,
    )


def _shift_bike(batch: BikeRecordBatch, seconds: float) -> BikeRecordBatch:
    return BikeRecordBatch(
        batch.times - seconds,
        batch.latitudes,
        batch.longitudes,
        batch.pickup,
        batch.user_ids,
        batch.bike_ids,
    )


def iter_demand_chunks(
    config: Optional[CityConfig] = None,
    slot_seconds: int = DEFAULT_SLOT_SECONDS,
    chunk_slots: int = DEFAULT_CHUNK_SLOTS,
) -> Iterator[np.ndarray]:
    """Simulate a city and yield its demand tensor in finalized slot chunks.

    Concatenating every yielded chunk reproduces
    ``aggregate_city(simulate_city(config))`` bit-for-bit; peak memory is
    the carry buffer (one day plus trip spill-over) instead of the full
    ``(T, G1, G2, 4)`` tensor.
    """
    simulator = CitySimulator(config)
    config = simulator.config
    grid = simulator.grid
    total_slots = num_slots(config.days * SECONDS_PER_DAY, slot_seconds)
    features = len(FEATURE_NAMES)

    emitted = 0  # slots already yielded; carry[0] is slot `emitted`
    carry = np.zeros((0, grid.rows, grid.cols, features))

    def grow(slots_needed: int) -> np.ndarray:
        nonlocal carry
        if slots_needed > len(carry):
            extra = np.zeros((slots_needed - len(carry), grid.rows, grid.cols, features))
            carry = np.concatenate([carry, extra])
        return carry

    for day, (subway_batch, bike_batch) in enumerate(simulator.iter_day_records()):
        # Cover every slot this day's records can touch (spill included),
        # capped at the simulation horizon exactly like the eager path.
        latest = 0.0
        if len(subway_batch):
            latest = max(latest, float(subway_batch.times.max()))
        if len(bike_batch):
            latest = max(latest, float(bike_batch.times.max()))
        touched = min(int(latest // slot_seconds) + 1, total_slots)
        grow(max(touched - emitted, 0))
        # Shifting times by whole emitted slots maps record slot indices to
        # carry rows exactly (floor commutes with integer-slot shifts);
        # out-of-range spill is masked by the aggregators, as eagerly.
        offset = float(emitted) * slot_seconds
        aggregate_bike(_shift_bike(bike_batch, offset), grid, carry, slot_seconds)
        aggregate_subway(_shift_subway(subway_batch, offset), simulator.subway, carry, slot_seconds)

        # Slots before the next day's start are now final. A quiet end of
        # day may leave the carry short of that boundary — those slots are
        # final *zeros*, so grow before emitting.
        final = min(int(((day + 1) * SECONDS_PER_DAY) // slot_seconds), total_slots)
        grow(max(final - emitted, 0))
        while emitted + chunk_slots <= final:
            yield carry[:chunk_slots].copy()
            carry = carry[chunk_slots:]
            emitted += chunk_slots

    # Tail: quiet slots at the end of the horizon may never be touched.
    grow(total_slots - emitted)
    for start in range(0, total_slots - emitted, chunk_slots):
        yield carry[start : start + chunk_slots].copy()


def streaming_dataset_from_city(
    config: Optional[CityConfig] = None,
    history: int = 8,
    horizon: int = 4,
    target_feature: int = BIKE_PICKUP,
    ratios: Tuple[float, float, float] = (0.6, 0.2, 0.2),
    normalization_quantile: Optional[float] = None,
    slot_seconds: int = DEFAULT_SLOT_SECONDS,
    chunk_slots: int = DEFAULT_CHUNK_SLOTS,
) -> BikeDemandDataset:
    """Build a store-backed dataset from the chunked simulator stream.

    Equivalent to ``build_dataset`` (bit-identical splits) but the demand
    tensor flows chunk-by-chunk into the :class:`WindowStore` and the
    scaler is fitted incrementally on the training slots — nothing is ever
    whole-tensor materialized.
    """
    store = WindowStore(
        history,
        horizon,
        target_feature=target_feature,
        chunk_slots=chunk_slots,
        scaler=MinMaxScaler(quantile=normalization_quantile),
    )
    for chunk in iter_demand_chunks(config, slot_seconds=slot_seconds, chunk_slots=chunk_slots):
        store.extend(chunk)
    train_slots = int(store.num_slots * ratios[0])
    store.fit_scaler(max(train_slots, 1))
    return BikeDemandDataset(
        store=store,
        target_feature=target_feature,
        ratios=ratios,
        streaming=True,
    )


__all__ = ["iter_demand_chunks", "streaming_dataset_from_city"]
