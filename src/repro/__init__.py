"""BikeCAP reproduction.

A full-stack reproduction of "BikeCAP: Deep Spatial-temporal Capsule
Network for Multi-step Bike Demand Prediction" (ICDCS 2022), including a
from-scratch numpy deep-learning substrate (:mod:`repro.nn`), a synthetic
multimodal city simulator (:mod:`repro.city`), the paper's seven baselines
(:mod:`repro.baselines`) and every table/figure of its evaluation
(:mod:`repro.experiments`).

Quickstart::

    from repro.city import CityConfig
    from repro.data import build_dataset
    from repro.core import BikeCAP, BikeCAPConfig
    from repro.nn import Trainer

    dataset = build_dataset(CityConfig(rows=8, cols=8, days=7), history=8, horizon=4)
    model = BikeCAP(BikeCAPConfig(grid=dataset.grid_shape, history=8, horizon=4, seed=0))
    Trainer(model, loss="l1").fit(dataset.split.train_x, dataset.split.train_y, epochs=10)
"""

__version__ = "1.0.0"

from repro.core import BikeCAP, BikeCAPConfig

__all__ = ["BikeCAP", "BikeCAPConfig", "__version__"]
