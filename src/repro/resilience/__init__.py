"""``repro.resilience`` — divergence detection and rollback-and-retry training.

Long training runs fail in two characteristic ways: the optimization
itself diverges (NaN loss, exploding gradients, weights leaving the land
of finite numbers), or the process dies mid-write and leaves damaged
artifacts behind. This package handles the first kind; crash-safe
checkpoint files are :mod:`repro.nn.serialization` +
:mod:`repro.pipeline.checkpoint`. See docs/RESILIENCE.md for the whole
story.

- :class:`DivergenceSentinel` — a :class:`~repro.obs.observers.TrainingObserver`
  that checks loss finiteness and a windowed loss-spike rule every
  optimizer step, and weight finiteness every epoch, raising a typed
  :class:`~repro.nn.divergence.DivergenceError`.
- :class:`RecoveryPolicy` / :func:`fit_with_recovery` — catch the
  divergence, roll the trainer back to its last good in-memory
  checkpoint, cut the learning rate by a backoff factor, and retry up to
  a bounded number of times; every decision is emitted as run-log events
  (``divergence_detected`` / ``rollback`` / ``retry``) and counted in
  metrics (``training_divergences_total``, ``training_rollbacks_total``).

Layering: this sits between the substrate and the pipeline — it imports
``repro.nn`` / ``repro.obs`` / ``repro.faults`` only, and
``repro.pipeline.runner`` builds on it (never the other way around;
enforced by ``scripts/check_layering.py``).
"""

from repro.resilience.policy import (
    RecoveryPolicy,
    RecoveryReport,
    fit_with_recovery,
    run_with_recovery,
)
from repro.resilience.sentinel import DivergenceSentinel

__all__ = [
    "DivergenceSentinel",
    "RecoveryPolicy",
    "RecoveryReport",
    "fit_with_recovery",
    "run_with_recovery",
]
