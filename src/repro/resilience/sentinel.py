"""Divergence detection as a training observer.

The sentinel rides the ``Trainer.fit`` observer protocol: ``on_step``
checks every mini-batch loss, ``on_epoch`` sweeps the model weights. It
only *detects* — raising :class:`~repro.nn.divergence.DivergenceError`
out of the training loop — and deliberately emits no events or metrics
itself; the recovery policy catching the error is the single place that
records what happened, so a divergence is never double-counted.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

import numpy as np

from repro.nn.divergence import (
    LOSS_SPIKE,
    DivergenceError,
    check_grads,
    check_loss,
    check_weights,
)
from repro.obs.observers import TrainingObserver


class DivergenceSentinel(TrainingObserver):
    """Raise :class:`DivergenceError` when training leaves sane territory.

    Three rules, cheapest first:

    - every step: the batch loss must be finite (``non_finite_loss``);
    - every step, once ``window`` losses are banked: the loss must stay
      under ``spike_factor`` x the window median (``loss_spike``) — the
      median is robust to the noisy per-batch curve, and the factor is
      deliberately large so ordinary warm-up wobble never trips it;
    - every epoch (with a ``model`` and ``check_weights_each_epoch``):
      all parameters must be finite (``non_finite_weights``) — a backstop
      for NaNs that slipped into weights without a NaN loss, e.g. via an
      Inf*0 in the backward pass.

    Gradient finiteness is normally enforced by
    :func:`repro.nn.optim.clip_grad_norm` (any trainer with
    ``max_grad_norm`` set); ``check_grads_each_step=True`` adds the same
    sweep here for trainers that clip nothing.

    The loss window is per-fit state: :meth:`reset` clears it, and the
    sentinel resets itself on ``on_fit_start`` so one instance can watch
    a rollback-retry sequence without the pre-divergence window biasing
    the retry.
    """

    def __init__(
        self,
        model=None,
        window: int = 20,
        spike_factor: float = 100.0,
        check_weights_each_epoch: bool = True,
        check_grads_each_step: bool = False,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if spike_factor <= 1.0:
            raise ValueError(f"spike_factor must be > 1, got {spike_factor}")
        self.model = model
        self.window = int(window)
        self.spike_factor = float(spike_factor)
        self.check_weights_each_epoch = bool(check_weights_each_epoch)
        self.check_grads_each_step = bool(check_grads_each_step)
        self._losses: deque = deque(maxlen=self.window)

    def reset(self) -> None:
        """Forget banked losses (called automatically at each fit start)."""
        self._losses.clear()

    # ------------------------------------------------------------------
    # Observer hooks.
    # ------------------------------------------------------------------
    def on_fit_start(self, info: Dict) -> None:
        self.reset()

    def on_step(self, info: Dict) -> None:
        step: Optional[int] = info.get("step")
        epoch: Optional[int] = info.get("epoch")
        loss = check_loss(info["loss"], step=step, epoch=epoch)
        if len(self._losses) == self.window:
            baseline = float(np.median(self._losses))
            if baseline > 0.0 and loss > self.spike_factor * baseline:
                raise DivergenceError(
                    LOSS_SPIKE,
                    f"loss {loss:.6g} exceeds {self.spike_factor:g}x the median "
                    f"{baseline:.6g} of the last {self.window} steps",
                    step=step,
                    epoch=epoch,
                    value=loss,
                )
        self._losses.append(loss)
        if self.check_grads_each_step and self.model is not None:
            check_grads(
                (param for _, param in self.model.named_parameters()),
                step=step,
                epoch=epoch,
            )

    def on_epoch(self, info: Dict) -> None:
        if self.check_weights_each_epoch and self.model is not None:
            check_weights(self.model, epoch=info.get("epoch"))


__all__ = ["DivergenceSentinel"]
