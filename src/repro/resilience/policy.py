"""Rollback-and-retry recovery around ``Trainer.fit``.

:func:`fit_with_recovery` runs a fit with a :class:`DivergenceSentinel`
attached; when a :class:`~repro.nn.divergence.DivergenceError` escapes
(from the sentinel, or straight from the substrate via
``clip_grad_norm``), it rolls the trainer back to its last good
in-memory checkpoint (``Trainer.last_checkpoint``, captured at every
epoch boundary), cuts the learning rate by ``lr_backoff``, and retries —
up to ``max_retries`` times, after which the error propagates with the
full story recorded in the :class:`RecoveryReport`.

Everything observable goes through ``repro.obs``:

- run-log events ``divergence_detected`` (every catch), ``rollback``
  (each successful state restore) and ``retry`` (each re-entry into
  ``fit``);
- metrics ``training_divergences_total{reason}`` and
  ``training_rollbacks_total{model,reason}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.divergence import DivergenceError
from repro.nn.training import Trainer, TrainingHistory
from repro.obs import metrics as obs_metrics
from repro.obs import runlog
from repro.obs.observers import TrainingObserver
from repro.resilience.sentinel import DivergenceSentinel


@dataclass
class RecoveryPolicy:
    """What to watch for and how hard to fight back.

    Defaults are conservative on detection (a 100x median spike over a
    20-step window never trips on healthy warm-up noise) and gentle on
    recovery (halve the LR, two retries), because the pipeline enables
    this policy for every neural run by default.
    """

    enabled: bool = True
    max_retries: int = 2
    lr_backoff: float = 0.5
    min_lr: float = 1e-6
    window: int = 20
    spike_factor: float = 100.0
    check_weights: bool = True
    check_grads: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if not 0.0 < self.lr_backoff <= 1.0:
            raise ValueError(f"lr_backoff must be in (0, 1], got {self.lr_backoff}")
        if self.min_lr < 0.0:
            raise ValueError(f"min_lr must be >= 0, got {self.min_lr}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.spike_factor <= 1.0:
            raise ValueError(f"spike_factor must be > 1, got {self.spike_factor}")

    @classmethod
    def from_dict(cls, payload: Optional[Dict[str, Any]]) -> "RecoveryPolicy":
        """Build from a ``RunSpec.resilience`` block; unknown keys are errors."""
        payload = payload or {}
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown resilience option(s) {unknown}; valid: {sorted(known)}"
            )
        return cls(**payload)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "enabled": self.enabled,
            "max_retries": self.max_retries,
            "lr_backoff": self.lr_backoff,
            "min_lr": self.min_lr,
            "window": self.window,
            "spike_factor": self.spike_factor,
            "check_weights": self.check_weights,
            "check_grads": self.check_grads,
        }

    def sentinel(self, model=None) -> DivergenceSentinel:
        """A sentinel configured with this policy's detection thresholds."""
        return DivergenceSentinel(
            model=model,
            window=self.window,
            spike_factor=self.spike_factor,
            check_weights_each_epoch=self.check_weights,
            check_grads_each_step=self.check_grads,
        )


@dataclass
class RecoveryReport:
    """What the policy saw and did during one recovered fit."""

    rollbacks: List[Dict[str, Any]] = field(default_factory=list)
    gave_up: bool = False

    @property
    def rollback_count(self) -> int:
        return len(self.rollbacks)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rollbacks": [dict(r) for r in self.rollbacks],
            "rollback_count": self.rollback_count,
            "gave_up": self.gave_up,
        }


def _current_lr(trainer: Trainer) -> Optional[float]:
    lr = getattr(trainer.optimizer, "lr", None)
    return None if lr is None else float(lr)


def run_with_recovery(
    trainer: Trainer,
    fit_once,
    policy: Optional[RecoveryPolicy] = None,
    model_label: Optional[str] = None,
    initial_resume: Optional[object] = None,
) -> Tuple[Any, RecoveryReport]:
    """Run ``fit_once(resume_from, observers)`` under the recovery loop.

    The generic engine behind :func:`fit_with_recovery`:
    ``fit_once`` is any callable that runs one training attempt through
    ``trainer`` — directly, or via a forecaster's ``fit`` (how
    ``repro.pipeline.runner`` hooks in) — attaching the given observers
    and resuming from the given checkpoint. Returns ``(result, report)``.

    With ``policy.enabled=False`` this is a plain fit (divergences
    propagate immediately, report stays empty). When retries are
    exhausted — or the trainer has no good snapshot to roll back to — the
    last :class:`DivergenceError` propagates and ``report.gave_up`` tells
    the caller recovery was attempted.

    Retries resume from the in-memory snapshot's epoch with a reduced
    learning rate, so a recovered run still performs every remaining
    epoch; determinism is preserved given the same seed and fault plan
    because rollback restores the shuffle RNG along with the weights.
    """
    policy = policy or RecoveryPolicy()
    label = model_label or type(trainer.model).__name__
    report = RecoveryReport()
    watchers: List[TrainingObserver] = []
    if policy.enabled:
        watchers.append(policy.sentinel(model=trainer.model))
    resume = initial_resume
    attempt = 0
    while True:
        try:
            result = fit_once(resume, watchers)
            return result, report
        except DivergenceError as exc:
            obs_metrics.counter("training_divergences_total", reason=exc.reason).inc()
            runlog.emit(
                "divergence_detected",
                model=label,
                reason=exc.reason,
                step=exc.step,
                epoch=exc.epoch,
                value=exc.value,
                attempt=attempt,
                message=str(exc),
            )
            snapshot = trainer.last_checkpoint
            if not policy.enabled or attempt >= policy.max_retries or snapshot is None:
                report.gave_up = policy.enabled
                raise
            attempt += 1
            lr_before = _current_lr(trainer)
            lr_after = lr_before
            if lr_before is not None:
                lr_after = max(lr_before * policy.lr_backoff, policy.min_lr)
                trainer.optimizer.lr = lr_after
            rollback = {
                "attempt": attempt,
                "reason": exc.reason,
                "failed_step": exc.step,
                "failed_epoch": exc.epoch,
                "resumed_epoch": snapshot.epoch,
                "lr_before": lr_before,
                "lr_after": lr_after,
            }
            report.rollbacks.append(rollback)
            obs_metrics.counter(
                "training_rollbacks_total", model=label, reason=exc.reason
            ).inc()
            runlog.emit("rollback", model=label, **rollback)
            runlog.emit(
                "retry",
                model=label,
                attempt=attempt,
                retries_left=policy.max_retries - attempt,
            )
            resume = snapshot


def fit_with_recovery(
    trainer: Trainer,
    train_x: np.ndarray,
    train_y: np.ndarray,
    epochs: int,
    policy: Optional[RecoveryPolicy] = None,
    observers: Optional[Sequence[TrainingObserver]] = None,
    model_label: Optional[str] = None,
    **fit_kwargs,
) -> Tuple[TrainingHistory, RecoveryReport]:
    """``trainer.fit`` under a divergence-recovery policy.

    Convenience wrapper over :func:`run_with_recovery` for callers holding
    a bare :class:`~repro.nn.training.Trainer`; see there for semantics.
    Extra keyword arguments (``val_x``, ``patience``, ``checkpoint_path``,
    ``resume_from``…) pass through to ``trainer.fit``.
    """
    base: List[TrainingObserver] = list(observers) if observers else []
    initial_resume = fit_kwargs.pop("resume_from", None)

    def fit_once(resume_from, watchers):
        return trainer.fit(
            train_x,
            train_y,
            epochs,
            observers=base + list(watchers),
            resume_from=resume_from,
            **fit_kwargs,
        )

    return run_with_recovery(
        trainer,
        fit_once,
        policy=policy,
        model_label=model_label,
        initial_resume=initial_resume,
    )


__all__ = ["RecoveryPolicy", "RecoveryReport", "fit_with_recovery", "run_with_recovery"]
