"""Deterministic fault injection, shared by serving and training.

Two fault families live here so both halves of the stack test recovery
against the *same* primitives (see docs/RESILIENCE.md):

- **Serving faults** — :class:`FaultInjectingForecaster` poisons a
  configurable fraction of request windows (pure CRC32 function of the
  window bytes, so a failure reproduces identically inside a batch, on
  retry, and across runs) and :class:`SlowForecaster` adds fixed latency
  for deadline tests.
- **Training chaos** — a :class:`FaultPlan` installed process-globally
  (:func:`active` / :func:`install`) that the training stack consults at
  well-defined points: poison gradients with NaN at the K-th optimizer
  step (:func:`poison_gradients`), kill a checkpoint write mid-stream
  (:func:`kill_checkpoint_write`), leaving a deliberately truncated temp
  file behind exactly as a SIGKILL would, or crash a serving hot-swap
  inside its critical section (:func:`crash_hot_swap`) before the new
  generation becomes visible. Every fault fires a bounded
  number of times (default once), so a recovery policy that rolls back and
  retries can be shown to *complete* — not just to fail deterministically.

File-corruption helpers (:func:`corrupt_file`, :func:`truncate_file`) are
seeded and byte-deterministic for checkpoint-validation tests.

Layering note: this is a deliberately dependency-free *leaf* module (numpy
and stdlib only, enforced by ``scripts/check_layering.py``) so any layer —
``nn``, ``serve``, ``resilience`` — may import it without cycles.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np


class SimulatedCrash(RuntimeError):
    """Raised by a fault plan standing in for a SIGKILL mid-operation."""


# ----------------------------------------------------------------------
# Training chaos: the process-global fault plan.
# ----------------------------------------------------------------------
@dataclass
class FaultPlan:
    """Declarative description of the faults one test wants injected.

    Counters are 1-based and *stateful*: ``grad_nan_at_step=3`` poisons the
    gradients of the third optimizer step seen after installation, then —
    after ``grad_nan_times`` firings — never again, so a rolled-back retry
    of the same step passes. ``kill_checkpoint_write_at=2`` makes the
    second checkpoint write truncate its temp file and raise
    :class:`SimulatedCrash` before the atomic rename.
    """

    grad_nan_at_step: Optional[int] = None
    grad_nan_times: int = 1
    kill_checkpoint_write_at: Optional[int] = None
    kill_checkpoint_write_times: int = 1
    crash_swap_at: Optional[int] = None
    crash_swap_times: int = 1

    # Internal firing state (not part of the declarative surface).
    _steps_seen: int = field(default=0, repr=False)
    _grad_nan_fired: int = field(default=0, repr=False)
    _writes_seen: int = field(default=0, repr=False)
    _kills_fired: int = field(default=0, repr=False)
    _swaps_seen: int = field(default=0, repr=False)
    _swap_crashes_fired: int = field(default=0, repr=False)

    def take_grad_nan(self) -> bool:
        """Advance the optimizer-step counter; True when this step poisons."""
        if self.grad_nan_at_step is None:
            return False
        self._steps_seen += 1
        if self._grad_nan_fired >= self.grad_nan_times:
            return False
        if self._steps_seen >= self.grad_nan_at_step:
            self._grad_nan_fired += 1
            return True
        return False

    def take_checkpoint_kill(self) -> bool:
        """Advance the checkpoint-write counter; True when this write dies."""
        if self.kill_checkpoint_write_at is None:
            return False
        self._writes_seen += 1
        if self._kills_fired >= self.kill_checkpoint_write_times:
            return False
        if self._writes_seen >= self.kill_checkpoint_write_at:
            self._kills_fired += 1
            return True
        return False

    def take_swap_crash(self) -> bool:
        """Advance the hot-swap counter; True when this swap crashes."""
        if self.crash_swap_at is None:
            return False
        self._swaps_seen += 1
        if self._swap_crashes_fired >= self.crash_swap_times:
            return False
        if self._swaps_seen >= self.crash_swap_at:
            self._swap_crashes_fired += 1
            return True
        return False

    @property
    def fired(self) -> dict:
        """How often each fault actually triggered (for test assertions)."""
        return {
            "grad_nan": self._grad_nan_fired,
            "checkpoint_kill": self._kills_fired,
            "swap_crash": self._swap_crashes_fired,
        }


_PLAN: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> None:
    """Install (or, with ``None``, clear) the process-global fault plan."""
    global _PLAN
    _PLAN = plan


def clear() -> None:
    install(None)


def current() -> Optional[FaultPlan]:
    return _PLAN


class active:
    """Context manager installing a plan for the duration of a block."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> FaultPlan:
        self._previous = current()
        install(self.plan)
        return self.plan

    def __exit__(self, exc_type, exc, tb) -> None:
        install(self._previous)


# ----------------------------------------------------------------------
# Hooks the instrumented code calls. All are near-free when no plan is
# installed (one None check).
# ----------------------------------------------------------------------
def poison_gradients(parameters: Iterator) -> bool:
    """Overwrite the first live gradient with NaN when the plan says so.

    Called by ``Trainer.train_step`` between backward and clipping; returns
    whether a fault fired (so callers may log it).
    """
    plan = _PLAN
    if plan is None or not plan.take_grad_nan():
        return False
    for param in parameters:
        grad = getattr(param, "grad", None)
        if grad is not None:
            grad[...] = np.nan
            return True
    return False


def crash_hot_swap(label: str) -> None:
    """Die inside the swap critical section, when the plan says so.

    Called by ``ForecastService.swap_primary``/``revert_primary`` *inside*
    the swap lock but *before* the serving state flips — the adaptation
    analogue of :func:`kill_checkpoint_write`: the crash lands at the worst
    moment, and the guarantee under test is that the pre-swap generation
    keeps answering untouched.
    """
    plan = _PLAN
    if plan is None or not plan.take_swap_crash():
        return
    raise SimulatedCrash(f"injected crash during hot swap of {label}")


def kill_checkpoint_write(tmp_path: str) -> None:
    """Truncate a half-written temp file and die, when the plan says so.

    Called by the checkpoint writer *after* the temp file is complete but
    *before* the atomic rename — the moment a real SIGKILL hurts most. The
    final checkpoint path is never touched, which is exactly the guarantee
    the crash-safety tests pin.
    """
    plan = _PLAN
    if plan is None or not plan.take_checkpoint_kill():
        return
    truncate_file(tmp_path, keep_fraction=0.5)
    raise SimulatedCrash(f"injected kill during checkpoint write of {tmp_path}")


# ----------------------------------------------------------------------
# Byte-level corruption helpers (deterministic, for validation tests).
# ----------------------------------------------------------------------
def corrupt_file(path: str, nbytes: int = 64, seed: int = 0) -> List[int]:
    """XOR-flip ``nbytes`` deterministic positions in ``path``; returns them.

    Positions and flip masks are a pure function of ``seed`` and the file
    size, so a corruption test never flakes on which bytes happened to be
    hit.
    """
    rng = np.random.default_rng(seed)
    with open(path, "r+b") as handle:
        handle.seek(0, 2)
        size = handle.tell()
        if size == 0:
            return []
        count = min(int(nbytes), size)
        offsets = sorted(int(o) for o in rng.choice(size, size=count, replace=False))
        for offset in offsets:
            handle.seek(offset)
            original = handle.read(1)[0]
            handle.seek(offset)
            handle.write(bytes([original ^ 0xFF]))
    return offsets


def truncate_file(path: str, keep_fraction: float = 0.5) -> int:
    """Truncate ``path`` to a fraction of its size; returns the new size."""
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
    with open(path, "r+b") as handle:
        handle.seek(0, 2)
        size = handle.tell()
        new_size = int(size * keep_fraction)
        handle.truncate(new_size)
    return new_size


# ----------------------------------------------------------------------
# Serving-side injectors (promoted from repro.serve.faults).
# ----------------------------------------------------------------------
class FaultInjectingForecaster:
    """Forecaster wrapper that fails deterministically on ~``rate`` of windows.

    A batch containing a poisoned window raises (as a real model bug
    would), and the serving layer's per-window retry then fails for exactly
    the poisoned windows. Poisoning is a pure function of the window's
    bytes (CRC32), so the same window fails identically inside a batch, on
    retry, and across runs — no hidden RNG state to make a failure test
    flake.
    """

    def __init__(self, inner, rate: float, salt: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.inner = inner
        self.rate = float(rate)
        self.salt = int(salt)

    def is_poisoned(self, window: np.ndarray) -> bool:
        digest = zlib.crc32(np.ascontiguousarray(window).tobytes()) ^ self.salt
        return (digest % 10_000) / 10_000.0 < self.rate

    def predict(self, x: np.ndarray) -> np.ndarray:
        poisoned = sum(self.is_poisoned(window) for window in np.asarray(x))
        if poisoned:
            raise RuntimeError(f"injected fault: {poisoned} poisoned window(s) in batch")
        return self.inner.predict(x)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class SlowForecaster:
    """Forecaster wrapper that sleeps before answering (deadline tests/bench)."""

    def __init__(self, inner, delay_seconds: float, sleep=None):
        self.inner = inner
        self.delay_seconds = float(delay_seconds)
        self._sleep = sleep if sleep is not None else time.sleep

    def predict(self, x: np.ndarray) -> np.ndarray:
        self._sleep(self.delay_seconds)
        return self.inner.predict(x)

    def __getattr__(self, name):
        return getattr(self.inner, name)


__all__ = [
    "FaultInjectingForecaster",
    "FaultPlan",
    "SimulatedCrash",
    "SlowForecaster",
    "active",
    "clear",
    "corrupt_file",
    "crash_hot_swap",
    "current",
    "install",
    "kill_checkpoint_write",
    "poison_gradients",
    "truncate_file",
]
