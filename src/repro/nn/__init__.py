"""`repro.nn` — a from-scratch numpy deep-learning substrate.

Provides reverse-mode autograd tensors, convolutional/recurrent layers,
losses, optimizers and a training loop. It exists because this reproduction
environment ships no deep-learning framework; see DESIGN.md for the
substitution rationale.
"""

from repro.nn import config, divergence, engine, init, layers, losses, ops, optim
from repro.nn.config import no_grad, set_dtype, set_engine_mode
from repro.nn.divergence import DivergenceError
from repro.nn.gradcheck import check_gradients, gradcheck_module
from repro.nn.layers import (
    LSTM,
    Activation,
    CausalLSTMCell,
    Conv2D,
    Conv3D,
    ConvLSTM2DCell,
    ConvTranspose3D,
    Dropout,
    GHU,
    LayerNorm,
    Linear,
    LSTMCell,
    Module,
    ModuleList,
    Parameter,
    Sequential,
    STLSTMCell,
)
from repro.nn.losses import get_loss, huber_loss, l1_loss, mse_loss
from repro.nn.optim import SGD, Adam, clip_grad_norm, make_optimizer
from repro.nn.serialization import (
    CheckpointCorruptError,
    TrainingCheckpoint,
    build_checkpoint,
    load_checkpoint,
    load_weights,
    quarantine,
    save_checkpoint,
    save_weights,
    write_checkpoint,
)
from repro.nn.tensor import Tensor, as_tensor
from repro.nn.training import Trainer, TrainingHistory, iterate_minibatches

__all__ = [
    "Activation",
    "Adam",
    "CausalLSTMCell",
    "CheckpointCorruptError",
    "DivergenceError",
    "Conv2D",
    "Conv3D",
    "ConvLSTM2DCell",
    "ConvTranspose3D",
    "Dropout",
    "GHU",
    "LSTM",
    "LSTMCell",
    "LayerNorm",
    "Linear",
    "Module",
    "ModuleList",
    "Parameter",
    "SGD",
    "STLSTMCell",
    "Sequential",
    "Tensor",
    "Trainer",
    "TrainingCheckpoint",
    "TrainingHistory",
    "as_tensor",
    "build_checkpoint",
    "check_gradients",
    "clip_grad_norm",
    "config",
    "divergence",
    "engine",
    "get_loss",
    "gradcheck_module",
    "huber_loss",
    "init",
    "iterate_minibatches",
    "l1_loss",
    "layers",
    "load_checkpoint",
    "load_weights",
    "losses",
    "make_optimizer",
    "mse_loss",
    "no_grad",
    "ops",
    "optim",
    "quarantine",
    "save_checkpoint",
    "save_weights",
    "set_dtype",
    "set_engine_mode",
    "write_checkpoint",
]
