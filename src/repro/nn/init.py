"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so that every
model in the repository is fully seed-reproducible (the paper reports
mean±std over 5 repeated runs; we reproduce that by re-seeding).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn import config
from repro.pipeline import seeding


def default_rng(rng=None) -> np.random.Generator:
    """Return ``rng`` if provided, else the process-shared generator.

    Seeds and integer seeds resolve through :mod:`repro.pipeline.seeding`,
    so an unseeded model init is still pinned by a single prior
    ``seeding.seed_everything(...)`` call.
    """
    return seeding.rng(rng)


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive


def glorot_uniform(shape, rng=None) -> np.ndarray:
    """Glorot/Xavier uniform — Keras's default, matching the paper's stack."""
    rng = default_rng(rng)
    fan_in, fan_out = _fan_in_out(tuple(shape))
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(config.dtype())


def he_normal(shape, rng=None) -> np.ndarray:
    rng = default_rng(rng)
    fan_in, _ = _fan_in_out(tuple(shape))
    std = np.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(config.dtype())


def orthogonal(shape, rng=None, gain: float = 1.0) -> np.ndarray:
    """Orthogonal init (used for recurrent kernels)."""
    rng = default_rng(rng)
    if len(shape) < 2:
        raise ValueError("orthogonal init needs at least 2 dimensions")
    rows = shape[0]
    cols = int(np.prod(shape[1:]))
    flat = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return (gain * q[:rows, :cols]).reshape(shape).astype(config.dtype())


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=config.dtype())


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=config.dtype())
