"""Module and Parameter: the building blocks of every model in this repo."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Tuple

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (``requires_grad=True`` by default)."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with automatic parameter/submodule registration.

    Assigning a :class:`Parameter` or :class:`Module` to an attribute
    registers it; ``parameters()`` walks the tree. Follows the familiar
    torch-style contract so models read idiomatically.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _name, param in self.named_parameters():
            yield param

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count (the paper reports 646,395 for BikeCAP)."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch; missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()
        # Weight-derived engine caches (kernel FFTs, masked weights) must not
        # survive a weight swap.
        from repro.nn import engine

        engine.bump_weight_version()


class ModuleList(Module):
    """An indexable container that registers each child module."""

    def __init__(self, modules=()):
        super().__init__()
        self._items = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module
        return self

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def __getitem__(self, index):
        return self._items[index]
