"""Cells for the PredRNN and PredRNN++ baselines.

``STLSTMCell`` is the Spatiotemporal LSTM of Wang et al. (NeurIPS 2017): a
ConvLSTM augmented with a spatiotemporal memory ``M`` that zig-zags through
the layer stack. ``CausalLSTMCell`` and ``GHU`` are the cascaded dual-memory
cell and gradient highway unit of PredRNN++ (Wang et al., ICML 2018).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn import fusion, ops
from repro.nn.layers.base import Module
from repro.nn.layers.conv import Conv2D
from repro.nn.tensor import Tensor


def _split(gates, n: int, count: int):
    return [gates[:, i * n : (i + 1) * n] for i in range(count)]


def _memory_update(gates, prev, n):
    """``sigmoid(f)*prev + sigmoid(i)*tanh(g)`` from stacked ``[g, i, f]``."""
    fused = fusion.fused_memory_update(gates, prev, n, order=(0, 1, 2))
    if fused is not None:
        return fused
    g, i, f = _split(gates, n, 3)
    return ops.add(
        ops.mul(ops.sigmoid(f), prev), ops.mul(ops.sigmoid(i), ops.tanh(g))
    )


class STLSTMCell(Module):
    """Spatiotemporal LSTM cell over ``(N, C, H, W)`` frames."""

    def __init__(self, in_channels: int, hidden_channels: int, kernel_size: int = 3, rng=None):
        super().__init__()
        self.hidden_channels = hidden_channels
        n = hidden_channels
        self.conv_xh = Conv2D(in_channels + n, 3 * n, kernel_size, padding="same", rng=rng)
        self.conv_xm = Conv2D(in_channels + n, 3 * n, kernel_size, padding="same", rng=rng)
        self.conv_o = Conv2D(in_channels + 3 * n, n, kernel_size, padding="same", rng=rng)
        self.conv_last = Conv2D(2 * n, n, 1, padding="valid", rng=rng)

    def forward(self, x, h_prev, c_prev, m_prev):
        n = self.hidden_channels
        temporal = self.conv_xh(ops.concat([x, h_prev], axis=1))
        c = _memory_update(temporal, c_prev, n)

        spatial = self.conv_xm(ops.concat([x, m_prev], axis=1))
        m = _memory_update(spatial, m_prev, n)

        o = ops.sigmoid(self.conv_o(ops.concat([x, c, m, h_prev], axis=1)))
        h = ops.mul(o, ops.tanh(self.conv_last(ops.concat([c, m], axis=1))))
        return h, c, m

    def initial_state(self, batch: int, height: int, width: int):
        zeros = np.zeros((batch, self.hidden_channels, height, width))
        return Tensor(zeros), Tensor(zeros.copy()), Tensor(zeros.copy())


class CausalLSTMCell(Module):
    """Causal LSTM cell (PredRNN++) with cascaded temporal/spatial memories."""

    def __init__(self, in_channels: int, hidden_channels: int, kernel_size: int = 3, rng=None):
        super().__init__()
        self.hidden_channels = hidden_channels
        n = hidden_channels
        self.conv_stage1 = Conv2D(in_channels + 2 * n, 3 * n, kernel_size, padding="same", rng=rng)
        self.conv_stage2 = Conv2D(in_channels + 2 * n, 3 * n, kernel_size, padding="same", rng=rng)
        self.conv_m = Conv2D(n, n, kernel_size, padding="same", rng=rng)
        self.conv_o = Conv2D(in_channels + 3 * n, n, kernel_size, padding="same", rng=rng)
        self.conv_last = Conv2D(2 * n, n, 1, padding="valid", rng=rng)

    def forward(self, x, h_prev, c_prev, m_prev):
        n = self.hidden_channels
        stage1 = self.conv_stage1(ops.concat([x, h_prev, c_prev], axis=1))
        c = _memory_update(stage1, c_prev, n)

        stage2 = self.conv_stage2(ops.concat([x, c, m_prev], axis=1))
        m = _memory_update(stage2, ops.tanh(self.conv_m(m_prev)), n)

        o = ops.tanh(self.conv_o(ops.concat([x, c, m, h_prev], axis=1)))
        h = ops.mul(o, ops.tanh(self.conv_last(ops.concat([c, m], axis=1))))
        return h, c, m

    def initial_state(self, batch: int, height: int, width: int):
        zeros = np.zeros((batch, self.hidden_channels, height, width))
        return Tensor(zeros), Tensor(zeros.copy()), Tensor(zeros.copy())


class GHU(Module):
    """Gradient Highway Unit (PredRNN++)."""

    def __init__(self, channels: int, kernel_size: int = 3, rng=None):
        super().__init__()
        self.channels = channels
        self.conv_x = Conv2D(channels, 2 * channels, kernel_size, padding="same", rng=rng)
        self.conv_z = Conv2D(channels, 2 * channels, kernel_size, padding="same", rng=rng)

    def forward(self, x, z_prev):
        n = self.channels
        combined = ops.add(self.conv_x(x), self.conv_z(z_prev))
        fused = fusion.fused_highway(combined, z_prev, n)
        if fused is not None:
            return fused
        p = ops.tanh(combined[:, 0 * n : 1 * n])
        s = ops.sigmoid(combined[:, 1 * n : 2 * n])
        one_minus_s = ops.sub(1.0, s)
        return ops.add(ops.mul(s, p), ops.mul(one_minus_s, z_prev))

    def initial_state(self, batch: int, height: int, width: int) -> Tensor:
        return Tensor(np.zeros((batch, self.channels, height, width)))
