"""Dense (fully connected) layer."""

from __future__ import annotations

from repro.nn import init, ops
from repro.nn.layers.base import Module, Parameter


class Linear(Module):
    """Affine map ``y = x @ W + b`` over the last axis of ``x``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.glorot_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x):
        out = ops.matmul(x, self.weight)
        if self.bias is not None:
            out = ops.add(out, self.bias)
        return out

    def __repr__(self):
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"
