"""Convolutional LSTM cell (Shi et al., 2015) — the convLSTM baseline's core."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn import fusion, ops
from repro.nn.layers.base import Module
from repro.nn.layers.conv import Conv2D
from repro.nn.tensor import Tensor


class ConvLSTM2DCell(Module):
    """ConvLSTM cell over ``(N, C, H, W)`` frames.

    All four gates are produced by a single convolution over the
    concatenation ``[x, h]``, matching the original formulation (peephole
    terms omitted, as in Keras's ConvLSTM2D defaults).
    """

    def __init__(self, in_channels: int, hidden_channels: int, kernel_size: int = 3, rng=None):
        super().__init__()
        self.in_channels = in_channels
        self.hidden_channels = hidden_channels
        self.kernel_size = kernel_size
        self.gates = Conv2D(
            in_channels + hidden_channels,
            4 * hidden_channels,
            kernel_size,
            padding="same",
            rng=rng,
        )

    def forward(self, x, state: Tuple[Tensor, Tensor]):
        h_prev, c_prev = state
        combined = ops.concat([x, h_prev], axis=1)
        gates = self.gates(combined)
        n = self.hidden_channels
        fused = fusion.fused_lstm_step(gates, c_prev, n)
        if fused is not None:
            return fused
        i = ops.sigmoid(gates[:, 0 * n : 1 * n])
        f = ops.sigmoid(gates[:, 1 * n : 2 * n])
        g = ops.tanh(gates[:, 2 * n : 3 * n])
        o = ops.sigmoid(gates[:, 3 * n : 4 * n])
        c = ops.add(ops.mul(f, c_prev), ops.mul(i, g))
        h = ops.mul(o, ops.tanh(c))
        return h, c

    def initial_state(self, batch_size: int, height: int, width: int) -> Tuple[Tensor, Tensor]:
        zeros = np.zeros((batch_size, self.hidden_channels, height, width))
        return Tensor(zeros), Tensor(zeros.copy())
