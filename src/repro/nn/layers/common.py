"""Small utility layers: activations-as-modules, dropout, sequential."""

from __future__ import annotations

import numpy as np

from repro.nn import init, ops
from repro.nn.layers.base import Module
from repro.nn.tensor import Tensor, make_op


class Activation(Module):
    """Wrap a stateless activation function as a layer."""

    _FUNCTIONS = {
        "relu": ops.relu,
        "leaky_relu": ops.leaky_relu,
        "elu": ops.elu,
        "sigmoid": ops.sigmoid,
        "tanh": ops.tanh,
    }

    def __init__(self, name: str):
        super().__init__()
        if name not in self._FUNCTIONS:
            raise ValueError(f"unknown activation {name!r}; choose from {sorted(self._FUNCTIONS)}")
        self.name = name

    def forward(self, x):
        return self._FUNCTIONS[self.name](x)


class Dropout(Module):
    """Inverted dropout; identity when the module is in eval mode."""

    def __init__(self, rate: float, rng=None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = init.default_rng(rng)

    def forward(self, x: Tensor):
        if not self.training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        mask = (self.rng.random(x.shape) < keep) / keep

        def backward(grad):
            return (grad * mask,)

        return make_op(x.data * mask, (x,), backward)


class Sequential(Module):
    """Apply layers in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self._layers = []
        for index, layer in enumerate(layers):
            self._layers.append(layer)
            self._modules[str(index)] = layer

    def forward(self, x):
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self._layers)

    def __len__(self):
        return len(self._layers)

    def __getitem__(self, index):
        return self._layers[index]


class LayerNorm(Module):
    """Layer normalization over the trailing ``normalized_shape`` axes."""

    def __init__(self, normalized_shape, epsilon: float = 1e-5):
        super().__init__()
        from repro.nn.layers.base import Parameter

        if isinstance(normalized_shape, int):
            normalized_shape = (normalized_shape,)
        self.normalized_shape = tuple(normalized_shape)
        self.epsilon = epsilon
        self.gamma = Parameter(np.ones(self.normalized_shape))
        self.beta = Parameter(np.zeros(self.normalized_shape))

    def forward(self, x):
        axes = tuple(range(x.ndim - len(self.normalized_shape), x.ndim))
        mean = ops.mean(x, axis=axes, keepdims=True)
        centered = ops.sub(x, mean)
        variance = ops.mean(ops.mul(centered, centered), axis=axes, keepdims=True)
        inv_std = ops.power(ops.add(variance, self.epsilon), -0.5)
        return ops.add(ops.mul(ops.mul(centered, inv_std), self.gamma), self.beta)
