"""Layer library for the numpy substrate."""

from repro.nn.layers.base import Module, ModuleList, Parameter
from repro.nn.layers.common import Activation, Dropout, LayerNorm, Sequential
from repro.nn.layers.conv import Conv2D, Conv3D, ConvTranspose3D
from repro.nn.layers.convlstm import ConvLSTM2DCell
from repro.nn.layers.linear import Linear
from repro.nn.layers.predrnn_cells import GHU, CausalLSTMCell, STLSTMCell
from repro.nn.layers.recurrent import LSTM, LSTMCell

__all__ = [
    "Activation",
    "CausalLSTMCell",
    "Conv2D",
    "Conv3D",
    "ConvLSTM2DCell",
    "ConvTranspose3D",
    "Dropout",
    "GHU",
    "LSTM",
    "LSTMCell",
    "LayerNorm",
    "Linear",
    "Module",
    "ModuleList",
    "Parameter",
    "STLSTMCell",
    "Sequential",
]
