"""Recurrent layers: LSTM cell and time-unrolled LSTM."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import fusion, init, ops
from repro.nn.layers.base import Module, Parameter
from repro.nn.tensor import Tensor


class LSTMCell(Module):
    """Standard LSTM cell (Hochreiter & Schmidhuber, 1997).

    Gates are computed with one fused affine map for speed:
    ``[i, f, g, o] = x @ W_x + h @ W_h + b``.
    """

    def __init__(self, input_size: int, hidden_size: int, rng=None):
        super().__init__()
        rng = init.default_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_x = Parameter(init.glorot_uniform((input_size, 4 * hidden_size), rng))
        self.weight_h = Parameter(init.orthogonal((hidden_size, 4 * hidden_size), rng))
        bias = init.zeros((4 * hidden_size,))
        # Forget-gate bias starts at 1: the standard trick for gradient flow.
        bias[hidden_size : 2 * hidden_size] = 1.0
        self.bias = Parameter(bias)

    def forward(self, x, state: Tuple[Tensor, Tensor]):
        h_prev, c_prev = state
        gates = ops.add(ops.add(ops.matmul(x, self.weight_x), ops.matmul(h_prev, self.weight_h)), self.bias)
        n = self.hidden_size
        fused = fusion.fused_lstm_step(gates, c_prev, n)
        if fused is not None:
            return fused
        i = ops.sigmoid(gates[:, 0 * n : 1 * n])
        f = ops.sigmoid(gates[:, 1 * n : 2 * n])
        g = ops.tanh(gates[:, 2 * n : 3 * n])
        o = ops.sigmoid(gates[:, 3 * n : 4 * n])
        c = ops.add(ops.mul(f, c_prev), ops.mul(i, g))
        h = ops.mul(o, ops.tanh(c))
        return h, c

    def initial_state(self, batch_size: int) -> Tuple[Tensor, Tensor]:
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())


class LSTM(Module):
    """Unrolled (possibly stacked) LSTM over ``(N, T, F)`` sequences."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1, rng=None):
        super().__init__()
        rng = init.default_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        from repro.nn.layers.base import ModuleList

        cells = []
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            cells.append(LSTMCell(in_size, hidden_size, rng=rng))
        self.cells = ModuleList(cells)

    def forward(self, x, state: Optional[list] = None):
        """Run the stack over time; returns (outputs ``(N, T, H)``, final states)."""
        batch = x.shape[0]
        steps = x.shape[1]
        if state is None:
            state = [cell.initial_state(batch) for cell in self.cells]
        outputs = []
        for t in range(steps):
            layer_input = x[:, t, :]
            new_state = []
            for cell, (h, c) in zip(self.cells, state):
                h, c = cell(layer_input, (h, c))
                new_state.append((h, c))
                layer_input = h
            state = new_state
            outputs.append(layer_input)
        stacked = ops.stack(outputs, axis=1)
        return stacked, state
