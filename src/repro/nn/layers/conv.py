"""Convolution layers (channels-first layout)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init, ops
from repro.nn.layers.base import Module, Parameter
from repro.nn.ops.conv import normalize_pads, normalize_stride, same_padding


def _resolve_padding(padding, kernel_size, dims):
    if padding == "same":
        return normalize_pads(same_padding(kernel_size), dims)
    if padding == "valid":
        return normalize_pads(0, dims)
    return normalize_pads(padding, dims)


class Conv2D(Module):
    """2-D convolution over ``(N, C, H, W)``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride=1,
        padding="valid",
        bias: bool = True,
        rng=None,
    ):
        super().__init__()
        kernel_size = normalize_stride(kernel_size, 2)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = normalize_stride(stride, 2)
        self.padding = _resolve_padding(padding, kernel_size, 2)
        self.weight = Parameter(
            init.glorot_uniform((out_channels, in_channels) + kernel_size, rng)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x):
        return ops.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class Conv3D(Module):
    """3-D convolution over ``(N, C, D, H, W)``.

    ``weight_mask`` (optional, fixed) gates kernel entries — used by the
    pyramid convolution to zero weights outside the pyramid support.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride=1,
        padding="valid",
        bias: bool = True,
        weight_mask: Optional[np.ndarray] = None,
        rng=None,
    ):
        super().__init__()
        kernel_size = normalize_stride(kernel_size, 3)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = normalize_stride(stride, 3)
        self.padding = _resolve_padding(padding, kernel_size, 3)
        self.weight = Parameter(
            init.glorot_uniform((out_channels, in_channels) + kernel_size, rng)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        if weight_mask is not None:
            weight_mask = np.asarray(weight_mask, dtype=self.weight.data.dtype)
            expected = (out_channels, in_channels) + kernel_size
            if weight_mask.shape != kernel_size and weight_mask.shape != expected:
                raise ValueError(
                    f"weight_mask must have shape {kernel_size} or {expected}, got {weight_mask.shape}"
                )
            if weight_mask.shape == kernel_size:
                weight_mask = np.broadcast_to(weight_mask, expected).copy()
        self.weight_mask = weight_mask

    def forward(self, x):
        return ops.conv3d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            weight_mask=self.weight_mask,
        )


class ConvTranspose3D(Module):
    """3-D transposed convolution over ``(N, C, D, H, W)``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride=1,
        padding=0,
        output_padding=0,
        bias: bool = True,
        rng=None,
    ):
        super().__init__()
        kernel_size = normalize_stride(kernel_size, 3)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = normalize_stride(stride, 3)
        self.padding = _resolve_padding(padding, kernel_size, 3)
        self.output_padding = normalize_stride(output_padding, 3)
        self.weight = Parameter(
            init.glorot_uniform((in_channels, out_channels) + kernel_size, rng)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x):
        return ops.conv_transpose3d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            output_padding=self.output_padding,
        )
