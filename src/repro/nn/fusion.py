"""Cross-op fused kernels for the hot elementwise/routing chains.

The unfused substrate dispatches one :mod:`repro.nn.ops` node per
primitive: an LSTM gate update alone builds 13 graph nodes (4 slice ops,
4 activations, 3 muls, an add and a tanh), each allocating its output and
a backward closure, and each backward slice op scattering through a
full-size ``np.add.at``. The kernels here collapse those chains into one
or two :func:`repro.nn.tensor.make_op` nodes with hand-written backward
passes that replay the *exact* sequence of IEEE operations the unfused
graph performs — the fused graph is bit-equivalent (``np.array_equal``)
to the unfused one, not merely close. Saved activations are shared
between forward and backward instead of being recomputed per node (the
stable sigmoid, for instance, evaluates ``exp`` once instead of twice).

Fused kernels:

- :func:`fused_lstm_step` — the ``[i, f, g, o]`` gate block of
  ``LSTMCell``/``ConvLSTM2DCell`` (two nodes: ``c`` and ``h``).
- :func:`fused_memory_update` — the 3-gate ``sigmoid(f)*prev +
  sigmoid(i)*tanh(g)`` memory write of the PredRNN cells (one node).
- :func:`fused_highway` — the GHU blend ``s*p + (1-s)*z`` (one node).
- :func:`fused_squash` — the capsule squash (paper Eq. 3) as one node.
- :func:`fused_weighted_combine_squash` — the routing tail
  ``squash(sum(votes * weights))`` as one node (weights detached).
- :func:`routing_iterations` — the detached numpy routing loop as one
  cached, traced sequence (statements kept layout-identical to the
  reference: pairwise reduction results depend on operand memory layout,
  so ``out=`` rewrites here would break bit-parity).

Every kernel consults :func:`repro.nn.engine.fused_plan` first: under
``engine.no_cache()`` (or ``REPRO_FUSION=0``) the plan lookup returns
``None`` and the caller falls back to the unfused op chain, so in-place
parameter perturbation (finite-difference gradcheck) never meets a fused
closure. Layering: this module sits below the model layers and imports
only ``repro.nn.ops`` / ``repro.nn.engine`` / ``repro.nn.tensor``
(enforced by ``scripts/check_layering.py``).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.nn import engine
from repro.nn.tensor import Tensor, make_op

_EPSILON = 1e-9  # matches repro.core.squash._EPSILON (callers pass it in)


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """The exact piecewise logistic of ``ops.sigmoid`` (one exp, not two)."""
    e = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0 / (1.0 + e), e / (1.0 + e))


def _gate_slices(n: int, count: int) -> Tuple[slice, ...]:
    return tuple(slice(i * n, (i + 1) * n) for i in range(count))


# ---------------------------------------------------------------------------
# LSTM-style gate blocks
# ---------------------------------------------------------------------------


def fused_lstm_step(
    gates: Tensor, c_prev: Tensor, hidden: int
) -> Optional[Tuple[Tensor, Tensor]]:
    """Fused ``[i, f, g, o]`` LSTM update: returns ``(h, c)`` or ``None``.

    Bit-equivalent to::

        i = sigmoid(gates[:, 0n:1n]); f = sigmoid(gates[:, 1n:2n])
        g = tanh(gates[:, 2n:3n]);    o = sigmoid(gates[:, 3n:4n])
        c = f * c_prev + i * g
        h = o * tanh(c)

    Two graph nodes are built — ``c`` (parents: c_prev, gates) and ``h``
    (parents: gates, c) — so the gradient accumulation pattern into
    ``gates`` and ``c`` matches the unfused graph. Parent order is
    load-bearing: the backward DFS visits the *last* parent's subtree
    first, and the unfused graph reaches the gates subtree before
    ``c_prev`` — flipping the order changes where upstream (earlier
    timestep) nodes land in the topological order, which reassociates
    gradient accumulation into any tensor with three or more consumers.
    """
    plan = engine.fused_plan(
        ("lstm_gates", gates.shape, hidden, np.dtype(gates.dtype).str),
        lambda: {"slices": _gate_slices(hidden, 4)},
    )
    if plan is None:
        return None
    si, sf, sg, so = plan["slices"]
    gd = gates.data
    i = _stable_sigmoid(gd[:, si])
    f = _stable_sigmoid(gd[:, sf])
    g = np.tanh(gd[:, sg])
    o = _stable_sigmoid(gd[:, so])
    c_data = f * c_prev.data + i * g
    tanh_c = np.tanh(c_data)
    h_data = o * tanh_c
    c_prev_data = c_prev.data

    def backward_c(dc):
        dgates = np.zeros_like(gd)
        dgates[:, si] = (dc * g * i) * (1.0 - i)
        dgates[:, sf] = (dc * c_prev_data * f) * (1.0 - f)
        dgates[:, sg] = (dc * i) * (1.0 - g**2)
        return dc * f, dgates

    c = make_op(c_data, (c_prev, gates), backward_c)

    def backward_h(dh):
        dgates = np.zeros_like(gd)
        dgates[:, so] = (dh * tanh_c * o) * (1.0 - o)
        return dgates, (dh * o) * (1.0 - tanh_c**2)

    h = make_op(h_data, (gates, c), backward_h)
    return h, c


def fused_memory_update(
    gates: Tensor,
    prev: Tensor,
    hidden: int,
    order: Tuple[int, int, int] = (0, 1, 2),
) -> Optional[Tensor]:
    """Fused 3-gate memory write ``sigmoid(f)*prev + sigmoid(i)*tanh(g)``.

    ``order`` gives the slice indices of the ``(g, i, f)`` gates inside
    the stacked ``gates`` tensor (the PredRNN cells emit them g-first).
    Returns the new memory tensor, or ``None`` when fusion is inactive.
    Parents are ``(prev, gates)`` because the unfused graph's DFS
    reaches the gates subtree first (see :func:`fused_lstm_step`).
    """
    plan = engine.fused_plan(
        ("memory_update", gates.shape, hidden, tuple(order), np.dtype(gates.dtype).str),
        lambda: {"slices": _gate_slices(hidden, max(order) + 1)},
    )
    if plan is None:
        return None
    slices = plan["slices"]
    sg, si, sf = (slices[k] for k in order)
    gd = gates.data
    g = np.tanh(gd[:, sg])
    i = _stable_sigmoid(gd[:, si])
    f = _stable_sigmoid(gd[:, sf])
    data = f * prev.data + i * g
    prev_data = prev.data

    def backward(dm):
        dgates = np.zeros_like(gd)
        dgates[:, sg] = (dm * i) * (1.0 - g**2)
        dgates[:, si] = (dm * g * i) * (1.0 - i)
        dgates[:, sf] = (dm * prev_data * f) * (1.0 - f)
        return dm * f, dgates

    return make_op(data, (prev, gates), backward)


def fused_highway(combined: Tensor, z_prev: Tensor, channels: int) -> Optional[Tensor]:
    """Fused GHU blend ``s*p + (1-s)*z`` with ``p=tanh``, ``s=sigmoid``."""
    plan = engine.fused_plan(
        ("highway", combined.shape, channels, np.dtype(combined.dtype).str),
        lambda: {"slices": _gate_slices(channels, 2)},
    )
    if plan is None:
        return None
    sp, ss = plan["slices"]
    cd = combined.data
    p = np.tanh(cd[:, sp])
    s = _stable_sigmoid(cd[:, ss])
    one_minus_s = 1.0 - s
    data = s * p + one_minus_s * z_prev.data
    z_data = z_prev.data

    def backward(dout):
        ds = dout * p + -(dout * z_data)
        dcombined = np.zeros_like(cd)
        dcombined[:, sp] = (dout * s) * (1.0 - p**2)
        dcombined[:, ss] = (ds * s) * (1.0 - s)
        return dcombined, dout * one_minus_s

    return make_op(data, (combined, z_prev), backward)


# ---------------------------------------------------------------------------
# Capsule squash (paper Eq. 3)
# ---------------------------------------------------------------------------


def _squash_forward(t: np.ndarray, axes: Tuple[int, ...], epsilon: float):
    """Forward intermediates, step for step as the unfused op chain."""
    sq = (t * t).sum(axis=axes, keepdims=True)
    norm = np.sqrt(sq + epsilon)
    a2 = sq + 1.0
    m2 = a2 * norm
    scale = sq / m2
    return sq, norm, a2, m2, scale


def _squash_backward(grad, t, axes, sq, norm, a2, m2, scale):
    """Upstream grad → grad w.r.t. the squash input, bit-for-bit.

    Replays the unfused graph's backward in its topological order: the
    three contributions to the squared-norm gradient arrive from the
    div, the ``+1`` add and the ``+eps`` add in exactly that sequence
    (IEEE addition only commutes pairwise, so association order matters).
    """
    d_t = grad * scale
    d_scale = (grad * t).sum(axis=axes, keepdims=True)
    d_sq = d_scale / m2
    d_m2 = -d_scale * sq / (m2**2)
    d_sq = d_sq + d_m2 * norm
    d_norm = d_m2 * a2
    d_sq = d_sq + (d_norm * 0.5) / norm
    d_m = np.broadcast_to(d_sq, t.shape)
    tmp = d_m * t
    return (d_t + tmp) + tmp


def fused_squash(
    tensor: Tensor, axis: int = -1, epsilon: float = _EPSILON
) -> Optional[Tensor]:
    """The squash non-linearity as a single fused node (or ``None``)."""
    axes = (axis % tensor.ndim,)
    plan = engine.fused_plan(
        ("squash", tensor.shape, axes, np.dtype(tensor.dtype).str),
        lambda: {"axes": axes},
    )
    if plan is None:
        return None
    t = tensor.data
    sq, norm, a2, m2, scale = _squash_forward(t, axes, epsilon)
    data = t * scale

    def backward(grad):
        return (_squash_backward(grad, t, axes, sq, norm, a2, m2, scale),)

    return make_op(data, (tensor,), backward)


# ---------------------------------------------------------------------------
# Routing: weighted combine + squash tail, and the detached iteration loop
# ---------------------------------------------------------------------------


def fused_weighted_combine_squash(
    votes: Tensor,
    weights: np.ndarray,
    sum_axis: int = 3,
    squash_axis: int = 2,
    epsilon: float = _EPSILON,
) -> Optional[Tensor]:
    """Fused ``squash(sum(votes * weights, sum_axis), squash_axis)``.

    ``weights`` is the detached coupling tensor — only ``votes`` gets a
    gradient, so the unfused graph's wasted weight-side adjoint (a full
    reduction it then discards) is skipped entirely.
    """
    plan = engine.fused_plan(
        (
            "routing_combine",
            votes.shape,
            weights.shape,
            sum_axis,
            squash_axis,
            np.dtype(votes.dtype).str,
        ),
        lambda: {"sum_axes": (sum_axis,), "squash_axes": (squash_axis,)},
    )
    if plan is None:
        return None
    sum_axes = plan["sum_axes"]
    squash_axes = plan["squash_axes"]
    vd = votes.data
    prod = engine.arena_empty(vd.shape, vd.dtype)
    np.multiply(vd, weights, out=prod)
    combined = prod.sum(axis=sum_axes, keepdims=False)
    engine.arena_release(prod)
    sq, norm, a2, m2, scale = _squash_forward(combined, squash_axes, epsilon)
    data = combined * scale
    prod_shape = vd.shape

    def backward(grad):
        d_combined = _squash_backward(
            grad, combined, squash_axes, sq, norm, a2, m2, scale
        )
        shape = list(prod_shape)
        for ax in sum_axes:
            shape[ax] = 1
        d_prod = np.broadcast_to(d_combined.reshape(shape), prod_shape)
        return (d_prod * weights,)

    return make_op(data, (votes,), backward)


def routing_iterations(
    votes_np: np.ndarray,
    iterations: int,
    emit: Optional[Callable[[int, np.ndarray], None]] = None,
    epsilon: float = _EPSILON,
) -> Optional[Tuple[np.ndarray, Optional[np.ndarray]]]:
    """The detached dynamic-routing loop as one cached fused sequence.

    Bit-equivalent to the unfused loop in ``core.routing`` because it
    executes the *same statements with the same memory layouts*. That
    layout caveat is load-bearing: numpy's pairwise reductions associate
    differently over a C-contiguous buffer than over the transposed view
    ``einsum(...->nspxy)`` returns, so rewriting this loop with
    ``out=``/arena buffers changes ``softmax`` sums in the last ulp. The
    fused win for routing lives in :func:`fused_weighted_combine_squash`
    (the autograd-visible tail); this entry point contributes the cached
    plan (softmax axes + uniform first coupling, skipping the zeros
    tensor the textbook formulation softmaxes) and a single traced call
    site. Returns ``(coupling, last_agreement)`` — both caller-owned —
    or ``None`` when fusion is inactive.
    """
    batch, horizon, n_out, count, g1, g2 = votes_np.shape
    plan = engine.fused_plan(
        ("routing_iters", votes_np.shape, iterations, np.dtype(votes_np.dtype).str),
        lambda: {
            "softmax_axes": (-3, -2, -1),
            "uniform": 1.0 / (horizon * g1 * g2),
        },
    )
    if plan is None:
        return None
    softmax_axes = plan["softmax_axes"]

    coupling = np.full(
        (batch, count, horizon, g1, g2), plan["uniform"], dtype=votes_np.dtype
    )
    agreement = None
    logits = None
    for iteration in range(iterations - 1):
        weights = np.expand_dims(coupling.transpose(0, 2, 1, 3, 4), axis=2)
        combined = (votes_np * weights).sum(axis=3)
        # squash_np: sq = (x**2).sum; out = x*sq / ((1+sq)*sqrt(sq+eps)).
        squared_norm = (combined**2).sum(axis=2, keepdims=True)
        norm = np.sqrt(squared_norm + epsilon)
        squashed = combined * squared_norm / ((1.0 + squared_norm) * norm)
        agreement = np.einsum("npdsxy,npdxy->nspxy", votes_np, squashed)
        logits = agreement if logits is None else logits + agreement
        # softmax_3d: jointly over (horizon, G1, G2), max-shifted.
        shifted = logits - logits.max(axis=softmax_axes, keepdims=True)
        exp = np.exp(shifted)
        coupling = exp / exp.sum(axis=softmax_axes, keepdims=True)
        if emit is not None:
            emit(iteration, agreement)
    return coupling, agreement
