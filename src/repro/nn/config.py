"""Global configuration for the numpy deep-learning substrate.

The substrate defaults to float64 so finite-difference gradient checks are
reliable; callers that want speed over gradcheck-grade precision can switch
to float32 via :func:`set_dtype` or the ``fast`` engine mode.

Engine knobs (all overridable by environment variables, read once at
import) control the execution-plan layer in :mod:`repro.nn.engine`:

=============================== ======================================== =========
knob                            environment variable                     default
=============================== ======================================== =========
dtype                           ``REPRO_DTYPE`` (float32|float64)        float64
engine mode                     ``REPRO_ENGINE`` (fast|precise|mixed)    precise
intra-step worker threads       ``REPRO_NUM_THREADS``                    1
cross-op fusion on/off          ``REPRO_FUSION`` (1|0)                   1
FFT dispatch: kernel volume     ``REPRO_CONV_FFT_MIN_KERNEL_VOLUME``     48
FFT dispatch: im2col elements   ``REPRO_CONV_FFT_MIN_IM2COL_ELEMENTS``   4,000,000
FFT dispatch: fused f32 im2col  ``REPRO_CONV_FFT_MIN_IM2COL_FUSED``   10,000,000
GEMM dispatch: im2col elements  ``REPRO_CONV_GEMM_MIN_ELEMENTS``         1,500,000
plan cache on/off               ``REPRO_PLAN_CACHE`` (1|0)               1
workspace arena on/off          ``REPRO_ARENA`` (1|0)                    1
initial dynamic loss scale      ``REPRO_LOSS_SCALE``                     65536
loss-scale growth interval      ``REPRO_LOSS_SCALE_GROWTH_INTERVAL``     200
minimum loss scale              ``REPRO_LOSS_SCALE_MIN``                 1.0
=============================== ======================================== =========

The conv dispatch defaults were recalibrated from ``bench_substrate`` runs
on this machine (see docs/PERFORMANCE.md for the measurement table).
"""

from __future__ import annotations

import contextlib
import os

import numpy as np


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    return int(raw)


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off")


_DTYPE = np.float64
_MIXED = False
_GRAD_ENABLED = True
_NUM_THREADS = max(1, _env_int("REPRO_NUM_THREADS", 1))
_FUSION_ENABLED = _env_flag("REPRO_FUSION", True)
_CONV_FFT_MIN_KERNEL_VOLUME = _env_int("REPRO_CONV_FFT_MIN_KERNEL_VOLUME", 48)
_CONV_FFT_MIN_IM2COL_ELEMENTS = _env_int(
    "REPRO_CONV_FFT_MIN_IM2COL_ELEMENTS", 4_000_000
)
_CONV_FFT_MIN_IM2COL_FUSED = _env_int("REPRO_CONV_FFT_MIN_IM2COL_FUSED", 10_000_000)
_CONV_GEMM_MIN_ELEMENTS = _env_int("REPRO_CONV_GEMM_MIN_ELEMENTS", 1_500_000)
_PLAN_CACHE_ENABLED = _env_flag("REPRO_PLAN_CACHE", True)
_ARENA_ENABLED = _env_flag("REPRO_ARENA", True)
_LOSS_SCALE_INIT = float(os.environ.get("REPRO_LOSS_SCALE", "") or 65536.0)
_LOSS_SCALE_GROWTH_INTERVAL = _env_int("REPRO_LOSS_SCALE_GROWTH_INTERVAL", 200)
_LOSS_SCALE_MIN = float(os.environ.get("REPRO_LOSS_SCALE_MIN", "") or 1.0)


def dtype() -> np.dtype:
    """Return the substrate-wide floating point dtype."""
    return _DTYPE


def set_dtype(new_dtype) -> None:
    """Set the substrate-wide floating point dtype (float32 or float64)."""
    global _DTYPE
    nd = np.dtype(new_dtype)
    if nd not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"dtype must be float32 or float64, got {new_dtype}")
    _DTYPE = nd.type


def engine_mode() -> str:
    """``"mixed"``/``"fast"`` for float32 compute, ``"precise"`` for float64."""
    if _DTYPE is np.float32:
        return "mixed" if _MIXED else "fast"
    return "precise"


def set_engine_mode(mode: str) -> None:
    """Sugar over :func:`set_dtype`: ``fast``/``mixed`` → float32, ``precise`` → float64.

    ``mixed`` additionally arms mixed-precision training: optimizers keep
    float64 master copies of the float32 parameters and the trainer applies
    dynamic loss scaling (see :mod:`repro.nn.optim`). Must be set *before*
    models are constructed — parameters adopt the ambient dtype at creation
    time. Gradient checks always run float64 regardless of this mode
    (:mod:`repro.nn.gradcheck` pins it).
    """
    global _MIXED
    if mode == "fast":
        set_dtype(np.float32)
        _MIXED = False
    elif mode == "mixed":
        set_dtype(np.float32)
        _MIXED = True
    elif mode == "precise":
        set_dtype(np.float64)
        _MIXED = False
    else:
        raise ValueError(
            f"engine mode must be 'fast', 'mixed' or 'precise', got {mode!r}"
        )


def mixed_precision() -> bool:
    """Whether mixed-precision training (master weights + loss scaling) is on.

    Only meaningful while the compute dtype is float32 — pinning float64
    (e.g. inside a gradcheck ``use_dtype`` block) suspends it.
    """
    return _MIXED and _DTYPE is np.float32


@contextlib.contextmanager
def use_dtype(new_dtype):
    """Context manager pinning the substrate dtype inside the block."""
    global _DTYPE
    previous = _DTYPE
    set_dtype(new_dtype)
    try:
        yield
    finally:
        _DTYPE = previous


def grad_enabled() -> bool:
    """Return whether autograd graph construction is currently enabled."""
    return _GRAD_ENABLED


def set_grad_enabled(enabled: bool) -> None:
    """Globally enable or disable autograd graph construction."""
    global _GRAD_ENABLED
    _GRAD_ENABLED = bool(enabled)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables autograd graph construction.

    Useful for evaluation loops: forward passes run faster and allocate no
    backward closures.
    """
    previous = grad_enabled()
    set_grad_enabled(False)
    try:
        yield
    finally:
        set_grad_enabled(previous)


# ---------------------------------------------------------------------------
# Execution-engine knobs (consumed by repro.nn.engine and repro.nn.ops.conv)
# ---------------------------------------------------------------------------

def num_threads() -> int:
    """Worker threads for intra-step batch sharding (1 = serial)."""
    return _NUM_THREADS


def set_num_threads(count: int) -> None:
    global _NUM_THREADS
    count = int(count)
    if count < 1:
        raise ValueError(f"num_threads must be >= 1, got {count}")
    _NUM_THREADS = count


def fusion_enabled() -> bool:
    """Whether cross-op fused kernels (:mod:`repro.nn.fusion`) may be used."""
    return _FUSION_ENABLED


def set_fusion_enabled(enabled: bool) -> None:
    global _FUSION_ENABLED
    _FUSION_ENABLED = bool(enabled)


def conv_fft_min_kernel_volume() -> int:
    return _CONV_FFT_MIN_KERNEL_VOLUME


def conv_fft_min_im2col_elements() -> int:
    return _CONV_FFT_MIN_IM2COL_ELEMENTS


def conv_fft_min_im2col_fused() -> int:
    """Fused-regime float32 FFT threshold (im2col elements).

    When fusion is enabled and the compute dtype is float32, the conv
    planner ranks paths purely by im2col volume (ignoring the legacy
    kernel-volume rule that forces small-grid pyramid convs onto FFT).
    Measured on this machine with ``benchmarks/bench_model.py``: GEMM wins
    up to roughly 10M im2col elements for BikeCAP's kernel shapes — a
    threshold near the crossover beats both the legacy dispatch and an
    aggressively early FFT switch (which regresses paper-sized grids ~30%).
    """
    return _CONV_FFT_MIN_IM2COL_FUSED


def conv_gemm_min_elements() -> int:
    return _CONV_GEMM_MIN_ELEMENTS


def set_conv_dispatch_thresholds(
    fft_min_kernel_volume: int = None,
    fft_min_im2col_elements: int = None,
    gemm_min_elements: int = None,
    fft_min_im2col_fused: int = None,
) -> None:
    """Override the conv dispatch thresholds (None keeps the current value)."""
    global _CONV_FFT_MIN_KERNEL_VOLUME, _CONV_FFT_MIN_IM2COL_ELEMENTS
    global _CONV_GEMM_MIN_ELEMENTS, _CONV_FFT_MIN_IM2COL_FUSED
    if fft_min_kernel_volume is not None:
        _CONV_FFT_MIN_KERNEL_VOLUME = int(fft_min_kernel_volume)
    if fft_min_im2col_elements is not None:
        _CONV_FFT_MIN_IM2COL_ELEMENTS = int(fft_min_im2col_elements)
    if gemm_min_elements is not None:
        _CONV_GEMM_MIN_ELEMENTS = int(gemm_min_elements)
    if fft_min_im2col_fused is not None:
        _CONV_FFT_MIN_IM2COL_FUSED = int(fft_min_im2col_fused)
    # Cached dispatch decisions were made under the old thresholds.
    from repro.nn import engine

    engine.clear_caches()


def loss_scale_init() -> float:
    """Initial dynamic loss scale for mixed-precision training."""
    return _LOSS_SCALE_INIT


def loss_scale_growth_interval() -> int:
    """Consecutive finite steps before the loss scale doubles."""
    return _LOSS_SCALE_GROWTH_INTERVAL


def loss_scale_min() -> float:
    """Floor below which loss-scale collapse is treated as divergence."""
    return _LOSS_SCALE_MIN


def plan_cache_enabled() -> bool:
    return _PLAN_CACHE_ENABLED


def set_plan_cache_enabled(enabled: bool) -> None:
    global _PLAN_CACHE_ENABLED
    _PLAN_CACHE_ENABLED = bool(enabled)


def arena_enabled() -> bool:
    return _ARENA_ENABLED


def set_arena_enabled(enabled: bool) -> None:
    global _ARENA_ENABLED
    _ARENA_ENABLED = bool(enabled)


# Environment-selected startup state: REPRO_ENGINE wins over REPRO_DTYPE.
_ENV_DTYPE = os.environ.get("REPRO_DTYPE")
if _ENV_DTYPE:
    set_dtype(_ENV_DTYPE)
_ENV_ENGINE = os.environ.get("REPRO_ENGINE")
if _ENV_ENGINE:
    set_engine_mode(_ENV_ENGINE)
