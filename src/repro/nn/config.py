"""Global configuration for the numpy deep-learning substrate.

The substrate defaults to float64 so finite-difference gradient checks are
reliable; callers that want speed over gradcheck-grade precision can switch
to float32 via :func:`set_dtype`.
"""

from __future__ import annotations

import contextlib

import numpy as np

_DTYPE = np.float64
_GRAD_ENABLED = True


def dtype() -> np.dtype:
    """Return the substrate-wide floating point dtype."""
    return _DTYPE


def set_dtype(new_dtype) -> None:
    """Set the substrate-wide floating point dtype (float32 or float64)."""
    global _DTYPE
    nd = np.dtype(new_dtype)
    if nd not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"dtype must be float32 or float64, got {new_dtype}")
    _DTYPE = nd.type


def grad_enabled() -> bool:
    """Return whether autograd graph construction is currently enabled."""
    return _GRAD_ENABLED


def set_grad_enabled(enabled: bool) -> None:
    """Globally enable or disable autograd graph construction."""
    global _GRAD_ENABLED
    _GRAD_ENABLED = bool(enabled)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables autograd graph construction.

    Useful for evaluation loops: forward passes run faster and allocate no
    backward closures.
    """
    previous = grad_enabled()
    set_grad_enabled(False)
    try:
        yield
    finally:
        set_grad_enabled(previous)
