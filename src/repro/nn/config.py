"""Global configuration for the numpy deep-learning substrate.

The substrate defaults to float64 so finite-difference gradient checks are
reliable; callers that want speed over gradcheck-grade precision can switch
to float32 via :func:`set_dtype` or the ``fast`` engine mode.

Engine knobs (all overridable by environment variables, read once at
import) control the execution-plan layer in :mod:`repro.nn.engine`:

=============================== ======================================== =========
knob                            environment variable                     default
=============================== ======================================== =========
dtype                           ``REPRO_DTYPE`` (float32|float64)        float64
engine mode                     ``REPRO_ENGINE`` (fast|precise)          precise
intra-step worker threads       ``REPRO_NUM_THREADS``                    1
FFT dispatch: kernel volume     ``REPRO_CONV_FFT_MIN_KERNEL_VOLUME``     48
FFT dispatch: im2col elements   ``REPRO_CONV_FFT_MIN_IM2COL_ELEMENTS``   4,000,000
GEMM dispatch: im2col elements  ``REPRO_CONV_GEMM_MIN_ELEMENTS``         1,500,000
plan cache on/off               ``REPRO_PLAN_CACHE`` (1|0)               1
workspace arena on/off          ``REPRO_ARENA`` (1|0)                    1
=============================== ======================================== =========

The conv dispatch defaults were recalibrated from ``bench_substrate`` runs
on this machine (see docs/PERFORMANCE.md for the measurement table).
"""

from __future__ import annotations

import contextlib
import os

import numpy as np


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    return int(raw)


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off")


_DTYPE = np.float64
_GRAD_ENABLED = True
_NUM_THREADS = max(1, _env_int("REPRO_NUM_THREADS", 1))
_CONV_FFT_MIN_KERNEL_VOLUME = _env_int("REPRO_CONV_FFT_MIN_KERNEL_VOLUME", 48)
_CONV_FFT_MIN_IM2COL_ELEMENTS = _env_int(
    "REPRO_CONV_FFT_MIN_IM2COL_ELEMENTS", 4_000_000
)
_CONV_GEMM_MIN_ELEMENTS = _env_int("REPRO_CONV_GEMM_MIN_ELEMENTS", 1_500_000)
_PLAN_CACHE_ENABLED = _env_flag("REPRO_PLAN_CACHE", True)
_ARENA_ENABLED = _env_flag("REPRO_ARENA", True)


def dtype() -> np.dtype:
    """Return the substrate-wide floating point dtype."""
    return _DTYPE


def set_dtype(new_dtype) -> None:
    """Set the substrate-wide floating point dtype (float32 or float64)."""
    global _DTYPE
    nd = np.dtype(new_dtype)
    if nd not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"dtype must be float32 or float64, got {new_dtype}")
    _DTYPE = nd.type


def engine_mode() -> str:
    """``"fast"`` when the substrate runs float32, ``"precise"`` for float64."""
    return "fast" if _DTYPE is np.float32 else "precise"


def set_engine_mode(mode: str) -> None:
    """Sugar over :func:`set_dtype`: ``fast`` → float32, ``precise`` → float64.

    Must be set *before* models are constructed — parameters adopt the
    ambient dtype at creation time. Gradient checks always run float64
    regardless of this mode (:mod:`repro.nn.gradcheck` pins it).
    """
    if mode == "fast":
        set_dtype(np.float32)
    elif mode == "precise":
        set_dtype(np.float64)
    else:
        raise ValueError(f"engine mode must be 'fast' or 'precise', got {mode!r}")


@contextlib.contextmanager
def use_dtype(new_dtype):
    """Context manager pinning the substrate dtype inside the block."""
    global _DTYPE
    previous = _DTYPE
    set_dtype(new_dtype)
    try:
        yield
    finally:
        _DTYPE = previous


def grad_enabled() -> bool:
    """Return whether autograd graph construction is currently enabled."""
    return _GRAD_ENABLED


def set_grad_enabled(enabled: bool) -> None:
    """Globally enable or disable autograd graph construction."""
    global _GRAD_ENABLED
    _GRAD_ENABLED = bool(enabled)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables autograd graph construction.

    Useful for evaluation loops: forward passes run faster and allocate no
    backward closures.
    """
    previous = grad_enabled()
    set_grad_enabled(False)
    try:
        yield
    finally:
        set_grad_enabled(previous)


# ---------------------------------------------------------------------------
# Execution-engine knobs (consumed by repro.nn.engine and repro.nn.ops.conv)
# ---------------------------------------------------------------------------

def num_threads() -> int:
    """Worker threads for intra-step batch sharding (1 = serial)."""
    return _NUM_THREADS


def set_num_threads(count: int) -> None:
    global _NUM_THREADS
    count = int(count)
    if count < 1:
        raise ValueError(f"num_threads must be >= 1, got {count}")
    _NUM_THREADS = count


def conv_fft_min_kernel_volume() -> int:
    return _CONV_FFT_MIN_KERNEL_VOLUME


def conv_fft_min_im2col_elements() -> int:
    return _CONV_FFT_MIN_IM2COL_ELEMENTS


def conv_gemm_min_elements() -> int:
    return _CONV_GEMM_MIN_ELEMENTS


def set_conv_dispatch_thresholds(
    fft_min_kernel_volume: int = None,
    fft_min_im2col_elements: int = None,
    gemm_min_elements: int = None,
) -> None:
    """Override the conv dispatch thresholds (None keeps the current value)."""
    global _CONV_FFT_MIN_KERNEL_VOLUME, _CONV_FFT_MIN_IM2COL_ELEMENTS
    global _CONV_GEMM_MIN_ELEMENTS
    if fft_min_kernel_volume is not None:
        _CONV_FFT_MIN_KERNEL_VOLUME = int(fft_min_kernel_volume)
    if fft_min_im2col_elements is not None:
        _CONV_FFT_MIN_IM2COL_ELEMENTS = int(fft_min_im2col_elements)
    if gemm_min_elements is not None:
        _CONV_GEMM_MIN_ELEMENTS = int(gemm_min_elements)
    # Cached dispatch decisions were made under the old thresholds.
    from repro.nn import engine

    engine.clear_caches()


def plan_cache_enabled() -> bool:
    return _PLAN_CACHE_ENABLED


def set_plan_cache_enabled(enabled: bool) -> None:
    global _PLAN_CACHE_ENABLED
    _PLAN_CACHE_ENABLED = bool(enabled)


def arena_enabled() -> bool:
    return _ARENA_ENABLED


def set_arena_enabled(enabled: bool) -> None:
    global _ARENA_ENABLED
    _ARENA_ENABLED = bool(enabled)


# Environment-selected startup state: REPRO_ENGINE wins over REPRO_DTYPE.
_ENV_DTYPE = os.environ.get("REPRO_DTYPE")
if _ENV_DTYPE:
    set_dtype(_ENV_DTYPE)
_ENV_ENGINE = os.environ.get("REPRO_ENGINE")
if _ENV_ENGINE:
    set_engine_mode(_ENV_ENGINE)
