"""Typed divergence errors and finiteness checks for the training loop.

Training on garbage is worse than crashing: one NaN loss silently poisons
every later epoch, the autosaved checkpoint, and the evaluation. This
module gives the stack one vocabulary for "the run left the land of finite
numbers" — :class:`DivergenceError` with a machine-readable ``reason`` —
plus cheap helpers for locating the first offending array.

Raisers live at two levels:

- the substrate itself: :func:`repro.nn.optim.clip_grad_norm` raises
  ``non_finite_grad_norm`` instead of scaling NaN into the weights;
- the :class:`repro.resilience.DivergenceSentinel` observer, which checks
  loss/gradient/weight finiteness and a windowed loss-spike rule per step
  and epoch via the ``Trainer.fit`` observer protocol.

The recovery side (rollback + LR backoff + retry) is
:mod:`repro.resilience`; this module stays at substrate level so ``nn``
can raise the typed error without importing upward.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

# Canonical reason strings (the `reason` label on metrics and run-log events).
NON_FINITE_LOSS = "non_finite_loss"
NON_FINITE_GRAD = "non_finite_grad"
NON_FINITE_GRAD_NORM = "non_finite_grad_norm"
NON_FINITE_WEIGHTS = "non_finite_weights"
LOSS_SPIKE = "loss_spike"
# Mixed-precision only: the dynamic loss scale backed off below its floor,
# i.e. gradients overflow even at (near-)unit scale — a real divergence,
# not a transient overflow the scaler can absorb by skipping a step.
LOSS_SCALE_FLOOR = "loss_scale_floor"

REASONS = (
    NON_FINITE_LOSS,
    NON_FINITE_GRAD,
    NON_FINITE_GRAD_NORM,
    NON_FINITE_WEIGHTS,
    LOSS_SPIKE,
    LOSS_SCALE_FLOOR,
)


class DivergenceError(RuntimeError):
    """Training left the land of finite numbers (or spiked beyond reason).

    ``reason`` is one of :data:`REASONS`; ``step``/``epoch`` locate the
    detection point (1-based, when known) and ``value`` carries the
    offending scalar, so a recovery policy can log *what* diverged and
    *where* without string-parsing the message.
    """

    def __init__(
        self,
        reason: str,
        message: Optional[str] = None,
        step: Optional[int] = None,
        epoch: Optional[int] = None,
        value: Optional[float] = None,
    ):
        if reason not in REASONS:
            raise ValueError(f"unknown divergence reason {reason!r}; choose from {REASONS}")
        detail = message or reason.replace("_", " ")
        where = []
        if epoch is not None:
            where.append(f"epoch {epoch}")
        if step is not None:
            where.append(f"step {step}")
        if where:
            detail = f"{detail} (at {', '.join(where)})"
        super().__init__(detail)
        self.reason = reason
        self.step = step
        self.epoch = epoch
        self.value = None if value is None else float(value)


def first_nonfinite(named_arrays: Iterable[Tuple[str, np.ndarray]]) -> Optional[str]:
    """Name of the first array containing a non-finite value, else ``None``."""
    for name, array in named_arrays:
        if array is None:
            continue
        if not np.all(np.isfinite(array)):
            return name
    return None


def check_weights(model, step: Optional[int] = None, epoch: Optional[int] = None) -> None:
    """Raise ``non_finite_weights`` naming the first bad parameter."""
    offender = first_nonfinite(
        (name, param.data) for name, param in model.named_parameters()
    )
    if offender is not None:
        raise DivergenceError(
            NON_FINITE_WEIGHTS,
            f"parameter {offender!r} contains non-finite values",
            step=step,
            epoch=epoch,
        )


def check_grads(parameters, step: Optional[int] = None, epoch: Optional[int] = None) -> None:
    """Raise ``non_finite_grad`` when any live gradient is non-finite."""
    offender = first_nonfinite(
        (f"param[{index}].grad", param.grad) for index, param in enumerate(parameters)
    )
    if offender is not None:
        raise DivergenceError(
            NON_FINITE_GRAD,
            f"{offender} contains non-finite values",
            step=step,
            epoch=epoch,
        )


def check_loss(loss: float, step: Optional[int] = None, epoch: Optional[int] = None) -> float:
    """Pass a finite loss through; raise ``non_finite_loss`` otherwise."""
    if not np.isfinite(loss):
        raise DivergenceError(NON_FINITE_LOSS, step=step, epoch=epoch, value=loss)
    return float(loss)


__all__ = [
    "DivergenceError",
    "LOSS_SCALE_FLOOR",
    "LOSS_SPIKE",
    "NON_FINITE_GRAD",
    "NON_FINITE_GRAD_NORM",
    "NON_FINITE_LOSS",
    "NON_FINITE_WEIGHTS",
    "REASONS",
    "check_grads",
    "check_loss",
    "check_weights",
    "first_nonfinite",
]
