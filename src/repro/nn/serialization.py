"""Model weights and full training-state checkpoints as ``.npz`` archives.

Two file kinds share the npz container:

- **weights** (:func:`save_weights` / :func:`load_weights`) — the bare
  parameter arrays of one ``Module``, keyed by dotted parameter name.
- **checkpoints** (:func:`save_checkpoint` / :func:`load_checkpoint`) —
  everything a mid-training crash would otherwise lose, in one file:
  model weights (``model/<name>``), best-so-far weights (``best/<name>``),
  optimizer slots (``optim/<slot>/<index>``), and a JSON metadata record
  (epoch, loss curves, early-stop counters, the shuffle RNG's exact
  position, optimizer type/step count, and an arbitrary caller payload such
  as a serialized ``RunSpec``). ``Trainer.fit(resume_from=...)`` restores a
  checkpoint bit-exactly — the resumed run's weights and metrics are
  identical to an uninterrupted one.

Both loaders are strict: missing keys, unexpected keys, and shape
mismatches raise a single error listing every problem, instead of silently
misloading a partially-matching archive.

Crash safety (see docs/RESILIENCE.md): checkpoints are written atomically
(temp file + ``os.replace``) and the previous generation is rotated to
``<path>.prev`` instead of being destroyed, so there is always a loadable
resume point even if the newest file is later found damaged. The metadata
carries a per-array CRC32/shape/dtype manifest; :func:`load_checkpoint`
verifies it and raises :class:`CheckpointCorruptError` (as it does for
truncated or otherwise unreadable archives), and :func:`quarantine` moves
a bad file aside to ``*.corrupt`` so discovery never trips over it again.
"""

from __future__ import annotations

import json
import os
import struct
import zipfile
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import faults
from repro.nn.layers.base import Module

CHECKPOINT_META_KEY = "__checkpoint_meta__"
CHECKPOINT_FORMAT_VERSION = 1
CORRUPT_SUFFIX = ".corrupt"
PREVIOUS_SUFFIX = ".prev"

# What flipped bits in an npz actually raise: zipfile alone surfaces
# BadZipFile, NotImplementedError (garbage version/compression fields) and
# struct.error (torn headers), numpy adds ValueError/KeyError for mangled
# .npy members, zlib.error for bad deflate streams, OSError for truncation.
_DAMAGE_ERRORS = (
    OSError,
    ValueError,
    KeyError,
    NotImplementedError,
    struct.error,
    zipfile.BadZipFile,
    zlib.error,
)


class CheckpointCorruptError(ValueError):
    """A checkpoint file exists but cannot be trusted.

    Raised for unreadable archives (truncated zip, bad header), metadata
    that fails to parse, and arrays whose bytes no longer match the CRC32
    manifest recorded at save time. Distinct from the plain ``ValueError``
    of "this is a weights file, not a checkpoint", which is a caller
    mistake rather than damage.
    """


def _ensure_parent(path: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)


def _state_diff(model: Module, state: Dict[str, np.ndarray], context: str) -> None:
    """Raise one error listing every missing/unexpected/mis-shaped key."""
    own = {name: param.data.shape for name, param in model.named_parameters()}
    problems: List[str] = []
    missing = sorted(set(own) - set(state))
    unexpected = sorted(set(state) - set(own))
    if missing:
        problems.append(f"missing parameters: {missing}")
    if unexpected:
        problems.append(f"unexpected parameters: {unexpected}")
    for name in sorted(set(own) & set(state)):
        saved = np.asarray(state[name]).shape
        if saved != own[name]:
            problems.append(f"shape mismatch for {name!r}: saved {saved}, model expects {own[name]}")
    if problems:
        raise ValueError(
            f"{context} does not match {type(model).__name__} "
            f"({len(own)} parameters): " + "; ".join(problems)
        )


def save_weights(model: Module, path: str) -> None:
    """Serialize the model's state dict to ``path`` (npz)."""
    state = model.state_dict()
    if not state:
        raise ValueError(
            f"refusing to save {type(model).__name__}: it has no parameters"
        )
    _ensure_parent(path)
    np.savez(path, **state)


def load_weights(model: Module, path: str) -> None:
    """Load weights saved by :func:`save_weights` into ``model`` in place.

    Rejects archives whose keys or shapes don't exactly match the model's
    parameters, reporting every discrepancy at once. Given a full training
    checkpoint instead of a weights file, points at :func:`load_checkpoint`.
    """
    with np.load(path, allow_pickle=False) as archive:
        if CHECKPOINT_META_KEY in archive.files:
            raise ValueError(
                f"{path} is a full training checkpoint, not a bare weights file; "
                "load it with repro.nn.serialization.load_checkpoint (or resume "
                "training via Trainer.fit(resume_from=...))"
            )
        state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    _state_diff(model, state, context=f"weights file {path!r}")
    model.load_state_dict(state)


# ----------------------------------------------------------------------
# Full-state checkpoints.
# ----------------------------------------------------------------------
@dataclass
class TrainingCheckpoint:
    """Parsed contents of a checkpoint file."""

    model_state: Dict[str, np.ndarray]
    optimizer_state: Optional[Dict] = None
    best_state: Optional[Dict[str, np.ndarray]] = None
    epoch: int = 0
    history: Dict = field(default_factory=dict)
    best_val: float = float("inf")
    stale: int = 0
    stopped: bool = False
    rng_state: Optional[Dict] = None
    loss: Optional[str] = None
    model_class: Optional[str] = None
    extra: Dict = field(default_factory=dict)

    def restore_model(self, model: Module) -> None:
        """Load the saved weights into ``model``, shape-checked."""
        _state_diff(model, self.model_state, context="checkpoint model state")
        model.load_state_dict(self.model_state)

    def restore_optimizer(self, optimizer) -> None:
        if self.optimizer_state is None:
            raise ValueError("checkpoint carries no optimizer state")
        optimizer.load_state_dict(self.optimizer_state)

    def restore_serving_model(self, model: Module) -> str:
        """Load the weights an inference service should answer with.

        Prefers the best-validation snapshot when early-stop tracking
        recorded one — the same weights ``Trainer.fit`` leaves in memory at
        the end of a run — falling back to the last autosaved weights.
        Returns which one was used (``"best"`` or ``"last"``).
        """
        state = self.best_state if self.best_state is not None else self.model_state
        which = "best" if self.best_state is not None else "last"
        _state_diff(model, state, context=f"checkpoint {which} state")
        model.load_state_dict(state)
        return which


def build_checkpoint(
    model: Module,
    optimizer=None,
    epoch: int = 0,
    history: Optional[Dict] = None,
    best_val: float = float("inf"),
    stale: int = 0,
    stopped: bool = False,
    rng_state: Optional[Dict] = None,
    best_state: Optional[Dict[str, np.ndarray]] = None,
    loss: Optional[str] = None,
    extra: Optional[Dict] = None,
) -> TrainingCheckpoint:
    """Capture the trainer's exact position as an in-memory checkpoint.

    Array state is deep-copied (``Module.state_dict`` copies; optimizer
    slots are copied here), so the snapshot stays good while in-place
    optimizer updates keep mutating the live buffers — this is what the
    recovery policy rolls back to without touching disk.
    """
    optimizer_state = None
    if optimizer is not None:
        state = optimizer.state_dict()  # state_dict already copies buffers
        state["hyper"] = dict(state.get("hyper", {}))
        optimizer_state = state
    return TrainingCheckpoint(
        model_state=model.state_dict(),
        optimizer_state=optimizer_state,
        best_state={k: np.array(v) for k, v in best_state.items()} if best_state else None,
        epoch=int(epoch),
        history=json.loads(json.dumps(history or {})),
        best_val=float(best_val),
        stale=int(stale),
        stopped=bool(stopped),
        rng_state=json.loads(json.dumps(rng_state)) if rng_state is not None else None,
        loss=loss,
        model_class=type(model).__name__,
        extra=dict(extra or {}),
    )


def _crc(array: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


def write_checkpoint(path: str, checkpoint: TrainingCheckpoint) -> None:
    """Serialize a checkpoint to ``path`` atomically, rotating the old file.

    The archive embeds a per-array CRC32/shape/dtype manifest that
    :func:`load_checkpoint` verifies. An existing file at ``path`` is moved
    to ``<path>.prev`` before the rename, so a later-discovered corruption
    of the newest autosave can still fall back one generation
    (``repro.pipeline.checkpoint.validated_restore``).
    """
    arrays: Dict[str, np.ndarray] = {}
    for name, value in checkpoint.model_state.items():
        arrays[f"model/{name}"] = np.asarray(value)
    if checkpoint.best_state is not None:
        for name, value in checkpoint.best_state.items():
            arrays[f"best/{name}"] = np.asarray(value)
    optimizer_meta = None
    if checkpoint.optimizer_state is not None:
        state = dict(checkpoint.optimizer_state)
        for slot, buffers in state.pop("slots").items():
            for index, buffer in enumerate(buffers):
                arrays[f"optim/{slot}/{index}"] = np.asarray(buffer)
        optimizer_meta = state  # type / step_count / hyper
    manifest = {
        key: {
            "crc": _crc(value),
            "shape": list(value.shape),
            "dtype": np.dtype(value.dtype).str,
        }
        for key, value in arrays.items()
    }
    best_val = checkpoint.best_val
    meta = {
        "format": CHECKPOINT_FORMAT_VERSION,
        "epoch": checkpoint.epoch,
        "history": checkpoint.history,
        "best_val": None if best_val == float("inf") else float(best_val),
        "stale": checkpoint.stale,
        "stopped": checkpoint.stopped,
        "rng_state": checkpoint.rng_state,
        "optimizer": optimizer_meta,
        "loss": checkpoint.loss,
        "model_class": checkpoint.model_class,
        "extra": checkpoint.extra,
        "manifest": manifest,
    }
    arrays[CHECKPOINT_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    _ensure_parent(path)
    tmp = path + ".tmp"
    np.savez(tmp, **arrays)
    # np.savez appends .npz to extension-less paths; follow where it wrote.
    written = tmp if os.path.exists(tmp) else tmp + ".npz"
    # Chaos hook: a planned "SIGKILL mid-write" truncates the temp file and
    # raises here — after the bytes, before the rename — so the final path
    # below is provably never left half-written.
    faults.kill_checkpoint_write(written)
    if os.path.exists(path):
        os.replace(path, path + PREVIOUS_SUFFIX)
    os.replace(written, path)


def save_checkpoint(
    path: str,
    model: Module,
    optimizer=None,
    epoch: int = 0,
    history: Optional[Dict] = None,
    best_val: float = float("inf"),
    stale: int = 0,
    stopped: bool = False,
    rng_state: Optional[Dict] = None,
    best_state: Optional[Dict[str, np.ndarray]] = None,
    loss: Optional[str] = None,
    extra: Optional[Dict] = None,
) -> None:
    """Write one self-contained resume point (atomic: temp file + rename)."""
    write_checkpoint(
        path,
        build_checkpoint(
            model,
            optimizer=optimizer,
            epoch=epoch,
            history=history,
            best_val=best_val,
            stale=stale,
            stopped=stopped,
            rng_state=rng_state,
            best_state=best_state,
            loss=loss,
            extra=extra,
        ),
    )


def _verify_manifest(path: str, key: str, array: np.ndarray, entry: Dict) -> None:
    problems: List[str] = []
    shape = list(np.asarray(array).shape)
    dtype = np.dtype(array.dtype).str
    if entry.get("shape") is not None and list(entry["shape"]) != shape:
        problems.append(f"shape {shape} != manifest {list(entry['shape'])}")
    if entry.get("dtype") is not None and entry["dtype"] != dtype:
        problems.append(f"dtype {dtype} != manifest {entry['dtype']}")
    if entry.get("crc") is not None and int(entry["crc"]) != _crc(array):
        problems.append("CRC32 mismatch")
    if problems:
        raise CheckpointCorruptError(
            f"checkpoint {path}: array {key!r} fails validation "
            f"({'; '.join(problems)}); the file is damaged"
        )


def load_checkpoint(path: str) -> TrainingCheckpoint:
    """Parse a file written by :func:`save_checkpoint`.

    Raises :class:`CheckpointCorruptError` for archives that are unreadable
    (truncated zip, bad member) or whose arrays no longer match the
    embedded CRC32/shape/dtype manifest. Checkpoints written before the
    manifest existed load unverified — the manifest is checked only when
    present, so the on-disk format version is unchanged.
    """
    try:
        archive_ctx = np.load(path, allow_pickle=False)
    except _DAMAGE_ERRORS as exc:
        raise CheckpointCorruptError(
            f"checkpoint {path} is unreadable ({exc}); the file is damaged or truncated"
        ) from exc
    with archive_ctx as archive:
        if CHECKPOINT_META_KEY not in archive.files:
            raise ValueError(
                f"{path} is not a training checkpoint (no metadata record); "
                "bare weight files load with repro.nn.serialization.load_weights"
            )
        try:
            meta = json.loads(archive[CHECKPOINT_META_KEY].tobytes().decode("utf-8"))
        except _DAMAGE_ERRORS as exc:
            raise CheckpointCorruptError(
                f"checkpoint {path} has an unparseable metadata record ({exc})"
            ) from exc
        if meta.get("format") != CHECKPOINT_FORMAT_VERSION:
            raise ValueError(
                f"checkpoint {path} has format {meta.get('format')!r}; "
                f"this build reads format {CHECKPOINT_FORMAT_VERSION}"
            )
        manifest = meta.get("manifest") or {}
        expected = set(manifest) - {CHECKPOINT_META_KEY}
        present = set(archive.files) - {CHECKPOINT_META_KEY}
        if manifest and expected - present:
            raise CheckpointCorruptError(
                f"checkpoint {path} is missing arrays recorded in its manifest: "
                f"{sorted(expected - present)}"
            )
        model_state: Dict[str, np.ndarray] = {}
        best_state: Dict[str, np.ndarray] = {}
        slots: Dict[str, Dict[int, np.ndarray]] = {}
        for key in archive.files:
            if key == CHECKPOINT_META_KEY:
                continue
            try:
                array = archive[key]
            except _DAMAGE_ERRORS as exc:
                raise CheckpointCorruptError(
                    f"checkpoint {path}: array {key!r} is unreadable ({exc})"
                ) from exc
            if key in manifest:
                _verify_manifest(path, key, array, manifest[key])
            section, _, rest = key.partition("/")
            if section == "model":
                model_state[rest] = array
            elif section == "best":
                best_state[rest] = array
            elif section == "optim":
                slot, _, index = rest.partition("/")
                slots.setdefault(slot, {})[int(index)] = array
            else:
                raise ValueError(f"checkpoint {path} has unrecognized section {key!r}")
    optimizer_state = meta.get("optimizer")
    if optimizer_state is not None:
        optimizer_state = dict(optimizer_state)
        optimizer_state["slots"] = {
            slot: [buffers[i] for i in sorted(buffers)] for slot, buffers in slots.items()
        }
    best_val = meta.get("best_val")
    return TrainingCheckpoint(
        model_state=model_state,
        optimizer_state=optimizer_state,
        best_state=best_state or None,
        epoch=int(meta.get("epoch", 0)),
        history=meta.get("history") or {},
        best_val=float("inf") if best_val is None else float(best_val),
        stale=int(meta.get("stale", 0)),
        stopped=bool(meta.get("stopped", False)),
        rng_state=meta.get("rng_state"),
        loss=meta.get("loss"),
        model_class=meta.get("model_class"),
        extra=meta.get("extra") or {},
    )


def is_checkpoint(path: str) -> bool:
    """Whether ``path`` is a full checkpoint (vs a bare weights archive)."""
    try:
        with np.load(path, allow_pickle=False) as archive:
            return CHECKPOINT_META_KEY in archive.files
    except _DAMAGE_ERRORS:
        return False


def quarantine(path: str) -> str:
    """Move a damaged checkpoint aside to ``<path>.corrupt`` and return it.

    Keeps the evidence for post-mortems while guaranteeing that checkpoint
    discovery (``find_checkpoint`` / ``newest_checkpoint``) never offers the
    bad file again. An earlier quarantined generation at the same name is
    overwritten — the newest corruption is the interesting one.
    """
    target = path + CORRUPT_SUFFIX
    os.replace(path, target)
    return target
