"""Model weights and full training-state checkpoints as ``.npz`` archives.

Two file kinds share the npz container:

- **weights** (:func:`save_weights` / :func:`load_weights`) — the bare
  parameter arrays of one ``Module``, keyed by dotted parameter name.
- **checkpoints** (:func:`save_checkpoint` / :func:`load_checkpoint`) —
  everything a mid-training crash would otherwise lose, in one file:
  model weights (``model/<name>``), best-so-far weights (``best/<name>``),
  optimizer slots (``optim/<slot>/<index>``), and a JSON metadata record
  (epoch, loss curves, early-stop counters, the shuffle RNG's exact
  position, optimizer type/step count, and an arbitrary caller payload such
  as a serialized ``RunSpec``). ``Trainer.fit(resume_from=...)`` restores a
  checkpoint bit-exactly — the resumed run's weights and metrics are
  identical to an uninterrupted one.

Both loaders are strict: missing keys, unexpected keys, and shape
mismatches raise a single error listing every problem, instead of silently
misloading a partially-matching archive.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.nn.layers.base import Module

CHECKPOINT_META_KEY = "__checkpoint_meta__"
CHECKPOINT_FORMAT_VERSION = 1


def _ensure_parent(path: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)


def _state_diff(model: Module, state: Dict[str, np.ndarray], context: str) -> None:
    """Raise one error listing every missing/unexpected/mis-shaped key."""
    own = {name: param.data.shape for name, param in model.named_parameters()}
    problems: List[str] = []
    missing = sorted(set(own) - set(state))
    unexpected = sorted(set(state) - set(own))
    if missing:
        problems.append(f"missing parameters: {missing}")
    if unexpected:
        problems.append(f"unexpected parameters: {unexpected}")
    for name in sorted(set(own) & set(state)):
        saved = np.asarray(state[name]).shape
        if saved != own[name]:
            problems.append(f"shape mismatch for {name!r}: saved {saved}, model expects {own[name]}")
    if problems:
        raise ValueError(
            f"{context} does not match {type(model).__name__} "
            f"({len(own)} parameters): " + "; ".join(problems)
        )


def save_weights(model: Module, path: str) -> None:
    """Serialize the model's state dict to ``path`` (npz)."""
    state = model.state_dict()
    if not state:
        raise ValueError(
            f"refusing to save {type(model).__name__}: it has no parameters"
        )
    _ensure_parent(path)
    np.savez(path, **state)


def load_weights(model: Module, path: str) -> None:
    """Load weights saved by :func:`save_weights` into ``model`` in place.

    Rejects archives whose keys or shapes don't exactly match the model's
    parameters, reporting every discrepancy at once. Given a full training
    checkpoint instead of a weights file, points at :func:`load_checkpoint`.
    """
    with np.load(path, allow_pickle=False) as archive:
        if CHECKPOINT_META_KEY in archive.files:
            raise ValueError(
                f"{path} is a full training checkpoint, not a bare weights file; "
                "load it with repro.nn.serialization.load_checkpoint (or resume "
                "training via Trainer.fit(resume_from=...))"
            )
        state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    _state_diff(model, state, context=f"weights file {path!r}")
    model.load_state_dict(state)


# ----------------------------------------------------------------------
# Full-state checkpoints.
# ----------------------------------------------------------------------
@dataclass
class TrainingCheckpoint:
    """Parsed contents of a checkpoint file."""

    model_state: Dict[str, np.ndarray]
    optimizer_state: Optional[Dict] = None
    best_state: Optional[Dict[str, np.ndarray]] = None
    epoch: int = 0
    history: Dict = field(default_factory=dict)
    best_val: float = float("inf")
    stale: int = 0
    stopped: bool = False
    rng_state: Optional[Dict] = None
    loss: Optional[str] = None
    model_class: Optional[str] = None
    extra: Dict = field(default_factory=dict)

    def restore_model(self, model: Module) -> None:
        """Load the saved weights into ``model``, shape-checked."""
        _state_diff(model, self.model_state, context="checkpoint model state")
        model.load_state_dict(self.model_state)

    def restore_optimizer(self, optimizer) -> None:
        if self.optimizer_state is None:
            raise ValueError("checkpoint carries no optimizer state")
        optimizer.load_state_dict(self.optimizer_state)

    def restore_serving_model(self, model: Module) -> str:
        """Load the weights an inference service should answer with.

        Prefers the best-validation snapshot when early-stop tracking
        recorded one — the same weights ``Trainer.fit`` leaves in memory at
        the end of a run — falling back to the last autosaved weights.
        Returns which one was used (``"best"`` or ``"last"``).
        """
        state = self.best_state if self.best_state is not None else self.model_state
        which = "best" if self.best_state is not None else "last"
        _state_diff(model, state, context=f"checkpoint {which} state")
        model.load_state_dict(state)
        return which


def save_checkpoint(
    path: str,
    model: Module,
    optimizer=None,
    epoch: int = 0,
    history: Optional[Dict] = None,
    best_val: float = float("inf"),
    stale: int = 0,
    stopped: bool = False,
    rng_state: Optional[Dict] = None,
    best_state: Optional[Dict[str, np.ndarray]] = None,
    loss: Optional[str] = None,
    extra: Optional[Dict] = None,
) -> None:
    """Write one self-contained resume point (atomic: temp file + rename)."""
    arrays: Dict[str, np.ndarray] = {}
    for name, value in model.state_dict().items():
        arrays[f"model/{name}"] = value
    if best_state is not None:
        for name, value in best_state.items():
            arrays[f"best/{name}"] = np.asarray(value)
    optimizer_meta = None
    if optimizer is not None:
        state = optimizer.state_dict()
        for slot, buffers in state.pop("slots").items():
            for index, buffer in enumerate(buffers):
                arrays[f"optim/{slot}/{index}"] = buffer
        optimizer_meta = state  # type / step_count / hyper
    meta = {
        "format": CHECKPOINT_FORMAT_VERSION,
        "epoch": int(epoch),
        "history": history or {},
        "best_val": None if best_val == float("inf") else float(best_val),
        "stale": int(stale),
        "stopped": bool(stopped),
        "rng_state": rng_state,
        "optimizer": optimizer_meta,
        "loss": loss,
        "model_class": type(model).__name__,
        "extra": extra or {},
    }
    arrays[CHECKPOINT_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    _ensure_parent(path)
    tmp = path + ".tmp"
    np.savez(tmp, **arrays)
    # np.savez appends .npz to extension-less paths; follow where it wrote.
    written = tmp if os.path.exists(tmp) else tmp + ".npz"
    os.replace(written, path)


def load_checkpoint(path: str) -> TrainingCheckpoint:
    """Parse a file written by :func:`save_checkpoint`."""
    with np.load(path, allow_pickle=False) as archive:
        if CHECKPOINT_META_KEY not in archive.files:
            raise ValueError(
                f"{path} is not a training checkpoint (no metadata record); "
                "bare weight files load with repro.nn.serialization.load_weights"
            )
        meta = json.loads(archive[CHECKPOINT_META_KEY].tobytes().decode("utf-8"))
        if meta.get("format") != CHECKPOINT_FORMAT_VERSION:
            raise ValueError(
                f"checkpoint {path} has format {meta.get('format')!r}; "
                f"this build reads format {CHECKPOINT_FORMAT_VERSION}"
            )
        model_state: Dict[str, np.ndarray] = {}
        best_state: Dict[str, np.ndarray] = {}
        slots: Dict[str, Dict[int, np.ndarray]] = {}
        for key in archive.files:
            if key == CHECKPOINT_META_KEY:
                continue
            section, _, rest = key.partition("/")
            if section == "model":
                model_state[rest] = archive[key]
            elif section == "best":
                best_state[rest] = archive[key]
            elif section == "optim":
                slot, _, index = rest.partition("/")
                slots.setdefault(slot, {})[int(index)] = archive[key]
            else:
                raise ValueError(f"checkpoint {path} has unrecognized section {key!r}")
    optimizer_state = meta.get("optimizer")
    if optimizer_state is not None:
        optimizer_state = dict(optimizer_state)
        optimizer_state["slots"] = {
            slot: [buffers[i] for i in sorted(buffers)] for slot, buffers in slots.items()
        }
    best_val = meta.get("best_val")
    return TrainingCheckpoint(
        model_state=model_state,
        optimizer_state=optimizer_state,
        best_state=best_state or None,
        epoch=int(meta.get("epoch", 0)),
        history=meta.get("history") or {},
        best_val=float("inf") if best_val is None else float(best_val),
        stale=int(meta.get("stale", 0)),
        stopped=bool(meta.get("stopped", False)),
        rng_state=meta.get("rng_state"),
        loss=meta.get("loss"),
        model_class=meta.get("model_class"),
        extra=meta.get("extra") or {},
    )


def is_checkpoint(path: str) -> bool:
    """Whether ``path`` is a full checkpoint (vs a bare weights archive)."""
    try:
        with np.load(path, allow_pickle=False) as archive:
            return CHECKPOINT_META_KEY in archive.files
    except (OSError, ValueError):
        return False
