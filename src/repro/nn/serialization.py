"""Save/load model weights as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.nn.layers.base import Module


def save_weights(model: Module, path: str) -> None:
    """Serialize the model's state dict to ``path`` (npz)."""
    state = model.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_weights(model: Module, path: str) -> None:
    """Load weights saved by :func:`save_weights` into ``model`` in place."""
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    model.load_state_dict(state)
