"""Reverse-mode autograd tensor.

A :class:`Tensor` wraps a numpy array plus an optional backward closure and
parent links. Calling :meth:`Tensor.backward` on a scalar (or with an explicit
output gradient) walks the graph in reverse topological order and accumulates
gradients into every tensor with ``requires_grad=True``.

Operations live in :mod:`repro.nn.ops`; this module only holds the graph
machinery and operator-overload sugar.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.nn import config


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(self, data, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=config.dtype())
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents: Tuple["Tensor", ...] = ()
        self._backward: Optional[Callable[[np.ndarray], None]] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")
        return float(self.data.reshape(()))

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the autograd graph."""
        out = Tensor.__new__(Tensor)
        out.data = self.data
        out.grad = None
        out.requires_grad = False
        out._parents = ()
        out._backward = None
        return out

    def zero_grad(self) -> None:
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's accumulated gradient."""
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(
        self,
        grad: Optional[np.ndarray] = None,
        sink: Optional[dict] = None,
    ) -> None:
        """Backpropagate from this tensor through the recorded graph.

        With ``sink`` given, leaf gradients are accumulated into
        ``sink[id(leaf)]`` instead of the leaves' ``.grad`` — this keeps
        concurrent backward passes over shared parameters race-free (each
        worker owns a private sink, merged deterministically afterwards).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}")

        order = _topological_order(self)
        grads = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                if sink is None:
                    node.accumulate_grad(node_grad)
                else:
                    key = id(node)
                    if key in sink:
                        sink[key] = sink[key] + node_grad
                    else:
                        sink[key] = np.array(
                            node_grad, dtype=node.data.dtype, copy=True
                        )
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                pgrad = np.asarray(pgrad, dtype=parent.data.dtype)
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    # ------------------------------------------------------------------
    # Operator sugar (implementations live in repro.nn.ops)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from repro.nn import ops

        return ops.add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        from repro.nn import ops

        return ops.sub(self, other)

    def __rsub__(self, other):
        from repro.nn import ops

        return ops.sub(other, self)

    def __mul__(self, other):
        from repro.nn import ops

        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        from repro.nn import ops

        return ops.div(self, other)

    def __rtruediv__(self, other):
        from repro.nn import ops

        return ops.div(other, self)

    def __neg__(self):
        from repro.nn import ops

        return ops.neg(self)

    def __pow__(self, exponent):
        from repro.nn import ops

        return ops.power(self, exponent)

    def __matmul__(self, other):
        from repro.nn import ops

        return ops.matmul(self, other)

    def __getitem__(self, index):
        from repro.nn import ops

        return ops.getitem(self, index)

    def sum(self, axis=None, keepdims: bool = False):
        from repro.nn import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from repro.nn import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False):
        from repro.nn import ops

        return ops.max(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from repro.nn import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, *axes):
        from repro.nn import ops

        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return ops.transpose(self, axes or None)

    def squeeze(self, axis):
        from repro.nn import ops

        return ops.squeeze(self, axis)

    def unsqueeze(self, axis):
        from repro.nn import ops

        return ops.expand_dims(self, axis)


def as_tensor(value, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy if it already is one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def make_op(
    data: np.ndarray,
    parents: Sequence[Tensor],
    backward: Callable[[np.ndarray], Iterable[Optional[np.ndarray]]],
) -> Tensor:
    """Construct an op output tensor, recording the graph edge if needed.

    ``backward`` receives the upstream gradient and must return one gradient
    (or ``None``) per parent, in order.
    """
    out = Tensor(data)
    if config.grad_enabled() and any(p.requires_grad for p in parents):
        out.requires_grad = True
        out._parents = tuple(parents)
        out._backward = backward
    return out


def _topological_order(root: Tensor) -> list:
    """Iterative post-order DFS returning nodes from outputs to inputs."""
    order: list = []
    visited = set()
    stack = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    order.reverse()
    return order


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)
